file(REMOVE_RECURSE
  "CMakeFiles/bench_ci_gate.dir/bench_ci_gate.cpp.o"
  "CMakeFiles/bench_ci_gate.dir/bench_ci_gate.cpp.o.d"
  "bench_ci_gate"
  "bench_ci_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ci_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
