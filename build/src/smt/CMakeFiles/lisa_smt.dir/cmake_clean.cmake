file(REMOVE_RECURSE
  "CMakeFiles/lisa_smt.dir/formula.cpp.o"
  "CMakeFiles/lisa_smt.dir/formula.cpp.o.d"
  "CMakeFiles/lisa_smt.dir/minilang_bridge.cpp.o"
  "CMakeFiles/lisa_smt.dir/minilang_bridge.cpp.o.d"
  "CMakeFiles/lisa_smt.dir/smtlib.cpp.o"
  "CMakeFiles/lisa_smt.dir/smtlib.cpp.o.d"
  "CMakeFiles/lisa_smt.dir/solver.cpp.o"
  "CMakeFiles/lisa_smt.dir/solver.cpp.o.d"
  "liblisa_smt.a"
  "liblisa_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
