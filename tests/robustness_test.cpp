// Robustness harness tests: resource budgets, fault injection, inference
// retries, and checkpoint/resume. The common thread is monotone degradation
// — refused or faulted work must surface as a structured inconclusive
// outcome, never as a crash, a silent pass, or a flipped verdict.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "concolic/explorer.hpp"
#include "corpus/ticket.hpp"
#include "inference/mock_llm.hpp"
#include "lisa/ci_gate.hpp"
#include "lisa/journal.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/interp.hpp"
#include "minilang/sema.hpp"
#include "smt/minilang_bridge.hpp"
#include "smt/solver.hpp"
#include "support/budget.hpp"
#include "support/faultpoint.hpp"

namespace lisa {
namespace {

using core::CheckJournal;
using core::CheckOptions;
using core::Checker;
using core::ContractCheckReport;
using core::PathVerdict;
using core::Pipeline;
using core::PipelineResult;
using support::Budget;
using support::BudgetLimits;
using support::BudgetResource;
using support::FaultAction;
using support::FaultRegistry;

PipelineResult pipeline_result(const Pipeline& pipeline, const corpus::FailureTicket& ticket,
                               const core::PipelineRunOptions& options = {}) {
  return pipeline.run(ticket, ticket.patched_source, options);
}

/// Every test runs with a disarmed registry; the fixture guarantees that a
/// failing test cannot leak armed fault points into its neighbours.
class Robustness : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::instance().clear(); }
  void TearDown() override { FaultRegistry::instance().clear(); }

  static std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "lisa_robustness_" + name;
  }

  static inference::RetryPolicy fast_retries(int max_attempts = 3) {
    inference::RetryPolicy policy;
    policy.max_attempts = max_attempts;
    policy.sleep_between_attempts = false;
    return policy;
  }
};

// ---------------------------------------------------------------------------
// Budget semantics.

TEST_F(Robustness, BudgetLatchesOnFirstExhaustedResource) {
  BudgetLimits limits;
  limits.max_smt_queries = 2;
  Budget budget(limits);
  EXPECT_TRUE(budget.charge_smt_query());
  EXPECT_TRUE(budget.charge_smt_query());
  EXPECT_FALSE(budget.charge_smt_query());  // the cutoff charge is refused
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.exhausted_resource(), BudgetResource::kSmtQueries);
  // Once latched, every other resource is refused too — but the reason
  // still names the *first* resource that ran out.
  EXPECT_FALSE(budget.charge_path());
  EXPECT_FALSE(budget.charge_steps(100));
  EXPECT_EQ(budget.exhausted_resource(), BudgetResource::kSmtQueries);
  EXPECT_NE(budget.exhausted_reason().find("SMT"), std::string::npos);
}

TEST_F(Robustness, UnlimitedBudgetNeverExhausts) {
  Budget budget;  // default-constructed = unlimited
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(budget.charge_smt_query());
  EXPECT_TRUE(budget.charge_steps(1 << 20));
  EXPECT_TRUE(budget.check());
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.exhausted_reason(), "");
}

TEST_F(Robustness, DeadlineExhaustsViaPoll) {
  BudgetLimits limits;
  limits.deadline_ms = 0.001;  // already past by the first poll
  Budget budget(limits);
  while (budget.elapsed_ms() <= limits.deadline_ms) {}
  EXPECT_FALSE(budget.check());
  EXPECT_EQ(budget.exhausted_resource(), BudgetResource::kDeadline);
  EXPECT_NE(budget.exhausted_reason().find("deadline"), std::string::npos);
  EXPECT_FALSE(budget.charge_path());
}

TEST_F(Robustness, BudgetCountsSpendEvenWhenUnlimited) {
  Budget budget;
  (void)budget.charge_smt_query();
  (void)budget.charge_path();
  (void)budget.charge_fork_point();
  (void)budget.charge_steps(42);
  EXPECT_EQ(budget.smt_queries(), 1);
  EXPECT_EQ(budget.paths(), 1);
  EXPECT_EQ(budget.fork_points(), 1);
  EXPECT_EQ(budget.steps(), 42);
}

// ---------------------------------------------------------------------------
// Fault-point registry.

TEST_F(Robustness, FaultSpecParsesActionsAndCounts) {
  FaultRegistry& registry = FaultRegistry::instance();
  ASSERT_TRUE(registry.configure("smt.solve=timeout,infer.propose=fail:2"));
  const std::vector<std::string> armed = registry.armed_sites();
  EXPECT_EQ(armed.size(), 2u);
  // Unbounded site fires on every arrival.
  EXPECT_EQ(registry.consume("smt.solve"), FaultAction::kTimeout);
  EXPECT_EQ(registry.consume("smt.solve"), FaultAction::kTimeout);
  // Counted site spends itself after two firings.
  EXPECT_EQ(registry.consume("infer.propose"), FaultAction::kFail);
  EXPECT_EQ(registry.consume("infer.propose"), FaultAction::kFail);
  EXPECT_EQ(registry.consume("infer.propose"), FaultAction::kNone);
  EXPECT_EQ(registry.triggered("infer.propose"), 2);
  EXPECT_EQ(registry.consume("never.armed"), FaultAction::kNone);
}

TEST_F(Robustness, MalformedFaultSpecDisarmsLoudly) {
  FaultRegistry& registry = FaultRegistry::instance();
  EXPECT_FALSE(registry.configure("smt.solve=explode"));
  EXPECT_TRUE(registry.armed_sites().empty());
  EXPECT_EQ(registry.consume("smt.solve"), FaultAction::kNone);
  EXPECT_FALSE(registry.configure("smt.solve=fail:banana"));
  EXPECT_FALSE(registry.configure("=fail"));
}

TEST_F(Robustness, DelayFaultPerturbsTimingNotControlFlow) {
  ASSERT_TRUE(FaultRegistry::instance().configure("smt.solve=delay:1"));
  // The helper sleeps in place and reports kNone: delay sites never change
  // a caller's branch.
  EXPECT_EQ(support::faultpoint("smt.solve"), FaultAction::kNone);
  EXPECT_GE(FaultRegistry::instance().triggered("smt.solve"), 1);
}

// ---------------------------------------------------------------------------
// Per-stage degradation under injected faults.

TEST_F(Robustness, SolverFaultYieldsUnknownNeverUnsat) {
  ASSERT_TRUE(FaultRegistry::instance().configure("smt.solve=timeout"));
  smt::Solver solver;
  const smt::FormulaPtr tautology = smt::Formula::truth(true);
  const smt::SolveResult result = solver.solve(tautology);
  EXPECT_TRUE(result.unknown());
  EXPECT_FALSE(result.sat());
  EXPECT_NE(result.reason.find("fault"), std::string::npos);
  // implies() must stay conservative: an unknown query proves nothing.
  EXPECT_FALSE(solver.implies(tautology, tautology));
}

TEST_F(Robustness, SolverBudgetRefusalIsUnknown) {
  BudgetLimits limits;
  limits.max_smt_queries = 1;
  Budget budget(limits);
  smt::Solver solver;
  solver.set_budget(&budget);
  const smt::FormulaPtr tautology = smt::Formula::truth(true);
  EXPECT_FALSE(solver.solve(tautology).unknown());
  const smt::SolveResult refused = solver.solve(tautology);
  EXPECT_TRUE(refused.unknown());
  EXPECT_NE(refused.reason.find("budget"), std::string::npos);
}

TEST_F(Robustness, StepLimitIsAStructuredOutcome) {
  const minilang::Program program =
      minilang::parse_checked("fn main() { while (true) { let x = 1; } }");
  minilang::Interp interp(program);
  interp.set_fuel(100);
  try {
    (void)interp.call("main", {});
    FAIL() << "expected StepLimitExceeded";
  } catch (const minilang::StepLimitExceeded& limit) {
    EXPECT_EQ(limit.limit(), 100);
    EXPECT_NE(std::string(limit.what()).find("step limit"), std::string::npos);
  }
}

TEST_F(Robustness, ExplorerFaultSkipsPathsInsteadOfJudging) {
  const minilang::Program program = minilang::parse_checked(R"(
struct Account { frozen: bool; }
fn debit(a: Account) { print(a); }
@entry
fn pay(a: Account?) {
  if (a == null) { throw "missing"; }
  debit(a);
}
)");
  ASSERT_TRUE(FaultRegistry::instance().configure("explorer.path=fail"));
  const concolic::ExplorationReport report =
      concolic::explore(program, "debit(", *smt::parse_condition("!(a == null)"));
  EXPECT_EQ(report.verified + report.violated, 0);
  EXPECT_EQ(report.skipped, static_cast<int>(report.paths.size()));
  for (const concolic::ExploredPath& path : report.paths)
    EXPECT_EQ(path.verdict, concolic::ExploredVerdict::kSkipped);
}

TEST_F(Robustness, SummaryFaultDegradesScreenerWithoutCrashing) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  ASSERT_NE(ticket, nullptr);
  ASSERT_TRUE(FaultRegistry::instance().configure("summaries.fixpoint=fail"));
  CheckOptions options;
  options.use_summaries = true;
  const Pipeline pipeline(inference::MockLlmOptions{}, options);
  const PipelineResult degraded = pipeline.run(*ticket, ticket->patched_source);
  FaultRegistry::instance().clear();
  const PipelineResult healthy = pipeline.run(*ticket, ticket->patched_source);
  // Summaries only sharpen screening — losing them must not change verdicts.
  ASSERT_EQ(degraded.reports.size(), healthy.reports.size());
  for (std::size_t i = 0; i < healthy.reports.size(); ++i) {
    EXPECT_EQ(degraded.reports[i].verified, healthy.reports[i].verified);
    EXPECT_EQ(degraded.reports[i].violated, healthy.reports[i].violated);
    EXPECT_EQ(degraded.reports[i].passed(), healthy.reports[i].passed());
  }
}

TEST_F(Robustness, SerializeFaultEmitsDegradedStub) {
  ContractCheckReport report;
  report.contract_id = "case#0";
  report.verified = 2;
  ASSERT_TRUE(FaultRegistry::instance().configure("report.serialize=fail"));
  const support::Json stub = report.to_json();
  ASSERT_TRUE(stub.has("serialization_degraded"));
  EXPECT_TRUE(stub.at("serialization_degraded").as_bool());
  EXPECT_EQ(stub.at("contract_id").as_string(), "case#0");
  FaultRegistry::instance().clear();
  EXPECT_FALSE(report.to_json().has("serialization_degraded"));
}

// ---------------------------------------------------------------------------
// Inference hardening: retries, validation, typed errors.

TEST_F(Robustness, TransientBackendFailuresAreRetriedToSuccess) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  ASSERT_NE(ticket, nullptr);
  inference::MockLlmOptions options;
  options.transient_failures = 2;
  const inference::MockLlm llm(options);
  const inference::InferenceOutcome outcome = inference::infer_with_retry(
      [&] { return llm.infer(*ticket); }, ticket->case_id, fast_retries(3));
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.transient_errors, 2);
  EXPECT_EQ(outcome.proposal.case_id, ticket->case_id);
}

TEST_F(Robustness, MalformedResponsesFailValidationThenRecover) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  inference::MockLlmOptions options;
  options.malformed_responses = 1;
  const inference::MockLlm llm(options);
  const inference::InferenceOutcome outcome = inference::infer_with_retry(
      [&] { return llm.infer(*ticket); }, ticket->case_id, fast_retries(3));
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.validation_failures, 1);
}

TEST_F(Robustness, RetryBudgetExhaustionIsAStructuredFailure) {
  const inference::InferenceOutcome outcome = inference::infer_with_retry(
      [&]() -> inference::SemanticsProposal {
        throw inference::InferenceError("case-x", "connection reset", /*transient=*/true);
      },
      "case-x", fast_retries(2));
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.transient_errors, 2);
  EXPECT_NE(outcome.error.find("case-x"), std::string::npos);
}

TEST_F(Robustness, TerminalInferenceErrorStopsImmediately) {
  int calls = 0;
  const inference::InferenceOutcome outcome = inference::infer_with_retry(
      [&]() -> inference::SemanticsProposal {
        ++calls;
        throw inference::InferenceError("case-y", "corpus corrupted", /*transient=*/false);
      },
      "case-y", fast_retries(5));
  EXPECT_FALSE(outcome.succeeded);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(outcome.attempts, 1);
}

TEST_F(Robustness, ValidateProposalCatchesFreeFormOutput) {
  inference::SemanticsProposal proposal;
  proposal.case_id = "other-case";
  EXPECT_NE(inference::validate_proposal(proposal, "the-case"), "");
  proposal.case_id = "the-case";
  proposal.low_level.push_back({"desc", "", ""});
  EXPECT_NE(inference::validate_proposal(proposal, "the-case"), "");
  proposal.low_level[0].target_statement = "f(";
  proposal.low_level[0].condition_statement = "x > 0";
  EXPECT_EQ(inference::validate_proposal(proposal, "the-case"), "");
}

TEST_F(Robustness, PipelineSurvivesInferenceLossAsStructuredFailure) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  inference::MockLlmOptions options;
  options.transient_failures = 10;  // more than any retry budget
  Pipeline pipeline(options, CheckOptions{});
  pipeline.set_retry_policy(fast_retries(2));
  const PipelineResult result = pipeline.run(*ticket, ticket->patched_source);
  EXPECT_TRUE(result.inference_failed);
  EXPECT_FALSE(result.all_passed());
  EXPECT_TRUE(result.reports.empty());
  EXPECT_EQ(result.inference_attempts, 2);
  EXPECT_NE(result.inference_error.find(ticket->case_id), std::string::npos);
  EXPECT_TRUE(result.to_json().has("inference_failed"));
}

TEST_F(Robustness, InferFaultPointFiresThroughTheRegistry) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  ASSERT_TRUE(FaultRegistry::instance().configure("infer.propose=fail:1"));
  const inference::MockLlm llm;
  const inference::InferenceOutcome outcome = inference::infer_with_retry(
      [&] { return llm.infer(*ticket); }, ticket->case_id, fast_retries(3));
  EXPECT_TRUE(outcome.succeeded);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(FaultRegistry::instance().triggered("infer.propose"), 1);
}

// ---------------------------------------------------------------------------
// Budget-governed checking: inconclusive, never flipped.

TEST_F(Robustness, TightBudgetDegradesMonotonically) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const Pipeline reference;
  const PipelineResult ungoverned = pipeline_result(reference, *ticket);

  BudgetLimits limits;
  limits.max_smt_queries = 1;
  Budget budget(limits);
  CheckOptions governed_options;
  governed_options.budget = &budget;
  const Pipeline governed_pipeline(inference::MockLlmOptions{}, governed_options);
  const PipelineResult governed = pipeline_result(governed_pipeline, *ticket);

  EXPECT_TRUE(budget.exhausted());
  ASSERT_EQ(governed.reports.size(), ungoverned.reports.size());
  int inconclusive_total = 0;
  for (std::size_t i = 0; i < governed.reports.size(); ++i) {
    const ContractCheckReport& cut = governed.reports[i];
    const ContractCheckReport& full = ungoverned.reports[i];
    // Refused work may only *remove* settled verdicts, never add or flip.
    EXPECT_LE(cut.verified, full.verified);
    EXPECT_LE(cut.violated, full.violated);
    inconclusive_total += cut.inconclusive + cut.dynamic.inconclusive_hits +
                          cut.dynamic.degraded_runs;
    if (!cut.conclusive()) {
      EXPECT_TRUE(cut.budget_exhausted || cut.inconclusive > 0);
    }
  }
  EXPECT_GT(inconclusive_total, 0);
  EXPECT_FALSE(governed.all_passed());  // inconclusive is never a green light
}

// ---------------------------------------------------------------------------
// Checkpoint journal + resume.

TEST_F(Robustness, ReportJsonRoundTripsThroughTheJournalFormat) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const Pipeline pipeline;
  const PipelineResult result = pipeline_result(pipeline, *ticket);
  ASSERT_FALSE(result.reports.empty());
  for (const ContractCheckReport& original : result.reports) {
    const ContractCheckReport back = ContractCheckReport::from_json(original.to_json());
    EXPECT_EQ(back.contract_id, original.contract_id);
    EXPECT_EQ(back.verified, original.verified);
    EXPECT_EQ(back.violated, original.violated);
    EXPECT_EQ(back.unmappable, original.unmappable);
    EXPECT_EQ(back.inconclusive, original.inconclusive);
    EXPECT_EQ(back.sanity_ok, original.sanity_ok);
    EXPECT_EQ(back.passed(), original.passed());
    EXPECT_EQ(back.conclusive(), original.conclusive());
    EXPECT_EQ(back.dynamic.symbolic_violations, original.dynamic.symbolic_violations);
    ASSERT_EQ(back.paths.size(), original.paths.size());
    for (std::size_t i = 0; i < back.paths.size(); ++i) {
      EXPECT_EQ(back.paths[i].verdict, original.paths[i].verdict);
      EXPECT_EQ(back.paths[i].call_chain, original.paths[i].call_chain);
    }
  }
}

TEST_F(Robustness, JournalRejectsMismatchedFingerprint) {
  const std::string path = temp_path("fingerprint.jsonl");
  CheckJournal writer(path);
  ASSERT_TRUE(writer.begin(CheckJournal::fingerprint("inputs-a")));
  ContractCheckReport report;
  report.contract_id = "c#0";
  writer.record(report);
  CheckJournal wrong(path);
  EXPECT_FALSE(wrong.load(CheckJournal::fingerprint("inputs-b")));
  EXPECT_EQ(wrong.loaded_entries(), 0u);
  CheckJournal right(path);
  EXPECT_TRUE(right.load(CheckJournal::fingerprint("inputs-a")));
  EXPECT_EQ(right.loaded_entries(), 1u);
  EXPECT_NE(right.find("c#0"), nullptr);
  std::remove(path.c_str());
}

TEST_F(Robustness, JournalSurvivesTornTail) {
  const std::string path = temp_path("torn.jsonl");
  const std::string fingerprint = CheckJournal::fingerprint("inputs");
  {
    CheckJournal writer(path);
    ASSERT_TRUE(writer.begin(fingerprint));
    ContractCheckReport report;
    report.contract_id = "c#0";
    report.verified = 3;
    writer.record(report);
  }
  {
    // Simulate a crash mid-append: an unterminated, unparseable last line.
    std::ofstream torn(path, std::ios::app);
    torn << "{\"contract_id\":\"c#1\",\"veri";
  }
  CheckJournal reader(path);
  EXPECT_TRUE(reader.load(fingerprint));
  EXPECT_EQ(reader.loaded_entries(), 1u);
  ASSERT_NE(reader.find("c#0"), nullptr);
  EXPECT_EQ(reader.find("c#0")->verified, 3);
  EXPECT_EQ(reader.find("c#1"), nullptr);
  std::remove(path.c_str());
}

TEST_F(Robustness, PipelineResumeReplaysConclusiveEntries) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const std::string path = temp_path("pipeline_resume.jsonl");
  core::PipelineRunOptions journaling;
  journaling.journal_path = path;
  const Pipeline pipeline;
  const PipelineResult first = pipeline.run(*ticket, ticket->patched_source, journaling);
  ASSERT_FALSE(first.reports.empty());
  EXPECT_EQ(first.resumed_contracts, 0);

  core::PipelineRunOptions resuming = journaling;
  resuming.resume = true;
  const PipelineResult second = pipeline.run(*ticket, ticket->patched_source, resuming);
  EXPECT_EQ(second.resumed_contracts, static_cast<int>(first.reports.size()));
  ASSERT_EQ(second.reports.size(), first.reports.size());
  for (std::size_t i = 0; i < first.reports.size(); ++i) {
    EXPECT_EQ(second.reports[i].verified, first.reports[i].verified);
    EXPECT_EQ(second.reports[i].violated, first.reports[i].violated);
    EXPECT_EQ(second.reports[i].passed(), first.reports[i].passed());
  }
  std::remove(path.c_str());
}

TEST_F(Robustness, ResumeReChecksBudgetCutEntriesToCompletion) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const std::string path = temp_path("resume_recheck.jsonl");
  core::PipelineRunOptions journaling;
  journaling.journal_path = path;

  BudgetLimits limits;
  limits.max_smt_queries = 1;
  Budget budget(limits);
  CheckOptions governed_options;
  governed_options.budget = &budget;
  const Pipeline governed(inference::MockLlmOptions{}, governed_options);
  const PipelineResult cut = governed.run(*ticket, ticket->patched_source, journaling);
  int inconclusive = 0;
  for (const ContractCheckReport& report : cut.reports)
    if (!report.conclusive()) ++inconclusive;
  ASSERT_GT(inconclusive, 0);

  // Resume with an unlimited budget: the inconclusive entries get their
  // second chance and the final result matches a fresh ungoverned run.
  core::PipelineRunOptions resuming = journaling;
  resuming.resume = true;
  const Pipeline ungoverned;
  const PipelineResult settled = pipeline_result(ungoverned, *ticket, resuming);
  const PipelineResult fresh = pipeline_result(ungoverned, *ticket);
  EXPECT_EQ(settled.resumed_contracts,
            static_cast<int>(cut.reports.size()) - inconclusive);
  ASSERT_EQ(settled.reports.size(), fresh.reports.size());
  for (std::size_t i = 0; i < fresh.reports.size(); ++i) {
    EXPECT_EQ(settled.reports[i].verified, fresh.reports[i].verified);
    EXPECT_EQ(settled.reports[i].violated, fresh.reports[i].violated);
    EXPECT_TRUE(settled.reports[i].conclusive());
  }
  std::remove(path.c_str());
}

TEST_F(Robustness, GateResumeSkipsSettledContracts) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const Pipeline pipeline;
  const PipelineResult learned = pipeline_result(pipeline, *ticket);
  core::ContractStore store;
  store.add_all(learned.contracts);
  ASSERT_GT(store.size(), 0u);

  const std::string path = temp_path("gate_resume.jsonl");
  core::GateRunOptions journaling;
  journaling.journal_path = path;
  const core::CiGate gate;
  const core::GateDecision first =
      gate.evaluate(ticket->patched_source, store, journaling);
  EXPECT_EQ(first.resumed_contracts, 0);
  EXPECT_FALSE(first.needs_attention);

  core::GateRunOptions resuming = journaling;
  resuming.resume = true;
  const core::GateDecision second =
      gate.evaluate(ticket->patched_source, store, resuming);
  EXPECT_EQ(second.resumed_contracts, static_cast<int>(first.reports.size()));
  EXPECT_EQ(second.allowed, first.allowed);
  EXPECT_EQ(second.violations.size(), first.violations.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lisa
