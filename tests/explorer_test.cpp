// Tests for systematic path exploration (concolic driver synthesis loop).
#include <gtest/gtest.h>

#include "concolic/explorer.hpp"
#include "corpus/ticket.hpp"
#include "minilang/sema.hpp"
#include "smt/minilang_bridge.hpp"

namespace lisa::concolic {
namespace {

TEST(Explorer, ClassifiesGuardedUnguardedAndInfeasible) {
  const minilang::Program program = minilang::parse_checked(R"(
struct Account { frozen: bool; vip: bool; }
fn debit(a: Account) { print(a); }
@entry
fn pay(a: Account?) {
  if (a == null) { throw "missing"; }
  if (a.frozen) { throw "frozen"; }
  debit(a);
}
@entry
fn refund(a: Account?) {
  if (a == null) { throw "missing"; }
  debit(a);
}
@entry
fn dead_path(a: Account) {
  if (a.vip) {
    if (!(a.vip)) {
      debit(a);
    }
  }
}
)");
  const ExplorationReport report =
      explore(program, "debit(", *smt::parse_condition("!(a == null) && !(a.frozen)"));
  ASSERT_EQ(report.paths.size(), 3u);
  EXPECT_EQ(report.verified, 1);    // pay: guard confirmed by replay
  EXPECT_EQ(report.violated, 1);    // refund: missing check reproduced
  EXPECT_EQ(report.infeasible, 1);  // dead_path: vip && !vip
  EXPECT_EQ(report.human_needed, 0);

  for (const ExploredPath& path : report.paths) {
    if (path.call_chain.front() == "pay") {
      EXPECT_EQ(path.verdict, ExploredVerdict::kVerifiedByReplay) << path.detail;
    }
    if (path.call_chain.front() == "refund") {
      EXPECT_EQ(path.verdict, ExploredVerdict::kViolatedByReplay) << path.detail;
      EXPECT_NE(path.test_source.find("synth_witness_"), std::string::npos);
    }
    if (path.call_chain.front() == "dead_path") {
      EXPECT_EQ(path.verdict, ExploredVerdict::kInfeasible);
    }
  }
}

TEST(Explorer, ContainerMediatedStateNeedsHuman) {
  const minilang::Program program = minilang::parse_checked(R"(
struct Session { is_closing: bool; }
struct Server { sessions: map<string, Session>; }
fn act(s: Session) { print(s); }
@entry
fn handle(server: Server, id: int) {
  let s = get(server.sessions, str(id));
  if (s == null) { throw "expired"; }
  act(s);
}
)");
  const ExplorationReport report =
      explore(program, "act(", *smt::parse_condition("!(s == null) && !(s.is_closing)"));
  ASSERT_EQ(report.paths.size(), 1u);
  EXPECT_EQ(report.human_needed, 1);
  EXPECT_EQ(report.paths[0].verdict, ExploredVerdict::kNotSynthesizable);
}

TEST(Explorer, IntegerGuardsSolvedThroughPath) {
  const minilang::Program program = minilang::parse_checked(R"(
struct Blk { location_count: int; gen: int; }
fn serve(b: Blk) { print(b); }
@entry
fn read_block(b: Blk) {
  if (b.gen < 3) { throw "stale generation"; }
  if (b.location_count <= 0) { throw "retry"; }
  serve(b);
}
@entry
fn read_fast(b: Blk) {
  if (b.gen < 3) { throw "stale generation"; }
  serve(b);
}
)");
  const ExplorationReport report =
      explore(program, "serve(", *smt::parse_condition("b.location_count > 0"));
  ASSERT_EQ(report.paths.size(), 2u);
  EXPECT_EQ(report.verified, 1);
  EXPECT_EQ(report.violated, 1);
  // The synthesized drivers must satisfy gen >= 3 to get past the first
  // guard — the full-path constraint solving at work.
  for (const ExploredPath& path : report.paths)
    EXPECT_EQ(path.test_source.find("gen: 0"), std::string::npos) << path.test_source;
}

TEST(Explorer, VerdictNamesStable) {
  EXPECT_STREQ(explored_verdict_name(ExploredVerdict::kVerifiedByReplay),
               "verified-by-replay");
  EXPECT_STREQ(explored_verdict_name(ExploredVerdict::kViolatedByReplay),
               "violated-by-replay");
  EXPECT_STREQ(explored_verdict_name(ExploredVerdict::kInfeasible), "infeasible");
  EXPECT_STREQ(explored_verdict_name(ExploredVerdict::kNotSynthesizable), "needs-human");
  EXPECT_STREQ(explored_verdict_name(ExploredVerdict::kReplayMismatch), "replay-mismatch");
}

TEST(Explorer, CorpusDirectParamCaseFullyResolved) {
  // hbase-wal-roll: both entries take the region directly, so exploration
  // needs no human at all — it verifies the fixed path and reproduces the
  // latent one.
  const corpus::FailureTicket* ticket = corpus::Corpus::find("hbase-wal-roll-during-flush");
  ASSERT_NE(ticket, nullptr);
  const minilang::Program program = minilang::parse_checked(ticket->patched_source);
  const ExplorationReport report =
      explore(program, "roll_wal_now(", *smt::parse_condition("!(region.flushing)"));
  EXPECT_EQ(report.human_needed, 0);
  EXPECT_EQ(report.verified, 1);
  EXPECT_EQ(report.violated, 1);
}

}  // namespace
}  // namespace lisa::concolic
