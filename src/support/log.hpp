// Minimal leveled logger.
//
// LISA is a library first; logging defaults to warnings-and-above on stderr
// so that example binaries stay readable. The level is process-global and
// intended to be set once at startup; the LISA_LOG_LEVEL environment
// variable ("debug" | "info" | "warn" | "error" | "off"), read at first
// use, overrides the default without a code change.
//
// Each line carries a monotonic elapsed-ms prefix measured from the shared
// process epoch (support/stopwatch.hpp) — the same clock trace spans use —
// plus the sequential thread number the tracer stamps on spans, so stderr
// output is directly correlatable with exported traces:
//
//   [+     12.345ms] [t1] [WARN] contract zk-1208 fell through to concolic
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace lisa::support {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Sets the process-global minimum level that will be emitted.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses a LISA_LOG_LEVEL value ("warn", "ERROR", ...); nullopt on junk.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

/// Sequential number of the calling thread, assigned on first use: the main
/// thread (or whichever logs/traces first) is 1, the next is 2, and so on.
/// Shared by log lines and trace spans so `[t3]` on stderr is the same
/// thread as `"tid": 3` in an exported trace.
[[nodiscard]] std::uint32_t this_thread_number();

/// Formats one line exactly as log_line writes it (sans trailing newline):
/// "[+<elapsed>ms] [tN] [LEVEL] <message>". Exposed for tests.
[[nodiscard]] std::string render_log_line(LogLevel level, const std::string& message);

/// Emits one line to stderr if `level` passes the global threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename First, typename... Rest>
void append_all(std::ostringstream& out, const First& first, const Rest&... rest) {
  out << first;
  append_all(out, rest...);
}
}  // namespace detail

/// Streams all arguments into one log line: log(LogLevel::info, "x=", x).
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream out;
  detail::append_all(out, args...);
  log_line(level, out.str());
}

}  // namespace lisa::support
