
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minilang/ast.cpp" "src/minilang/CMakeFiles/lisa_minilang.dir/ast.cpp.o" "gcc" "src/minilang/CMakeFiles/lisa_minilang.dir/ast.cpp.o.d"
  "/root/repo/src/minilang/builtins.cpp" "src/minilang/CMakeFiles/lisa_minilang.dir/builtins.cpp.o" "gcc" "src/minilang/CMakeFiles/lisa_minilang.dir/builtins.cpp.o.d"
  "/root/repo/src/minilang/compiler.cpp" "src/minilang/CMakeFiles/lisa_minilang.dir/compiler.cpp.o" "gcc" "src/minilang/CMakeFiles/lisa_minilang.dir/compiler.cpp.o.d"
  "/root/repo/src/minilang/interp.cpp" "src/minilang/CMakeFiles/lisa_minilang.dir/interp.cpp.o" "gcc" "src/minilang/CMakeFiles/lisa_minilang.dir/interp.cpp.o.d"
  "/root/repo/src/minilang/lexer.cpp" "src/minilang/CMakeFiles/lisa_minilang.dir/lexer.cpp.o" "gcc" "src/minilang/CMakeFiles/lisa_minilang.dir/lexer.cpp.o.d"
  "/root/repo/src/minilang/parser.cpp" "src/minilang/CMakeFiles/lisa_minilang.dir/parser.cpp.o" "gcc" "src/minilang/CMakeFiles/lisa_minilang.dir/parser.cpp.o.d"
  "/root/repo/src/minilang/printer.cpp" "src/minilang/CMakeFiles/lisa_minilang.dir/printer.cpp.o" "gcc" "src/minilang/CMakeFiles/lisa_minilang.dir/printer.cpp.o.d"
  "/root/repo/src/minilang/sema.cpp" "src/minilang/CMakeFiles/lisa_minilang.dir/sema.cpp.o" "gcc" "src/minilang/CMakeFiles/lisa_minilang.dir/sema.cpp.o.d"
  "/root/repo/src/minilang/value.cpp" "src/minilang/CMakeFiles/lisa_minilang.dir/value.cpp.o" "gcc" "src/minilang/CMakeFiles/lisa_minilang.dir/value.cpp.o.d"
  "/root/repo/src/minilang/vm.cpp" "src/minilang/CMakeFiles/lisa_minilang.dir/vm.cpp.o" "gcc" "src/minilang/CMakeFiles/lisa_minilang.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lisa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
