#include "smt/smtlib.hpp"

#include <map>
#include <set>

namespace lisa::smt {

namespace {

/// SMT-LIB symbols cannot contain '.', '#', ':' — quote with pipes.
std::string symbol(const std::string& name) { return "|" + name + "|"; }

/// Whether a variable is used as Bool (boolean atom) or Int (comparison).
void collect_sorts(const FormulaPtr& f, std::map<std::string, bool>* is_int) {
  switch (f->kind) {
    case Formula::Kind::kAtom: {
      const Atom& atom = f->atom;
      if (atom.kind == Atom::Kind::kBoolVar) {
        is_int->emplace(atom.lhs, false);
      } else {
        (*is_int)[atom.lhs] = true;
        if (atom.kind == Atom::Kind::kCmpVar) (*is_int)[atom.rhs_var] = true;
      }
      return;
    }
    default:
      for (const FormulaPtr& child : f->children) collect_sorts(child, is_int);
  }
}

std::string render(const FormulaPtr& f) {
  switch (f->kind) {
    case Formula::Kind::kTrue: return "true";
    case Formula::Kind::kFalse: return "false";
    case Formula::Kind::kNot: return "(not " + render(f->children[0]) + ")";
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::string out = f->kind == Formula::Kind::kAnd ? "(and" : "(or";
      for (const FormulaPtr& child : f->children) out += " " + render(child);
      return out + ")";
    }
    case Formula::Kind::kAtom: {
      const Atom& atom = f->atom;
      if (atom.kind == Atom::Kind::kBoolVar) return symbol(atom.lhs);
      const std::string rhs = atom.kind == Atom::Kind::kCmpConst
                                  ? (atom.rhs_const < 0
                                         ? "(- " + std::to_string(-atom.rhs_const) + ")"
                                         : std::to_string(atom.rhs_const))
                                  : symbol(atom.rhs_var);
      const std::string lhs = symbol(atom.lhs);
      switch (atom.op) {
        case CmpOp::kEq: return "(= " + lhs + " " + rhs + ")";
        case CmpOp::kNe: return "(not (= " + lhs + " " + rhs + "))";
        case CmpOp::kLt: return "(< " + lhs + " " + rhs + ")";
        case CmpOp::kLe: return "(<= " + lhs + " " + rhs + ")";
        case CmpOp::kGt: return "(> " + lhs + " " + rhs + ")";
        case CmpOp::kGe: return "(>= " + lhs + " " + rhs + ")";
      }
      return "true";
    }
  }
  return "true";
}

std::string declarations(const FormulaPtr& f) {
  std::map<std::string, bool> is_int;
  collect_sorts(f, &is_int);
  std::string out;
  for (const auto& [name, as_int] : is_int)
    out += "(declare-const " + symbol(name) + (as_int ? " Int)\n" : " Bool)\n");
  return out;
}

}  // namespace

std::string to_smtlib(const FormulaPtr& f) {
  std::string out = "(set-logic QF_LIA)\n";
  out += declarations(f);
  out += "(assert " + render(f) + ")\n(check-sat)\n(get-model)\n";
  return out;
}

std::string complement_query_smtlib(const FormulaPtr& trace, const FormulaPtr& checker) {
  const FormulaPtr query = Formula::conj2(trace, Formula::negate(checker));
  std::string out = "; LISA complement check: sat => the trace violates the checker\n";
  out += to_smtlib(query);
  return out;
}

}  // namespace lisa::smt
