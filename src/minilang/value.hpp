// Runtime values for the MiniLang interpreter and concolic engine.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace lisa::minilang {

struct Object;
using ObjectPtr = std::shared_ptr<Object>;

/// A MiniLang runtime value. Reference types (objects, lists, maps) have
/// shared ownership so aliasing behaves like Java references — the semantics
/// the corpus programs were written against.
class Value {
 public:
  using ListPtr = std::shared_ptr<std::vector<Value>>;
  using MapPtr = std::shared_ptr<std::map<std::string, Value>>;

  Value() : data_(std::monostate{}) {}
  static Value null() { return Value(); }
  static Value of_int(std::int64_t v) { return Value(Data(v)); }
  static Value of_bool(bool v) { return Value(Data(v)); }
  static Value of_string(std::string v) { return Value(Data(std::move(v))); }
  static Value of_object(ObjectPtr v) { return Value(Data(std::move(v))); }
  static Value of_list(ListPtr v) { return Value(Data(std::move(v))); }
  static Value of_map(MapPtr v) { return Value(Data(std::move(v))); }
  static Value new_list() { return of_list(std::make_shared<std::vector<Value>>()); }
  static Value new_map() { return of_map(std::make_shared<std::map<std::string, Value>>()); }

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<ObjectPtr>(data_); }
  [[nodiscard]] bool is_list() const { return std::holds_alternative<ListPtr>(data_); }
  [[nodiscard]] bool is_map() const { return std::holds_alternative<MapPtr>(data_); }

  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(data_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(data_); }
  [[nodiscard]] const ObjectPtr& as_object() const { return std::get<ObjectPtr>(data_); }
  [[nodiscard]] const ListPtr& as_list() const { return std::get<ListPtr>(data_); }
  [[nodiscard]] const MapPtr& as_map() const { return std::get<MapPtr>(data_); }

  /// Structural equality for scalars; identity for reference types.
  [[nodiscard]] bool equals(const Value& other) const;

  /// Human-readable rendering for print()/logs/test failure messages.
  [[nodiscard]] std::string to_display() const;

 private:
  using Data =
      std::variant<std::monostate, std::int64_t, bool, std::string, ObjectPtr, ListPtr, MapPtr>;
  explicit Value(Data data) : data_(std::move(data)) {}
  Data data_;
};

/// A struct instance. `object_id` is a process-unique identity used by the
/// concolic engine to name symbolic field locations.
struct Object {
  std::string struct_name;
  std::unordered_map<std::string, Value> fields;
  std::uint64_t object_id = 0;
};

}  // namespace lisa::minilang
