file(REMOVE_RECURSE
  "CMakeFiles/lisa_corpus.dir/cassandra_cases.cpp.o"
  "CMakeFiles/lisa_corpus.dir/cassandra_cases.cpp.o.d"
  "CMakeFiles/lisa_corpus.dir/diff.cpp.o"
  "CMakeFiles/lisa_corpus.dir/diff.cpp.o.d"
  "CMakeFiles/lisa_corpus.dir/hbase_cases.cpp.o"
  "CMakeFiles/lisa_corpus.dir/hbase_cases.cpp.o.d"
  "CMakeFiles/lisa_corpus.dir/hdfs_cases.cpp.o"
  "CMakeFiles/lisa_corpus.dir/hdfs_cases.cpp.o.d"
  "CMakeFiles/lisa_corpus.dir/ticket.cpp.o"
  "CMakeFiles/lisa_corpus.dir/ticket.cpp.o.d"
  "CMakeFiles/lisa_corpus.dir/zookeeper_cases.cpp.o"
  "CMakeFiles/lisa_corpus.dir/zookeeper_cases.cpp.o.d"
  "liblisa_corpus.a"
  "liblisa_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
