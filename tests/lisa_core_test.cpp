// Tests for the LISA core: contract translation, the checker, the pipeline,
// and the CI gate.
#include <gtest/gtest.h>

#include "lisa/ci_gate.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"

namespace lisa::core {
namespace {

inference::SemanticsProposal sample_proposal() {
  inference::SemanticsProposal proposal;
  proposal.case_id = "sample";
  proposal.high_level_semantics = "high";
  proposal.low_level.push_back(
      {"rule", "create_ephemeral_node(", "!(s == null) && !(s.is_closing)"});
  return proposal;
}

TEST(Translate, ParsesConditionIntoFormula) {
  const TranslationResult result = translate(sample_proposal(), "zookeeper");
  ASSERT_EQ(result.contracts.size(), 1u);
  EXPECT_TRUE(result.rejected.empty());
  const SemanticContract& contract = result.contracts[0];
  EXPECT_EQ(contract.id, "sample#0");
  ASSERT_NE(contract.condition, nullptr);
  EXPECT_TRUE(contract.condition->variables().count("s.is_closing"));
}

TEST(Translate, RejectsOutOfFragmentConditions) {
  inference::SemanticsProposal proposal = sample_proposal();
  proposal.low_level.push_back({"bad", "x(", "len(items) > 0"});
  const TranslationResult result = translate(proposal, "zookeeper");
  EXPECT_EQ(result.contracts.size(), 1u);
  ASSERT_EQ(result.rejected.size(), 1u);
  EXPECT_NE(result.rejected[0].find("len(items)"), std::string::npos);
}

TEST(Contract, JsonRoundTripReparsesCondition) {
  const TranslationResult result = translate(sample_proposal(), "zookeeper");
  const SemanticContract back = SemanticContract::from_json(result.contracts[0].to_json());
  EXPECT_EQ(back.id, "sample#0");
  ASSERT_NE(back.condition, nullptr);
  EXPECT_TRUE(back.condition->variables().count("s#null"));
}

TEST(Checker, FlagsUnguardedPathOnPatchedZk) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const Pipeline pipeline;
  const PipelineResult result = pipeline.run(*ticket, ticket->patched_source);
  ASSERT_EQ(result.reports.size(), 1u);
  const ContractCheckReport& report = result.reports[0];
  EXPECT_EQ(report.target_statements, 2u);
  EXPECT_EQ(report.verified, 1);   // the fixed p_request_create path
  EXPECT_EQ(report.violated, 1);   // the batch_create path (future ZK-1496)
  EXPECT_TRUE(report.sanity_ok);
  EXPECT_FALSE(report.passed());
  EXPECT_GT(report.dynamic.symbolic_violations, 0);
}

TEST(Checker, BuggyVersionHasNoVerifiedPathForTheRule) {
  // On the pre-fix version, no path checks is_closing: the sanity check
  // (cross-validation against system behaviour) fails.
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  const TranslationResult translation = translate(proposal, ticket->system);
  ASSERT_EQ(translation.contracts.size(), 1u);
  const minilang::Program buggy = minilang::parse_checked(ticket->buggy_source);
  const ContractCheckReport report = Checker().check(buggy, translation.contracts[0]);
  EXPECT_EQ(report.verified, 0);
  EXPECT_FALSE(report.sanity_ok);
  EXPECT_EQ(report.violated, 2);
}

TEST(Checker, StructuralContractFindsLatentSerializer) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-2201-sync-serialize");
  const Pipeline pipeline;
  const PipelineResult result = pipeline.run(*ticket, ticket->patched_source);
  ASSERT_EQ(result.reports.size(), 1u);
  const ContractCheckReport& report = result.reports[0];
  ASSERT_EQ(report.structural_violations.size(), 1u);
  EXPECT_NE(report.structural_violations[0].find("serialize_acls"), std::string::npos);
  EXPECT_FALSE(report.passed());
}

TEST(Checker, UncoveredPathsReportedWithoutMatchingTests) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  const TranslationResult translation = translate(proposal, ticket->system);
  const minilang::Program program = minilang::parse_checked(ticket->patched_source);
  CheckOptions options;
  options.forced_tests = {"test_create_on_expired_session_rejected"};  // never reaches target
  const ContractCheckReport report =
      Checker().check(program, translation.contracts[0], options);
  EXPECT_EQ(report.dynamic.target_hits, 0);
  EXPECT_EQ(report.uncovered, static_cast<int>(report.paths.size()));
}

TEST(Checker, PrintsJsonReport) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-quota-bypass");
  const Pipeline pipeline;
  const PipelineResult result = pipeline.run(*ticket, ticket->patched_source);
  const support::Json json = result.to_json();
  EXPECT_TRUE(json.has("reports"));
  EXPECT_TRUE(json.has("timings"));
  EXPECT_FALSE(json.at("all_passed").as_bool());
  // Serialized report must parse back.
  EXPECT_NO_THROW(support::Json::parse(json.pretty()));
}

TEST(Pipeline, AllCorpusCasesDetectTheFutureRegression) {
  // The paper's core claim: enforcing the rule inferred from the FIRST
  // incident flags the path that caused the SECOND incident, for every case.
  const Pipeline pipeline;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (ticket.kind == corpus::SemanticsKind::kInterleavingSensitive) {
      // The concurrency-extension patches fix the bug outright (no latent
      // second path): the contract must flag the buggy version and prove
      // the patched one safe.
      const PipelineResult buggy = pipeline.run(ticket, ticket.buggy_source);
      EXPECT_GT(buggy.total_violations(), 0) << ticket.case_id;
      EXPECT_FALSE(buggy.all_passed()) << ticket.case_id;
      const PipelineResult patched = pipeline.run(ticket, ticket.patched_source);
      EXPECT_TRUE(patched.all_passed()) << ticket.case_id;
      continue;
    }
    const PipelineResult result = pipeline.run(ticket, ticket.patched_source);
    EXPECT_GT(result.total_violations(), 0) << ticket.case_id;
    EXPECT_FALSE(result.all_passed()) << ticket.case_id;
    for (const ContractCheckReport& report : result.reports)
      EXPECT_TRUE(report.sanity_ok) << ticket.case_id << " " << report.contract_id;
  }
}

TEST(CiGate, BlocksCommitViolatingStoredContract) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  TranslationResult translation = translate(proposal, ticket->system);
  ContractStore store;
  store.add_all(std::move(translation.contracts));
  ASSERT_EQ(store.size(), 1u);

  const CiGate gate;
  // The patched version still contains the unguarded batch path → blocked.
  const GateDecision patched = gate.evaluate(ticket->patched_source, store);
  EXPECT_FALSE(patched.allowed);
  ASSERT_FALSE(patched.violations.empty());
  EXPECT_NE(patched.violations[0].find("create_ephemeral_node("), std::string::npos);
}

TEST(CiGate, AllowsFullyGuardedCommit) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-1208-ephemeral-create");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  TranslationResult translation = translate(proposal, ticket->system);
  ContractStore store;
  store.add_all(std::move(translation.contracts));

  // Guard the batch path too (what the ZK-1496 fix eventually did).
  std::string guarded = ticket->patched_source;
  const std::string anchor =
      "  let i = 0;\n  while (i < len(paths)) {\n    create_ephemeral_node(";
  const std::size_t pos = guarded.find(anchor);
  ASSERT_NE(pos, std::string::npos);
  guarded.insert(pos, "  if (s.is_closing) {\n    throw \"SessionClosingException\";\n  }\n");

  const GateDecision decision = CiGate().evaluate(guarded, store);
  EXPECT_TRUE(decision.allowed) << (decision.violations.empty() ? "" : decision.violations[0]);
}

TEST(CiGate, BlocksNonBuildingCommit) {
  ContractStore store;
  const GateDecision decision = CiGate().evaluate("fn f( {", store);
  EXPECT_FALSE(decision.allowed);
  EXPECT_NE(decision.violations[0].find("does not build"), std::string::npos);
}

TEST(CiGate, SkipsContractsWithoutTargetsInCommit) {
  const corpus::FailureTicket* zk = corpus::Corpus::find("zk-1208-ephemeral-create");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*zk);
  TranslationResult translation = translate(proposal, zk->system);
  ContractStore store;
  store.add_all(std::move(translation.contracts));
  // An unrelated codebase without create_ephemeral_node is not affected.
  const GateDecision decision = CiGate().evaluate("fn unrelated() { print(1); }", store);
  EXPECT_TRUE(decision.allowed);
  EXPECT_TRUE(decision.reports.empty());
}

TEST(ContractStore, JsonRoundTrip) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("hbase-27671-snapshot-ttl");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  TranslationResult translation = translate(proposal, ticket->system);
  ContractStore store;
  store.add_all(std::move(translation.contracts));
  const ContractStore back = ContractStore::from_json(store.to_json());
  ASSERT_EQ(back.size(), store.size());
  EXPECT_EQ(back.all()[0].target_fragment, "serve_snapshot(");
  EXPECT_NE(back.all()[0].condition, nullptr);
}

TEST(Pipeline, TimingsArePopulated) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("cass-counter-bootstrap");
  const PipelineResult result = Pipeline().run(*ticket, ticket->patched_source);
  EXPECT_GT(result.timings.total_ms, 0.0);
  EXPECT_GE(result.timings.check_ms, 0.0);
}

}  // namespace
}  // namespace lisa::core
