// Generic forward dataflow over staticcheck CFGs.
//
// An Analysis is a lattice instance plugged into the worklist fixpoint:
//
//   struct Analysis {
//     using State = ...;                 // one abstract state (copyable)
//     State boundary(const Cfg&);        // state at function entry
//     bool  join(State& into, const State& from);   // into ⊔= from; changed?
//     void  transfer(const CfgNode&, State&);       // flow through a node
//     void  refine(const minilang::Expr& guard, bool taken, State&);
//     void  edge_effect(const CfgEdge&, State&);    // edge side effects
//                                        // (e.g. monitor unwinding on
//                                        // exception edges); usually a no-op
//     void  widen(State& at_loop_head);  // optional-effect hook; called when
//                                        // a loop head is revisited "often"
//   };
//
// The engine iterates a worklist in reverse post-order until no state
// changes. Finite-height lattices terminate on their own; infinite-height
// ones (intervals) rely on `widen`, which the engine calls at loop heads
// after kWidenThreshold visits. States are tracked at node *entry*; the
// state after a node is transfer(node, in-state).
#pragma once

#include <deque>
#include <vector>

#include "staticcheck/cfg.hpp"

namespace lisa::staticcheck {

inline constexpr int kWidenThreshold = 3;
/// Hard safety net: no sane analysis on corpus-sized functions needs more
/// visits; hitting this means a lattice's join is not monotone.
inline constexpr int kMaxVisitsPerNode = 1000;

template <typename Analysis>
struct DataflowResult {
  /// State at the entry of each node, indexed by node id. States for
  /// unreachable nodes stay default-constructed (bottom by convention).
  std::vector<typename Analysis::State> in;
  /// True for nodes the fixpoint actually reached.
  std::vector<bool> reached;
  int iterations = 0;  // total node visits (test/bench observability)
};

template <typename Analysis>
DataflowResult<Analysis> run_forward(const Cfg& cfg, Analysis& analysis) {
  using State = typename Analysis::State;
  const std::size_t n = cfg.nodes().size();
  DataflowResult<Analysis> result;
  result.in.resize(n);
  result.reached.assign(n, false);

  // Priority = reverse post-order index, so joins see predecessors first.
  std::vector<int> priority(n, 0);
  {
    const std::vector<int> rpo = cfg.reverse_post_order();
    for (std::size_t i = 0; i < rpo.size(); ++i)
      priority[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
  }

  std::vector<int> visits(n, 0);
  std::vector<bool> queued(n, false);
  std::deque<int> worklist;
  const auto enqueue = [&](int id) {
    if (queued[static_cast<std::size_t>(id)]) return;
    queued[static_cast<std::size_t>(id)] = true;
    worklist.push_back(id);
  };

  result.in[static_cast<std::size_t>(cfg.entry())] = analysis.boundary(cfg);
  result.reached[static_cast<std::size_t>(cfg.entry())] = true;
  enqueue(cfg.entry());

  while (!worklist.empty()) {
    // Pick the queued node earliest in RPO for near-optimal propagation.
    auto best = worklist.begin();
    for (auto it = worklist.begin(); it != worklist.end(); ++it)
      if (priority[static_cast<std::size_t>(*it)] < priority[static_cast<std::size_t>(*best)])
        best = it;
    const int id = *best;
    worklist.erase(best);
    queued[static_cast<std::size_t>(id)] = false;

    ++result.iterations;
    if (++visits[static_cast<std::size_t>(id)] > kMaxVisitsPerNode) break;

    const CfgNode& node = cfg.node(id);
    State out = result.in[static_cast<std::size_t>(id)];
    analysis.transfer(node, out);

    for (const CfgEdge& edge : node.succs) {
      State flowed = out;
      analysis.edge_effect(edge, flowed);
      if (edge.guard != nullptr && !edge.suppress_refine)
        analysis.refine(*edge.guard, edge.taken, flowed);
      const std::size_t to = static_cast<std::size_t>(edge.to);
      bool changed;
      if (!result.reached[to]) {
        result.in[to] = std::move(flowed);
        result.reached[to] = true;
        changed = true;
      } else {
        changed = analysis.join(result.in[to], flowed);
      }
      if (changed && cfg.node(edge.to).loop_head &&
          visits[to] >= kWidenThreshold)
        analysis.widen(result.in[to]);
      if (changed) enqueue(edge.to);
    }
  }
  return result;
}

}  // namespace lisa::staticcheck
