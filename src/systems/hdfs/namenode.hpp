// Mini-HDFS: an active namenode, an observer namenode fed by block reports
// over the message bus, and a client read path.
//
// The HDFS-13924/16732/17768 incident class replays here: when block reports
// to the observer are delayed, observer reads return blocks without
// locations. With `check_locations` enabled (the fix), such reads redirect to
// the active namenode; with it disabled, clients receive empty location
// lists and fail.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "systems/sim/network.hpp"

namespace lisa::systems::hdfs {

struct BlockInfo {
  std::int64_t block_id = 0;
  std::vector<std::string> locations;  // datanode names
};

struct HdfsStats {
  std::uint64_t reads_served = 0;
  std::uint64_t reads_redirected = 0;   // stale observer → active
  std::uint64_t empty_location_reads = 0;  // the incident symptom
  std::uint64_t block_reports_applied = 0;
};

/// The active namenode: source of truth for block → location mappings.
class ActiveNameNode {
 public:
  /// Adds a file whose single block lives on `locations`.
  void add_file(const std::string& path, std::int64_t block_id,
                std::vector<std::string> locations);

  [[nodiscard]] std::optional<BlockInfo> get_block(const std::string& path) const;
  [[nodiscard]] const std::map<std::string, BlockInfo>& files() const { return files_; }

 private:
  std::map<std::string, BlockInfo> files_;
};

/// The observer: serves reads from its own (possibly stale) replica of the
/// block map, updated by block-report messages.
class ObserverNameNode {
 public:
  ObserverNameNode(EventLoop& loop, MessageBus& bus, std::string name);

  /// Active pushes a block report; it arrives after the bus delay plus
  /// `extra_delay_ms` (models a delayed block report).
  void receive_report_later(const ActiveNameNode& active, const std::string& path,
                            std::int64_t extra_delay_ms);

  /// Observer-side read. With `check_locations`, blocks without locations
  /// raise a redirect (returns nullopt and bumps reads_redirected) instead of
  /// being returned empty.
  std::optional<BlockInfo> read(const std::string& path, bool check_locations);

  /// Batched listing — the path HDFS-17768 found unprotected. `check_locations`
  /// mirrors whether the fix covers this path.
  std::vector<BlockInfo> batched_listing(const std::vector<std::string>& paths,
                                         bool check_locations);

  [[nodiscard]] const HdfsStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t known_blocks() const { return replica_.size(); }

 private:
  EventLoop& loop_;
  MessageBus& bus_;
  std::string name_;
  std::map<std::string, BlockInfo> replica_;
  HdfsStats stats_;
};

}  // namespace lisa::systems::hdfs
