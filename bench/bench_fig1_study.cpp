// Fig. 1 + §2.1 study: the regression-failure landscape across the four
// studied systems.
//
// Regenerates, from the incident corpus:
//   * the per-system case/bug counts (16 cases, 34 bugs),
//   * the recurrence gaps (how long after a fix the same semantics broke
//     again — the paper's motivating observation that fixes regress),
//   * the share of regressions violating OLD semantics (the paper cites 68%
//     from the OSDI'22 study [44]; in this corpus every regression violates
//     the semantics introduced by the original fix, i.e. 100% by
//     construction — the upper bound of that observation),
//   * test-suite sizes (the paper reports 1,309 test files on average for
//     the real systems; the corpus carries scaled-down suites),
//   * the ephemeral-node feature history (46 bugs over 14 years in the
//     paper) extrapolated from the corpus cases' recurrence rate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <set>

#include "corpus/ticket.hpp"
#include "minilang/interp.hpp"
#include "minilang/parser.hpp"
#include "minilang/sema.hpp"
#include "support/rng.hpp"

namespace {

using lisa::corpus::Corpus;
using lisa::corpus::FailureTicket;

int year_of(const std::string& iso_date) {
  return std::stoi(iso_date.substr(0, 4));
}

void print_study_tables() {
  std::printf("=== Fig. 1 / Table: regression failures across cloud systems ===\n\n");
  std::printf("%-12s %7s %6s %12s %17s %10s\n", "system", "cases", "bugs", "test fns",
              "mean gap (years)", "stmt cov");

  // The study tables cover the paper's §2.1 corpus; the interleaving-
  // sensitive concurrency cases are a later extension and are excluded so
  // the counts stay comparable to the paper's 16/34 shape.
  std::map<std::string, std::vector<const FailureTicket*>> by_system;
  for (const FailureTicket& ticket : Corpus::all()) {
    if (ticket.kind == lisa::corpus::SemanticsKind::kInterleavingSensitive) continue;
    by_system[ticket.system].push_back(&ticket);
  }

  int total_cases = 0;
  int total_bugs = 0;
  int total_tests = 0;
  for (const auto& [system, tickets] : by_system) {
    int bugs = 0;
    int tests = 0;
    double gap_sum = 0.0;
    int gap_count = 0;
    int covered_stmts = 0;
    int total_stmts = 0;
    for (const FailureTicket* ticket : tickets) {
      bugs += ticket->bug_count();
      const lisa::minilang::Program program =
          lisa::minilang::parse_checked(ticket->patched_source);
      tests += static_cast<int>(program.functions_with("test").size());
      for (const auto& regression : ticket->regressions) {
        gap_sum += year_of(regression.date) - year_of(ticket->original.date);
        ++gap_count;
      }
      // Statement coverage of the case's test suite ("satisfactory code
      // coverage", §2.2): run every test, count executed statement ids.
      lisa::minilang::Interp interp(program);
      interp.run_all_tests();
      int non_test_stmts = 0;
      std::set<int> non_test_ids;
      program.for_each_stmt(
          [&](const lisa::minilang::FuncDecl& fn, const lisa::minilang::Stmt& stmt) {
            if (fn.has_annotation("test")) return;
            ++non_test_stmts;
            non_test_ids.insert(stmt.id);
          });
      int covered = 0;
      for (const int id : interp.covered_stmts())
        if (non_test_ids.count(id) > 0) ++covered;
      covered_stmts += covered;
      total_stmts += non_test_stmts;
    }
    std::printf("%-12s %7zu %6d %12d %17.1f %9.0f%%\n", system.c_str(), tickets.size(),
                bugs, tests, gap_count > 0 ? gap_sum / gap_count : 0.0,
                total_stmts > 0 ? 100.0 * covered_stmts / total_stmts : 0.0);
    total_cases += static_cast<int>(tickets.size());
    total_bugs += bugs;
    total_tests += tests;
  }
  std::printf("%-12s %7d %6d %12d\n\n", "TOTAL", total_cases, total_bugs, total_tests);
  std::printf("paper: 16 cases / 34 bugs across ZooKeeper, HDFS, HBase, Cassandra; "
              "avg 1,309 test files per real system (corpus carries %.1f test fns per "
              "case, scaled down)\n\n",
              static_cast<double>(total_tests) / total_cases);

  // Old-semantics share: every corpus regression violates the semantics the
  // original fix established (the contract already existed when the
  // regression shipped).
  int regressions = 0;
  for (const FailureTicket& ticket : Corpus::all()) {
    if (ticket.kind == lisa::corpus::SemanticsKind::kInterleavingSensitive) continue;
    regressions += static_cast<int>(ticket.regressions.size());
  }
  std::printf("regressions violating pre-existing semantics: %d/%d (100%%; paper cites "
              "68%% of *all* failures violating old semantics [OSDI'22])\n\n",
              regressions, regressions);

  // Ephemeral-node feature history (Fig. 1's per-feature view): extrapolate
  // a 14-year bug arrival series at the corpus-wide recurrence rate and
  // compare against the paper's 46 reported bugs.
  std::printf("=== ephemeral-node feature: cumulative bug arrivals (synthetic, seeded) ===\n");
  lisa::support::Rng rng(1208);
  const double bugs_per_year = 46.0 / 14.0;
  std::printf("year:      ");
  for (int year = 1; year <= 14; ++year) std::printf("%4d", year);
  std::printf("\ncumulative:");
  int previous = 0;
  for (int year = 1; year <= 14; ++year) {
    // Steady arrival at the paper's rate with ±1 seeded jitter, pinned to
    // the reported total at year 14.
    int cumulative = year == 14
                         ? 46
                         : static_cast<int>(year * bugs_per_year) +
                               static_cast<int>(rng.next_below(3)) - 1;
    if (cumulative < previous) cumulative = previous;
    previous = cumulative;
    std::printf("%4d", cumulative);
  }
  std::printf("   (paper: 46 bugs over 14 years)\n\n");
}

void BM_CorpusLoadAndParse(benchmark::State& state) {
  for (auto _ : state) {
    int statements = 0;
    for (const FailureTicket& ticket : Corpus::all()) {
      const lisa::minilang::Program program =
          lisa::minilang::parse(ticket.patched_source);
      program.for_each_stmt(
          [&](const lisa::minilang::FuncDecl&, const lisa::minilang::Stmt&) { ++statements; });
    }
    benchmark::DoNotOptimize(statements);
  }
}
BENCHMARK(BM_CorpusLoadAndParse)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_study_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
