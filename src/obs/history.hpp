// Longitudinal gate observability: the run-history store and drift rules.
//
// Every artifact PR 4–6 added — spans, metrics, the provenance ledger — is
// scoped to ONE run; the gate itself had no memory. The paper's thesis is
// that systems regress because nobody watches the watchers over time, so
// this module gives the gate run-over-run memory: an append-only JSONL file
// (`RunHistory`) to which `lisa check`/`lisa gate`/`bench_snapshot.sh`
// append one `RunRecord` per run, and a set of baseline-window drift rules
// (`detect_drift`) that compare the newest record against the median of the
// last N and turn anomalies into structured findings the CI gate can fail
// on — with a narrated cause, never silently.
//
// Format (journal-compatible with lisa/journal.hpp and obs/provenance.hpp):
//
//   {"fingerprint":"","journal":"lisa-history","version":1}
//   {<RunRecord::to_json()>}
//   ...
//
// The header fingerprint is empty by design: unlike the per-run journal and
// ledger, one history file spans MANY inputs — each record carries its own
// input fingerprint instead, and drift rules use those to tell "the code
// changed" (verdict flips expected) from "nothing changed yet the verdict
// flipped" (a flake).
//
// Discipline (mirrors obs/provenance.hpp):
//   * an empty history path is the zero-cost null path — producers that
//     pass no path emit byte-identical pre-PR output;
//   * appends are line-buffered and flushed per record, so a crashed run
//     loses at most its own (torn, skipped-on-load) line;
//   * all serialization is byte-stable: sorted keys (support::Json objects
//     are std::map), sorted contract ids, no wall-clock fields except the
//     metrics the drift rules exist to watch.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace lisa::obs {

// ---------------------------------------------------------------------------
// Run records
// ---------------------------------------------------------------------------

/// One contract's longitudinal identity inside a run record: enough to
/// detect a verdict flip (and attribute it) without replaying the ledger.
struct ContractOutcome {
  std::string verdict;           // "passed" | "violated" | "inconclusive"
  bool passed = true;
  bool conclusive = true;
  /// fnv1a over ContractCheckReport::verdict_signature() — two runs decided
  /// the contract identically iff the digests match.
  std::string signature_digest;
  /// Slice fingerprint of the contract's verdict cone (empty when not
  /// computed). Equal slice fingerprints + different signature digests on
  /// the same inputs is the definition of a flake.
  std::string slice_fp;
  /// SMT queries issued while deciding this contract (0 when no ledger
  /// captured the run).
  std::int64_t smt_queries = 0;
};

/// One appended run: who ran (kind/label), against what (input fingerprint),
/// what was decided (per-contract outcomes), and what it cost (metrics).
struct RunRecord {
  std::string kind;               // "check" | "gate" | "bench"
  /// Timeline key: records with the same (kind, label) form one baseline
  /// series. The gate uses a fingerprint of the contract-store ids so the
  /// series survives source edits; `lisa check` uses the case id.
  std::string label;
  /// fnv1a over the run's identifying inputs (source + contract ids) — the
  /// same inputs string the checkpoint journal and ledger bind to.
  std::string input_fingerprint;
  std::map<std::string, ContractOutcome> contracts;
  /// Numeric observations the drift rules and `lisa trends` watch: stage
  /// timings (`*_ms`), settled fractions, SMT/path counts, budget spend.
  std::map<std::string, double> metrics;
  /// Free-form provenance (git sha/branch/dirty from bench_snapshot.sh).
  std::map<std::string, std::string> meta;
  /// Order-insensitive fnv1a over the sorted per-query digests of every SMT
  /// query issued this run ("" when no ledger captured them): equal digests
  /// mean the solver saw the same queries.
  std::string smt_digest;

  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static RunRecord from_json(const support::Json& json);
};

// ---------------------------------------------------------------------------
// History store
// ---------------------------------------------------------------------------

/// Append-only JSONL store of RunRecords. Load tolerates a missing file
/// (fresh history) and a torn trailing line (crash mid-append), same as the
/// checkpoint journal.
class RunHistory {
 public:
  explicit RunHistory(std::string path) : path_(std::move(path)) {}

  /// Loads existing records. Returns true when the file exists and its
  /// header names this kind/version (records after a torn line are
  /// skipped); false when the file is absent (not an error — the first
  /// append creates it) or is some other journal kind.
  [[nodiscard]] bool load();

  /// Appends one record, writing the header first when the file does not
  /// exist or is empty. Returns false on I/O failure. The in-memory record
  /// list is extended on success, so load-append-detect sequences see a
  /// consistent view.
  bool append(const RunRecord& record);

  [[nodiscard]] const std::vector<RunRecord>& records() const { return records_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Records of one timeline, oldest first. Empty kind or label matches any.
  [[nodiscard]] std::vector<const RunRecord*> matching(const std::string& kind,
                                                       const std::string& label) const;

  static constexpr const char* kHistoryKind = "lisa-history";
  static constexpr std::int64_t kHistoryVersion = 1;

 private:
  std::string path_;
  std::vector<RunRecord> records_;
};

// ---------------------------------------------------------------------------
// Drift detection
// ---------------------------------------------------------------------------

/// Baseline-window thresholds. The defaults are deliberately loose — a CI
/// box is noisy, and a drift rule that cries wolf gets disabled — but every
/// rule can be tightened per gate.
struct DriftOptions {
  /// Median-of-last-N baseline window.
  int window = 5;
  /// A watched latency metric regresses when it exceeds `latency_factor` ×
  /// the baseline median AND the absolute increase exceeds
  /// `min_latency_ms` (absolute floor so micro-runs don't false-positive).
  double latency_factor = 3.0;
  double min_latency_ms = 25.0;
  /// SMT query count regresses beyond `smt_factor` × median and at least
  /// `min_smt_queries` extra queries.
  double smt_factor = 2.0;
  double min_smt_queries = 16.0;
  /// Settled fraction (screener effectiveness) may drop at most this much
  /// below the baseline median before the gate complains.
  double settled_drop = 0.05;
  /// Interleaving-conclusive fraction (schedule-explored contracts the
  /// explorer drained within its bound) may drop at most this much below
  /// the baseline median — a drop means the schedule workload outgrew
  /// --max-schedules and inconclusives are creeping in.
  double conclusive_drop = 0.05;
  /// When false, findings are reported but `fails_gate` is never set —
  /// observe-only mode for seeding a fresh baseline.
  bool fail_gate = true;
};

/// One detected anomaly, with the narrated cause the gate surfaces.
struct DriftFinding {
  /// "verdict-flip" | "settled-drop" | "latency-regression" | "smt-regression"
  std::string kind;
  /// Contract id (verdict-flip) or metric name (the rest).
  std::string subject;
  /// Narrated cause: what was expected, what was observed, and why it
  /// matters. This is the text a blocked commit shows the developer.
  std::string cause;
  double baseline = 0.0;
  double observed = 0.0;
  bool fails_gate = false;

  [[nodiscard]] support::Json to_json() const;
};

/// Median of `values`; 0 when empty. Even-sized inputs take the lower
/// middle (conservative for regression thresholds). Exposed for tests.
[[nodiscard]] double drift_median(std::vector<double> values);

/// Compares `current` against the trailing `options.window` records of
/// `baseline` (oldest first — the gate passes RunHistory::matching output).
/// Rules:
///   * verdict-flip: a contract whose slice fingerprint matches the most
///     recent baseline record with the SAME input fingerprint, yet whose
///     verdict signature digest differs — the gate changed its mind about
///     unchanged code: a flake, the worst kind of gate rot;
///   * settled-drop: current settled_fraction fell more than
///     `settled_drop` below the baseline median;
///   * interleaving-conclusive-drop: current interleaving_conclusive_fraction
///     fell more than `conclusive_drop` below the baseline median;
///   * latency-regression: a `*_ms` metric exceeded the factor and floor;
///   * smt-regression: smt_queries exceeded the factor and floor.
/// Findings are sorted (kind, then subject) so the report is deterministic.
/// An empty baseline yields no findings — the first run IS the baseline.
[[nodiscard]] std::vector<DriftFinding> detect_drift(
    const std::vector<const RunRecord*>& baseline, const RunRecord& current,
    const DriftOptions& options = {});

}  // namespace lisa::obs
