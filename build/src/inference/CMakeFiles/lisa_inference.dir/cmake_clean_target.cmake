file(REMOVE_RECURSE
  "liblisa_inference.a"
)
