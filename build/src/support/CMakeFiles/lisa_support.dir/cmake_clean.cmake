file(REMOVE_RECURSE
  "CMakeFiles/lisa_support.dir/json.cpp.o"
  "CMakeFiles/lisa_support.dir/json.cpp.o.d"
  "CMakeFiles/lisa_support.dir/log.cpp.o"
  "CMakeFiles/lisa_support.dir/log.cpp.o.d"
  "CMakeFiles/lisa_support.dir/strings.cpp.o"
  "CMakeFiles/lisa_support.dir/strings.cpp.o.d"
  "liblisa_support.a"
  "liblisa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
