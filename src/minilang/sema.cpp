#include "minilang/sema.hpp"

#include <unordered_set>

#include "minilang/interp.hpp"
#include "minilang/parser.hpp"

namespace lisa::minilang {
namespace {

const std::unordered_set<std::string>& known_builtins() {
  static const std::unordered_set<std::string> names = {
      "print", "log",   "len",  "list_new", "map_new",       "push",   "put",
      "get",   "has",   "del",  "keys",     "contains",      "str",    "min",
      "max",   "abs",   "assert", "now",    "advance_clock", "wait",   "notify",
      "notify_all", "join_all",
  };
  return names;
}

class Checker {
 public:
  explicit Checker(const Program& program) : program_(program) {}

  std::vector<Diagnostic> run() {
    check_structs();
    for (const FuncDecl& fn : program_.functions) check_function(fn);
    return std::move(diags_);
  }

 private:
  void report(SourceLoc loc, std::string message) {
    diags_.push_back(Diagnostic{loc, std::move(message), current_function_});
  }

  void check_type(const TypePtr& type, SourceLoc loc) {
    if (!type) return;
    switch (type->kind) {
      case Type::Kind::kStruct:
        if (program_.find_struct(type->struct_name) == nullptr)
          report(loc, "unknown struct type: " + type->struct_name);
        return;
      case Type::Kind::kList:
        check_type(type->elem, loc);
        return;
      case Type::Kind::kMap:
        check_type(type->key, loc);
        check_type(type->elem, loc);
        return;
      default:
        return;
    }
  }

  void check_structs() {
    std::unordered_set<std::string> seen;
    for (const StructDecl& decl : program_.structs) {
      if (!seen.insert(decl.name).second)
        report(decl.loc, "duplicate struct: " + decl.name);
      std::unordered_set<std::string> fields;
      for (const FieldDecl& field : decl.fields) {
        if (!fields.insert(field.name).second)
          report(decl.loc, "duplicate field " + field.name + " in struct " + decl.name);
        check_type(field.type, decl.loc);
      }
    }
  }

  void check_function(const FuncDecl& fn) {
    current_function_ = fn.name;
    scopes_.clear();
    scopes_.emplace_back();
    for (const Param& param : fn.params) {
      if (!scopes_.back().insert(param.name).second)
        report(fn.loc, "duplicate parameter " + param.name + " in " + fn.name);
      check_type(param.type, fn.loc);
    }
    check_type(fn.return_type, fn.loc);
    check_block(fn.body);
    current_function_.clear();
  }

  void check_block(const std::vector<StmtPtr>& stmts) {
    scopes_.emplace_back();
    for (const StmtPtr& stmt : stmts) check_stmt(*stmt);
    scopes_.pop_back();
  }

  [[nodiscard]] bool declared(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
      if (it->count(name) > 0) return true;
    return false;
  }

  void check_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kLet:
        check_type(stmt.declared_type, stmt.loc);
        check_expr(*stmt.expr);
        scopes_.back().insert(stmt.name);
        return;
      case Stmt::Kind::kAssign:
        check_expr(*stmt.expr);
        check_expr(*stmt.expr2);
        return;
      case Stmt::Kind::kIf:
        check_expr(*stmt.expr);
        check_block(stmt.body);
        check_block(stmt.else_body);
        return;
      case Stmt::Kind::kWhile:
      case Stmt::Kind::kSync:
        check_expr(*stmt.expr);
        check_block(stmt.body);
        return;
      case Stmt::Kind::kReturn:
        if (stmt.expr) check_expr(*stmt.expr);
        return;
      case Stmt::Kind::kThrow:
      case Stmt::Kind::kExpr:
        check_expr(*stmt.expr);
        return;
      case Stmt::Kind::kSpawn:
        // The parser guarantees expr is a call; the thread root must be a
        // declared function (builtins have no body to schedule).
        if (program_.find_function(stmt.expr->text) == nullptr)
          report(stmt.loc, "spawn target must be a declared function: " + stmt.expr->text);
        check_expr(*stmt.expr);
        return;
      case Stmt::Kind::kBlock:
        check_block(stmt.body);
        return;
      case Stmt::Kind::kTry: {
        check_block(stmt.body);
        scopes_.emplace_back();
        scopes_.back().insert(stmt.catch_var);
        for (const StmtPtr& handler_stmt : stmt.else_body) check_stmt(*handler_stmt);
        scopes_.pop_back();
        return;
      }
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
        return;
    }
  }

  void check_expr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kVar:
        if (!declared(expr.text)) report(expr.loc, "unknown variable: " + expr.text);
        return;
      case Expr::Kind::kCall: {
        if (program_.find_function(expr.text) == nullptr &&
            known_builtins().count(expr.text) == 0 &&
            blocking_builtins().count(expr.text) == 0)
          report(expr.loc, "unknown function: " + expr.text);
        const FuncDecl* fn = program_.find_function(expr.text);
        if (fn != nullptr && fn->params.size() != expr.args.size())
          report(expr.loc, "arity mismatch calling " + expr.text + ": expected " +
                               std::to_string(fn->params.size()) + ", got " +
                               std::to_string(expr.args.size()));
        for (const ExprPtr& arg : expr.args) check_expr(*arg);
        return;
      }
      case Expr::Kind::kNew: {
        const StructDecl* decl = program_.find_struct(expr.text);
        if (decl == nullptr) {
          report(expr.loc, "unknown struct: " + expr.text);
        } else {
          for (const std::string& field : expr.field_names)
            if (decl->find_field(field) == nullptr)
              report(expr.loc, "struct " + expr.text + " has no field " + field);
        }
        for (const ExprPtr& arg : expr.args) check_expr(*arg);
        return;
      }
      default:
        for (const ExprPtr& arg : expr.args) check_expr(*arg);
        return;
    }
  }

  const Program& program_;
  std::vector<Diagnostic> diags_;
  std::vector<std::unordered_set<std::string>> scopes_;
  std::string current_function_;
};

}  // namespace

std::vector<Diagnostic> check(const Program& program) { return Checker(program).run(); }

Program parse_checked(std::string_view source) {
  Program program = parse(source);
  const std::vector<Diagnostic> diags = check(program);
  if (!diags.empty()) {
    const Diagnostic& first = diags.front();
    throw std::runtime_error("MiniLang check failed in " +
                             (first.function.empty() ? std::string("<top>") : first.function) +
                             " at line " + std::to_string(first.loc.line) + ": " +
                             first.message + " (" + std::to_string(diags.size()) +
                             " diagnostics total)");
  }
  return program;
}

}  // namespace lisa::minilang
