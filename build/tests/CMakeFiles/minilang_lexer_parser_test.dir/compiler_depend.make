# Empty compiler generated dependencies file for minilang_lexer_parser_test.
# This may be replaced when dependencies are built.
