#include "lisa/contract.hpp"

#include "smt/minilang_bridge.hpp"

namespace lisa::core {

using support::Json;
using support::JsonObject;

Json SemanticContract::to_json() const {
  JsonObject root;
  root["id"] = id;
  root["case_id"] = case_id;
  root["system"] = system;
  root["kind"] = kind == corpus::SemanticsKind::kStatePredicate ? "state_predicate"
                 : kind == corpus::SemanticsKind::kStructuralPattern
                     ? "structural_pattern"
                     : "interleaving_sensitive";
  root["description"] = description;
  root["high_level"] = high_level;
  root["target_fragment"] = target_fragment;
  root["condition_text"] = condition_text;
  if (!pattern.empty()) root["pattern"] = pattern;
  return Json(std::move(root));
}

SemanticContract SemanticContract::from_json(const Json& json) {
  SemanticContract contract;
  contract.id = json.get_string("id");
  contract.case_id = json.get_string("case_id");
  contract.system = json.get_string("system");
  const std::string kind_text = json.get_string("kind");
  contract.kind = kind_text == "structural_pattern"
                      ? corpus::SemanticsKind::kStructuralPattern
                  : kind_text == "interleaving_sensitive"
                      ? corpus::SemanticsKind::kInterleavingSensitive
                      : corpus::SemanticsKind::kStatePredicate;
  contract.description = json.get_string("description");
  contract.high_level = json.get_string("high_level");
  contract.target_fragment = json.get_string("target_fragment");
  contract.condition_text = json.get_string("condition_text");
  contract.pattern = json.get_string("pattern");
  if (contract.kind == corpus::SemanticsKind::kStatePredicate &&
      !contract.condition_text.empty()) {
    const auto parsed = smt::parse_condition(contract.condition_text);
    if (parsed.has_value()) contract.condition = *parsed;
  }
  return contract;
}

TranslationResult translate(const inference::SemanticsProposal& proposal,
                            const std::string& system) {
  TranslationResult result;
  int index = 0;
  for (const inference::LowLevelSemantics& low : proposal.low_level) {
    SemanticContract contract;
    contract.id = proposal.case_id + "#" + std::to_string(index++);
    contract.case_id = proposal.case_id;
    contract.system = system;
    contract.kind = proposal.kind;
    contract.description = low.description;
    contract.high_level = proposal.high_level_semantics;
    contract.target_fragment = low.target_statement;
    contract.condition_text = low.condition_statement;
    contract.pattern = proposal.pattern;
    if (proposal.kind == corpus::SemanticsKind::kStatePredicate) {
      const auto parsed = smt::parse_condition(low.condition_statement);
      if (!parsed.has_value()) {
        result.rejected.push_back(contract.id + ": condition outside checkable fragment: " +
                                  low.condition_statement);
        continue;
      }
      // Normalization: negation-normal form with comparison atoms negated in
      // place, so equal semantics always render equally in reports.
      contract.condition = smt::to_nnf(*parsed);
    }
    result.contracts.push_back(std::move(contract));
  }
  return result;
}

}  // namespace lisa::core
