// Execution-tree construction (§3.2 of the paper).
//
// "To focus on paths relevant to a given semantic, we identify those leading
//  to the target statement it constrains. We do this by statically building a
//  call graph and traversing all paths to each target. The result is an
//  execution tree rooted at the target statement, with leaves representing
//  entry functions for each path."
//
// This module enumerates, for every statement matching a contract's target
// fragment, all interprocedural guard paths entry → target:
//   * intraprocedural paths are enumerated over the structured AST (if/else
//     branching, one-shot loop entry, try/catch both arms);
//   * hops follow concrete call sites; callee parameters are bound to
//     caller argument paths via FrameMap renaming (see rename.hpp);
//   * with pruning enabled, guards sharing no variable with the contract
//     condition are dropped and the resulting duplicate paths collapse —
//     the paper's "the concolic engine follows only branches whose guards
//     involve variables relevant to the semantic".
// Loops are entered at most once per enumeration: path conditions through a
// loop body are collected for the first iteration, and falling past a loop
// records no exit guard (a sound over-approximation for the contract check,
// documented in DESIGN.md).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"
#include "analysis/rename.hpp"
#include "smt/formula.hpp"

namespace lisa::analysis {

/// One branch decision on a path, already renamed to canonical names.
struct GuardStep {
  std::string text;   // canonical guard expression text (pre-rename spelling)
  bool taken = true;  // polarity of the branch on this path
  smt::FormulaPtr formula;  // canonical-named formula of the taken polarity
};

/// One entry→target path of the execution tree.
struct ExecutionPath {
  std::vector<std::string> call_chain;          // entry first, target last
  const minilang::Stmt* target = nullptr;       // matched target statement
  std::string target_function;
  std::vector<GuardStep> guards;                // in execution order
  smt::FormulaPtr condition;                    // conjunction of guard formulas
  smt::FormulaPtr renamed_contract;             // contract condition, canonical names
  bool mappable = true;  // false: contract vars unreachable from this entry's terms

  /// Signature for de-duplication after pruning.
  [[nodiscard]] std::string key() const;
};

struct ExecutionTree {
  std::string target_fragment;
  std::vector<const minilang::Stmt*> targets;
  std::vector<ExecutionPath> paths;
  std::size_t enumerated_raw = 0;  // paths before pruning/dedup (ablation metric)
  bool truncated = false;          // hit max_paths
};

struct TreeOptions {
  std::size_t max_paths = 4096;
  /// Drop guards not sharing variables with the contract (paper §3.2).
  bool prune_irrelevant = true;
  /// Contract condition in target-function-local names; may be null (then
  /// nothing is relevant and, with pruning, paths collapse to call shapes).
  smt::FormulaPtr contract_condition;
};

/// Statements whose canonical header text contains `fragment` (targets),
/// excluding statements inside @test functions.
[[nodiscard]] std::vector<std::pair<const minilang::FuncDecl*, const minilang::Stmt*>>
find_target_statements(const minilang::Program& program, const std::string& fragment);

/// Builds the execution tree for `target_fragment`.
[[nodiscard]] ExecutionTree build_execution_tree(const minilang::Program& program,
                                                 const CallGraph& graph,
                                                 const std::string& target_fragment,
                                                 const TreeOptions& options);

}  // namespace lisa::analysis
