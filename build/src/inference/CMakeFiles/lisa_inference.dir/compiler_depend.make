# Empty compiler generated dependencies file for lisa_inference.
# This may be replaced when dependencies are built.
