// Human-readable report rendering.
//
// CI systems consume the JSON artifacts (to_json() on each result type);
// humans get Markdown: the violation triage document a developer reads when
// the gate blocks their commit, with the contract, the unguarded path, the
// counterexample state, and the proposed fix location.
#pragma once

#include <string>

#include "lisa/ci_gate.hpp"
#include "lisa/composition.hpp"
#include "lisa/pipeline.hpp"

namespace lisa::core {

/// Renders one contract check as Markdown (### heading level).
[[nodiscard]] std::string render_markdown(const ContractCheckReport& report,
                                          const SemanticContract* contract = nullptr);

/// Renders a full pipeline run (proposal, contracts, verdicts, timings).
[[nodiscard]] std::string render_markdown(const PipelineResult& result);

/// Renders a gate decision as the comment a CI bot would post on the commit.
[[nodiscard]] std::string render_markdown(const GateDecision& decision);

/// Renders a composed-property evaluation.
[[nodiscard]] std::string render_markdown(const PropertyReport& report);

}  // namespace lisa::core
