// Ablation (§5 open question): can LLM-generated semantics be made reliable?
//
// The paper proposes "a cross-checking mechanism that validates mined
// semantics against test cases, ensuring that inferred rules are grounded in
// actual system behavior." LISA's grounding signal is the sanity check: a
// real rule must have at least one statically verified path (the fixed path)
// on the post-fix codebase. This bench injects hallucination noise into the
// inference backend and measures how well that filter separates faithful
// rules from corrupted ones, and what detection survives filtering.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"

namespace {

using namespace lisa;

struct NoiseRow {
  double noise = 0.0;
  int contracts = 0;
  int grounded = 0;        // pass the sanity cross-check
  int detections = 0;      // grounded contracts that flag the latent path
  int cases = 0;
};

NoiseRow run_with_noise(double noise, std::uint64_t seed) {
  NoiseRow row;
  row.noise = noise;
  inference::MockLlmOptions llm_options;
  llm_options.noise = noise;
  llm_options.seed = seed;
  const inference::MockLlm llm(llm_options);
  core::CheckOptions options;
  options.run_concolic = false;
  const core::Checker checker;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (ticket.kind != corpus::SemanticsKind::kStatePredicate) continue;
    ++row.cases;
    const inference::SemanticsProposal proposal = llm.infer(ticket);
    const core::TranslationResult translation = core::translate(proposal, ticket.system);
    const minilang::Program program = minilang::parse_checked(ticket.patched_source);
    for (const core::SemanticContract& contract : translation.contracts) {
      ++row.contracts;
      const core::ContractCheckReport report = checker.check(program, contract, options);
      if (!report.sanity_ok) continue;  // filtered by cross-validation
      ++row.grounded;
      if (report.violated > 0) ++row.detections;
    }
  }
  return row;
}

void print_noise_table() {
  std::printf("=== Ablation: hallucination noise vs cross-validation filter ===\n\n");
  std::printf("%8s %10s %10s %12s %18s\n", "noise", "contracts", "grounded",
              "filtered out", "detections kept");
  for (const double noise : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const NoiseRow row = run_with_noise(noise, 91);
    std::printf("%8.2f %10d %10d %12d %13d/%d\n", row.noise, row.contracts, row.grounded,
                row.contracts - row.grounded, row.detections, row.cases);
  }
  std::printf("\nshape check: at noise 0 every mined rule grounds and every latent path\n"
              "is detected; as hallucination rises, the sanity cross-check discards the\n"
              "corrupted rules (they verify on no path of the real system) instead of\n"
              "letting them produce bogus verdicts — reliability comes from grounding,\n"
              "not from trusting the LLM.\n\n");
}

void BM_NoiseSweep(benchmark::State& state) {
  const double noise = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) benchmark::DoNotOptimize(run_with_noise(noise, 7).grounded);
  state.counters["noise_pct"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_NoiseSweep)->Arg(0)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_noise_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
