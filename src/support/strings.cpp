#include "support/strings.hpp"

#include <algorithm>
#include <cctype>

namespace lisa::support {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
    std::size_t start = i;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) == 0) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin])) != 0)
    ++begin;
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  return contains(to_lower(haystack), to_lower(needle));
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  std::string out;
  if (from.empty()) return std::string(text);
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out += text.substr(start);
      return out;
    }
    out += text.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
}

std::vector<std::string> word_tokens(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  const auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c) != 0 || raw == '_') {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

}  // namespace lisa::support
