#include "concolic/explorer.hpp"

#include "analysis/callgraph.hpp"
#include "concolic/engine.hpp"
#include "minilang/printer.hpp"
#include "minilang/sema.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "smt/solver.hpp"
#include "support/faultpoint.hpp"

namespace lisa::concolic {

const char* explored_verdict_name(ExploredVerdict verdict) {
  switch (verdict) {
    case ExploredVerdict::kVerifiedByReplay: return "verified-by-replay";
    case ExploredVerdict::kViolatedByReplay: return "violated-by-replay";
    case ExploredVerdict::kInfeasible: return "infeasible";
    case ExploredVerdict::kNotSynthesizable: return "needs-human";
    case ExploredVerdict::kReplayMismatch: return "replay-mismatch";
    case ExploredVerdict::kSkipped: return "skipped";
  }
  return "?";
}

namespace {

struct ReplayResult {
  bool reached = false;
  bool violated = false;
  std::string witness;
};

ReplayResult replay(const minilang::Program& program, const SynthesizedTest& test,
                    const std::string& target_fragment,
                    const smt::FormulaPtr& contract_condition,
                    support::Budget* budget) {
  ReplayResult result;
  minilang::Program with_test;
  try {
    with_test = minilang::parse_checked(minilang::program_text(program) + "\n" + test.source);
  } catch (const std::exception&) {
    return result;
  }
  Engine engine(with_test);
  CheckConfig config;
  config.target_fragment = target_fragment;
  config.contract = contract_condition;
  config.budget = budget;
  const RunResult run = engine.run_test(test.test_name, config);
  for (const TargetHit& hit : run.hits) {
    result.reached = true;
    if (hit.symbolic_violation || hit.concrete_violation) {
      result.violated = true;
      result.witness = hit.witness;
    }
  }
  return result;
}

}  // namespace

ExplorationReport explore(const minilang::Program& program,
                          const std::string& target_fragment,
                          const smt::FormulaPtr& contract_condition,
                          support::Budget* budget, const obs::CaptureHandle& capture) {
  ExplorationReport report;
  obs::ScopedSpan run_span("explorer.run");
  run_span.attr("target", target_fragment);
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  analysis::TreeOptions options;
  options.contract_condition = contract_condition;
  // Full path conditions: a synthesized input must satisfy every guard on
  // the way to the target, not only the contract-relevant ones.
  options.prune_irrelevant = false;
  const analysis::ExecutionTree tree =
      analysis::build_execution_tree(program, graph, target_fragment, options);
  run_span.attr("paths", tree.paths.size());

  smt::Solver solver;
  solver.set_budget(budget);
  obs::PhasedSmtCapture smt_capture(capture.ledger, capture.capture, "explore");
  if (capture.active()) solver.set_capture(&smt_capture);
  int sequence = 1;
  for (const analysis::ExecutionPath& path : tree.paths) {
    obs::ScopedSpan path_span("explorer.path");
    if (!path.call_chain.empty()) path_span.attr("entry", path.call_chain.front());
    ExploredPath explored;
    explored.call_chain = path.call_chain;

    // Governance: a refused path degrades to kSkipped — it never silently
    // disappears from the report, and never upgrades to a replay verdict.
    const bool fault_skip =
        support::faultpoint("explorer.path") != support::FaultAction::kNone;
    if (fault_skip) obs::metrics().counter("fault.explorer.path").add();
    if (fault_skip || (budget != nullptr && !budget->charge_path())) {
      explored.verdict = ExploredVerdict::kSkipped;
      explored.detail = fault_skip ? "injected fault at explorer.path"
                                   : budget->exhausted_reason();
      path_span.attr("verdict", explored_verdict_name(explored.verdict));
      report.paths.push_back(std::move(explored));
      ++report.skipped;
      continue;
    }

    const smt::SolveResult feasibility = solver.solve(path.condition);
    if (feasibility.unknown()) {
      explored.verdict = ExploredVerdict::kSkipped;
      explored.detail = "solver inconclusive: " + feasibility.reason;
      path_span.attr("verdict", explored_verdict_name(explored.verdict));
      report.paths.push_back(std::move(explored));
      ++report.skipped;
      continue;
    }
    if (!feasibility.sat()) {
      explored.verdict = ExploredVerdict::kInfeasible;
      explored.detail = "path condition unsatisfiable: " + path.condition->to_string();
      path_span.attr("verdict", explored_verdict_name(explored.verdict));
      report.paths.push_back(std::move(explored));
      ++report.infeasible;
      continue;
    }
    // Prefer a violating witness; fall back to a covering driver when the
    // path is guarded (π ∧ ¬P unsat).
    const bool violating =
        path.mappable &&
        solver
            .solve(smt::Formula::conj2(path.condition,
                                       smt::Formula::negate(path.renamed_contract)))
            .sat();
    const auto test = synthesize_path_test(program, path, violating, sequence);
    if (!test.has_value()) {
      explored.verdict = ExploredVerdict::kNotSynthesizable;
      explored.detail = "required state is not constructible through entry arguments";
      path_span.attr("verdict", explored_verdict_name(explored.verdict));
      report.paths.push_back(std::move(explored));
      ++report.human_needed;
      continue;
    }
    ++sequence;
    explored.test_source = test->source;
    const ReplayResult run =
        replay(program, *test, target_fragment, contract_condition, budget);
    if (!run.reached) {
      explored.verdict = ExploredVerdict::kReplayMismatch;
      explored.detail = "synthesized driver did not reach the target (model " +
                        test->model_text + ")";
      ++report.human_needed;
    } else if (run.violated) {
      explored.verdict = ExploredVerdict::kViolatedByReplay;
      explored.detail = "missing check reproduced; witness " +
                        (run.witness.empty() ? test->model_text : run.witness);
      ++report.violated;
    } else {
      explored.verdict = ExploredVerdict::kVerifiedByReplay;
      explored.detail = "replay confirmed the guard (model " + test->model_text + ")";
      ++report.verified;
    }
    path_span.attr("verdict", explored_verdict_name(explored.verdict));
    report.paths.push_back(std::move(explored));
  }
  if (budget != nullptr && budget->exhausted()) {
    report.budget_exhausted = true;
    report.budget_reason = budget->exhausted_reason();
  }
  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("explorer.paths").add(static_cast<std::int64_t>(report.paths.size()));
  registry.counter("explorer.verified").add(report.verified);
  registry.counter("explorer.violated").add(report.violated);
  registry.counter("explorer.infeasible").add(report.infeasible);
  registry.counter("explorer.human_needed").add(report.human_needed);
  registry.counter("explorer.skipped").add(report.skipped);
  return report;
}

}  // namespace lisa::concolic
