// Semantics proposals — the JSON contract of Listing 1.
//
// The paper's LLM outputs, per failure ticket:
//   {"high_level_semantics": "<description>",
//    "low_level_semantics": {
//       "description": "<concise_description>",
//       "target_statement": "<code_text>",
//       "condition_statement": "<predicates>", ...},
//    "reasoning": "<summary>" ...}
// This header defines that structure plus (de)serialization, so the mock
// inference backend and any future real-LLM backend are interchangeable.
#pragma once

#include <string>
#include <vector>

#include "corpus/ticket.hpp"
#include "support/json.hpp"

namespace lisa::inference {

struct LowLevelSemantics {
  std::string description;          // concise natural-language statement
  std::string target_statement;     // code text locating the checked statement
  std::string condition_statement;  // predicate text over concrete state
};

struct SemanticsProposal {
  std::string case_id;
  std::string high_level_semantics;
  std::vector<LowLevelSemantics> low_level;
  std::string reasoning;
  corpus::SemanticsKind kind = corpus::SemanticsKind::kStatePredicate;
  /// For structural proposals: the generalized pattern id
  /// (currently "no_blocking_in_sync").
  std::string pattern;

  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static SemanticsProposal from_json(const support::Json& json);
};

}  // namespace lisa::inference
