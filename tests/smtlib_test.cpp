// Tests for SMT-LIB 2 export.
#include <gtest/gtest.h>

#include "smt/minilang_bridge.hpp"
#include "smt/smtlib.hpp"

namespace lisa::smt {
namespace {

TEST(SmtLib, DeclaresSortsByUse) {
  const auto f = parse_condition("!(s == null) && !(s.is_closing) && s.ttl > 0");
  ASSERT_TRUE(f.has_value());
  const std::string script = to_smtlib(*f);
  EXPECT_NE(script.find("(set-logic QF_LIA)"), std::string::npos);
  EXPECT_NE(script.find("(declare-const |s#null| Bool)"), std::string::npos);
  EXPECT_NE(script.find("(declare-const |s.is_closing| Bool)"), std::string::npos);
  EXPECT_NE(script.find("(declare-const |s.ttl| Int)"), std::string::npos);
  EXPECT_NE(script.find("(check-sat)"), std::string::npos);
}

TEST(SmtLib, RendersBooleanStructure) {
  const auto f = parse_condition("a.x > 0 || !(a.y <= 3)");
  ASSERT_TRUE(f.has_value());
  const std::string script = to_smtlib(*f);
  EXPECT_NE(script.find("(or (> |a.x| 0) (not (<= |a.y| 3)))"), std::string::npos) << script;
  // After NNF the negation folds into the comparison.
  const std::string nnf_script = to_smtlib(to_nnf(*f));
  EXPECT_NE(nnf_script.find("(or (> |a.x| 0) (> |a.y| 3))"), std::string::npos) << nnf_script;
}

TEST(SmtLib, NegativeConstantsParenthesized) {
  const auto f = parse_condition("a.x >= 0 - 5");
  // 0 - 5 is arithmetic (outside the fragment) — use an explicit atom.
  const FormulaPtr atom = Formula::make_atom(Atom::cmp_const("a.x", CmpOp::kGe, -5));
  const std::string script = to_smtlib(atom);
  EXPECT_NE(script.find("(>= |a.x| (- 5))"), std::string::npos);
  (void)f;
}

TEST(SmtLib, VarVarComparisonsAndDisequality) {
  const auto f = parse_condition("t.node_count >= t.quota_limit && t.node_count != 7");
  const std::string script = to_smtlib(*f);
  EXPECT_NE(script.find("(>= |t.node_count| |t.quota_limit|)"), std::string::npos);
  EXPECT_NE(script.find("(not (= |t.node_count| 7))"), std::string::npos);
}

TEST(SmtLib, ComplementQueryWrapsNegatedChecker) {
  const auto trace = parse_condition("!(s == null)");
  const auto checker = parse_condition("!(s == null) && s.ttl > 0");
  const std::string script = complement_query_smtlib(*trace, *checker);
  EXPECT_NE(script.find("; LISA complement check"), std::string::npos);
  EXPECT_NE(script.find("(not "), std::string::npos);
  EXPECT_NE(script.find("(get-model)"), std::string::npos);
}

TEST(SmtLib, TrueFalseLiterals) {
  EXPECT_NE(to_smtlib(Formula::truth(true)).find("(assert true)"), std::string::npos);
  EXPECT_NE(to_smtlib(Formula::truth(false)).find("(assert false)"), std::string::npos);
}

}  // namespace
}  // namespace lisa::smt
