#include "inference/embedding.hpp"

#include <algorithm>
#include <cmath>

#include "minilang/printer.hpp"
#include "support/strings.hpp"

namespace lisa::inference {

void TfIdfModel::fit(const std::vector<std::string>& documents) {
  idf_.clear();
  document_count_ = documents.size();
  std::map<std::string, std::size_t> doc_frequency;
  for (const std::string& doc : documents) {
    std::map<std::string, bool> seen;
    for (const std::string& token : support::word_tokens(doc)) {
      if (!seen.emplace(token, true).second) continue;
      ++doc_frequency[token];
    }
  }
  for (const auto& [token, frequency] : doc_frequency) {
    // Smoothed IDF; never negative.
    idf_[token] = std::log((1.0 + static_cast<double>(document_count_)) /
                           (1.0 + static_cast<double>(frequency))) +
                  1.0;
  }
}

SparseVector TfIdfModel::embed(const std::string& text) const {
  SparseVector tf;
  for (const std::string& token : support::word_tokens(text)) tf[token] += 1.0;
  SparseVector out;
  double norm = 0.0;
  for (const auto& [token, count] : tf) {
    const auto it = idf_.find(token);
    if (it == idf_.end()) continue;  // out-of-vocabulary
    const double weight = count * it->second;
    out[token] = weight;
    norm += weight * weight;
  }
  if (norm > 0.0) {
    const double inv = 1.0 / std::sqrt(norm);
    for (auto& [token, weight] : out) weight *= inv;
  }
  return out;
}

double TfIdfModel::cosine(const SparseVector& a, const SparseVector& b) {
  const SparseVector& small = a.size() <= b.size() ? a : b;
  const SparseVector& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [token, weight] : small) {
    const auto it = large.find(token);
    if (it != large.end()) dot += weight * it->second;
  }
  return dot;  // inputs are L2-normalized
}

TestSelector::TestSelector(const minilang::Program& program) {
  std::vector<std::string> docs;
  std::vector<std::string> names;
  for (const minilang::FuncDecl* test : program.functions_with("test")) {
    names.push_back(test->name);
    docs.push_back(minilang::function_text(*test));
  }
  model_.fit(docs);
  for (std::size_t i = 0; i < docs.size(); ++i)
    tests_.push_back(TestDoc{names[i], model_.embed(docs[i])});
}

std::vector<TestRanking> TestSelector::rank(const std::string& query) const {
  const SparseVector embedded = model_.embed(query);
  std::vector<TestRanking> out;
  out.reserve(tests_.size());
  for (const TestDoc& test : tests_)
    out.push_back(TestRanking{test.name, TfIdfModel::cosine(embedded, test.embedding)});
  std::stable_sort(out.begin(), out.end(), [](const TestRanking& a, const TestRanking& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.test_name < b.test_name;
  });
  return out;
}

std::vector<std::string> TestSelector::select(const std::string& query, std::size_t max_tests,
                                              double min_score) const {
  std::vector<std::string> out;
  for (const TestRanking& ranking : rank(query)) {
    if (out.size() >= max_tests) break;
    if (ranking.score < min_score) break;  // rankings are sorted
    out.push_back(ranking.test_name);
  }
  return out;
}

std::string TestSelector::describe_path(const analysis::ExecutionPath& path) {
  std::string out;
  for (const std::string& fn : path.call_chain) out += fn + " ";
  out += path.target_function + " ";
  for (const analysis::GuardStep& guard : path.guards) {
    out += guard.text + " ";
    out += guard.taken ? "taken " : "not taken ";
  }
  if (path.renamed_contract) out += path.renamed_contract->to_string();
  return out;
}

}  // namespace lisa::inference
