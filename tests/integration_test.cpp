// Cross-module integration tests: the full incident → contract → enforcement
// story, the §4 preliminary results, and the Fig. 6 generalization claim.
#include <gtest/gtest.h>

#include "analysis/patterns.hpp"
#include "lisa/ci_gate.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"
#include "support/strings.hpp"

namespace lisa {
namespace {

using core::Checker;
using core::CheckOptions;
using core::ContractCheckReport;
using core::Pipeline;
using core::PipelineResult;

// §4 Bug #1: applying LISA (with the rule learned from HBASE-27671) to the
// latest mini-HBase finds the unprotected snapshot-scan path.
TEST(PreliminaryResults, Bug1HbaseSnapshotScan) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("hbase-27671-snapshot-ttl");
  ASSERT_NE(ticket, nullptr);
  const PipelineResult result = Pipeline().run(*ticket, ticket->latest_source);
  ASSERT_EQ(result.reports.size(), 1u);
  const ContractCheckReport& report = result.reports[0];
  // restore + export are guarded in the latest version; scan is not.
  EXPECT_EQ(report.target_statements, 3u);
  EXPECT_EQ(report.verified, 2);
  EXPECT_EQ(report.violated, 1);
  bool scan_flagged = false;
  for (const core::PathReport& path : report.paths) {
    if (path.verdict != core::PathVerdict::kViolated) continue;
    for (const std::string& fn : path.call_chain)
      if (fn == "scan_snapshot") scan_flagged = true;
  }
  EXPECT_TRUE(scan_flagged);
}

// §4 Bug #2: the batched-listing path of the latest mini-HDFS misses the
// block-location check.
TEST(PreliminaryResults, Bug2HdfsBatchedListing) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("hdfs-13924-observer-locations");
  ASSERT_NE(ticket, nullptr);
  const PipelineResult result = Pipeline().run(*ticket, ticket->latest_source);
  ASSERT_EQ(result.reports.size(), 1u);
  const ContractCheckReport& report = result.reports[0];
  EXPECT_EQ(report.target_statements, 3u);
  EXPECT_EQ(report.verified, 2);
  EXPECT_EQ(report.violated, 1);
  bool batched_flagged = false;
  for (const core::PathReport& path : report.paths) {
    if (path.verdict != core::PathVerdict::kViolated) continue;
    for (const std::string& fn : path.call_chain)
      if (fn == "get_batched_listing") batched_flagged = true;
  }
  EXPECT_TRUE(batched_flagged);
}

// Fig. 6: the generalized blocking rule catches the second serializer the
// specific rule misses.
TEST(Generalization, BroadRuleCatchesAclSerializer) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-2201-sync-serialize");
  const minilang::Program patched = minilang::parse_checked(ticket->patched_source);
  const analysis::CallGraph graph = analysis::CallGraph::build(patched);

  // The specific rule is tied to the patched function's call; after the fix
  // nothing in serialize_node blocks under sync, and the rule cannot see the
  // latent serialize_acls hazard.
  const auto specific =
      analysis::check_specific_call_in_sync(patched, graph, "write_record");
  bool specific_flags_acl = false;
  for (const auto& violation : specific)
    if (violation.function == "serialize_acls") specific_flags_acl = true;

  const auto general = analysis::check_no_blocking_in_sync(patched, graph);
  bool general_flags_acl = false;
  for (const auto& violation : general)
    if (violation.function == "serialize_acls") general_flags_acl = true;

  EXPECT_TRUE(general_flags_acl);
  EXPECT_TRUE(specific_flags_acl);  // direct call also inside sync here
  // The decisive case: a serializer that blocks through a helper function —
  // invisible to the syntactic specific rule, caught by the generalized one.
  const minilang::Program indirect = minilang::parse_checked(R"(
struct Cache { data: string; }
fn persist_entry(c: Cache) { fsync_log(c); }
@entry
fn serialize_cache(c: Cache) {
  sync (c) {
    persist_entry(c);
  }
}
)");
  const analysis::CallGraph graph2 = analysis::CallGraph::build(indirect);
  EXPECT_TRUE(analysis::check_specific_call_in_sync(indirect, graph2, "write_record").empty());
  EXPECT_EQ(analysis::check_no_blocking_in_sync(indirect, graph2).size(), 1u);
}

// The full CI story: the contract learned from incident 1 blocks the commit
// that would have caused incident 2, and admits the commit with the complete
// fix. This is Figure 1's loop closed.
TEST(EndToEnd, ContractBlocksTheHistoricalRegressionCommit) {
  int blocked = 0;
  int admitted = 0;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (ticket.kind != corpus::SemanticsKind::kStatePredicate) continue;
    const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
    core::TranslationResult translation = core::translate(proposal, ticket.system);
    ASSERT_FALSE(translation.contracts.empty()) << ticket.case_id;
    core::ContractStore store;
    store.add_all(std::move(translation.contracts));
    const core::CiGate gate;
    // The patched source still contains the second, unguarded path: in the
    // real history this shipped and became the regression. LISA blocks it.
    const core::GateDecision decision = gate.evaluate(ticket.patched_source, store);
    if (!decision.allowed) ++blocked;
    else ++admitted;
  }
  EXPECT_EQ(admitted, 0);
  EXPECT_EQ(blocked, 15);  // all state-predicate cases
}

// Dynamic-only sanity: concolic replay of the regression tests confirms the
// fixed path on every corpus case (tests pass, no concrete violations there).
TEST(EndToEnd, RegressionTestsPassOnPatchedUnderConcolicReplay) {
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (ticket.kind != corpus::SemanticsKind::kStatePredicate) continue;
    const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
    core::TranslationResult translation = core::translate(proposal, ticket.system);
    const minilang::Program program = minilang::parse_checked(ticket.patched_source);
    CheckOptions options;
    options.forced_tests = ticket.regression_tests;
    const ContractCheckReport report =
        Checker().check(program, translation.contracts[0], options);
    EXPECT_EQ(report.dynamic.tests_run, static_cast<int>(ticket.regression_tests.size()))
        << ticket.case_id;
    EXPECT_EQ(report.dynamic.tests_run, report.dynamic.tests_passed) << ticket.case_id;
    EXPECT_EQ(report.dynamic.concrete_violations, 0) << ticket.case_id;
  }
}

// Cross-validation (§5): noisy "hallucinated" contracts fail the sanity
// check on the patched version far more often than faithful ones, so
// grounding mined semantics against system behaviour filters them.
TEST(EndToEnd, SanityCheckFiltersHallucinatedContracts) {
  int faithful_sane = 0;
  int faithful_total = 0;
  int noisy_insane = 0;
  int noisy_total = 0;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (ticket.kind != corpus::SemanticsKind::kStatePredicate) continue;
    const minilang::Program program = minilang::parse_checked(ticket.patched_source);
    CheckOptions options;
    options.run_concolic = false;

    const inference::SemanticsProposal clean = inference::MockLlm().infer(ticket);
    for (const auto& contract : core::translate(clean, ticket.system).contracts) {
      ++faithful_total;
      if (Checker().check(program, contract, options).sanity_ok) ++faithful_sane;
    }
    inference::MockLlmOptions noise;
    noise.noise = 1.0;
    noise.seed = 123;
    const inference::SemanticsProposal noisy = inference::MockLlm(noise).infer(ticket);
    for (const auto& contract : core::translate(noisy, ticket.system).contracts) {
      ++noisy_total;
      if (!Checker().check(program, contract, options).sanity_ok) ++noisy_insane;
    }
  }
  EXPECT_EQ(faithful_sane, faithful_total);  // every faithful rule grounds
  EXPECT_GT(noisy_insane, noisy_total / 3);  // most hallucinations rejected
}

}  // namespace
}  // namespace lisa
