// Static contract screening: precision, pipeline speedup, and the
// interprocedural-summary ablation.
//
// The staticcheck screener (src/staticcheck) runs before the concolic
// replay — the pipeline's dominant cost — and settles contracts whose
// verdict is decidable from the guard-only execution tree plus dataflow
// facts. This bench measures, across every corpus contract × program
// version:
//   * the settled fraction (ProvedSafe + ProvedViolated; target ≥ 30%),
//     with interprocedural summaries ON and OFF — ON must settle strictly
//     more (the summary-strengthened facts close contracts whose execution
//     tree alone is inconclusive),
//   * agreement with the full static + concolic checker in both modes
//     (must be exact: screening is an accelerator, never an oracle), and
//   * the end-to-end wall-clock reduction with screening + trusted
//     verdicts against the unscreened checker.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "lisa/checker.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"
#include "staticcheck/screener.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace lisa;

struct Workload {
  struct Item {
    std::string label;  // "<case>/<version>"
    const minilang::Program* program = nullptr;
    const core::SemanticContract* contract = nullptr;
  };
  // Owned storage backing the Item pointers.
  std::vector<minilang::Program> programs;
  std::vector<core::TranslationResult> translations;
  std::vector<Item> items;
};

/// Parses every corpus program version once and pairs it with the contracts
/// mined from its ticket, so timing loops measure checking, not parsing.
const Workload& workload() {
  static const Workload loaded = [] {
    Workload w;
    // Reserve to keep pointers stable while filling.
    const auto& tickets = corpus::Corpus::all();
    w.programs.reserve(tickets.size() * 3);
    w.translations.reserve(tickets.size());
    for (const corpus::FailureTicket& ticket : tickets) {
      w.translations.push_back(
          core::translate(inference::MockLlm().infer(ticket), ticket.system));
      const core::TranslationResult& translation = w.translations.back();
      const std::pair<const char*, const std::string*> versions[] = {
          {"buggy", &ticket.buggy_source},
          {"patched", &ticket.patched_source},
          {"latest", &ticket.latest_source},
      };
      for (const auto& [name, source] : versions) {
        if (source->empty()) continue;
        w.programs.push_back(minilang::parse_checked(*source));
        for (const core::SemanticContract& contract : translation.contracts)
          w.items.push_back({ticket.case_id + "/" + name, &w.programs.back(), &contract});
      }
    }
    return w;
  }();
  return loaded;
}

/// Ground truth per workload item: the unscreened full static + concolic
/// checker. Mode-independent (the checker never consults summaries for path
/// verdicts), so both ablation arms compare against the same outcomes.
struct GroundTruth {
  std::vector<bool> passed;
  double full_ms = 0.0;  // wall clock of the unscreened checker
};

const GroundTruth& ground_truth() {
  static const GroundTruth truth = [] {
    GroundTruth t;
    const core::Checker checker;
    core::CheckOptions full_options;
    full_options.static_screen = false;
    const support::Stopwatch timer;
    for (const Workload::Item& item : workload().items)
      t.passed.push_back(checker.check(*item.program, *item.contract, full_options).passed());
    t.full_ms = timer.elapsed_ms();
    return t;
  }();
  return truth;
}

struct ScreenStats {
  int contracts = 0;
  int proved_safe = 0;
  int proved_violated = 0;
  int unknown = 0;
  int disagreements = 0;
  // Interleaving-sensitive (deadlock / race) contracts, tracked separately:
  // they settle through the lock graph and lockset coverage, not the
  // execution tree, so their settled fraction is its own number.
  int interleaving_contracts = 0;
  int interleaving_settled = 0;
  double screened_ms = 0.0;  // wall clock, screening + trusted verdicts
  double summary_ms = 0.0;   // share spent computing interprocedural summaries

  [[nodiscard]] int settled() const { return proved_safe + proved_violated; }
  [[nodiscard]] double settled_fraction() const {
    return contracts == 0 ? 0.0 : static_cast<double>(settled()) / contracts;
  }
  [[nodiscard]] double interleaving_settled_fraction() const {
    return interleaving_contracts == 0
               ? 0.0
               : static_cast<double>(interleaving_settled) / interleaving_contracts;
  }
};

ScreenStats run_comparison(bool use_summaries, std::vector<std::string>* disagreement_lines) {
  ScreenStats stats;
  const core::Checker checker;
  core::CheckOptions screened_options;
  screened_options.trust_screen_verdicts = true;  // CI-style: outcome only
  screened_options.use_summaries = use_summaries;
  const GroundTruth& truth = ground_truth();

  for (std::size_t i = 0; i < workload().items.size(); ++i) {
    const Workload::Item& item = workload().items[i];
    const bool truth_passed = truth.passed[i];
    ++stats.contracts;
    const bool interleaving =
        item.contract->kind == corpus::SemanticsKind::kInterleavingSensitive;
    if (interleaving) ++stats.interleaving_contracts;

    const support::Stopwatch screened_timer;
    const core::ContractCheckReport screened =
        checker.check(*item.program, *item.contract, screened_options);
    stats.screened_ms += screened_timer.elapsed_ms();
    stats.summary_ms += screened.summary_ms;

    if (screened.screen_verdict == "proved-safe") {
      ++stats.proved_safe;
      if (interleaving) ++stats.interleaving_settled;
      if (!truth_passed) {
        ++stats.disagreements;
        if (disagreement_lines != nullptr)
          disagreement_lines->push_back(item.label + " " + item.contract->id +
                                        ": screener safe, checker violated");
      }
    } else if (screened.screen_verdict == "proved-violated") {
      ++stats.proved_violated;
      if (interleaving) ++stats.interleaving_settled;
      if (truth_passed) {
        ++stats.disagreements;
        if (disagreement_lines != nullptr)
          disagreement_lines->push_back(item.label + " " + item.contract->id +
                                        ": screener violated, checker passed");
      }
    } else {
      ++stats.unknown;
      // Atomicity/liveness contracts never produce a screen verdict: the
      // schedule explorer decides them instead. A found violation or a
      // conclusively drained schedule space is a settled outcome — and the
      // explorer is summary-independent, so it must agree with ground truth.
      const bool explorer_decided =
          interleaving && (screened.schedule_violations > 0 ||
                           (screened.schedules_explored > 0 && screened.schedule_conclusive));
      if (explorer_decided) ++stats.interleaving_settled;
      // Unknown must fall through to the identical full-check outcome —
      // except interleaving contracts without an explorer verdict, which
      // have no dynamic fall-through (single-threaded replay cannot observe
      // interleavings): with summaries off they are simply unchecked, so
      // comparing against the summaries-on ground truth is meaningless.
      if ((!interleaving || explorer_decided) && screened.passed() != truth_passed) {
        ++stats.disagreements;
        if (disagreement_lines != nullptr)
          disagreement_lines->push_back(item.label + " " + item.contract->id +
                                        ": unknown-path outcome diverged");
      }
    }
  }
  return stats;
}

void print_mode_block(const char* title, const ScreenStats& stats,
                      const std::vector<std::string>& disagreements) {
  std::printf("%s\n", title);
  std::printf("  proved safe:      %d\n", stats.proved_safe);
  std::printf("  proved violated:  %d\n", stats.proved_violated);
  std::printf("  unknown:          %d (fall through to the full check)\n", stats.unknown);
  std::printf("  settled fraction: %.1f%%\n", 100.0 * stats.settled_fraction());
  std::printf("  interleaving:     %d/%d settled (%.1f%%)\n", stats.interleaving_settled,
              stats.interleaving_contracts, 100.0 * stats.interleaving_settled_fraction());
  std::printf("  disagreements:    %d (must be 0)\n", stats.disagreements);
  for (const std::string& line : disagreements) std::printf("    !! %s\n", line.c_str());
}

int print_screening_table() {
  std::vector<std::string> off_lines;
  const ScreenStats off = run_comparison(/*use_summaries=*/false, &off_lines);
  std::vector<std::string> on_lines;
  const ScreenStats on = run_comparison(/*use_summaries=*/true, &on_lines);
  const GroundTruth& truth = ground_truth();

  std::printf("=== Static contract screening vs concolic ground truth ===\n\n");
  std::printf("contracts x versions checked: %d\n\n", on.contracts);
  print_mode_block("summaries OFF (PR 2 call-site havoc):", off, off_lines);
  std::printf("\n");
  print_mode_block("summaries ON (interprocedural effect inference):", on, on_lines);
  std::printf("\nsummary ablation: +%d contract(s) settled (%.1f%% -> %.1f%%), "
              "summary computation %.1f ms\n",
              on.settled() - off.settled(), 100.0 * off.settled_fraction(),
              100.0 * on.settled_fraction(), on.summary_ms);
  const double reduction =
      truth.full_ms <= 0.0 ? 0.0 : 100.0 * (1.0 - on.screened_ms / truth.full_ms);
  std::printf("wall clock: full %.1f ms, screened (summaries on) %.1f ms "
              "(%.1f%% reduction)\n\n",
              truth.full_ms, on.screened_ms, reduction);

  const bool ok = off.disagreements == 0 && on.disagreements == 0 &&
                  on.settled() > off.settled() && on.settled_fraction() >= 0.30 &&
                  on.screened_ms < truth.full_ms && on.interleaving_contracts > 0 &&
                  on.interleaving_settled == on.interleaving_contracts;
  std::printf("shape check: %s — screening settles a third or more of the corpus\n"
              "statically, never contradicts the concolic verdict in either mode,\n"
              "settles strictly more with summaries on, settles every interleaving\n"
              "contract (lock graph or schedule explorer), and cuts the end-to-end\n"
              "checking time.\n\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

void BM_FullCheck(benchmark::State& state) {
  const core::Checker checker;
  core::CheckOptions options;
  options.static_screen = false;
  for (auto _ : state) {
    int violated = 0;
    for (const Workload::Item& item : workload().items)
      violated += checker.check(*item.program, *item.contract, options).violated;
    benchmark::DoNotOptimize(violated);
  }
}
BENCHMARK(BM_FullCheck)->Unit(benchmark::kMillisecond);

void BM_ScreenedCheck(benchmark::State& state) {
  const core::Checker checker;
  core::CheckOptions options;
  options.trust_screen_verdicts = true;
  for (auto _ : state) {
    int violated = 0;
    for (const Workload::Item& item : workload().items)
      violated += checker.check(*item.program, *item.contract, options).violated;
    benchmark::DoNotOptimize(violated);
  }
}
BENCHMARK(BM_ScreenedCheck)->Unit(benchmark::kMillisecond);

void screener_only_loop(benchmark::State& state, bool use_summaries) {
  for (auto _ : state) {
    int settled = 0;
    for (const Workload::Item& item : workload().items) {
      if (item.contract->condition == nullptr) continue;
      const staticcheck::Screener screener(*item.program, use_summaries);
      const staticcheck::ScreenResult result = screener.screen_state_predicate(
          item.contract->target_fragment, item.contract->condition);
      settled += result.verdict != staticcheck::ScreenVerdict::kUnknown ? 1 : 0;
    }
    benchmark::DoNotOptimize(settled);
  }
}

void BM_ScreenerOnly_Summaries(benchmark::State& state) {
  screener_only_loop(state, /*use_summaries=*/true);
}
BENCHMARK(BM_ScreenerOnly_Summaries)->Unit(benchmark::kMillisecond);

void BM_ScreenerOnly_Havoc(benchmark::State& state) {
  screener_only_loop(state, /*use_summaries=*/false);
}
BENCHMARK(BM_ScreenerOnly_Havoc)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int status = print_screening_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return status;
}
