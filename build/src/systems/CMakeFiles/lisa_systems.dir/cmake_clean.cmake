file(REMOVE_RECURSE
  "CMakeFiles/lisa_systems.dir/cassandra/hints.cpp.o"
  "CMakeFiles/lisa_systems.dir/cassandra/hints.cpp.o.d"
  "CMakeFiles/lisa_systems.dir/cassandra/read_repair.cpp.o"
  "CMakeFiles/lisa_systems.dir/cassandra/read_repair.cpp.o.d"
  "CMakeFiles/lisa_systems.dir/hbase/regions.cpp.o"
  "CMakeFiles/lisa_systems.dir/hbase/regions.cpp.o.d"
  "CMakeFiles/lisa_systems.dir/hbase/snapshots.cpp.o"
  "CMakeFiles/lisa_systems.dir/hbase/snapshots.cpp.o.d"
  "CMakeFiles/lisa_systems.dir/hdfs/namenode.cpp.o"
  "CMakeFiles/lisa_systems.dir/hdfs/namenode.cpp.o.d"
  "CMakeFiles/lisa_systems.dir/hdfs/replication.cpp.o"
  "CMakeFiles/lisa_systems.dir/hdfs/replication.cpp.o.d"
  "CMakeFiles/lisa_systems.dir/sim/event_loop.cpp.o"
  "CMakeFiles/lisa_systems.dir/sim/event_loop.cpp.o.d"
  "CMakeFiles/lisa_systems.dir/sim/network.cpp.o"
  "CMakeFiles/lisa_systems.dir/sim/network.cpp.o.d"
  "CMakeFiles/lisa_systems.dir/zookeeper/quota_acl.cpp.o"
  "CMakeFiles/lisa_systems.dir/zookeeper/quota_acl.cpp.o.d"
  "CMakeFiles/lisa_systems.dir/zookeeper/registry.cpp.o"
  "CMakeFiles/lisa_systems.dir/zookeeper/registry.cpp.o.d"
  "CMakeFiles/lisa_systems.dir/zookeeper/server.cpp.o"
  "CMakeFiles/lisa_systems.dir/zookeeper/server.cpp.o.d"
  "liblisa_systems.a"
  "liblisa_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
