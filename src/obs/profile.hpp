// Cost attribution over recorded spans — the engine behind `lisa profile`.
//
// Aggregates a Tracer snapshot two ways:
//   * by span name: call count, inclusive time (span duration) and
//     exclusive time (duration minus direct children), sorted by inclusive
//     — the "where does the wall clock go" table;
//   * SMT hotspots: per-contract totals of descendant smt.solve spans —
//     which contracts are solver-bound, the per-query cost breakdown
//     WeBridge-style engines are evaluated on.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "support/json.hpp"

namespace lisa::obs {

/// Aggregate cost of all spans sharing a name.
struct SpanCost {
  std::string name;
  std::int64_t count = 0;
  double inclusive_ms = 0.0;  // sum of span durations
  double exclusive_ms = 0.0;  // inclusive minus direct children
};

/// Per-contract SMT attribution (from smt.solve spans nested under a
/// checker.contract span).
struct SmtHotspot {
  std::string contract_id;
  std::int64_t queries = 0;
  double solve_ms = 0.0;
};

struct CostTable {
  std::vector<SpanCost> rows;         // sorted by inclusive_ms descending
  std::vector<SmtHotspot> hotspots;   // sorted by solve_ms descending
  double wall_ms = 0.0;               // sum of root-span durations

  [[nodiscard]] support::Json to_json() const;
  /// Fixed-width text table (top `limit` rows of each section).
  [[nodiscard]] std::string render(std::size_t limit = 20) const;
};

[[nodiscard]] CostTable build_cost_table(const std::vector<SpanRecord>& spans);

}  // namespace lisa::obs
