// Demand-driven backward contract slicing over the dependence graphs.
//
// For each semantic contract the slicer computes the *verdict cone*: the
// set of functions (and, inside target functions, statements) the contract
// verdict can possibly depend on. The cone is closed under everything the
// checker actually reads:
//
//   * state predicates — the functions containing target statements, their
//     transitive callers (execution-tree guards and boundary-fact joins),
//     and the transitive callees of that closure (call effects, return
//     facts, interpreter semantics). @test callers are skipped unless
//     `include_tests`: static path enumeration never roots at tests, so a
//     test body only matters when concolic replay (which ranks every test)
//     will run — then the @test functions and their callees join too.
//   * structural rules — every non-test function plus callees (the
//     lock-state rule scans the whole program).
//   * interleaving contracts — same whole-program cone: the lock graph is
//     unioned over all thread roots.
//
// The slice fingerprint is the canonical identity of that cone: contract
// text, the sorted target-match list, sorted per-function body digests, and
// sorted per-function summary digests, all FNV-1a hashed. Two properties
// carry the incremental gate (journal.hpp):
//   * byte-stable — same program and contract, same fingerprint, across
//     runs and processes;
//   * verdict-sound — any edit that can change the verdict changes the
//     fingerprint. Function digests cover bodies in the cone; *summary*
//     digests cover interprocedural facts flowing into the cone from
//     outside it (boundary facts join over every caller, including callers
//     the cone walk may not visit), so even a missed cone edge degrades to
//     an unnecessary re-check, never a stale replay. The target-match list
//     covers edits that introduce or remove a matching statement anywhere.
//
// When summaries are unavailable the slice degrades to every function and
// says so (`degraded`) — the PR 7 convention: degrade loudly, never
// truncate silently.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"
#include "minilang/ast.hpp"
#include "smt/formula.hpp"
#include "staticcheck/depgraph.hpp"

namespace lisa::staticcheck {

class SummaryMap;
struct FunctionSummary;

struct SliceRequest {
  enum class Kind { kStatePredicate, kStructural, kInterleaving };
  Kind kind = Kind::kStatePredicate;
  /// State predicates: canonical target-statement fragment. Interleaving
  /// guarded_field: the field name.
  std::string target_fragment;
  /// State predicates: the contract condition in target-local names.
  smt::FormulaPtr condition;
  std::string condition_text;
  /// Interleaving pattern ("lock_order_acyclic" | "guarded_field").
  std::string pattern;
  /// Canonical contract identity (id | kind | target | condition), hashed
  /// into the fingerprint so renaming a contract invalidates its entry.
  std::string contract_text;
  /// Add @test functions + their callees to the cone (pipeline runs with
  /// concolic replay; the gate does not).
  bool include_tests = false;
};

struct SliceStatement {
  std::string function;
  int line = 0;
  int column = 0;
  std::string text;  // canonical statement header
  std::string role;  // "target" | "data" | "control"
};

/// A write site that may store into the contract footprint.
struct SliceWriteSite {
  std::string function;
  int line = 0;
  int column = 0;
  std::string path;  // written path (wildcard spellings per Definition)
  /// True for `let x = new S{...}` / `x = new S{...}` where every field
  /// initializer is a literal — a fully characterized construction, which
  /// the screener's slice-irrelevance rule may discharge against the
  /// contract instead of treating as an unknown store.
  bool literal_construction = false;
};

struct SliceResult {
  /// Functions the verdict may depend on, sorted (std::set order).
  std::set<std::string> functions;
  /// Statement-level slice inside the functions containing targets:
  /// backward closure over def-use and control-dependence edges. Other
  /// cone functions participate at whole-function granularity.
  std::vector<SliceStatement> statements;
  /// Contract footprint: access paths the condition reads (target-local
  /// names, "#null" markers stripped), sorted.
  std::vector<std::string> footprint;
  /// Definitions anywhere in the cone that may write a footprint path
  /// (conservative field-name aliasing across frames).
  std::vector<SliceWriteSite> footprint_writes;
  /// Target matches as "function: text", sorted. Deliberately line-free:
  /// the fingerprint hashes this list, and an edit above a target must not
  /// invalidate it by shifting its line.
  std::vector<std::string> targets;
  bool degraded = false;
  /// Canonical byte-stable fingerprint of the cone (fnv1a).
  std::string fingerprint;
};

/// True for `new S{...}` whose every field initializer is a literal.
[[nodiscard]] bool is_literal_new(const minilang::Expr& expr);

/// Slices contracts against one program. Builds per-function dependence
/// graphs on demand and caches them; program/graph/summaries must outlive
/// the engine. `summaries == nullptr` degrades every slice to the whole
/// program.
class SliceEngine {
 public:
  SliceEngine(const minilang::Program& program, const analysis::CallGraph& graph,
              const SummaryMap* summaries);

  [[nodiscard]] SliceResult slice(const SliceRequest& request) const;

  /// Canonical rendering of one function summary (sorted, locale-free) —
  /// the digest input. Exposed for fingerprint tests.
  [[nodiscard]] static std::string summary_digest_text(const FunctionSummary& summary);

  /// The cached per-function dependence graph (built on demand). Exposed
  /// for the screener's slice-irrelevance rule and for tests.
  [[nodiscard]] const FuncDepGraph& depgraph_for(const minilang::FuncDecl& fn) const;

 private:
  void close_over_callees(std::set<std::string>& cone) const;
  void close_over_callers(std::set<std::string>& cone, bool include_tests) const;
  [[nodiscard]] std::string fingerprint_of(const SliceRequest& request,
                                           const SliceResult& result) const;

  const minilang::Program* program_;
  const analysis::CallGraph* graph_;
  const SummaryMap* summaries_;
  mutable std::map<const minilang::FuncDecl*, FuncDepGraph> cache_;
};

}  // namespace lisa::staticcheck
