// CI/CD enforcement cost (§1's vision made concrete): how expensive is it to
// evaluate every commit against the contract store, and how does that cost
// scale as the store accumulates the whole incident history?
//
// Workload: the contract store grows from 1 to all 16 corpus contracts
// (state-predicate + structural); each store size is evaluated against
// (a) an unrelated commit (vacuous fast path), (b) the history-repeating
// commit of one case (full static check, violations found).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "lisa/ci_gate.hpp"
#include "lisa/pipeline.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace lisa;

core::ContractStore store_of_size(std::size_t n) {
  core::ContractStore store;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (store.size() >= n) break;
    const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
    core::TranslationResult translation = core::translate(proposal, ticket.system);
    store.add_all(std::move(translation.contracts));
  }
  return store;
}

void print_gate_table() {
  std::printf("=== CI gate: evaluation latency vs contract-store size ===\n\n");
  std::printf("%10s | %16s | %20s %10s\n", "contracts", "unrelated commit",
              "regressing commit", "blocked");
  core::CheckOptions options;
  options.run_concolic = false;  // the static fast path CI uses
  const core::CiGate gate(options);
  const corpus::FailureTicket* zk = corpus::Corpus::find("zk-1208-ephemeral-create");
  const std::string unrelated = "fn metrics() { print(1); }";
  for (const std::size_t size : {1u, 4u, 8u, 12u, 16u}) {
    const core::ContractStore store = store_of_size(size);
    support::Stopwatch timer;
    const core::GateDecision clean = gate.evaluate(unrelated, store);
    const double clean_ms = timer.elapsed_ms();
    timer.reset();
    const core::GateDecision dirty = gate.evaluate(zk->patched_source, store);
    const double dirty_ms = timer.elapsed_ms();
    std::printf("%10zu | %13.2f ms | %17.2f ms %10s\n", store.size(), clean_ms, dirty_ms,
                dirty.allowed ? "no (!)" : "yes");
    (void)clean;
  }
  std::printf("\nshape check: unrelated commits stay sub-millisecond regardless of\n"
              "store size (target matching short-circuits); regressing commits pay\n"
              "one execution-tree check per matching contract and are blocked.\n\n");
}

void BM_GateUnrelatedCommit(benchmark::State& state) {
  const core::ContractStore store = store_of_size(static_cast<std::size_t>(state.range(0)));
  core::CheckOptions options;
  options.run_concolic = false;
  const core::CiGate gate(options);
  for (auto _ : state)
    benchmark::DoNotOptimize(gate.evaluate("fn metrics() { print(1); }", store).allowed);
  state.counters["contracts"] = static_cast<double>(store.size());
}
BENCHMARK(BM_GateUnrelatedCommit)->Arg(1)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_GateRegressingCommit(benchmark::State& state) {
  const core::ContractStore store = store_of_size(static_cast<std::size_t>(state.range(0)));
  core::CheckOptions options;
  options.run_concolic = false;
  const core::CiGate gate(options);
  const corpus::FailureTicket* zk = corpus::Corpus::find("zk-1208-ephemeral-create");
  for (auto _ : state)
    benchmark::DoNotOptimize(gate.evaluate(zk->patched_source, store).allowed);
  state.counters["contracts"] = static_cast<double>(store.size());
}
BENCHMARK(BM_GateRegressingCommit)->Arg(1)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

// History-enabled evaluation: each iteration loads the (growing) run-history
// file, attaches a local provenance ledger, runs drift detection, and appends
// one record — the full longitudinal-observability overhead `--history` adds
// on top of BM_GateRegressingCommit's Arg(8) shape.
void BM_GateWithHistory(benchmark::State& state) {
  const core::ContractStore store = store_of_size(8);
  core::CheckOptions options;
  options.run_concolic = false;
  const core::CiGate gate(options);
  const corpus::FailureTicket* zk = corpus::Corpus::find("zk-1208-ephemeral-create");
  const std::string path =
      (std::filesystem::temp_directory_path() / "lisa_bench_gate_history.jsonl").string();
  std::remove(path.c_str());
  core::GateRunOptions run_options;
  run_options.history_path = path;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        gate.evaluate(zk->patched_source, store, run_options).allowed);
  state.counters["contracts"] = static_cast<double>(store.size());
  state.counters["history_runs"] = static_cast<double>(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_GateWithHistory)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_gate_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
