// Static concurrency analysis — interprocedural locksets, the global
// lock-acquisition-order graph, and an Eraser-style shared-field race
// detector.
//
// Three layers, all built on the existing CFGs and function summaries:
//
//   * LocksetAnalysis — a forward must-analysis tracking the stack of
//     monitors definitely held at each statement. Join is the longest
//     common prefix (monitors held on *every* path survive), `sync` enter/
//     exit push/pop, and exception edges release `sync_unwind` monitors in
//     LIFO order — the same unwinding discipline LockStateAnalysis uses.
//   * Summary extension (`summarize_concurrency`, called from the summary
//     fixpoint): per function, the monitors it may (transitively) acquire,
//     the lock-acquisition orderings it exhibits, and every shared-field
//     access with its must-held lockset. Monitor names are rewritten
//     through call arguments (callee param root → caller argument path;
//     anything else gets a `callee::` prefix), so a caller sees callee
//     locks in its own namespace. Same-SCC imports skip rewriting, which
//     keeps the name set finite on recursive cycles.
//   * Whole-program verdicts over the thread roots (@entry functions and
//     uncalled non-test functions): `LockGraph` with SCC-based cycle
//     detection (each cycle is a potential deadlock, reported as located
//     acquisition chains), and `race_diagnostics` (a field written from
//     distinct roots under inconsistent locksets, with at least one access
//     guarded by the field's own monitor and one write not).
//
// Soundness caveats (see docs/staticcheck.md): monitors are abstracted by
// canonical access-path *names*, not objects — two distinct objects passed
// under the same name alias, and the same object under two names does not.
// The race rule is deliberately biased to fields that are guarded
// *somewhere* (Eraser's inconsistent-lockset discipline), so wholly
// unguarded fields — the single-threaded common case — stay silent.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/callgraph.hpp"
#include "staticcheck/cfg.hpp"
#include "staticcheck/diagnostics.hpp"
#include "staticcheck/summaries.hpp"

namespace lisa::staticcheck {

/// Canonical monitor name of a `sync` expression: its access path
/// ("node.lock"), falling back to the printed expression text.
[[nodiscard]] std::string monitor_path(const minilang::Expr& expr);

// ---------------------------------------------------------------------------
// Lockset dataflow (must-held monitors)
// ---------------------------------------------------------------------------

class LocksetAnalysis {
 public:
  struct State {
    /// Monitors definitely held, outermost first (a stack: `sync` is
    /// block-structured so must-held sets are always nested).
    std::vector<std::string> held;
    bool operator==(const State& other) const { return held == other.held; }
  };

  LocksetAnalysis(const minilang::Program& program, const analysis::CallGraph& graph,
                  const SummaryMap* summaries = nullptr)
      : program_(&program), graph_(&graph), summaries_(summaries) {}

  [[nodiscard]] State boundary(const Cfg& cfg) const {
    (void)cfg;
    return State{};
  }
  /// Must-join: the longest common prefix of the two stacks.
  bool join(State& into, const State& from) const;
  void transfer(const CfgNode& node, State& state) const;
  void refine(const minilang::Expr& guard, bool taken, State& state) const {
    (void)guard;
    (void)taken;
    (void)state;
  }
  /// Exception edges unwinding out of sync blocks release monitors LIFO.
  void edge_effect(const CfgEdge& edge, State& state) const {
    for (int i = 0; i < edge.sync_unwind && !state.held.empty(); ++i)
      state.held.pop_back();
  }
  void widen(State& state) const { (void)state; }

 private:
  const minilang::Program* program_;
  const analysis::CallGraph* graph_;
  const SummaryMap* summaries_ = nullptr;
};

/// Fills the concurrency fields of `out` (acquired_locks, lock_order_edges,
/// field_locks) for one function. Called from the bottom-up summary
/// fixpoint; reads callee facts (and same-SCC iterates) from `map`.
void summarize_concurrency(const minilang::Program& program,
                           const analysis::CallGraph& graph, const SummaryMap& map,
                           const minilang::FuncDecl& fn, const Cfg& cfg,
                           FunctionSummary* out);

// ---------------------------------------------------------------------------
// Lock-acquisition-order graph
// ---------------------------------------------------------------------------

/// One potential deadlock: the lock-order edges of a strongly connected
/// component of the acquisition graph, in deterministic order. Each edge is
/// one located acquisition chain ("f acquires B at f:12 while holding A").
struct LockCycle {
  std::vector<std::string> monitors;   // SCC members, sorted
  std::vector<LockOrderEdge> edges;    // intra-SCC edges, sorted

  /// Human rendering: every chain with its source location.
  [[nodiscard]] std::string render() const;
};

/// The global lock-acquisition-order graph over the program's thread roots.
struct LockGraph {
  std::set<LockOrderEdge> edges;   // union over every thread root
  std::vector<LockCycle> cycles;   // potential deadlocks (empty = acyclic)
  /// Some root's summary degraded to conservative: the edge set is
  /// incomplete, so acyclicity proves nothing.
  bool degraded = false;

  [[nodiscard]] bool acyclic() const { return cycles.empty() && !degraded; }

  [[nodiscard]] static LockGraph build(const minilang::Program& program,
                                       const analysis::CallGraph& graph,
                                       const SummaryMap& summaries);
};

// ---------------------------------------------------------------------------
// Shared-field access index and race detection
// ---------------------------------------------------------------------------

/// All root-reachable accesses of one field: (thread root, site) pairs plus
/// whether any contributing summary hit the per-field site cap.
struct FieldAccesses {
  std::vector<std::pair<std::string, FieldAccessSite>> sites;
  /// Site cap hit or a summary degraded: the set is incomplete.
  bool truncated = false;
};

/// Field name → every access reachable from a thread root, with the root it
/// is reachable from. Deterministic ordering.
[[nodiscard]] std::map<std::string, FieldAccesses> shared_field_accesses(
    const minilang::Program& program, const analysis::CallGraph& graph,
    const SummaryMap& summaries);

/// True when some monitor in `lockset` guards an access with base path
/// `base` — the monitor *is* the accessed object (name-equal modulo
/// `callee::` prefixes) or a prefix of its path.
[[nodiscard]] bool lockset_guards(const std::set<std::string>& lockset,
                                  const std::string& base);

/// True when some monitor in `lockset` matches `guard` (a plain monitor
/// name, e.g. the `m` of a `holds(m)` contract) modulo namespace prefixes.
[[nodiscard]] bool lockset_covers(const std::set<std::string>& lockset,
                                  const std::string& guard);

/// Potential deadlocks as lint diagnostics (analysis "deadlock"), one per
/// cycle, each message carrying every located acquisition chain.
[[nodiscard]] std::vector<Diagnostic> deadlock_diagnostics(const LockGraph& graph);

/// Eraser-style inconsistent-lockset races as lint diagnostics (analysis
/// "race"): a field accessed from two distinct thread roots, written at
/// least once, guarded by its own monitor at some site and written without
/// it at another.
[[nodiscard]] std::vector<Diagnostic> race_diagnostics(const minilang::Program& program,
                                                       const analysis::CallGraph& graph,
                                                       const SummaryMap& summaries);

}  // namespace lisa::staticcheck
