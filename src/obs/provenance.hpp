// Verdict provenance: the evidence ledger behind every contract verdict.
//
// The gate's own decisions must not be opaque: when a contract flips to
// violated or inconclusive, the operator needs the complete causal chain —
// which inference proposal produced the contract (and how many retries it
// took), which static facts and summaries settled or failed to settle it,
// every explored path's condition and SMT query outcome, what the budget
// charged, and (on violation) a narrated concrete counterexample. The
// ProvenanceLedger records exactly that, one ContractCapture per contract.
//
// Discipline (mirrors obs/trace.hpp):
//   * a nullptr ledger/capture is the zero-cost path — every producer
//     checks the pointer before rendering any evidence string;
//   * capture is append-only and mutex-guarded per ledger, so parallel
//     checking (ROADMAP item 1) can shard contracts over one ledger;
//   * serialized output is byte-stable across runs: no wall-clock or
//     elapsed-time fields, keys ordered (support::Json objects are
//     std::map), contracts emitted in sorted id order, digests are FNV-1a
//     over canonical formula text.
//
// The JSONL form is journal-compatible with lisa/journal.hpp (PR 5): a
// fingerprinted header line, then one JSON document per contract:
//
//   {"journal":"lisa-ledger","version":1,"fingerprint":"<hex>"}
//   {<ContractCapture::to_json()>}
//   ...
//
// Everything in this header is plain strings/ints/maps — no smt/minilang
// types — so lisa_obs keeps its support-only link set and every layer of
// the stack (solver, screener, engine, checker) can write evidence without
// a dependency cycle.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace lisa::obs {

// ---------------------------------------------------------------------------
// Evidence records
// ---------------------------------------------------------------------------

/// One SMT query issued while deciding a contract. `phase` names the issuing
/// stage ("screen", "static-path", "concolic"); `digest` is the FNV-1a hash
/// of the query text, the no-flip key parallel checking merges against.
struct SmtQueryEvidence {
  std::string phase;
  std::string query;    // canonical formula text of the decided query
  std::string digest;   // fnv1a_fingerprint(query)
  std::string status;   // "sat" | "unsat" | "unknown"
  std::string model;    // satisfying assignment when sat ("" otherwise)
  std::string reason;   // why the query was refused when unknown
};

/// One dataflow fact that held at a target statement, with its producing
/// analysis and source location.
struct FactEvidence {
  std::string analysis;  // "nullness" | "intervals" | "lock-state" | "summary"
  std::string function;
  int line = 0;
  int column = 0;
  std::string fact;      // canonical text, e.g. "s#null = non-null"
};

/// One static execution path and its assertion outcome. The model maps keep
/// the satisfying assignment structured (not just rendered) so the
/// counterexample narrator can replay it without string parsing.
struct PathEvidence {
  std::string chain;     // "entry -> ... -> target"
  int target_stmt_id = -1;
  std::string target_text;
  std::string path_condition;
  std::string contract_condition;
  std::string verdict;   // "verified" | "violated" | "unmappable" | "inconclusive"
  std::string counterexample;
  std::string detail;
  std::map<std::string, bool> model_bools;
  std::map<std::string, std::int64_t> model_ints;
};

/// One concolic arrival at a target statement during a replayed test.
struct HitEvidence {
  std::string test;
  std::string function;
  int stmt_id = -1;
  std::string trace_condition;
  std::string instantiated_contract;
  std::string outcome;   // "ok" | "symbolic-violation" | "concrete-violation" | "inconclusive"
  std::string witness;
};

/// What the budget charged while checking this contract, and whether (and
/// why) it latched exhausted. `resource` is the typed reason ("deadline",
/// "smt-queries", "paths", "fork-points", "steps").
struct BudgetEvidence {
  bool attached = false;
  bool exhausted = false;
  std::string resource;
  std::string reason;
  std::map<std::string, std::int64_t> charges;
};

/// One interpreted statement of the narrated counterexample replay.
struct NarrationStep {
  std::string function;
  int line = 0;
  std::string stmt;       // statement header text
  int sync_depth = 0;     // monitors held when the statement ran
  /// MiniLang thread that executed the statement (schedule-replay
  /// narrations; 0 = the main/test thread). Rendered as a [tN] marker.
  int thread = 0;
  std::string note;       // variable delta or witness-injection annotation
};

/// One term of the failing predicate, evaluated on the live concrete state.
struct PredicateTerm {
  std::string text;       // atom text, e.g. "s.is_closing == false"
  std::string value;      // concrete evaluation, e.g. "false (s.is_closing = true)"
  bool holds = false;
};

/// The narrated counterexample: a concrete witness replayed through the
/// MiniLang interpreter into a statement-by-statement trace ending at the
/// failing predicate. `kind` records how the witness was obtained:
///   * "state-replay"      — covering test replayed with the violated
///                           path's SMT model injected into the live state;
///   * "structural-replay" — test replayed until a blocking call executed
///                           under a held monitor;
///   * "schedule-replay"   — a violating interleaving witness replayed under
///                           the cooperative scheduler; steps carry the
///                           executing thread id;
///   * "not-reproduced"    — the replay reached the target but the
///                           predicate held (witness state not reachable
///                           through the available tests);
///   * "unavailable"       — no test drove execution to the target.
struct Narration {
  std::string kind;
  std::string test;                    // the replayed @test function
  bool reproduced = false;             // the concrete replay violated Q
  std::vector<NarrationStep> steps;
  std::vector<PredicateTerm> predicate;
  std::string detail;
};

/// The inference provenance of a run's proposal: the PR 5 retry/validation
/// history that produced (or failed to produce) the contracts under check.
struct ProposalEvidence {
  std::string case_id;
  std::string high_level;
  std::vector<std::string> low_level;  // one description per low-level semantics
  bool succeeded = true;
  int attempts = 0;
  int transient_errors = 0;
  int validation_failures = 0;
  std::string error;
};

// ---------------------------------------------------------------------------
// Per-contract capture
// ---------------------------------------------------------------------------

/// Evidence accumulated while one contract was checked. Producers append
/// through the record_* methods (each takes the owning ledger's mutex); the
/// checker fills the summary fields when the verdict is final.
struct ContractCapture {
  // Identity.
  std::string contract_id;
  std::string system;
  std::string kind;              // "state-predicate" | "structural-pattern"
  std::string target_fragment;
  std::string condition_text;
  std::string description;
  std::string fingerprint;       // fnv1a over id + target + condition
  /// Slice fingerprint of the contract's verdict cone (staticcheck/slice.hpp);
  /// empty when the checker did not compute one.
  std::string slice_fp;

  // Outcome.
  std::string verdict;           // "passed" | "violated" | "inconclusive"
  bool passed = true;
  bool conclusive = true;

  // Evidence chain.
  std::string screen_verdict;
  std::string screen_reason;
  std::string screen_witness;
  /// Schedule exploration evidence (interleaving contracts decided by the
  /// ScheduleExplorer): interleavings run, whether the DFS drained the
  /// reduced space, the compact replayable witness on violation, and the
  /// narrated cause (first violation detail, or the typed inconclusive
  /// reason). All zero/empty for contracts the explorer never touched.
  int schedules_explored = 0;
  bool schedule_conclusive = true;
  std::string schedule_witness;
  std::string schedule_reason;
  std::vector<FactEvidence> facts;
  std::vector<PathEvidence> paths;
  std::vector<SmtQueryEvidence> smt_queries;
  std::vector<HitEvidence> hits;
  BudgetEvidence budget;
  Narration narration;

  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static ContractCapture from_json(const support::Json& json);
};

/// Solver-side capture hook: the smt::Solver calls this for every decided
/// query when a sink is attached (obs cannot name smt types, so the solver
/// renders the strings). Implementations must tolerate concurrent calls.
class SmtCaptureSink {
 public:
  virtual ~SmtCaptureSink() = default;
  virtual void on_smt_query(const std::string& query, const std::string& status,
                            const std::string& model, const std::string& reason) = 0;
};

// ---------------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------------

/// The run-level evidence store: one ContractCapture per contract plus the
/// run's inference provenance. Thread-compatible: capture_for and the
/// record_* helpers lock the ledger mutex; distinct contracts can be
/// captured from distinct threads.
class ProvenanceLedger {
 public:
  /// Identifying inputs of the run (same convention as the check journal:
  /// source text + contract ids). Sets the header fingerprint.
  void bind(const std::string& inputs);
  [[nodiscard]] const std::string& run_fingerprint() const { return fingerprint_; }

  void set_proposal(ProposalEvidence proposal);
  [[nodiscard]] const ProposalEvidence& proposal() const { return proposal_; }

  /// The capture cell for `contract_id`, created on first use. The pointer
  /// stays valid for the ledger's lifetime.
  [[nodiscard]] ContractCapture* capture_for(const std::string& contract_id);
  /// Lookup without creation; nullptr when the contract was never captured.
  [[nodiscard]] const ContractCapture* find(const std::string& contract_id) const;

  [[nodiscard]] std::size_t size() const;
  /// Contract ids in sorted (= emission) order.
  [[nodiscard]] std::vector<std::string> contract_ids() const;

  /// Thread-safe append helpers for producers holding a capture pointer.
  void record_smt(ContractCapture* capture, SmtQueryEvidence evidence);
  void record_fact(ContractCapture* capture, FactEvidence evidence);
  void record_path(ContractCapture* capture, PathEvidence evidence);
  void record_hit(ContractCapture* capture, HitEvidence evidence);

  /// Whole-ledger JSON (run header + captures in sorted id order).
  [[nodiscard]] support::Json to_json() const;

  /// Journal-compatible JSONL: header line + one contract per line.
  [[nodiscard]] std::string to_jsonl() const;
  /// Writes to_jsonl() to `path`; false on I/O error.
  bool write_jsonl(const std::string& path) const;
  /// Rebuilds a ledger from its JSONL form. Torn trailing lines are dropped
  /// (same tolerance as the check journal); false when the header is
  /// missing or names a different kind/version.
  [[nodiscard]] bool load_jsonl(const std::string& path);

  static constexpr const char* kLedgerKind = "lisa-ledger";
  static constexpr std::int64_t kLedgerVersion = 1;

 private:
  mutable std::mutex mutex_;
  std::string fingerprint_;
  ProposalEvidence proposal_;
  std::map<std::string, std::unique_ptr<ContractCapture>> captures_;
};

/// Adapter binding a solver capture sink to one capture cell and phase
/// label. The checker/screener/engine instantiate one per phase.
class PhasedSmtCapture final : public SmtCaptureSink {
 public:
  PhasedSmtCapture(ProvenanceLedger* ledger, ContractCapture* capture, std::string phase)
      : ledger_(ledger), capture_(capture), phase_(std::move(phase)) {}

  void on_smt_query(const std::string& query, const std::string& status,
                    const std::string& model, const std::string& reason) override;

 private:
  ProvenanceLedger* ledger_;
  ContractCapture* capture_;
  std::string phase_;
};

/// The FNV-1a digest used for SMT query and contract fingerprints
/// (re-exported from support/jsonl.hpp for producers that only see obs).
[[nodiscard]] std::string evidence_digest(const std::string& text);

/// The (ledger, capture) pair producers thread through their options. A
/// default-constructed handle is inert: every record helper no-ops, so the
/// nullptr path stays zero-cost.
struct CaptureHandle {
  ProvenanceLedger* ledger = nullptr;
  ContractCapture* capture = nullptr;

  [[nodiscard]] bool active() const { return ledger != nullptr && capture != nullptr; }
  void fact(FactEvidence evidence) const {
    if (active()) ledger->record_fact(capture, std::move(evidence));
  }
  void path(PathEvidence evidence) const {
    if (active()) ledger->record_path(capture, std::move(evidence));
  }
  void hit(HitEvidence evidence) const {
    if (active()) ledger->record_hit(capture, std::move(evidence));
  }
};

}  // namespace lisa::obs
