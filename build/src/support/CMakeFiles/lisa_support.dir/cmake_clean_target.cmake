file(REMOVE_RECURSE
  "liblisa_support.a"
)
