# Empty compiler generated dependencies file for lisa_extensions_test.
# This may be replaced when dependencies are built.
