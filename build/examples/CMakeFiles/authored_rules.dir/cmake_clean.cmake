file(REMOVE_RECURSE
  "CMakeFiles/authored_rules.dir/authored_rules.cpp.o"
  "CMakeFiles/authored_rules.dir/authored_rules.cpp.o.d"
  "authored_rules"
  "authored_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authored_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
