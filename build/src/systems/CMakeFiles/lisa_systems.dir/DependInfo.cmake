
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/cassandra/hints.cpp" "src/systems/CMakeFiles/lisa_systems.dir/cassandra/hints.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/cassandra/hints.cpp.o.d"
  "/root/repo/src/systems/cassandra/read_repair.cpp" "src/systems/CMakeFiles/lisa_systems.dir/cassandra/read_repair.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/cassandra/read_repair.cpp.o.d"
  "/root/repo/src/systems/hbase/regions.cpp" "src/systems/CMakeFiles/lisa_systems.dir/hbase/regions.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/hbase/regions.cpp.o.d"
  "/root/repo/src/systems/hbase/snapshots.cpp" "src/systems/CMakeFiles/lisa_systems.dir/hbase/snapshots.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/hbase/snapshots.cpp.o.d"
  "/root/repo/src/systems/hdfs/namenode.cpp" "src/systems/CMakeFiles/lisa_systems.dir/hdfs/namenode.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/hdfs/namenode.cpp.o.d"
  "/root/repo/src/systems/hdfs/replication.cpp" "src/systems/CMakeFiles/lisa_systems.dir/hdfs/replication.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/hdfs/replication.cpp.o.d"
  "/root/repo/src/systems/sim/event_loop.cpp" "src/systems/CMakeFiles/lisa_systems.dir/sim/event_loop.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/sim/event_loop.cpp.o.d"
  "/root/repo/src/systems/sim/network.cpp" "src/systems/CMakeFiles/lisa_systems.dir/sim/network.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/sim/network.cpp.o.d"
  "/root/repo/src/systems/zookeeper/quota_acl.cpp" "src/systems/CMakeFiles/lisa_systems.dir/zookeeper/quota_acl.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/zookeeper/quota_acl.cpp.o.d"
  "/root/repo/src/systems/zookeeper/registry.cpp" "src/systems/CMakeFiles/lisa_systems.dir/zookeeper/registry.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/zookeeper/registry.cpp.o.d"
  "/root/repo/src/systems/zookeeper/server.cpp" "src/systems/CMakeFiles/lisa_systems.dir/zookeeper/server.cpp.o" "gcc" "src/systems/CMakeFiles/lisa_systems.dir/zookeeper/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lisa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
