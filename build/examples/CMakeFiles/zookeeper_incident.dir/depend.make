# Empty dependencies file for zookeeper_incident.
# This may be replaced when dependencies are built.
