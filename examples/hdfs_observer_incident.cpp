// Replays the HDFS observer-read incident class (HDFS-13924 → HDFS-16732 →
// HDFS-17768, the paper's §4 Bug #2) end to end on the native mini-HDFS:
//
//   1. The active namenode knows every block's locations; the observer's
//      block report is delayed on the simulated network.
//   2. Without the location check, clients reading from the observer get
//      blocks with empty location lists and fail (BlockMissingException).
//   3. With the check, stale reads redirect to the active namenode.
//   4. The batched-listing API added later skipped the check — exactly the
//      gap LISA's mined contract flags in the latest release.
#include <cstdio>

#include "lisa/pipeline.hpp"
#include "lisa/report.hpp"
#include "systems/hdfs/namenode.hpp"
#include "systems/sim/event_loop.hpp"
#include "systems/sim/network.hpp"

namespace {

using namespace lisa::systems;

struct ReadOutcome {
  std::uint64_t ok = 0;
  std::uint64_t empty_locations = 0;  // client-visible failures
  std::uint64_t redirected = 0;       // graceful fallback to active
};

ReadOutcome run_workload(bool check_locations, std::int64_t report_delay_ms) {
  EventLoop loop;
  MessageBus bus(loop);
  hdfs::ActiveNameNode active;
  hdfs::ObserverNameNode observer(loop, bus, "observer-1");

  // 20 files; half report promptly, half are delayed.
  for (int i = 0; i < 20; ++i) {
    const std::string path = "/data/part-" + std::to_string(i);
    active.add_file(path, 1000 + i, {"dn1", "dn2", "dn3"});
    observer.receive_report_later(active, path, i % 2 == 0 ? 0 : report_delay_ms);
  }
  loop.run_until(50);  // delayed reports (report_delay_ms >> 50) still pending

  ReadOutcome outcome;
  for (int i = 0; i < 20; ++i) {
    const std::string path = "/data/part-" + std::to_string(i);
    const auto block = observer.read(path, check_locations);
    if (!block.has_value()) ++outcome.redirected;
    else if (block->locations.empty()) ++outcome.empty_locations;
    else ++outcome.ok;
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Replaying the HDFS observer incident on mini-HDFS ===\n\n");

  const ReadOutcome buggy = run_workload(/*check_locations=*/false, 10'000);
  std::printf("without location check: %llu healthy reads, %llu BlockMissingException "
              "(empty locations), %llu redirected\n",
              static_cast<unsigned long long>(buggy.ok),
              static_cast<unsigned long long>(buggy.empty_locations),
              static_cast<unsigned long long>(buggy.redirected));

  const ReadOutcome fixed = run_workload(/*check_locations=*/true, 10'000);
  std::printf("with the fix          : %llu healthy reads, %llu BlockMissingException, "
              "%llu redirected to active\n\n",
              static_cast<unsigned long long>(fixed.ok),
              static_cast<unsigned long long>(fixed.empty_locations),
              static_cast<unsigned long long>(fixed.redirected));

  std::printf("=== LISA on the latest release (the §4 Bug #2 hunt) ===\n\n");
  const lisa::corpus::FailureTicket* ticket =
      lisa::corpus::Corpus::find("hdfs-13924-observer-locations");
  const lisa::core::Pipeline pipeline;
  const lisa::core::PipelineResult result = pipeline.run(*ticket, ticket->latest_source);
  std::printf("%s\n", lisa::core::render_markdown(result).c_str());
  std::printf("The flagged get_batched_listing path is the HDFS-17768 bug the paper\n"
              "reported; the proposed fix (the same location check) was approved by\n"
              "HDFS developers.\n");
  return 0;
}
