#include "lisa/report.hpp"

#include <cstdio>

namespace lisa::core {

namespace {

std::string chain_text(const std::vector<std::string>& chain) {
  std::string out;
  for (const std::string& fn : chain) {
    if (!out.empty()) out += " → ";
    out += "`" + fn + "`";
  }
  return out;
}

const char* verdict_emoji(PathVerdict verdict) {
  switch (verdict) {
    case PathVerdict::kVerified: return "✅";
    case PathVerdict::kViolated: return "❌";
    case PathVerdict::kUnmappable: return "❓";
    case PathVerdict::kInconclusive: return "⏳";
  }
  return "?";
}

}  // namespace

std::string render_markdown(const ContractCheckReport& report,
                            const SemanticContract* contract) {
  std::string out = "### Contract `" + report.contract_id + "`\n\n";
  if (contract != nullptr) {
    out += "> " + contract->description + "\n>\n";
    out += "> `<" + contract->condition_text + "> " + contract->target_fragment + "...`\n\n";
  }
  out += "- target statements: " + std::to_string(report.target_statements) + "\n";
  out += "- paths: " + std::to_string(report.paths.size()) + " (verified " +
         std::to_string(report.verified) + ", violated " + std::to_string(report.violated) +
         ", unmappable " + std::to_string(report.unmappable) +
         (report.inconclusive > 0
              ? ", inconclusive " + std::to_string(report.inconclusive)
              : "") +
         ", uncovered by tests " + std::to_string(report.uncovered) + ")\n";
  out += std::string("- sanity (fixed path verifies): ") + (report.sanity_ok ? "yes" : "NO") +
         "\n";
  if (!report.screen_verdict.empty()) {
    out += "- screening: " + report.screen_verdict + " (" + report.screen_reason + ")";
    if (report.screen_skipped_concolic) out += " — concolic replay skipped";
    out += "\n";
  }
  if (report.budget_exhausted)
    out += "- ⏳ budget exhausted: " + report.budget_reason +
           " — rerun with a larger budget or `--resume` to settle the "
           "remaining work\n";
  // An inconclusive report can claim neither PASS nor FAIL: part of the
  // work was refused, so the honest verdict is "needs attention".
  out += std::string("- overall: **") +
         (report.passed() ? (report.conclusive() ? "PASS" : "INCONCLUSIVE") : "FAIL") +
         "**\n\n";
  if (!report.paths.empty()) {
    out += "| path | verdict | detail |\n|---|---|---|\n";
    for (const PathReport& path : report.paths) {
      out += "| " + chain_text(path.call_chain) + " | " + verdict_emoji(path.verdict) + " " +
             path_verdict_name(path.verdict) + " | ";
      if (path.verdict == PathVerdict::kViolated)
        out += "reachable with " + path.counterexample;
      else if (path.verdict == PathVerdict::kInconclusive)
        out += path.detail;
      else if (!path.covering_tests.empty())
        out += "exercised by `" + path.covering_tests.front() + "`";
      out += " |\n";
    }
    out += "\n";
  }
  for (const std::string& violation : report.structural_violations)
    out += "- ⚠ structural: " + violation + "\n";
  if (report.dynamic.tests_run > 0 || report.dynamic.degraded_runs > 0) {
    out += "\nConcolic replay: " + std::to_string(report.dynamic.tests_run) + " tests, " +
           std::to_string(report.dynamic.target_hits) + " target hits, " +
           std::to_string(report.dynamic.symbolic_violations) + " missing-check traces, " +
           std::to_string(report.dynamic.concrete_violations) + " concrete violations" +
           (report.dynamic.inconclusive_hits > 0
                ? ", " + std::to_string(report.dynamic.inconclusive_hits) +
                      " inconclusive hits"
                : "") +
           (report.dynamic.degraded_runs > 0
                ? ", " + std::to_string(report.dynamic.degraded_runs) + " degraded runs"
                : "") +
           ".\n";
    for (const std::string& detail : report.dynamic.violation_details)
      out += "  - " + detail + "\n";
  }
  return out;
}

std::string render_markdown(const PipelineResult& result) {
  std::string out = "## LISA pipeline report — case `" + result.proposal.case_id + "`\n\n";
  if (result.inference_failed) {
    out += "**⛔ Inference failed after " + std::to_string(result.inference_attempts) +
           " attempt(s).** " + result.inference_error +
           "\n\nNo contracts were extracted for this case; it needs attention, "
           "not a green check.\n";
    return out;
  }
  out += "**High-level semantics.** " + result.proposal.high_level_semantics + "\n\n";
  out += "**Low-level semantics.**\n\n";
  for (const auto& low : result.proposal.low_level)
    out += "- `<" + low.condition_statement + "> " + low.target_statement + "...` — " +
           low.description + "\n";
  if (!result.rejected.empty()) {
    out += "\n**Rejected (outside checkable fragment).**\n\n";
    for (const std::string& rejected : result.rejected) out += "- " + rejected + "\n";
  }
  out += "\n";
  for (std::size_t i = 0; i < result.reports.size(); ++i) {
    const SemanticContract* contract =
        i < result.contracts.size() ? &result.contracts[i] : nullptr;
    out += render_markdown(result.reports[i], contract);
    out += "\n";
  }
  const ScreeningSummary screening = result.screening();
  if (screening.settled() + screening.unknown > 0) {
    char fraction[32];
    std::snprintf(fraction, sizeof(fraction), "%.0f%%", screening.settled_fraction() * 100.0);
    out += "_Screening: " + std::to_string(screening.settled()) + " settled statically (" +
           std::to_string(screening.proved_safe) + " safe, " +
           std::to_string(screening.proved_violated) + " violated, " + fraction +
           " settled), " + std::to_string(screening.unknown) +
           " explored by the full check, " + std::to_string(screening.concolic_skipped) +
           " concolic replay(s) skipped._\n\n";
  }
  int inconclusive_reports = 0;
  for (const ContractCheckReport& report : result.reports)
    if (!report.conclusive()) ++inconclusive_reports;
  if (inconclusive_reports > 0)
    out += "_⏳ " + std::to_string(inconclusive_reports) +
           " contract(s) inconclusive (budget or fault): rerun with a larger "
           "budget or `--resume` to settle them._\n\n";
  if (result.resumed_contracts > 0)
    out += "_Resumed " + std::to_string(result.resumed_contracts) +
           " contract(s) from the checkpoint journal._\n\n";
  char timing[224];
  std::snprintf(timing, sizeof(timing),
                "_Timings: infer %.2f ms, translate %.2f ms, assert %.2f ms (screen %.2f "
                "ms, summaries %.2f ms), total %.2f ms._\n",
                result.timings.infer_ms, result.timings.translate_ms,
                result.timings.check_ms, result.timings.screen_ms,
                result.timings.summary_ms, result.timings.total_ms);
  out += timing;
  return out;
}

std::string render_markdown(const GateDecision& decision) {
  std::string out = decision.allowed ? "## ✅ Commit admitted\n\n" : "## ⛔ Commit blocked\n\n";
  if (!decision.allowed) {
    out += "This change violates semantics learned from past incidents:\n\n";
    for (const std::string& violation : decision.violations) out += "- " + violation + "\n";
    out += "\nEach rule below links the unguarded path and a state that reaches it.\n\n";
  }
  // needs_attention can also be set by warn-only drift findings, which have
  // their own section below — the budget blurb only fits incomplete checks.
  if (decision.needs_attention && decision.inconclusive_contracts > 0)
    out += "**⏳ Needs attention:** " + std::to_string(decision.inconclusive_contracts) +
           " contract(s) were not checked to completion (budget or fault). The "
           "commit decision above covers only the settled contracts — rerun "
           "with a larger budget or `--resume` to close the gap.\n\n";
  if (decision.resumed_contracts > 0)
    out += "_Resumed " + std::to_string(decision.resumed_contracts) +
           " contract(s) from the checkpoint journal._\n\n";
  if (decision.baseline_runs >= 0 && !decision.drift_findings.empty()) {
    out += "### 📉 Drift vs the last " + std::to_string(decision.baseline_runs) +
           " recorded run(s)\n\n";
    for (const obs::DriftFinding& finding : decision.drift_findings)
      out += std::string("- ") + (finding.fails_gate ? "⛔" : "⚠") + " **" + finding.kind +
             "** (`" + finding.subject + "`): " + finding.cause + "\n";
    out += "\n";
  }
  for (const ContractCheckReport& report : decision.reports) {
    if (report.passed() && report.conclusive()) continue;
    out += render_markdown(report);
    out += "\n";
  }
  char timing[160];
  if (decision.screened_settled + decision.screened_unknown > 0) {
    std::snprintf(timing, sizeof(timing),
                  "_Gate evaluation: %.1f ms (%d/%d contracts settled statically, "
                  "summaries %.2f ms)._\n",
                  decision.evaluation_ms, decision.screened_settled,
                  decision.screened_settled + decision.screened_unknown,
                  decision.summary_ms);
  } else {
    std::snprintf(timing, sizeof(timing), "_Gate evaluation: %.1f ms._\n",
                  decision.evaluation_ms);
  }
  out += timing;
  return out;
}

std::string render_markdown(const PropertyReport& report) {
  std::string out = "## High-level property `" + report.property_id + "`: **" +
                    property_status_name(report.status) + "**\n\n";
  for (const std::string& finding : report.findings) out += "- " + finding + "\n";
  if (!report.findings.empty()) out += "\n";
  for (const ContractCheckReport& constituent : report.constituent_reports) {
    out += render_markdown(constituent);
    out += "\n";
  }
  return out;
}

}  // namespace lisa::core
