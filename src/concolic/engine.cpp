#include "concolic/engine.hpp"

#include <unordered_map>
#include <unordered_set>

#include "concolic/shadow.hpp"
#include "minilang/interp.hpp"
#include "minilang/printer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "smt/solver.hpp"
#include "support/strings.hpp"

namespace lisa::concolic {

using minilang::Expr;
using minilang::FuncDecl;
using minilang::InterpError;
using minilang::MiniThrow;
using minilang::Object;
using minilang::ObjectPtr;
using minilang::Program;
using minilang::Stmt;
using minilang::StmtPtr;
using minilang::Value;
using smt::Atom;
using smt::CmpOp;
using smt::Formula;
using smt::FormulaPtr;

namespace {

/// Result of resolving a contract variable path against the live frame.
struct Resolution {
  bool ok = false;
  Value value;           // the resolved value
  ObjectPtr parent;      // object owning the leaf field (null for root paths)
  std::string leaf;      // leaf field name ("" for root paths)
};

CmpOp to_cmp(minilang::BinOp op) {
  switch (op) {
    case minilang::BinOp::kEq: return CmpOp::kEq;
    case minilang::BinOp::kNe: return CmpOp::kNe;
    case minilang::BinOp::kLt: return CmpOp::kLt;
    case minilang::BinOp::kLe: return CmpOp::kLe;
    case minilang::BinOp::kGt: return CmpOp::kGt;
    default: return CmpOp::kGe;
  }
}

bool concrete_cmp(std::int64_t a, CmpOp op, std::int64_t b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

}  // namespace

class Engine::Impl {
 public:
  explicit Impl(const Program& program) : program_(program) {}

  RunResult run(const std::string& test_name, const CheckConfig& config) {
    config_ = &config;
    result_ = RunResult{};
    path_condition_.clear();
    call_stack_.clear();
    fuel_used_ = 0;
    next_object_id_ = 1;
    solver_.set_budget(config.budget);
    obs::PhasedSmtCapture smt_capture(config.capture.ledger, config.capture.capture,
                                      "concolic");
    solver_.set_capture(config.capture.active() ? &smt_capture : nullptr);

    // Locate target statements and extract relevant field names.
    targets_.clear();
    program_.for_each_stmt([&](const FuncDecl& fn, const Stmt& stmt) {
      if (fn.has_annotation("test")) return;
      if (minilang::stmt_header_text(stmt).find(config.target_fragment) != std::string::npos)
        targets_.insert(stmt.id);
    });
    relevant_fields_.clear();
    contract_has_null_ = false;
    if (config.contract) {
      for (const std::string& var : config.contract->variables()) {
        if (support::ends_with(var, "#null")) {
          contract_has_null_ = true;
          continue;
        }
        const std::size_t dot = var.find_last_of('.');
        relevant_fields_.insert(dot == std::string::npos ? var : var.substr(dot + 1));
      }
    }

    try {
      const FuncDecl* test = program_.find_function(test_name);
      if (test == nullptr) throw InterpError("unknown test: " + test_name);
      call_function(*test, {});
      result_.test_passed = true;
    } catch (const MiniThrow& thrown) {
      result_.failure = thrown.value().to_display();
    } catch (const support::BudgetExhausted& exhausted) {
      // Structured resource outcome: the run is cut off, not broken.
      result_.budget_exhausted = true;
      result_.degraded_reason = exhausted.what();
    } catch (const minilang::StepLimitExceeded& limit) {
      result_.step_limit_hit = true;
      result_.degraded_reason = limit.what();
    } catch (const InterpError& error) {
      result_.failure = error.what();
    }
    // The capture sink is stack-local to this call; detach before returning.
    solver_.set_capture(nullptr);
    return std::move(result_);
  }

 private:
  struct Frame {
    std::vector<std::unordered_map<std::string, CValue>> scopes;
  };
  enum class Flow { kNormal, kReturn, kBreak, kContinue };

  void burn_fuel() {
    if (++fuel_used_ > 4'000'000) throw minilang::StepLimitExceeded(4'000'000);
    // Amortize the budget poll: a relaxed-atomic add every kStepStride
    // statements keeps the ungoverned hot path untouched.
    constexpr std::int64_t kStepStride = 256;
    if (config_->budget != nullptr && fuel_used_ % kStepStride == 0 &&
        !config_->budget->charge_steps(kStepStride))
      throw support::BudgetExhausted(config_->budget->exhausted_reason());
  }

  // -- Relevance filter -----------------------------------------------------

  [[nodiscard]] bool relevant(const FormulaPtr& f) const {
    if (!config_->prune_irrelevant) return true;
    for (const std::string& var : f->variables()) {
      if (contract_has_null_ && support::ends_with(var, "#null")) return true;
      const std::size_t dot = var.find_last_of('.');
      const std::string field = dot == std::string::npos ? var : var.substr(dot + 1);
      if (relevant_fields_.count(field) > 0) return true;
    }
    return false;
  }

  // -- Contract instantiation at a target hit --------------------------------

  Resolution resolve_path(const std::string& path, Frame& frame) {
    Resolution res;
    std::vector<std::string> segments = support::split(path, '.');
    if (segments.empty()) return res;
    const CValue* root = lookup(frame, segments[0]);
    if (root == nullptr) return res;
    Value current = root->v;
    ObjectPtr parent;
    std::string leaf;
    for (std::size_t i = 1; i < segments.size(); ++i) {
      if (!current.is_object()) return res;
      parent = current.as_object();
      leaf = segments[i];
      const auto it = parent->fields.find(leaf);
      if (it == parent->fields.end()) return res;
      current = it->second;
    }
    res.ok = true;
    res.value = std::move(current);
    res.parent = std::move(parent);
    res.leaf = std::move(leaf);
    return res;
  }

  /// Instantiates one contract atom against the live frame. Sets
  /// `*instantiable` to false (and returns an opaque placeholder) when the
  /// atom's paths cannot be resolved to checkable locations.
  FormulaPtr instantiate_atom(const Atom& atom, Frame& frame, bool* instantiable,
                              bool* concrete) {
    const auto fail = [&] {
      *instantiable = false;
      return Formula::make_atom(Atom::bool_var("opaque:" + atom.key()));
    };
    if (atom.kind == Atom::Kind::kBoolVar) {
      if (support::ends_with(atom.lhs, "#null")) {
        const std::string path = atom.lhs.substr(0, atom.lhs.size() - 5);
        const Resolution res = resolve_path(path, frame);
        if (!res.ok) return fail();
        if (res.value.is_null()) {
          *concrete = *concrete && true;
          return Formula::truth(true);
        }
        if (!res.value.is_object()) return fail();
        return Formula::make_atom(Atom::bool_var(null_var(*res.value.as_object())));
      }
      const Resolution res = resolve_path(atom.lhs, frame);
      if (!res.ok || !res.value.is_bool()) return fail();
      if (res.parent == nullptr) {
        // Contract over a root boolean local: substitute its concrete value
        // (the paper's constant normalization).
        return Formula::truth(res.value.as_bool());
      }
      return Formula::make_atom(Atom::bool_var(field_var(*res.parent, res.leaf)));
    }
    if (atom.kind == Atom::Kind::kCmpConst) {
      const Resolution res = resolve_path(atom.lhs, frame);
      if (!res.ok || !res.value.is_int()) return fail();
      if (res.parent == nullptr)
        return Formula::truth(concrete_cmp(res.value.as_int(), atom.op, atom.rhs_const));
      return Formula::make_atom(
          Atom::cmp_const(field_var(*res.parent, res.leaf), atom.op, atom.rhs_const));
    }
    // kCmpVar: resolve both sides; fall back to constants where possible.
    const Resolution lhs = resolve_path(atom.lhs, frame);
    const Resolution rhs = resolve_path(atom.rhs_var, frame);
    if (!lhs.ok || !rhs.ok || !lhs.value.is_int() || !rhs.value.is_int()) return fail();
    const bool lhs_loc = lhs.parent != nullptr;
    const bool rhs_loc = rhs.parent != nullptr;
    if (lhs_loc && rhs_loc)
      return Formula::make_atom(Atom::cmp_var(field_var(*lhs.parent, lhs.leaf), atom.op,
                                              field_var(*rhs.parent, rhs.leaf)));
    if (lhs_loc)
      return Formula::make_atom(
          Atom::cmp_const(field_var(*lhs.parent, lhs.leaf), atom.op, rhs.value.as_int()));
    if (rhs_loc)
      return Formula::make_atom(Atom::cmp_const(field_var(*rhs.parent, rhs.leaf),
                                                smt::cmp_swap(atom.op), lhs.value.as_int()));
    return Formula::truth(concrete_cmp(lhs.value.as_int(), atom.op, rhs.value.as_int()));
  }

  FormulaPtr instantiate(const FormulaPtr& f, Frame& frame, bool* instantiable, bool* concrete) {
    switch (f->kind) {
      case Formula::Kind::kTrue:
      case Formula::Kind::kFalse:
        return f;
      case Formula::Kind::kAtom:
        return instantiate_atom(f->atom, frame, instantiable, concrete);
      case Formula::Kind::kNot:
        return Formula::negate(instantiate(f->children[0], frame, instantiable, concrete));
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr: {
        std::vector<FormulaPtr> children;
        children.reserve(f->children.size());
        for (const FormulaPtr& child : f->children)
          children.push_back(instantiate(child, frame, instantiable, concrete));
        return f->kind == Formula::Kind::kAnd ? Formula::conj(std::move(children))
                                              : Formula::disj(std::move(children));
      }
    }
    return f;
  }

  /// Evaluates the contract concretely on the live state (true = holds).
  /// Returns false into *ok when some atom is unresolvable.
  bool eval_contract_concrete(const FormulaPtr& f, Frame& frame, bool* ok) {
    switch (f->kind) {
      case Formula::Kind::kTrue: return true;
      case Formula::Kind::kFalse: return false;
      case Formula::Kind::kNot: return !eval_contract_concrete(f->children[0], frame, ok);
      case Formula::Kind::kAnd: {
        bool all = true;
        for (const FormulaPtr& child : f->children)
          all = eval_contract_concrete(child, frame, ok) && all;
        return all;
      }
      case Formula::Kind::kOr: {
        bool any = false;
        for (const FormulaPtr& child : f->children)
          any = eval_contract_concrete(child, frame, ok) || any;
        return any;
      }
      case Formula::Kind::kAtom: {
        const Atom& atom = f->atom;
        if (atom.kind == Atom::Kind::kBoolVar) {
          if (support::ends_with(atom.lhs, "#null")) {
            const Resolution res = resolve_path(atom.lhs.substr(0, atom.lhs.size() - 5), frame);
            if (!res.ok) { *ok = false; return true; }
            return res.value.is_null();
          }
          const Resolution res = resolve_path(atom.lhs, frame);
          if (!res.ok || !res.value.is_bool()) { *ok = false; return true; }
          return res.value.as_bool();
        }
        const Resolution lhs = resolve_path(atom.lhs, frame);
        if (!lhs.ok || !lhs.value.is_int()) { *ok = false; return true; }
        if (atom.kind == Atom::Kind::kCmpConst)
          return concrete_cmp(lhs.value.as_int(), atom.op, atom.rhs_const);
        const Resolution rhs = resolve_path(atom.rhs_var, frame);
        if (!rhs.ok || !rhs.value.is_int()) { *ok = false; return true; }
        return concrete_cmp(lhs.value.as_int(), atom.op, rhs.value.as_int());
      }
    }
    return true;
  }

  void on_target_hit(const Stmt& stmt, Frame& frame) {
    TargetHit hit;
    hit.stmt_id = stmt.id;
    hit.function = call_stack_.empty() ? "<top>" : call_stack_.back();
    hit.call_chain = call_stack_;
    hit.trace_condition = Formula::conj(path_condition_);
    if (config_->contract) {
      bool instantiable = true;
      bool concrete_ok = true;
      hit.instantiated_contract =
          instantiate(config_->contract, frame, &instantiable, &concrete_ok);
      hit.instantiable = instantiable;
      bool eval_ok = true;
      const bool holds = eval_contract_concrete(config_->contract, frame, &eval_ok);
      hit.concrete_violation = eval_ok && !holds;
      if (instantiable) {
        const smt::SolveResult check = solver_.solve(Formula::conj2(
            hit.trace_condition, Formula::negate(hit.instantiated_contract)));
        hit.symbolic_violation = check.sat();
        hit.inconclusive = check.unknown();
        if (check.sat()) {
          hit.witness = check.model.to_string();
          hit.witness_bools = check.model.bools;
          hit.witness_ints = check.model.ints;
        }
      }
    } else {
      hit.instantiated_contract = Formula::truth(true);
    }
    result_.hits.push_back(std::move(hit));
  }

  // -- Interpreter with shadow propagation -----------------------------------

  CValue* lookup(Frame& frame, const std::string& name) {
    for (auto it = frame.scopes.rbegin(); it != frame.scopes.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  Value call_function(const FuncDecl& fn, std::vector<CValue> args) {
    if (args.size() != fn.params.size())
      throw InterpError("arity mismatch calling " + fn.name);
    if (call_stack_.size() > 200) throw InterpError("call depth limit in " + fn.name);
    call_stack_.push_back(fn.name);
    Frame frame;
    frame.scopes.emplace_back();
    for (std::size_t i = 0; i < args.size(); ++i)
      frame.scopes.back()[fn.params[i].name] = std::move(args[i]);
    Value return_value;
    try {
      exec_block(fn.body, frame, return_value);
    } catch (...) {
      call_stack_.pop_back();
      throw;
    }
    call_stack_.pop_back();
    return return_value;
  }

  Flow exec_block(const std::vector<StmtPtr>& stmts, Frame& frame, Value& return_value) {
    frame.scopes.emplace_back();
    Flow flow = Flow::kNormal;
    for (const StmtPtr& stmt : stmts) {
      flow = exec_stmt(*stmt, frame, return_value);
      if (flow != Flow::kNormal) break;
    }
    frame.scopes.pop_back();
    return flow;
  }

  bool branch(const Expr& guard, Frame& frame) {
    const CValue condition = eval(guard, frame);
    if (!condition.v.is_bool()) throw InterpError("condition is not a bool");
    const bool taken = condition.v.as_bool();
    ++result_.branches_total;
    if (condition.sym.has_bool() && relevant(condition.sym.bool_formula)) {
      if (config_->budget != nullptr && !config_->budget->charge_fork_point())
        throw support::BudgetExhausted(config_->budget->exhausted_reason());
      FormulaPtr recorded =
          taken ? condition.sym.bool_formula : Formula::negate(condition.sym.bool_formula);
      path_condition_.push_back(std::move(recorded));
      ++result_.branches_recorded;
    }
    return taken;
  }

  Flow exec_stmt(const Stmt& stmt, Frame& frame, Value& return_value) {
    burn_fuel();
    ++result_.stmts_executed;
    if (targets_.count(stmt.id) > 0) on_target_hit(stmt, frame);
    switch (stmt.kind) {
      case Stmt::Kind::kLet:
        frame.scopes.back()[stmt.name] = eval(*stmt.expr, frame);
        return Flow::kNormal;
      case Stmt::Kind::kAssign:
        assign_lvalue(*stmt.expr, eval(*stmt.expr2, frame), frame);
        return Flow::kNormal;
      case Stmt::Kind::kIf:
        if (branch(*stmt.expr, frame)) return exec_block(stmt.body, frame, return_value);
        return exec_block(stmt.else_body, frame, return_value);
      case Stmt::Kind::kWhile:
        while (branch(*stmt.expr, frame)) {
          burn_fuel();
          const Flow flow = exec_block(stmt.body, frame, return_value);
          if (flow == Flow::kReturn) return flow;
          if (flow == Flow::kBreak) break;
        }
        return Flow::kNormal;
      case Stmt::Kind::kReturn:
        if (stmt.expr) return_value = eval(*stmt.expr, frame).v;
        return Flow::kReturn;
      case Stmt::Kind::kThrow:
        throw MiniThrow(eval(*stmt.expr, frame).v);
      case Stmt::Kind::kExpr:
        eval(*stmt.expr, frame);
        return Flow::kNormal;
      case Stmt::Kind::kSync:
        eval(*stmt.expr, frame);
        return exec_block(stmt.body, frame, return_value);
      case Stmt::Kind::kSpawn:
        // Serial spawn semantics: the concolic walk runs the thread root
        // inline — single-schedule replay by construction (the schedule
        // explorer, not this engine, quantifies over interleavings).
        eval(*stmt.expr, frame);
        return Flow::kNormal;
      case Stmt::Kind::kBlock:
        return exec_block(stmt.body, frame, return_value);
      case Stmt::Kind::kTry: {
        try {
          return exec_block(stmt.body, frame, return_value);
        } catch (const MiniThrow& thrown) {
          frame.scopes.emplace_back();
          frame.scopes.back()[stmt.catch_var] = CValue(thrown.value());
          Flow flow = Flow::kNormal;
          for (const StmtPtr& handler : stmt.else_body) {
            flow = exec_stmt(*handler, frame, return_value);
            if (flow != Flow::kNormal) break;
          }
          frame.scopes.pop_back();
          return flow;
        }
      }
      case Stmt::Kind::kBreak: return Flow::kBreak;
      case Stmt::Kind::kContinue: return Flow::kContinue;
    }
    return Flow::kNormal;
  }

  void assign_lvalue(const Expr& lvalue, CValue value, Frame& frame) {
    switch (lvalue.kind) {
      case Expr::Kind::kVar: {
        CValue* slot = lookup(frame, lvalue.text);
        if (slot == nullptr) throw InterpError("assignment to undeclared " + lvalue.text);
        *slot = std::move(value);
        return;
      }
      case Expr::Kind::kField: {
        const CValue base = eval(*lvalue.args[0], frame);
        if (base.v.is_null())
          throw MiniThrow(Value::of_string("NullPointerException: field write ." + lvalue.text));
        if (!base.v.is_object()) throw InterpError("field write on non-object");
        base.v.as_object()->fields[lvalue.text] = std::move(value.v);
        return;
      }
      case Expr::Kind::kIndex: {
        const CValue base = eval(*lvalue.args[0], frame);
        const CValue index = eval(*lvalue.args[1], frame);
        if (base.v.is_list()) {
          auto& items = *base.v.as_list();
          const std::int64_t i = index.v.as_int();
          if (i < 0 || static_cast<std::size_t>(i) >= items.size())
            throw MiniThrow(Value::of_string("IndexOutOfBounds: " + std::to_string(i)));
          items[static_cast<std::size_t>(i)] = std::move(value.v);
          return;
        }
        if (base.v.is_map()) {
          const std::string key = index.v.is_string() ? index.v.as_string()
                                                      : std::to_string(index.v.as_int());
          (*base.v.as_map())[key] = std::move(value.v);
          return;
        }
        throw InterpError("index write on non-container");
      }
      default:
        throw InterpError("invalid assignment target");
    }
  }

  CValue eval(const Expr& expr, Frame& frame) {
    burn_fuel();
    switch (expr.kind) {
      case Expr::Kind::kIntLit: return CValue(Value::of_int(expr.int_value));
      case Expr::Kind::kBoolLit: return CValue(Value::of_bool(expr.bool_value));
      case Expr::Kind::kStrLit: return CValue(Value::of_string(expr.text));
      case Expr::Kind::kNullLit: return CValue(Value::null());
      case Expr::Kind::kVar: {
        CValue* slot = lookup(frame, expr.text);
        if (slot == nullptr) throw InterpError("unknown variable: " + expr.text);
        return *slot;
      }
      case Expr::Kind::kField: {
        const CValue base = eval(*expr.args[0], frame);
        if (base.v.is_null())
          throw MiniThrow(Value::of_string("NullPointerException: field read ." + expr.text));
        if (!base.v.is_object()) throw InterpError("field read on non-object: ." + expr.text);
        const Object& object = *base.v.as_object();
        const auto it = object.fields.find(expr.text);
        if (it == object.fields.end())
          throw InterpError("object " + object.struct_name + " has no field " + expr.text);
        CValue out(it->second);
        // Derive a shadow from the field's identity-based location name.
        if (out.v.is_int()) {
          out.sym.int_var = field_var(object, expr.text);
        } else if (out.v.is_bool()) {
          out.sym.bool_formula =
              Formula::make_atom(Atom::bool_var(field_var(object, expr.text)));
        }
        return out;
      }
      case Expr::Kind::kIndex: {
        const CValue base = eval(*expr.args[0], frame);
        const CValue index = eval(*expr.args[1], frame);
        if (base.v.is_list()) {
          const auto& items = *base.v.as_list();
          const std::int64_t i = index.v.as_int();
          if (i < 0 || static_cast<std::size_t>(i) >= items.size())
            throw MiniThrow(Value::of_string("IndexOutOfBounds: " + std::to_string(i)));
          return CValue(items[static_cast<std::size_t>(i)]);
        }
        if (base.v.is_map()) {
          const std::string key = index.v.is_string() ? index.v.as_string()
                                                      : std::to_string(index.v.as_int());
          const auto& map = *base.v.as_map();
          const auto it = map.find(key);
          return CValue(it == map.end() ? Value::null() : it->second);
        }
        if (base.v.is_null())
          throw MiniThrow(Value::of_string("NullPointerException: index access"));
        throw InterpError("index on non-container");
      }
      case Expr::Kind::kUnary: {
        CValue operand = eval(*expr.args[0], frame);
        if (expr.un_op == minilang::UnOp::kNot) {
          if (!operand.v.is_bool()) throw InterpError("'!' on non-bool");
          CValue out(Value::of_bool(!operand.v.as_bool()));
          if (operand.sym.has_bool())
            out.sym.bool_formula = Formula::negate(operand.sym.bool_formula);
          return out;
        }
        if (!operand.v.is_int()) throw InterpError("unary '-' on non-int");
        return CValue(Value::of_int(-operand.v.as_int()));
      }
      case Expr::Kind::kBinary: return eval_binary(expr, frame);
      case Expr::Kind::kCall: {
        const FuncDecl* fn = program_.find_function(expr.text);
        if (fn != nullptr) {
          std::vector<CValue> args;
          args.reserve(expr.args.size());
          for (const minilang::ExprPtr& arg : expr.args) args.push_back(eval(*arg, frame));
          return CValue(call_function(*fn, std::move(args)));
        }
        return call_builtin(expr, frame);
      }
      case Expr::Kind::kNew: {
        const minilang::StructDecl* decl = program_.find_struct(expr.text);
        if (decl == nullptr) throw InterpError("unknown struct: " + expr.text);
        auto object = std::make_shared<Object>();
        object->struct_name = expr.text;
        object->object_id = next_object_id_++;
        for (const minilang::FieldDecl& field : decl->fields) {
          switch (field.type->kind) {
            case minilang::Type::Kind::kInt: object->fields[field.name] = Value::of_int(0); break;
            case minilang::Type::Kind::kBool:
              object->fields[field.name] = Value::of_bool(false);
              break;
            case minilang::Type::Kind::kString:
              object->fields[field.name] = Value::of_string("");
              break;
            case minilang::Type::Kind::kList: object->fields[field.name] = Value::new_list(); break;
            case minilang::Type::Kind::kMap: object->fields[field.name] = Value::new_map(); break;
            default: object->fields[field.name] = Value::null(); break;
          }
        }
        for (std::size_t i = 0; i < expr.args.size(); ++i)
          object->fields[expr.field_names[i]] = eval(*expr.args[i], frame).v;
        return CValue(Value::of_object(std::move(object)));
      }
    }
    throw InterpError("unreachable expression kind");
  }

  CValue eval_binary(const Expr& expr, Frame& frame) {
    using minilang::BinOp;
    if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
      const bool is_and = expr.bin_op == BinOp::kAnd;
      CValue lhs = eval(*expr.args[0], frame);
      if (!lhs.v.is_bool()) throw InterpError("logic op on non-bool");
      if (lhs.v.as_bool() != is_and) return lhs;  // short-circuit: result is lhs
      CValue rhs = eval(*expr.args[1], frame);
      if (!rhs.v.is_bool()) throw InterpError("logic op on non-bool");
      CValue out(Value::of_bool(rhs.v.as_bool()));
      if (lhs.sym.has_bool() && rhs.sym.has_bool()) {
        out.sym.bool_formula = is_and
                                   ? Formula::conj2(lhs.sym.bool_formula, rhs.sym.bool_formula)
                                   : Formula::disj2(lhs.sym.bool_formula, rhs.sym.bool_formula);
      } else if (rhs.sym.has_bool()) {
        // lhs is a neutral concrete element (true for &&, false for ||).
        out.sym.bool_formula = rhs.sym.bool_formula;
      }
      return out;
    }
    CValue lhs = eval(*expr.args[0], frame);
    CValue rhs = eval(*expr.args[1], frame);
    switch (expr.bin_op) {
      case BinOp::kEq:
      case BinOp::kNe: {
        const bool eq = expr.bin_op == BinOp::kEq;
        const bool concrete = lhs.v.equals(rhs.v) == eq;
        CValue out(Value::of_bool(concrete));
        out.sym.bool_formula = equality_shadow(lhs, rhs, eq);
        return out;
      }
      case BinOp::kAdd:
        if (lhs.v.is_string() || rhs.v.is_string())
          return CValue(Value::of_string(lhs.v.to_display() + rhs.v.to_display()));
        if (lhs.v.is_int() && rhs.v.is_int())
          return CValue(Value::of_int(lhs.v.as_int() + rhs.v.as_int()));
        throw InterpError("'+' on incompatible operands");
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
      case BinOp::kMod: {
        if (!lhs.v.is_int() || !rhs.v.is_int()) throw InterpError("arithmetic on non-int");
        const std::int64_t a = lhs.v.as_int();
        const std::int64_t b = rhs.v.as_int();
        switch (expr.bin_op) {
          case BinOp::kSub: return CValue(Value::of_int(a - b));
          case BinOp::kMul: return CValue(Value::of_int(a * b));
          case BinOp::kDiv:
            if (b == 0) throw MiniThrow(Value::of_string("ArithmeticException: divide by zero"));
            return CValue(Value::of_int(a / b));
          default:
            if (b == 0) throw MiniThrow(Value::of_string("ArithmeticException: mod by zero"));
            return CValue(Value::of_int(a % b));
        }
      }
      default: {  // relational
        if (lhs.v.is_string() && rhs.v.is_string()) {
          const int cmp = lhs.v.as_string().compare(rhs.v.as_string());
          const CmpOp op = to_cmp(expr.bin_op);
          return CValue(Value::of_bool(concrete_cmp(cmp, op, 0)));
        }
        if (!lhs.v.is_int() || !rhs.v.is_int())
          throw InterpError("comparison on incompatible types");
        const CmpOp op = to_cmp(expr.bin_op);
        CValue out(Value::of_bool(concrete_cmp(lhs.v.as_int(), op, rhs.v.as_int())));
        out.sym.bool_formula = cmp_shadow(lhs, rhs, op);
        return out;
      }
    }
  }

  /// Shadow for ==/!= over the supported shapes; null when untrackable.
  FormulaPtr equality_shadow(const CValue& lhs, const CValue& rhs, bool eq) {
    // Null comparison against an object: identity-named nullness atom. When
    // the non-null side is concretely null too, the comparison is concrete.
    const auto null_vs_object = [&](const CValue& null_side,
                                    const CValue& object_side) -> FormulaPtr {
      (void)null_side;
      if (!object_side.v.is_object()) return nullptr;
      FormulaPtr atom = Formula::make_atom(Atom::bool_var(null_var(*object_side.v.as_object())));
      return eq ? atom : Formula::negate(std::move(atom));
    };
    if (lhs.v.is_null() && (rhs.v.is_object() || rhs.v.is_null()))
      return null_vs_object(lhs, rhs);
    if (rhs.v.is_null() && (lhs.v.is_object() || lhs.v.is_null()))
      return null_vs_object(rhs, lhs);
    // Boolean equality: fold into the tracked side's formula.
    if (lhs.v.is_bool() && rhs.v.is_bool()) {
      const CValue* tracked = lhs.sym.has_bool() ? &lhs : (rhs.sym.has_bool() ? &rhs : nullptr);
      const CValue* other = tracked == &lhs ? &rhs : &lhs;
      if (tracked == nullptr) return nullptr;
      if (tracked->sym.has_bool() && other->sym.has_bool()) return nullptr;  // var==var: skip
      const bool want = other->v.as_bool() == eq;
      return want ? tracked->sym.bool_formula : Formula::negate(tracked->sym.bool_formula);
    }
    // Integer equality.
    if (lhs.v.is_int() && rhs.v.is_int())
      return cmp_shadow(lhs, rhs, eq ? CmpOp::kEq : CmpOp::kNe);
    return nullptr;
  }

  FormulaPtr cmp_shadow(const CValue& lhs, const CValue& rhs, CmpOp op) {
    const bool lhs_sym = lhs.sym.has_int();
    const bool rhs_sym = rhs.sym.has_int();
    if (lhs_sym && rhs_sym)
      return Formula::make_atom(Atom::cmp_var(lhs.sym.int_var, op, rhs.sym.int_var));
    if (lhs_sym)
      return Formula::make_atom(Atom::cmp_const(lhs.sym.int_var, op, rhs.v.as_int()));
    if (rhs_sym)
      return Formula::make_atom(
          Atom::cmp_const(rhs.sym.int_var, smt::cmp_swap(op), lhs.v.as_int()));
    return nullptr;
  }

  CValue call_builtin(const Expr& expr, Frame& frame) {
    const std::string& name = expr.text;
    std::vector<CValue> args;
    args.reserve(expr.args.size());
    for (const minilang::ExprPtr& arg : expr.args) args.push_back(eval(*arg, frame));
    const auto need = [&](std::size_t n) {
      if (args.size() != n)
        throw InterpError("builtin " + name + " expects " + std::to_string(n) + " args");
    };
    if (minilang::blocking_builtins().count(name) > 0) {
      now_ms_ += 5;
      return CValue(Value::null());
    }
    if (name == "print" || name == "log") return CValue(Value::null());
    if (name == "len") {
      need(1);
      const Value& v = args[0].v;
      if (v.is_list()) return CValue(Value::of_int(static_cast<std::int64_t>(v.as_list()->size())));
      if (v.is_map()) return CValue(Value::of_int(static_cast<std::int64_t>(v.as_map()->size())));
      if (v.is_string())
        return CValue(Value::of_int(static_cast<std::int64_t>(v.as_string().size())));
      throw InterpError("len() on non-container");
    }
    if (name == "list_new") return CValue(Value::new_list());
    if (name == "map_new") return CValue(Value::new_map());
    if (name == "push") {
      need(2);
      args[0].v.as_list()->push_back(args[1].v);
      return CValue(Value::null());
    }
    const auto key_of = [](const CValue& k) {
      return k.v.is_string() ? k.v.as_string() : std::to_string(k.v.as_int());
    };
    if (name == "put") {
      need(3);
      (*args[0].v.as_map())[key_of(args[1])] = args[2].v;
      return CValue(Value::null());
    }
    if (name == "get") {
      need(2);
      const auto& map = *args[0].v.as_map();
      const auto it = map.find(key_of(args[1]));
      return CValue(it == map.end() ? Value::null() : it->second);
    }
    if (name == "has") {
      need(2);
      return CValue(Value::of_bool(args[0].v.as_map()->count(key_of(args[1])) > 0));
    }
    if (name == "del") {
      need(2);
      args[0].v.as_map()->erase(key_of(args[1]));
      return CValue(Value::null());
    }
    if (name == "keys") {
      need(1);
      Value out = Value::new_list();
      for (const auto& [key, value] : *args[0].v.as_map()) {
        (void)value;
        out.as_list()->push_back(Value::of_string(key));
      }
      return CValue(std::move(out));
    }
    if (name == "contains") {
      need(2);
      for (const Value& item : *args[0].v.as_list())
        if (item.equals(args[1].v)) return CValue(Value::of_bool(true));
      return CValue(Value::of_bool(false));
    }
    if (name == "str") {
      need(1);
      return CValue(Value::of_string(args[0].v.to_display()));
    }
    if (name == "min" || name == "max") {
      need(2);
      const std::int64_t a = args[0].v.as_int();
      const std::int64_t b = args[1].v.as_int();
      return CValue(Value::of_int(name == "min" ? std::min(a, b) : std::max(a, b)));
    }
    if (name == "abs") {
      need(1);
      const std::int64_t a = args[0].v.as_int();
      return CValue(Value::of_int(a < 0 ? -a : a));
    }
    if (name == "assert") {
      if (args.empty() || !args[0].v.is_bool()) throw InterpError("assert() expects a bool");
      if (!args[0].v.as_bool()) {
        std::string message = "assertion failed";
        if (args.size() > 1) message += ": " + args[1].v.to_display();
        throw MiniThrow(Value::of_string(message));
      }
      return CValue(Value::null());
    }
    if (name == "now") {
      need(0);
      return CValue(Value::of_int(now_ms_));
    }
    if (name == "advance_clock") {
      need(1);
      now_ms_ += args[0].v.as_int();
      return CValue(Value::null());
    }
    throw InterpError("unknown function or builtin: " + name);
  }

  const Program& program_;
  const CheckConfig* config_ = nullptr;
  RunResult result_;
  smt::Solver solver_;
  std::vector<FormulaPtr> path_condition_;
  std::vector<std::string> call_stack_;
  std::unordered_set<int> targets_;
  std::unordered_set<std::string> relevant_fields_;
  bool contract_has_null_ = false;
  std::int64_t fuel_used_ = 0;
  std::int64_t now_ms_ = 0;
  std::uint64_t next_object_id_ = 1;
};

Engine::Engine(const Program& program) : impl_(std::make_unique<Impl>(program)) {}
Engine::~Engine() = default;

RunResult Engine::run_test(const std::string& test_name, const CheckConfig& config) {
  obs::ScopedSpan span("concolic.run_test");
  span.attr("test", test_name);
  const RunResult result = impl_->run(test_name, config);
  // Fork-point accounting: every executed branch is a potential fork of the
  // symbolic path; recorded ones entered the trace condition π.
  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("concolic.tests_run").add();
  registry.counter("concolic.branches_total").add(result.branches_total);
  registry.counter("concolic.branches_recorded").add(result.branches_recorded);
  registry.counter("concolic.target_hits").add(static_cast<std::int64_t>(result.hits.size()));
  if (result.degraded()) registry.counter("concolic.degraded_runs").add();
  registry.histogram("concolic.test_ms").record(span.elapsed_ms());
  span.attr("passed", result.test_passed);
  span.attr("hits", result.hits.size());
  span.attr("branches_total", result.branches_total);
  span.attr("branches_recorded", result.branches_recorded);
  return result;
}

}  // namespace lisa::concolic
