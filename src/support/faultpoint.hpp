// Named fault-injection points for robustness testing.
//
// Every stage boundary of the checking stack carries a named fault point;
// tests (and the chaos smoke in scripts/check.sh) arm them to prove each
// stage degrades gracefully instead of crashing or silently passing:
//
//   site                where                    armed effect
//   ------------------  -----------------------  ---------------------------
//   smt.solve           smt::Solver::solve       timeout/fail → kUnknown
//   infer.propose       MockLlm::infer           fail/timeout → transient
//                                                InferenceError; malformed →
//                                                corrupted proposal
//   explorer.path       concolic::explore        fail → path skipped
//   summaries.fixpoint  SummaryMap::compute      fail → screener degrades to
//                                                call-site-havoc facts
//   report.serialize    ContractCheckReport::    fail → degraded JSON stub,
//                       to_json                  run completes
//
// Specs come from the LISA_FAULTPOINTS environment variable (read once at
// first use) or FaultRegistry::configure in tests:
//
//   LISA_FAULTPOINTS=smt.solve=timeout,infer.propose=fail:2,smt.solve=delay:5
//
// Grammar: site=action[:count] separated by commas. Actions: fail, timeout,
// malformed, delay:<ms>. `count` bounds how many times the site fires
// (fail:2 = first two arrivals fail, then the site is spent); omitted count
// means every arrival fires. delay's parameter is milliseconds, not a count.
//
// Disarmed cost: one relaxed atomic load per site visit — the registry is
// safe to leave compiled into every hot path.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <atomic>
#include <string>
#include <vector>

namespace lisa::support {

enum class FaultAction { kNone, kFail, kTimeout, kMalformed, kDelay };

[[nodiscard]] const char* fault_action_name(FaultAction action);

class FaultRegistry {
 public:
  /// The process-global registry; parses LISA_FAULTPOINTS on first call.
  [[nodiscard]] static FaultRegistry& instance();

  /// Replaces the configuration with `spec` ("" disarms everything).
  /// Returns false — leaving the registry disarmed — when the spec is
  /// malformed (unknown action, bad count); a broken chaos config must be
  /// loud, not a silent no-op of the intended faults.
  bool configure(const std::string& spec);

  /// Disarms every site and zeroes trigger counts.
  void clear();

  /// Consults the site and consumes one firing. Returns kNone when the
  /// site is disarmed or spent. For kDelay, `*delay_ms` receives the
  /// configured sleep.
  FaultAction consume(const std::string& site, std::int64_t* delay_ms = nullptr);

  /// How many times the site has fired since configure/clear.
  [[nodiscard]] std::int64_t triggered(const std::string& site) const;

  /// Sites currently armed (spent sites included until clear()).
  [[nodiscard]] std::vector<std::string> armed_sites() const;

 private:
  FaultRegistry();

  struct Spec {
    FaultAction action = FaultAction::kNone;
    std::int64_t remaining = -1;  // -1 = unlimited
    std::int64_t delay_ms = 0;
    std::int64_t triggered = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Spec> sites_;
  std::atomic<bool> armed_{false};
};

/// Consult-and-consume at a named site. One relaxed atomic load when the
/// registry is disarmed; sleeps in place for kDelay and reports it as kNone
/// (delay sites perturb timing, they do not change control flow).
[[nodiscard]] FaultAction faultpoint(const std::string& site);

}  // namespace lisa::support
