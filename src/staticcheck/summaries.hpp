// Interprocedural function summaries — SCC-ordered effect inference.
//
// Every analysis in analyses.hpp goes blind at a call without these: a call
// kills all heap facts, any tracked object passed as an argument "escapes",
// and only the coarse syntactic `reaches_blocking` bit survives. This module
// computes, per MiniLang function:
//
//   * MOD/REF sets — field names the function (transitively) writes / reads,
//     plus the parameter indices it may write through, so callers havoc only
//     what the callee can actually touch;
//   * may-throw / may-block and the net monitor effect on normal return and
//     on throw unwind (block-structured `sync` makes both zero; the summary
//     proves it instead of assuming it);
//   * nullness transfer — return nullability and param-rooted facts that
//     hold on every normal return (a callee that null-checks its parameter
//     makes the caller's argument non-null after the call);
//   * return-value intervals, iterated to a widened fixpoint on recursive
//     SCCs (bottom-up over the Tarjan condensation, callees before callers);
//   * top-down boundary facts — for non-entry functions, the join of every
//     call site's argument state, so analyses of a helper start from what
//     its callers actually pass.
//
// Builtins have no bodies; they get a fixed effect table (container
// mutators write through their container argument, everything else is
// effect-free on user heap). All analyses accept a `const SummaryMap*`;
// passing nullptr reproduces the PR 2 havoc-everything behaviour, which is
// the ablation baseline in bench_static_screening.
#pragma once

#include <compare>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"
#include "staticcheck/analyses.hpp"

namespace lisa::staticcheck {

/// Source anchor for concurrency facts (function + position). Kept tiny so
/// summary sets stay cheap to compare in the fixpoint.
struct SummarySite {
  std::string function;
  int line = 0;
  int column = 0;

  auto operator<=>(const SummarySite&) const = default;
};

/// One observed lock-acquisition ordering: `second` is acquired while
/// `first` is held. `function`/`line`/`column` locate the *inner*
/// acquisition; `via` names the one-hop callee the edge was imported
/// through (empty for a direct nested `sync`). Storing only one hop keeps
/// the edge set finite on recursive SCCs.
struct LockOrderEdge {
  std::string first;   // monitor already held (caller namespace)
  std::string second;  // monitor acquired under it
  std::string function;
  int line = 0;
  int column = 0;
  std::string via;

  auto operator<=>(const LockOrderEdge&) const = default;
};

/// One shared-field access with the must-held lockset in force when it
/// executes. `base` is the access path of the owning object ("store" for
/// `store.pending`), rewritten into the caller's namespace on import.
struct FieldAccessSite {
  std::string function;
  int line = 0;
  int column = 0;
  bool is_write = false;
  std::string base;
  std::set<std::string> lockset;  // must-held monitors at the access

  auto operator<=>(const FieldAccessSite&) const = default;
};

/// Everything the summary knows about accesses to one field name.
struct FieldLockSummary {
  std::set<FieldAccessSite> sites;
  /// Set when the site cap dropped accesses; consumers must not prove
  /// safety from a truncated set.
  bool truncated = false;

  bool operator==(const FieldLockSummary& other) const {
    return sites == other.sites && truncated == other.truncated;
  }
};

struct FunctionSummary {
  enum class Nullability { kUnknown, kNonNull, kNull };

  // --- effects (field-name abstraction, matching write_kills) ---
  std::set<std::string> mod_fields;   // fields possibly written, transitively
  std::set<std::string> ref_fields;   // fields possibly read, transitively
  std::set<std::size_t> mod_params;   // params the callee may write through
                                      // (or store into a container)
  bool opaque_effects = false;        // calls something with unknown effects

  // --- exceptional / blocking behaviour ---
  bool may_throw = false;  // an uncaught throw can leave the function
  bool may_block = false;  // a blocking call is CFG-reachable from entry
  int net_monitor_normal = 0;  // monitors held at normal return minus entry
  int net_monitor_throw = 0;   // same along throw unwinds out of the function

  // --- nullness / interval transfer ---
  Nullability return_nullness = Nullability::kUnknown;
  /// Param-rooted facts holding on every normal return ("s" or "s.session"),
  /// valid only because MiniLang callees cannot rebind caller locals and the
  /// summary drops params the callee itself rebinds.
  std::map<std::string, NullFact> nullness_on_return;
  /// Over-approximation of every returned integer; top when unknown, empty
  /// (lo > hi) while a recursive fixpoint is still climbing.
  Interval return_interval;

  // --- top-down boundary facts (join over every call site) ---
  std::map<std::string, NullFact> boundary_nullness;
  std::map<std::string, Interval> boundary_intervals;

  // --- concurrency (entry-relative, transitive through calls) ---
  /// Monitors the function (or a callee) may acquire, keyed by canonical
  /// monitor path in this function's namespace; the value locates the
  /// innermost acquisition site.
  std::map<std::string, SummarySite> acquired_locks;
  /// Lock-acquisition orderings observed in this function or imported from
  /// callees (monitor names rewritten through the call's arguments).
  std::set<LockOrderEdge> lock_order_edges;
  /// Shared-field accesses with their must-held locksets.
  std::map<std::string, FieldLockSummary> field_locks;
  /// Set when the fixpoint degraded to conservative (or a callee did):
  /// the concurrency sets above are incomplete and must not prove safety.
  bool concurrency_degraded = false;
};

/// What a single call may do to the caller's state. Derived from the callee
/// summary (or the builtin effect table) by `SummaryMap::effect_of`.
struct CallEffect {
  /// Unknown callee or opaque effects: kill every heap fact, escape every
  /// argument — the legacy conservative rule.
  bool havoc_all = false;
  /// Valid when !havoc_all: fields whose facts the call kills.
  const std::set<std::string>* mod_fields = nullptr;
  /// Valid when !havoc_all: argument indices that may be written through.
  const std::set<std::size_t>* mod_params = nullptr;
  /// Container mutators (put/push/del) write through or store every
  /// argument, but cannot write struct fields — field facts survive.
  bool writes_all_params = false;

  [[nodiscard]] bool kills_field(const std::string& field) const {
    return havoc_all || (mod_fields != nullptr && mod_fields->count(field) > 0);
  }
  [[nodiscard]] bool writes_param(std::size_t index) const {
    return havoc_all || writes_all_params ||
           (mod_params != nullptr && mod_params->count(index) > 0);
  }
};

class SummaryMap {
 public:
  struct Stats {
    int components = 0;
    int recursive_components = 0;
    /// Extra fixpoint rounds spent on recursive components (0 when the
    /// program is call-acyclic).
    int fixpoint_iterations = 0;
    double elapsed_ms = 0.0;
  };

  /// Computes summaries for every function of `program`, bottom-up over the
  /// call-graph condensation. `program` must outlive the map.
  [[nodiscard]] static SummaryMap compute(const minilang::Program& program,
                                          const analysis::CallGraph& graph);

  /// Summary of a user-defined function, or nullptr (builtins, unknown).
  [[nodiscard]] const FunctionSummary* find(const std::string& name) const;

  /// Call-site effect of calling `callee`, builtins included.
  [[nodiscard]] CallEffect effect_of(const std::string& callee) const;

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::map<std::string, FunctionSummary> summaries_;
  Stats stats_;
};

}  // namespace lisa::staticcheck
