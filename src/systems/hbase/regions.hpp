// Mini-HBase region server: region lifecycle (compaction, split), write-ahead
// log rolling, and the client-side meta cache.
//
// Native analogs of three corpus cases:
//   * HBASE-SP1/SP2 — a region must not split while compacting,
//   * HBASE-W1/W2  — the WAL must not roll while the region is flushing,
//   * HBASE-M1/M2  — requests must not route through stale meta entries.
// Each guarding check is individually togglable, mirroring the historical
// partial coverage.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "systems/sim/event_loop.hpp"

namespace lisa::systems::hbase {

struct RegionGuards {
  bool split_checks_compaction = true;   // client split path
  bool balancer_checks_compaction = true;
  bool manual_roll_checks_flush = true;  // manual WAL roll
  bool timer_roll_checks_flush = true;
  bool routing_checks_stale = true;      // single-get routing
  bool batch_routing_checks_stale = true;
};

struct RegionStats {
  std::uint64_t splits_ok = 0;
  std::uint64_t splits_during_compaction = 0;  // incident: lost store files
  std::uint64_t splits_rejected = 0;
  std::uint64_t wal_rolls = 0;
  std::uint64_t rolls_during_flush = 0;        // incident: lost edits
  std::uint64_t rolls_rejected = 0;
  std::uint64_t routed = 0;
  std::uint64_t routed_stale = 0;              // incident: NSRE storms
  std::uint64_t refreshes = 0;
};

class RegionServer {
 public:
  RegionServer(EventLoop& loop, RegionGuards guards = {})
      : loop_(loop), guards_(guards) {}

  // -- Region lifecycle ---------------------------------------------------

  void add_region(const std::string& name);
  /// Starts a major compaction lasting `duration_ms` of virtual time.
  void start_compaction(const std::string& name, std::int64_t duration_ms);
  [[nodiscard]] bool is_compacting(const std::string& name) const;

  /// Client-requested split; returns true if the split executed.
  bool request_split(const std::string& name);
  /// Balancer-initiated split (the second trigger path).
  bool balancer_split(const std::string& name);
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }

  // -- WAL ------------------------------------------------------------

  /// Starts a memstore flush lasting `duration_ms`.
  void start_flush(const std::string& name, std::int64_t duration_ms);
  bool request_wal_roll(const std::string& name);  // manual path
  bool timer_wal_roll(const std::string& name);    // size/periodic path

  // -- Meta cache -------------------------------------------------------

  void cache_location(const std::string& row, const std::string& region_name);
  /// Marks a row's cache entry stale (region moved).
  void invalidate(const std::string& row);
  bool route_get(const std::string& row);                 // single-get path
  std::size_t route_batch(const std::vector<std::string>& rows);  // multi path

  [[nodiscard]] const RegionStats& stats() const { return stats_; }

 private:
  struct Region {
    std::string name;
    bool compacting = false;
    bool flushing = false;
    int generation = 0;  // bumped by splits
  };
  struct CacheEntry {
    std::string region_name;
    bool stale = false;
  };

  bool split_region(const std::string& name, bool check);
  bool roll_wal(const std::string& name, bool check);
  bool route_one(const std::string& row, bool check);

  EventLoop& loop_;
  RegionGuards guards_;
  RegionStats stats_;
  std::map<std::string, Region> regions_;
  std::map<std::string, CacheEntry> meta_cache_;
};

}  // namespace lisa::systems::hbase
