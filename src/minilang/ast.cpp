#include "minilang/ast.hpp"

#include <algorithm>

namespace lisa::minilang {

namespace {
TypePtr make_simple(Type::Kind kind) {
  auto type = std::make_shared<Type>();
  type->kind = kind;
  return type;
}
}  // namespace

TypePtr Type::make_int() {
  static const TypePtr instance = make_simple(Kind::kInt);
  return instance;
}
TypePtr Type::make_bool() {
  static const TypePtr instance = make_simple(Kind::kBool);
  return instance;
}
TypePtr Type::make_string() {
  static const TypePtr instance = make_simple(Kind::kString);
  return instance;
}
TypePtr Type::make_void() {
  static const TypePtr instance = make_simple(Kind::kVoid);
  return instance;
}
TypePtr Type::make_any() {
  static const TypePtr instance = make_simple(Kind::kAny);
  return instance;
}

TypePtr Type::make_struct(std::string name, bool nullable) {
  auto type = std::make_shared<Type>();
  type->kind = Kind::kStruct;
  type->struct_name = std::move(name);
  type->nullable = nullable;
  return type;
}

TypePtr Type::make_list(TypePtr elem) {
  auto type = std::make_shared<Type>();
  type->kind = Kind::kList;
  type->elem = std::move(elem);
  return type;
}

TypePtr Type::make_map(TypePtr key, TypePtr value) {
  auto type = std::make_shared<Type>();
  type->kind = Kind::kMap;
  type->key = std::move(key);
  type->elem = std::move(value);
  return type;
}

TypePtr Type::as_nullable(const TypePtr& base) {
  auto type = std::make_shared<Type>(*base);
  type->nullable = true;
  return type;
}

std::string Type::to_string() const {
  std::string out;
  switch (kind) {
    case Kind::kInt: out = "int"; break;
    case Kind::kBool: out = "bool"; break;
    case Kind::kString: out = "string"; break;
    case Kind::kVoid: out = "void"; break;
    case Kind::kAny: out = "any"; break;
    case Kind::kStruct: out = struct_name; break;
    case Kind::kList: out = "list<" + (elem ? elem->to_string() : "any") + ">"; break;
    case Kind::kMap:
      out = "map<" + (key ? key->to_string() : "any") + "," +
            (elem ? elem->to_string() : "any") + ">";
      break;
  }
  if (nullable) out.push_back('?');
  return out;
}

bool Type::same_base(const Type& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kStruct: return struct_name == other.struct_name;
    case Kind::kList: return elem && other.elem && elem->same_base(*other.elem);
    case Kind::kMap:
      return key && other.key && key->same_base(*other.key) && elem && other.elem &&
             elem->same_base(*other.elem);
    default: return true;
  }
}

const char* bin_op_text(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

const FieldDecl* StructDecl::find_field(const std::string& field_name) const {
  const auto it = std::find_if(fields.begin(), fields.end(),
                               [&](const FieldDecl& f) { return f.name == field_name; });
  return it == fields.end() ? nullptr : &*it;
}

bool FuncDecl::has_annotation(std::string_view annotation) const {
  return std::find(annotations.begin(), annotations.end(), annotation) != annotations.end();
}

const StructDecl* Program::find_struct(const std::string& name) const {
  const auto it = std::find_if(structs.begin(), structs.end(),
                               [&](const StructDecl& s) { return s.name == name; });
  return it == structs.end() ? nullptr : &*it;
}

const FuncDecl* Program::find_function(const std::string& name) const {
  const auto it = std::find_if(functions.begin(), functions.end(),
                               [&](const FuncDecl& f) { return f.name == name; });
  return it == functions.end() ? nullptr : &*it;
}

std::vector<const FuncDecl*> Program::functions_with(std::string_view annotation) const {
  std::vector<const FuncDecl*> out;
  for (const FuncDecl& fn : functions)
    if (fn.has_annotation(annotation)) out.push_back(&fn);
  return out;
}

namespace {
void visit_stmts(const FuncDecl& fn, const std::vector<StmtPtr>& stmts,
                 const std::function<void(const FuncDecl&, const Stmt&)>& visit) {
  for (const StmtPtr& stmt : stmts) {
    visit(fn, *stmt);
    visit_stmts(fn, stmt->body, visit);
    visit_stmts(fn, stmt->else_body, visit);
  }
}
}  // namespace

void Program::for_each_stmt(
    const std::function<void(const FuncDecl&, const Stmt&)>& visit) const {
  for (const FuncDecl& fn : functions) visit_stmts(fn, fn.body, visit);
}

}  // namespace lisa::minilang
