file(REMOVE_RECURSE
  "CMakeFiles/systems_chaos_test.dir/systems_chaos_test.cpp.o"
  "CMakeFiles/systems_chaos_test.dir/systems_chaos_test.cpp.o.d"
  "systems_chaos_test"
  "systems_chaos_test.pdb"
  "systems_chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systems_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
