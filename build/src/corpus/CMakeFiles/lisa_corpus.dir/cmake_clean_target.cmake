file(REMOVE_RECURSE
  "liblisa_corpus.a"
)
