#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace lisa::support {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_keyword(std::string_view word) {
    for (char c : word) {
      if (pos_ >= text_.size() || text_[pos_] != c) fail("invalid literal");
      ++pos_;
    }
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_keyword("true"); return Json(true);
      case 'f': expect_keyword("false"); return Json(false);
      case 'n': expect_keyword("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') return Json(std::move(object));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return Json(std::move(array));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = next();
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (token.find_first_of(".eE") == std::string_view::npos) {
      std::int64_t value = 0;
      const auto result = std::from_chars(token.data(), token.data() + token.size(), value);
      if (result.ec != std::errc() || result.ptr != token.data() + token.size())
        fail("invalid integer");
      return Json(value);
    }
    double value = 0.0;
    const auto result = std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc() || result.ptr != token.data() + token.size())
      fail("invalid number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<std::int64_t>(value_));
  } else if (is_double()) {
    const double d = std::get<double>(value_);
    if (std::isfinite(d)) {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.6g", d);
      out += buffer;
    } else {
      out += "null";  // JSON has no Inf/NaN; degrade gracefully.
    }
  } else if (is_string()) {
    out.push_back('"');
    out += json_escape(as_string());
    out.push_back('"');
  } else if (is_array()) {
    const JsonArray& array = as_array();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out.push_back(',');
      newline(depth + 1);
      array[i].write(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const JsonObject& object = as_object();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : object) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      out.push_back('"');
      out += json_escape(key);
      out += indent > 0 ? "\": " : "\":";
      value.write(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  write(out, /*indent=*/2, /*depth=*/0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace lisa::support
