#include "staticcheck/cfg.hpp"

#include <functional>

#include "minilang/printer.hpp"

namespace lisa::staticcheck {

using minilang::Expr;
using minilang::FuncDecl;
using minilang::Stmt;
using minilang::StmtPtr;

namespace {

/// Recursive builder threading break/continue/catch targets.
class Builder {
 public:
  explicit Builder(const FuncDecl& fn) : fn_(fn) {}

  void run(Cfg& cfg, std::vector<CfgNode>& nodes, int& entry, int& exit) {
    (void)cfg;
    nodes_ = &nodes;
    entry = add(CfgNode::Kind::kEntry, nullptr, fn_.loc);
    exit_id_ = add(CfgNode::Kind::kExit, nullptr, fn_.loc);
    const int last = build_block(fn_.body, entry);
    if (last >= 0) link(last, exit_id_);
    exit = exit_id_;
  }

 private:
  struct LoopContext {
    int head = -1;        // continue target
    std::vector<int> breaks;  // nodes needing an edge to the loop's join
  };

  int add(CfgNode::Kind kind, const Stmt* stmt, minilang::SourceLoc loc) {
    CfgNode node;
    node.kind = kind;
    node.id = static_cast<int>(nodes_->size());
    node.stmt = stmt;
    node.loc = loc;
    nodes_->push_back(std::move(node));
    return nodes_->back().id;
  }

  void link(int from, int to, const Expr* guard = nullptr, bool taken = true,
            bool suppress_refine = false, int sync_unwind = 0) {
    if (from < 0 || to < 0) return;
    CfgEdge edge;
    edge.to = to;
    edge.guard = guard;
    edge.taken = taken;
    edge.suppress_refine = suppress_refine;
    edge.sync_unwind = sync_unwind;
    (*nodes_)[static_cast<std::size_t>(from)].succs.push_back(edge);
    (*nodes_)[static_cast<std::size_t>(to)].preds.push_back(from);
  }

  /// Any statement executed inside a `try` may raise; give its node an edge
  /// to the innermost catch handler. Unwinding releases every monitor
  /// acquired since that handler's try was entered.
  void note_may_throw(int node) {
    if (catch_targets_.empty()) return;
    link(node, catch_targets_.back(), nullptr, true, false,
         sync_depth_ - catch_sync_depths_.back());
  }

  /// Builds `stmts` starting from `pred` (the node normal control flows in
  /// from). Returns the node normal control flows out of, or -1 if the block
  /// never completes normally (return/throw/break on every path).
  int build_block(const std::vector<StmtPtr>& stmts, int pred) {
    int current = pred;
    for (const StmtPtr& stmt : stmts) {
      if (current < 0) break;  // unreachable statements are not modeled
      current = build_stmt(*stmt, current);
    }
    return current;
  }

  int build_stmt(const Stmt& stmt, int pred) {
    switch (stmt.kind) {
      case Stmt::Kind::kLet:
      case Stmt::Kind::kAssign:
      case Stmt::Kind::kExpr:
      case Stmt::Kind::kSpawn: {
        const int node = add(CfgNode::Kind::kStmt, &stmt, stmt.loc);
        link(pred, node);
        note_may_throw(node);
        return node;
      }
      case Stmt::Kind::kReturn: {
        const int node = add(CfgNode::Kind::kStmt, &stmt, stmt.loc);
        link(pred, node);
        note_may_throw(node);
        link(node, exit_id_);
        return -1;
      }
      case Stmt::Kind::kThrow: {
        const int node = add(CfgNode::Kind::kStmt, &stmt, stmt.loc);
        link(pred, node);
        if (catch_targets_.empty()) {
          link(node, exit_id_, nullptr, true, false, sync_depth_);
        } else {
          link(node, catch_targets_.back(), nullptr, true, false,
               sync_depth_ - catch_sync_depths_.back());
        }
        return -1;
      }
      case Stmt::Kind::kBreak: {
        const int node = add(CfgNode::Kind::kStmt, &stmt, stmt.loc);
        link(pred, node);
        if (!loops_.empty()) loops_.back().breaks.push_back(node);
        return -1;
      }
      case Stmt::Kind::kContinue: {
        const int node = add(CfgNode::Kind::kStmt, &stmt, stmt.loc);
        link(pred, node);
        if (!loops_.empty()) link(node, loops_.back().head);
        return -1;
      }
      case Stmt::Kind::kIf: {
        const int cond = add(CfgNode::Kind::kBranch, &stmt, stmt.loc);
        link(pred, cond);
        note_may_throw(cond);  // condition evaluation may call and throw
        const int join = add(CfgNode::Kind::kJoin, nullptr, stmt.loc);
        const int then_entry = add(CfgNode::Kind::kJoin, nullptr, stmt.loc);
        link(cond, then_entry, stmt.expr.get(), /*taken=*/true);
        const int then_out = build_block(stmt.body, then_entry);
        if (then_out >= 0) link(then_out, join);
        const int else_entry = add(CfgNode::Kind::kJoin, nullptr, stmt.loc);
        link(cond, else_entry, stmt.expr.get(), /*taken=*/false);
        const int else_out = build_block(stmt.else_body, else_entry);
        if (else_out >= 0) link(else_out, join);
        return nodes_->at(static_cast<std::size_t>(join)).preds.empty() ? -1 : join;
      }
      case Stmt::Kind::kWhile: {
        const int head = add(CfgNode::Kind::kBranch, &stmt, stmt.loc);
        (*nodes_)[static_cast<std::size_t>(head)].loop_head = true;
        link(pred, head);
        note_may_throw(head);
        const int body_entry = add(CfgNode::Kind::kJoin, nullptr, stmt.loc);
        link(head, body_entry, stmt.expr.get(), /*taken=*/true);
        loops_.push_back({head, {}});
        const int body_out = build_block(stmt.body, body_entry);
        if (body_out >= 0) link(body_out, head);  // back edge
        const LoopContext loop = loops_.back();
        loops_.pop_back();
        // Exit edge: guard recorded but never refined — the path enumerator
        // records no exit guard when falling past a loop, and the screener
        // must not prove facts the checker cannot see (cfg.hpp header).
        const int after = add(CfgNode::Kind::kJoin, nullptr, stmt.loc);
        link(head, after, stmt.expr.get(), /*taken=*/false, /*suppress_refine=*/true);
        for (const int break_node : loop.breaks) link(break_node, after);
        return after;
      }
      case Stmt::Kind::kSync: {
        const int enter = add(CfgNode::Kind::kSyncEnter, &stmt, stmt.loc);
        link(pred, enter);
        // If evaluating the monitor expression throws, the monitor is not
        // held. Analyses model acquisition in the enter node's transfer, so
        // the exception edge must count this sync in its unwind to cancel it.
        ++sync_depth_;
        note_may_throw(enter);
        const int body_out = build_block(stmt.body, enter);
        --sync_depth_;
        const int leave = add(CfgNode::Kind::kSyncExit, &stmt, stmt.loc);
        if (body_out >= 0) link(body_out, leave);
        // A throw inside the sync body leaves through the catch target with
        // the monitor conceptually released; that path bypasses `leave`.
        return nodes_->at(static_cast<std::size_t>(leave)).preds.empty() ? -1 : leave;
      }
      case Stmt::Kind::kBlock:
        return build_block(stmt.body, pred);
      case Stmt::Kind::kTry: {
        const int handler = add(CfgNode::Kind::kJoin, nullptr, stmt.loc);
        catch_targets_.push_back(handler);
        catch_sync_depths_.push_back(sync_depth_);
        const int body_out = build_block(stmt.body, pred);
        catch_targets_.pop_back();
        catch_sync_depths_.pop_back();
        const int catch_out = build_block(stmt.else_body, handler);
        const int join = add(CfgNode::Kind::kJoin, nullptr, stmt.loc);
        if (body_out >= 0) link(body_out, join);
        if (catch_out >= 0) link(catch_out, join);
        return nodes_->at(static_cast<std::size_t>(join)).preds.empty() ? -1 : join;
      }
    }
    return pred;
  }

  const FuncDecl& fn_;
  std::vector<CfgNode>* nodes_ = nullptr;
  int exit_id_ = -1;
  std::vector<LoopContext> loops_;
  std::vector<int> catch_targets_;
  std::vector<int> catch_sync_depths_;  // sync depth at each catch target
  int sync_depth_ = 0;
};

}  // namespace

Cfg Cfg::build(const FuncDecl& fn) {
  Cfg cfg;
  cfg.fn_ = &fn;
  Builder builder(fn);
  builder.run(cfg, cfg.nodes_, cfg.entry_, cfg.exit_);
  return cfg;
}

std::vector<int> Cfg::reverse_post_order() const {
  std::vector<int> order;
  std::vector<bool> visited(nodes_.size(), false);
  const std::function<void(int)> dfs = [&](int id) {
    if (visited[static_cast<std::size_t>(id)]) return;
    visited[static_cast<std::size_t>(id)] = true;
    for (const CfgEdge& edge : nodes_[static_cast<std::size_t>(id)].succs) dfs(edge.to);
    order.push_back(id);
  };
  dfs(entry_);
  for (const CfgNode& node : nodes_) dfs(node.id);  // stragglers (unreachable)
  std::vector<int> rpo(order.rbegin(), order.rend());
  return rpo;
}

int Cfg::node_of(const minilang::Stmt* stmt) const {
  for (const CfgNode& node : nodes_)
    if (node.stmt == stmt &&
        (node.kind == CfgNode::Kind::kStmt || node.kind == CfgNode::Kind::kBranch ||
         node.kind == CfgNode::Kind::kSyncEnter))
      return node.id;
  return -1;
}

std::string Cfg::to_string() const {
  std::string out = "cfg " + fn_->name + " (entry " + std::to_string(entry_) + ", exit " +
                    std::to_string(exit_) + ")\n";
  for (const CfgNode& node : nodes_) {
    out += "  n" + std::to_string(node.id) + " ";
    switch (node.kind) {
      case CfgNode::Kind::kEntry: out += "entry"; break;
      case CfgNode::Kind::kExit: out += "exit"; break;
      case CfgNode::Kind::kJoin: out += "join"; break;
      case CfgNode::Kind::kSyncEnter: out += "sync-enter"; break;
      case CfgNode::Kind::kSyncExit: out += "sync-exit"; break;
      case CfgNode::Kind::kBranch:
        out += node.loop_head ? "loop " : "branch ";
        out += minilang::expr_text(*node.stmt->expr);
        break;
      case CfgNode::Kind::kStmt:
        out += minilang::stmt_header_text(*node.stmt);
        break;
    }
    out += " ->";
    for (const CfgEdge& edge : node.succs) {
      out += " n" + std::to_string(edge.to);
      if (edge.guard != nullptr) out += (edge.taken ? "[T]" : "[F]");
    }
    out += "\n";
  }
  return out;
}

}  // namespace lisa::staticcheck
