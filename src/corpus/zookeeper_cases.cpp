// ZooKeeper incident cases.
//
// Case 1 models ZOOKEEPER-1208 → ZOOKEEPER-1496 (Figs. 2 and 3 of the paper):
// an ephemeral node created on a closing session leaves stale data behind.
// Case 2 models ZOOKEEPER-2201 → ZOOKEEPER-3531 (Fig. 6): blocking
// serialization inside a synchronized block wedges the request pipeline.
// Cases 3–5 are additional ZooKeeper regressions in the same shape. Case 6
// is an interleaving-sensitive regression: a lock-order inversion between
// the election state and the peer set.
#include "corpus/ticket.hpp"

namespace lisa::corpus {
namespace {

// ---------------------------------------------------------------------------
// Case 1: ephemeral node created on closing session (ZK-1208 / ZK-1496).
// ---------------------------------------------------------------------------

// Shared scaffolding for both versions of the ephemeral-node codebase.
constexpr const char* kZkEphemeralCommon = R"ml(
struct Session { id: int; owner: string; is_closing: bool; ttl: int; }
struct DataNode { path: string; data: string; ephemeral_owner: int; }
struct SessionTracker { sessions: map<string, Session>; }
struct DataTree { nodes: map<string, DataNode>; node_count: int; }
struct Server { tracker: SessionTracker; tree: DataTree; }

fn new_server() -> Server {
  return new Server { tracker: new SessionTracker {}, tree: new DataTree {} };
}

fn open_session(server: Server, session_id: int, owner: string) -> Session {
  let s = new Session { id: session_id, owner: owner, is_closing: false, ttl: 30000 };
  put(server.tracker.sessions, str(session_id), s);
  return s;
}

fn get_session(server: Server, session_id: int) -> Session? {
  return get(server.tracker.sessions, str(session_id));
}

// Phase one of session close: the session is marked closing while its
// ephemeral nodes are being collected (the race window of ZK-1208).
fn begin_close_session(server: Server, session_id: int) {
  let s = get_session(server, session_id);
  if (s != null) {
    s.is_closing = true;
  }
}

fn finish_close_session(server: Server, session_id: int) {
  let s = get_session(server, session_id);
  if (s == null) {
    return;
  }
  let paths = keys(server.tree.nodes);
  let i = 0;
  while (i < len(paths)) {
    let node = get(server.tree.nodes, paths[i]);
    if (node != null && node.ephemeral_owner == session_id) {
      del(server.tree.nodes, paths[i]);
      server.tree.node_count = server.tree.node_count - 1;
    }
    i = i + 1;
  }
  del(server.tracker.sessions, str(session_id));
}

fn create_ephemeral_node(server: Server, path: string, data: string, owner: int) {
  let node = new DataNode { path: path, data: data, ephemeral_owner: owner };
  put(server.tree.nodes, path, node);
  server.tree.node_count = server.tree.node_count + 1;
}

fn node_exists(server: Server, path: string) -> bool {
  let node = get(server.tree.nodes, path);
  return node != null;
}
)ml";

constexpr const char* kZkEphemeralTests = R"ml(
@test
fn test_create_then_close_removes_node() {
  let server = new_server();
  open_session(server, 1, "kafka-consumer-1");
  p_request_create(server, 1, "/consumers/ids/1", "host-a:9092");
  assert(node_exists(server, "/consumers/ids/1"), "registered");
  begin_close_session(server, 1);
  finish_close_session(server, 1);
  assert(!node_exists(server, "/consumers/ids/1"), "ephemeral cleaned up");
}

@test
fn test_create_on_live_session_succeeds() {
  let server = new_server();
  open_session(server, 7, "kafka-consumer-7");
  p_request_create(server, 7, "/consumers/ids/7", "host-b:9092");
  assert(node_exists(server, "/consumers/ids/7"), "create succeeded");
}

@test
fn test_create_on_expired_session_rejected() {
  let server = new_server();
  let rejected = false;
  try {
    p_request_create(server, 99, "/consumers/ids/99", "host-x:9092");
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "expired session must be rejected");
}

@test
fn test_batch_create_registers_all_paths() {
  let server = new_server();
  open_session(server, 3, "kafka-consumer-3");
  let paths = list_new();
  push(paths, "/consumers/ids/3a");
  push(paths, "/consumers/ids/3b");
  batch_create(server, 3, paths, "host-c:9092");
  assert(node_exists(server, "/consumers/ids/3a"), "first path created");
  assert(node_exists(server, "/consumers/ids/3b"), "second path created");
}
)ml";

FailureTicket zk_ephemeral_case() {
  FailureTicket ticket;
  ticket.case_id = "zk-1208-ephemeral-create";
  ticket.system = "zookeeper";
  ticket.feature = "ephemeral nodes / session lifecycle";
  ticket.title = "Ephemeral node not removed after the client session is long gone";
  ticket.description =
      "A Kafka deployment registers consumer addresses as ephemeral nodes. A "
      "concurrency window in the request processor allows an ephemeral node to "
      "be created while its owner session is already CLOSING; the close path "
      "has already collected the ephemeral list, so the new node survives the "
      "session and clients keep reading a dead consumer address. Developer "
      "discussion: the PrepRequestProcessor must reject create requests when "
      "the session is closing — an ephemeral node must never be created on a "
      "closing session. Fix adds the is_closing check before the node is "
      "created and a regression test for the exact Kafka workload.";

  const std::string buggy_entries = R"ml(
@entry
fn p_request_create(server: Server, session_id: int, path: string, data: string) {
  let s = get_session(server, session_id);
  if (s == null) {
    throw "SessionExpiredException";
  }
  create_ephemeral_node(server, path, data, session_id);
}

@entry
fn batch_create(server: Server, session_id: int, paths: list<string>, data: string) {
  let s = get_session(server, session_id);
  if (s == null) {
    throw "SessionExpiredException";
  }
  let i = 0;
  while (i < len(paths)) {
    create_ephemeral_node(server, paths[i], data, session_id);
    i = i + 1;
  }
}
)ml";

  const std::string patched_entries = R"ml(
@entry
fn p_request_create(server: Server, session_id: int, path: string, data: string) {
  let s = get_session(server, session_id);
  if (s == null) {
    throw "SessionExpiredException";
  }
  if (s.is_closing) {
    throw "SessionClosingException";
  }
  create_ephemeral_node(server, path, data, session_id);
}

@entry
fn batch_create(server: Server, session_id: int, paths: list<string>, data: string) {
  let s = get_session(server, session_id);
  if (s == null) {
    throw "SessionExpiredException";
  }
  let i = 0;
  while (i < len(paths)) {
    create_ephemeral_node(server, paths[i], data, session_id);
    i = i + 1;
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_zk1208_no_create_on_closing_session() {
  let server = new_server();
  open_session(server, 1, "kafka-consumer-1");
  begin_close_session(server, 1);
  let rejected = false;
  try {
    p_request_create(server, 1, "/consumers/ids/1", "host-a:9092");
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "create on closing session must be rejected");
  finish_close_session(server, 1);
  assert(!node_exists(server, "/consumers/ids/1"), "no stale node");
}
)ml";

  ticket.buggy_source = std::string(kZkEphemeralCommon) + buggy_entries + kZkEphemeralTests;
  ticket.patched_source =
      std::string(kZkEphemeralCommon) + patched_entries + kZkEphemeralTests + regression_test;
  ticket.regression_tests = {"test_zk1208_no_create_on_closing_session"};
  ticket.original = {"ZK-1208", "2011-09-15",
                     "Ephemeral node survives session close; Kafka consumers read a dead "
                     "address"};
  ticket.regressions = {{"ZK-1496", "2012-07-02",
                         "Ephemeral node created via the batch path on a closing session; "
                         "Kafka cluster stuck in zombie mode one year after the fix"},
                        {"ZK-2355", "2016-03-14",
                         "Ephemeral node never deleted when the close raced a follower "
                         "failure; third occurrence of the same closing-session semantics"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "create_ephemeral_node(";
  ticket.expected_condition = "!(s == null) && !(s.is_closing)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 2: blocking serialization inside a sync block (ZK-2201 / ZK-3531).
// ---------------------------------------------------------------------------

constexpr const char* kZkSerializeCommon = R"ml(
struct OutputArchive { name: string; records_written: int; }
struct SnapNode { path: string; data: string; child_count: int; }
struct SnapTree { nodes: map<string, SnapNode>; }
struct AclCache { acl_map: map<string, string>; ref_count: int; }

fn new_snap_tree() -> SnapTree {
  return new SnapTree {};
}

fn add_snap_node(tree: SnapTree, path: string, data: string) {
  put(tree.nodes, path, new SnapNode { path: path, data: data, child_count: 0 });
}

fn new_acl_cache() -> AclCache {
  return new AclCache {};
}

fn add_acl(cache: AclCache, id: string, acl: string) {
  put(cache.acl_map, id, acl);
}

// The ACL cache serializer: it already existed when ZK-2201 was fixed and
// carries the same latent pattern — blocking writes under the cache monitor.
@entry
fn serialize_acls(cache: AclCache, oa: OutputArchive) {
  sync (cache) {
    let ids = keys(cache.acl_map);
    let i = 0;
    while (i < len(ids)) {
      write_record(oa, ids[i]);
      oa.records_written = oa.records_written + 1;
      i = i + 1;
    }
  }
}
)ml";

constexpr const char* kZkSerializeTests = R"ml(
@test
fn test_serialize_node_writes_record() {
  let tree = new_snap_tree();
  add_snap_node(tree, "/a", "payload");
  let oa = new OutputArchive { name: "snap-1" };
  serialize_node(tree, "/a", oa);
  assert(oa.records_written == 1, "one record written");
}

@test
fn test_serialize_missing_node_is_noop() {
  let tree = new_snap_tree();
  let oa = new OutputArchive { name: "snap-2" };
  serialize_node(tree, "/missing", oa);
  assert(oa.records_written == 0, "nothing written");
}

@test
fn test_serialize_acls_writes_all_entries() {
  let cache = new_acl_cache();
  add_acl(cache, "1", "world:anyone");
  add_acl(cache, "2", "digest:u");
  let oa = new OutputArchive { name: "snap-3" };
  serialize_acls(cache, oa);
  assert(oa.records_written == 2, "both acls written");
}
)ml";

FailureTicket zk_sync_serialize_case() {
  FailureTicket ticket;
  ticket.case_id = "zk-2201-sync-serialize";
  ticket.system = "zookeeper";
  ticket.feature = "snapshot serialization / request pipeline";
  ticket.title = "Serialization blocked inside synchronized block wedges write pipeline";
  ticket.description =
      "Snapshot serialization wrote records to disk while holding the data "
      "node monitor. When the disk stalled, the serialization call blocked for "
      "a long time inside the synchronized block, every writer queued behind "
      "the monitor, and the cluster degraded into a zombie state that silently "
      "dropped writes. Developer discussion: never perform blocking I/O while "
      "holding a monitor; copy the state under the lock and write it outside. "
      "The fix moves write_record out of the synchronized region.";

  const std::string buggy_serializer = R"ml(
@entry
fn serialize_node(tree: SnapTree, path: string, oa: OutputArchive) {
  let node = get(tree.nodes, path);
  if (node == null) {
    return;
  }
  sync (node) {
    write_record(oa, node.data);
    oa.records_written = oa.records_written + 1;
  }
}
)ml";

  const std::string patched_serializer = R"ml(
@entry
fn serialize_node(tree: SnapTree, path: string, oa: OutputArchive) {
  let node = get(tree.nodes, path);
  if (node == null) {
    return;
  }
  let data = "";
  sync (node) {
    data = node.data;
  }
  write_record(oa, data);
  oa.records_written = oa.records_written + 1;
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_zk2201_serialize_does_not_hold_monitor() {
  let tree = new_snap_tree();
  add_snap_node(tree, "/locked", "payload");
  let oa = new OutputArchive { name: "snap-r" };
  serialize_node(tree, "/locked", oa);
  assert(oa.records_written == 1, "record written without monitor held");
}
)ml";

  ticket.buggy_source = std::string(kZkSerializeCommon) + buggy_serializer + kZkSerializeTests;
  ticket.patched_source =
      std::string(kZkSerializeCommon) + patched_serializer + kZkSerializeTests + regression_test;
  ticket.regression_tests = {"test_zk2201_serialize_does_not_hold_monitor"};
  ticket.original = {"ZK-2201", "2015-06-10",
                     "Write pipeline blocked: snapshot serialization stalls while holding "
                     "the node monitor"};
  ticket.regressions = {{"ZK-3531", "2019-08-21",
                         "Same pattern in ReferenceCountedACLCache.serialize: blocking "
                         "writes under the cache monitor, one year after discussion"}};
  ticket.kind = SemanticsKind::kStructuralPattern;
  ticket.expected_target = "write_record(";
  ticket.expected_condition = "no_blocking_in_sync";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 3: watch delivered to a disconnected session.
// ---------------------------------------------------------------------------

constexpr const char* kZkWatchCommon = R"ml(
struct Watcher { id: int; session_id: int; connected: bool; delivered: int; }
struct WatchManager { watchers: map<string, Watcher>; child_watchers: map<string, Watcher>; }

fn new_watch_manager() -> WatchManager {
  return new WatchManager {};
}

fn register_watch(mgr: WatchManager, path: string, w: Watcher) {
  put(mgr.watchers, path, w);
}

fn register_child_watch(mgr: WatchManager, path: string, w: Watcher) {
  put(mgr.child_watchers, path, w);
}

fn deliver_watch_event(w: Watcher, event: string) {
  w.delivered = w.delivered + 1;
  network_send(w, event);
}

// Child-watch dispatch: a second dispatch path with the same latent hazard.
@entry
fn trigger_child_watches(mgr: WatchManager, path: string, event: string) {
  let w = get(mgr.child_watchers, path);
  if (w == null) {
    return;
  }
  deliver_watch_event(w, event);
}
)ml";

constexpr const char* kZkWatchTests = R"ml(
@test
fn test_watch_fires_for_connected_session() {
  let mgr = new_watch_manager();
  let w = new Watcher { id: 1, session_id: 10, connected: true };
  register_watch(mgr, "/cfg", w);
  trigger_watches(mgr, "/cfg", "NodeDataChanged");
  assert(w.delivered == 1, "event delivered");
}

@test
fn test_missing_watch_is_noop() {
  let mgr = new_watch_manager();
  trigger_watches(mgr, "/none", "NodeDataChanged");
  assert(true, "no crash");
}

@test
fn test_child_watch_fires() {
  let mgr = new_watch_manager();
  let w = new Watcher { id: 2, session_id: 11, connected: true };
  register_child_watch(mgr, "/parent", w);
  trigger_child_watches(mgr, "/parent", "NodeChildrenChanged");
  assert(w.delivered == 1, "child event delivered");
}
)ml";

FailureTicket zk_watch_case() {
  FailureTicket ticket;
  ticket.case_id = "zk-watch-disconnected";
  ticket.system = "zookeeper";
  ticket.feature = "watches / session lifecycle";
  ticket.title = "Watch event delivered to a disconnected session corrupts client state";
  ticket.description =
      "After a client disconnected, the watch manager still delivered pending "
      "watch events to its watcher object. The client library reconnected "
      "under a new session and processed the stale event against the new "
      "session's state, corrupting its view. Developer discussion: a watch "
      "event must only be delivered while the watcher's session is connected. "
      "Fix guards dispatch with the connected flag.";

  const std::string buggy_dispatch = R"ml(
@entry
fn trigger_watches(mgr: WatchManager, path: string, event: string) {
  let w = get(mgr.watchers, path);
  if (w == null) {
    return;
  }
  deliver_watch_event(w, event);
}
)ml";

  const std::string patched_dispatch = R"ml(
@entry
fn trigger_watches(mgr: WatchManager, path: string, event: string) {
  let w = get(mgr.watchers, path);
  if (w == null) {
    return;
  }
  if (w.connected) {
    deliver_watch_event(w, event);
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_zkwatch_no_delivery_after_disconnect() {
  let mgr = new_watch_manager();
  let w = new Watcher { id: 3, session_id: 12, connected: false };
  register_watch(mgr, "/cfg", w);
  trigger_watches(mgr, "/cfg", "NodeDataChanged");
  assert(w.delivered == 0, "no delivery to disconnected watcher");
}
)ml";

  ticket.buggy_source = std::string(kZkWatchCommon) + buggy_dispatch + kZkWatchTests;
  ticket.patched_source =
      std::string(kZkWatchCommon) + patched_dispatch + kZkWatchTests + regression_test;
  ticket.regression_tests = {"test_zkwatch_no_delivery_after_disconnect"};
  ticket.original = {"ZK-W1", "2013-03-04",
                     "Stale watch event delivered after disconnect corrupts client cache"};
  ticket.regressions = {{"ZK-W2", "2014-05-19",
                         "Child-watch dispatch path delivers to disconnected watchers; same "
                         "root cause, different dispatcher"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "deliver_watch_event(";
  ticket.expected_condition = "!(w == null) && w.connected";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 4: quota check bypassed on an alternate create path.
// ---------------------------------------------------------------------------

constexpr const char* kZkQuotaCommon = R"ml(
struct QuotaTree { node_count: int; quota_limit: int; }
struct QuotaServer { tree: QuotaTree; seq_counter: int; }

fn new_quota_server(limit: int) -> QuotaServer {
  return new QuotaServer { tree: new QuotaTree { node_count: 0, quota_limit: limit },
                           seq_counter: 0 };
}

fn add_node(t: QuotaTree, path: string) {
  t.node_count = t.node_count + 1;
}

// Sequential-node creation: the alternate path that also grows the tree.
@entry
fn create_sequential(server: QuotaServer, prefix: string) -> string {
  let t = server.tree;
  server.seq_counter = server.seq_counter + 1;
  let path = prefix + str(server.seq_counter);
  add_node(t, path);
  return path;
}
)ml";

constexpr const char* kZkQuotaTests = R"ml(
@test
fn test_create_within_quota() {
  let server = new_quota_server(2);
  create_node(server, "/q/a");
  assert(server.tree.node_count == 1, "node added");
}

@test
fn test_sequential_create_increments_counter() {
  let server = new_quota_server(5);
  let p1 = create_sequential(server, "/q/seq-");
  let p2 = create_sequential(server, "/q/seq-");
  assert(p1 != p2, "unique sequential paths");
  assert(server.tree.node_count == 2, "two nodes");
}
)ml";

FailureTicket zk_quota_case() {
  FailureTicket ticket;
  ticket.case_id = "zk-quota-bypass";
  ticket.system = "zookeeper";
  ticket.feature = "quotas";
  ticket.title = "Node quota exceeded: enforcement missing on create path";
  ticket.description =
      "A tenant exceeded its node quota because the create path never "
      "compared the tree's node count against the configured quota limit, "
      "exhausting server memory. Developer discussion: no node may be added "
      "once node_count has reached quota_limit. Fix adds the quota check "
      "before the node is added on the plain create path.";

  const std::string buggy_create = R"ml(
@entry
fn create_node(server: QuotaServer, path: string) {
  let t = server.tree;
  add_node(t, path);
}
)ml";

  const std::string patched_create = R"ml(
@entry
fn create_node(server: QuotaServer, path: string) {
  let t = server.tree;
  if (t.node_count >= t.quota_limit) {
    throw "QuotaExceededException";
  }
  add_node(t, path);
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_zkquota_rejects_over_limit() {
  let server = new_quota_server(1);
  create_node(server, "/q/a");
  let rejected = false;
  try {
    create_node(server, "/q/b");
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "quota enforced");
  assert(server.tree.node_count == 1, "no node added past quota");
}
)ml";

  ticket.buggy_source = std::string(kZkQuotaCommon) + buggy_create + kZkQuotaTests;
  ticket.patched_source =
      std::string(kZkQuotaCommon) + patched_create + kZkQuotaTests + regression_test;
  ticket.regression_tests = {"test_zkquota_rejects_over_limit"};
  ticket.original = {"ZK-Q1", "2016-02-11",
                     "Tenant exceeded node quota; server memory exhausted"};
  ticket.regressions = {{"ZK-Q2", "2017-01-30",
                         "Sequential-create path grows the tree without any quota check"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "add_node(";
  ticket.expected_condition = "!(t.node_count >= t.quota_limit)";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 5: ACL installed without validation on the restore path.
// ---------------------------------------------------------------------------

constexpr const char* kZkAclCommon = R"ml(
struct Acl { id: string; scheme: string; validated: bool; }
struct AclStore { installed: map<string, Acl>; install_count: int; }
struct SnapshotFile { entries: list<Acl>; }

fn new_acl_store() -> AclStore {
  return new AclStore {};
}

fn validate_acl(a: Acl) {
  if (a.scheme == "") {
    throw "InvalidACLException";
  }
  a.validated = true;
}

fn install_acl(store: AclStore, a: Acl) {
  put(store.installed, a.id, a);
  store.install_count = store.install_count + 1;
}

// Snapshot restore: installs every entry from the snapshot file. Snapshot
// entries skipped validation when written by older versions.
@entry
fn restore_acls(store: AclStore, snapshot: SnapshotFile) {
  let i = 0;
  while (i < len(snapshot.entries)) {
    let a = snapshot.entries[i];
    install_acl(store, a);
    i = i + 1;
  }
}
)ml";

constexpr const char* kZkAclTests = R"ml(
@test
fn test_set_acl_installs_valid_entry() {
  let store = new_acl_store();
  let a = new Acl { id: "1", scheme: "digest", validated: false };
  set_acl(store, a);
  assert(store.install_count == 1, "installed");
}

@test
fn test_restore_installs_snapshot_entries() {
  let store = new_acl_store();
  let snap = new SnapshotFile {};
  let a = new Acl { id: "2", scheme: "world", validated: true };
  push(snap.entries, a);
  restore_acls(store, snap);
  assert(store.install_count == 1, "restored");
}
)ml";

FailureTicket zk_acl_case() {
  FailureTicket ticket;
  ticket.case_id = "zk-acl-unvalidated";
  ticket.system = "zookeeper";
  ticket.feature = "ACL management";
  ticket.title = "Malformed ACL installed without validation grants open access";
  ticket.description =
      "A malformed ACL with an empty scheme was installed directly, which the "
      "permission checker treated as world-readable, exposing protected "
      "znodes. Developer discussion: an ACL must be validated before it is "
      "installed — install_acl must only see entries whose validated flag is "
      "set. Fix validates on the set-ACL path before installation.";

  const std::string buggy_set = R"ml(
@entry
fn set_acl(store: AclStore, a: Acl) {
  install_acl(store, a);
}
)ml";

  const std::string patched_set = R"ml(
@entry
fn set_acl(store: AclStore, a: Acl) {
  validate_acl(a);
  if (a.validated) {
    install_acl(store, a);
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_zkacl_rejects_empty_scheme() {
  let store = new_acl_store();
  let a = new Acl { id: "3", scheme: "", validated: false };
  let rejected = false;
  try {
    set_acl(store, a);
  } catch (e) {
    rejected = true;
  }
  assert(rejected, "invalid acl rejected");
  assert(store.install_count == 0, "nothing installed");
}
)ml";

  ticket.buggy_source = std::string(kZkAclCommon) + buggy_set + kZkAclTests;
  ticket.patched_source =
      std::string(kZkAclCommon) + patched_set + kZkAclTests + regression_test;
  ticket.regression_tests = {"test_zkacl_rejects_empty_scheme"};
  ticket.original = {"ZK-A1", "2018-06-25",
                     "Malformed ACL installed; protected znodes world-readable"};
  ticket.regressions = {{"ZK-A2", "2019-04-08",
                         "Snapshot-restore path installs unvalidated ACL entries from old "
                         "snapshot files"}};
  ticket.kind = SemanticsKind::kStatePredicate;
  ticket.expected_target = "install_acl(";
  ticket.expected_condition = "a.validated";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 6: vote broadcast acquires election monitors in the reverse order.
// ---------------------------------------------------------------------------

constexpr const char* kZkElectionCommon = R"ml(
struct ElectionState { round: int; leader: string; votes: int; }
struct PeerSet { count: int; notified: int; }

fn new_election_state() -> ElectionState {
  return new ElectionState { round: 0, leader: "", votes: 0 };
}

fn new_peer_set(count: int) -> PeerSet {
  return new PeerSet { count: count, notified: 0 };
}

// Leader election takes the election state first, then the peer set while
// resetting notification bookkeeping for the new round.
@entry
fn elect_leader(state: ElectionState, peers: PeerSet) {
  sync (state) {
    sync (peers) {
      peers.notified = 0;
    }
    state.leader = "self";
    state.round = state.round + 1;
  }
}
)ml";

constexpr const char* kZkElectionTests = R"ml(
@test
fn test_election_settles_leader() {
  let state = new_election_state();
  let peers = new_peer_set(3);
  elect_leader(state, peers);
  assert(state.leader == "self", "leader chosen");
  assert(state.round == 1, "round advanced");
}

@test
fn test_broadcast_notifies_peers() {
  let state = new_election_state();
  let peers = new_peer_set(2);
  broadcast_vote(state, peers);
  assert(peers.notified == 2, "all peers notified");
  assert(state.votes == 1, "vote recorded");
}
)ml";

FailureTicket zk_election_case() {
  FailureTicket ticket;
  ticket.case_id = "zk-election-deadlock";
  ticket.system = "zookeeper";
  ticket.feature = "leader election";
  ticket.title = "Election stalls forever: vote broadcast takes monitors in reverse order";
  ticket.description =
      "During a flaky-network episode two quorum peers stalled forever in "
      "leader election: jstack showed one thread inside elect_leader holding "
      "the election state and waiting for the peer set, while a vote-broadcast "
      "thread held the peer set and waited for the election state — a lock "
      "order inversion, i.e. a classic deadlock. Developer discussion: every "
      "thread must acquire the election state before the peer set. Fix "
      "reorders the acquisitions in broadcast_vote.";

  const std::string buggy_broadcast = R"ml(
@entry
fn broadcast_vote(state: ElectionState, peers: PeerSet) {
  sync (peers) {
    sync (state) {
      state.votes = state.votes + 1;
    }
    peers.notified = peers.count;
  }
}
)ml";

  const std::string patched_broadcast = R"ml(
@entry
fn broadcast_vote(state: ElectionState, peers: PeerSet) {
  sync (state) {
    sync (peers) {
      peers.notified = peers.count;
    }
    state.votes = state.votes + 1;
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_zkelection_broadcast_then_elect() {
  let state = new_election_state();
  let peers = new_peer_set(2);
  broadcast_vote(state, peers);
  elect_leader(state, peers);
  assert(state.votes == 1, "vote survives election");
  assert(state.leader == "self", "election completes after broadcast");
}
)ml";

  ticket.buggy_source = std::string(kZkElectionCommon) + buggy_broadcast + kZkElectionTests;
  ticket.patched_source =
      std::string(kZkElectionCommon) + patched_broadcast + kZkElectionTests + regression_test;
  ticket.regression_tests = {"test_zkelection_broadcast_then_elect"};
  ticket.original = {"ZK-E1", "2017-11-02",
                     "Quorum peers deadlock in leader election under notification storm"};
  ticket.regressions = {{"ZK-E2", "2019-09-17",
                         "Vote broadcast reintroduces reversed monitor order, wedging "
                         "re-election after leader loss"}};
  ticket.kind = SemanticsKind::kInterleavingSensitive;
  ticket.expected_target = "sync (";
  ticket.expected_condition = "lock_order_acyclic";
  return ticket;
}

// ---------------------------------------------------------------------------
// Case 7: ephemeral created in the check-then-act window of session close.
// ---------------------------------------------------------------------------

constexpr const char* kZkSessionCloseCommon = R"ml(
struct SessionTracker { closing: int; ephemerals: int; }

fn new_session_tracker() -> SessionTracker {
  return new SessionTracker { closing: 0, ephemerals: 0 };
}
)ml";

constexpr const char* kZkSessionCloseTests = R"ml(
@test
fn test_create_then_close_cleans_up() {
  let s = new_session_tracker();
  submit_create(s);
  close_session(s);
  assert(s.ephemerals == 0, "closed session keeps no ephemerals");
}

@test
fn test_create_on_open_session_registers() {
  let s = new_session_tracker();
  submit_create(s);
  assert(s.ephemerals == 1, "ephemeral registered on open session");
}

@test
fn test_concurrent_create_and_close() {
  let s = new_session_tracker();
  spawn submit_create(s);
  spawn close_session(s);
  join_all();
  assert(s.closing == 0 || s.ephemerals == 0,
         "no ephemeral survives a closed session");
}
)ml";

FailureTicket zk_session_close_case() {
  FailureTicket ticket;
  ticket.case_id = "zk-session-close-race";
  ticket.system = "zookeeper";
  ticket.feature = "session tracker";
  ticket.title = "Ephemeral node survives session close via check-then-act window";
  ticket.description =
      "The create path checked that the session was not closing and then "
      "registered the ephemeral in two separate steps; the session closer "
      "could interleave between the check and the act, so a freshly created "
      "ephemeral survived the close and was never cleaned up — a classic "
      "check-then-act atomicity violation that single-threaded replay never "
      "exposes. Developer discussion: the closing check and the ephemeral "
      "registration must be atomic with respect to close. Fix wraps both "
      "paths in the session-tracker monitor.";

  const std::string buggy_ops = R"ml(
@entry
fn submit_create(s: SessionTracker) {
  if (s.closing == 0) {
    s.ephemerals = s.ephemerals + 1;
  }
}

@entry
fn close_session(s: SessionTracker) {
  s.closing = 1;
  s.ephemerals = 0;
}
)ml";

  const std::string patched_ops = R"ml(
@entry
fn submit_create(s: SessionTracker) {
  sync (s) {
    if (s.closing == 0) {
      s.ephemerals = s.ephemerals + 1;
    }
  }
}

@entry
fn close_session(s: SessionTracker) {
  sync (s) {
    s.closing = 1;
    s.ephemerals = 0;
  }
}
)ml";

  const std::string regression_test = R"ml(
@test
fn test_zksession_create_rejected_after_close() {
  let s = new_session_tracker();
  close_session(s);
  submit_create(s);
  assert(s.ephemerals == 0, "create after close registers nothing");
}
)ml";

  ticket.buggy_source = std::string(kZkSessionCloseCommon) + buggy_ops + kZkSessionCloseTests;
  ticket.patched_source =
      std::string(kZkSessionCloseCommon) + patched_ops + kZkSessionCloseTests + regression_test;
  ticket.regression_tests = {"test_zksession_create_rejected_after_close"};
  ticket.original = {"ZK-S1", "2011-10-21",
                     "Ephemeral node remains after session close; create raced the closer"};
  ticket.regressions = {{"ZK-S2", "2014-06-12",
                         "Multi-op create path repeats the unguarded closing check; "
                         "single-op fix missed it"}};
  ticket.kind = SemanticsKind::kInterleavingSensitive;
  ticket.expected_target = "ephemerals";
  ticket.expected_condition = "atomic(s)";
  return ticket;
}

}  // namespace

std::vector<FailureTicket> zookeeper_cases() {
  return {zk_ephemeral_case(), zk_sync_serialize_case(), zk_watch_case(),        zk_quota_case(),
          zk_acl_case(),       zk_election_case(),       zk_session_close_case()};
}

}  // namespace lisa::corpus
