// Witness-test synthesis for uncovered execution paths.
//
// §3.2 ends with: "If there are any execution paths that are not run, it
// either means the test suite does not have enough coverage, or the LLM
// misses the related tests. Developers should provide the final verdict for
// both cases." This module automates most of that verdict: for a static path
// no selected test exercises, it solves the path condition with the SMT
// backend and synthesizes a MiniLang @test function that constructs the
// satisfying state and drives the path's entry function — giving the
// developer a concrete, runnable reproducer instead of a bare path listing.
//
// Synthesis is best-effort by design: paths whose entry parameters involve
// containers or whose conditions are opaque return nullopt (those genuinely
// need a human), and every synthesized test is validated by replaying it on
// the concolic engine before it is reported.
#pragma once

#include <optional>
#include <string>

#include "analysis/paths.hpp"
#include "minilang/ast.hpp"

namespace lisa::concolic {

struct SynthesizedTest {
  std::string test_name;
  std::string source;       // a complete @test function definition
  std::string model_text;   // the SMT model the arguments were read from
};

/// Synthesizes a test driving `path` into its target with the path condition
/// satisfied (and, when `violating` is set, the contract's complement also
/// satisfied — a reproducer for the missing check). Returns nullopt when the
/// entry signature or the constraints are outside the synthesizable subset.
[[nodiscard]] std::optional<SynthesizedTest> synthesize_path_test(
    const minilang::Program& program, const analysis::ExecutionPath& path,
    bool violating, int sequence_number);

/// Validates a synthesized test: appends it to the program source, replays
/// it on the concolic engine, and confirms the target is hit. Returns true
/// on confirmation.
[[nodiscard]] bool validate_synthesized_test(const minilang::Program& program,
                                             const SynthesizedTest& test,
                                             const std::string& target_fragment);

}  // namespace lisa::concolic
