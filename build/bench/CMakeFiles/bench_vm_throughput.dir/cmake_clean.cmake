file(REMOVE_RECURSE
  "CMakeFiles/bench_vm_throughput.dir/bench_vm_throughput.cpp.o"
  "CMakeFiles/bench_vm_throughput.dir/bench_vm_throughput.cpp.o.d"
  "bench_vm_throughput"
  "bench_vm_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vm_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
