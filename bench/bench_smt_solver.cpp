// Substrate micro-benchmark: the DPLL(T) solver on checker-style formulas.
//
// Measures satisfiability queries of the exact shape LISA issues —
// `π ∧ ¬P` with π a conjunction of guard atoms and P a contract — across
// growing variable counts and boolean structure, plus random-formula
// throughput, with solver statistics as counters.
#include <benchmark/benchmark.h>

#include "smt/formula.hpp"
#include "smt/solver.hpp"
#include "support/rng.hpp"

namespace {

using namespace lisa::smt;

FormulaPtr bvar(const std::string& name) { return Formula::make_atom(Atom::bool_var(name)); }
FormulaPtr cmp(const std::string& v, CmpOp op, std::int64_t c) {
  return Formula::make_atom(Atom::cmp_const(v, op, c));
}

/// A checker formula over n "sessions": every session must be non-null, not
/// closing, with positive ttl.
FormulaPtr checker_formula(int n) {
  std::vector<FormulaPtr> conjuncts;
  for (int i = 0; i < n; ++i) {
    const std::string s = "s" + std::to_string(i);
    conjuncts.push_back(Formula::negate(bvar(s + "#null")));
    conjuncts.push_back(Formula::negate(bvar(s + ".is_closing")));
    conjuncts.push_back(cmp(s + ".ttl", CmpOp::kGt, 0));
  }
  return Formula::conj(std::move(conjuncts));
}

/// A trace that checks all but the last session's ttl (a missing check).
FormulaPtr trace_formula(int n) {
  std::vector<FormulaPtr> conjuncts;
  for (int i = 0; i < n; ++i) {
    const std::string s = "s" + std::to_string(i);
    conjuncts.push_back(Formula::negate(bvar(s + "#null")));
    conjuncts.push_back(Formula::negate(bvar(s + ".is_closing")));
    if (i + 1 < n) conjuncts.push_back(cmp(s + ".ttl", CmpOp::kGt, 0));
  }
  return Formula::conj(std::move(conjuncts));
}

void BM_ComplementCheckViolated(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FormulaPtr query =
      Formula::conj2(trace_formula(n), Formula::negate(checker_formula(n)));
  Solver solver;
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(query).sat());
  state.counters["atoms"] = static_cast<double>(solver.stats().atoms) /
                            static_cast<double>(state.iterations());
  state.counters["sessions"] = n;
}
BENCHMARK(BM_ComplementCheckViolated)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_ComplementCheckVerified(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // The full trace implies the checker: the query is UNSAT (verified path).
  const FormulaPtr query =
      Formula::conj2(checker_formula(n), Formula::negate(checker_formula(n)));
  Solver solver;
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve(query).sat());
  state.counters["sessions"] = n;
}
BENCHMARK(BM_ComplementCheckVerified)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

FormulaPtr random_formula(lisa::support::Rng& rng, int depth, int vars) {
  if (depth == 0 || rng.next_bool(0.3)) {
    const std::string v = "x" + std::to_string(rng.next_below(static_cast<std::uint64_t>(vars)));
    if (rng.next_bool(0.3)) return bvar("b" + v);
    return cmp(v, static_cast<CmpOp>(rng.next_below(6)), rng.next_in(-8, 8));
  }
  switch (rng.next_below(3)) {
    case 0: return Formula::negate(random_formula(rng, depth - 1, vars));
    case 1:
      return Formula::conj2(random_formula(rng, depth - 1, vars),
                            random_formula(rng, depth - 1, vars));
    default:
      return Formula::disj2(random_formula(rng, depth - 1, vars),
                            random_formula(rng, depth - 1, vars));
  }
}

void BM_RandomFormulas(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  lisa::support::Rng rng(123);
  std::vector<FormulaPtr> formulas;
  for (int i = 0; i < 64; ++i) formulas.push_back(random_formula(rng, depth, 6));
  Solver solver;
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(formulas[index % formulas.size()]).sat());
    ++index;
  }
  state.counters["theory_conflicts"] =
      static_cast<double>(solver.stats().theory_conflicts);
  state.counters["decisions"] = static_cast<double>(solver.stats().decisions);
}
BENCHMARK(BM_RandomFormulas)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMicrosecond);

void BM_EquivalenceQuery(benchmark::State& state) {
  // The inference-accuracy check used by tests/benches: equivalence of the
  // extracted and ground-truth condition.
  const FormulaPtr a = checker_formula(4);
  const FormulaPtr b = to_nnf(Formula::negate(Formula::negate(checker_formula(4))));
  Solver solver;
  for (auto _ : state) benchmark::DoNotOptimize(solver.equivalent(a, b));
}
BENCHMARK(BM_EquivalenceQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
