// Fig. 6: low-level semantics should be generalized.
//
// The ZK-2201 fix removed one blocking call from one synchronized block; a
// year later ZK-3531 hit the same pattern in a different serializer. This
// bench compares, over the patched codebase plus a set of evolution
// variants:
//   * the NARROW rule  — "no direct write_record call inside the sync block
//     of serialize_node" (what a regression test encodes), and
//   * the GENERAL rule — "no blocking I/O reachable inside any sync block"
//     (the abstracted system-level behaviour the paper advocates),
// measuring recall on seeded recurrences and false positives on safe code.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/callgraph.hpp"
#include "analysis/patterns.hpp"
#include "corpus/ticket.hpp"
#include "minilang/sema.hpp"

namespace {

using namespace lisa;

struct Variant {
  const char* name;
  const char* source;
  bool is_bug;  // ground truth: does it contain a blocking-in-sync hazard?
};

// Evolution variants modeled on how the codebase actually changed between
// ZK-2201 and ZK-3531.
const Variant kVariants[] = {
    {"acl-cache serializer (ZK-3531)", R"ml(
struct AclCache { acl_map: map<string, string>; }
struct OutputArchive { records_written: int; }
@entry
fn serialize_acls(cache: AclCache, oa: OutputArchive) {
  sync (cache) {
    let ids = keys(cache.acl_map);
    let i = 0;
    while (i < len(ids)) {
      write_record(oa, ids[i]);
      i = i + 1;
    }
  }
}
)ml",
     true},
    {"indirect blocking via helper", R"ml(
struct Txn { payload: string; }
fn persist_txn(t: Txn) { fsync_log(t); }
@entry
fn commit_txn(t: Txn) {
  sync (t) {
    persist_txn(t);
  }
}
)ml",
     true},
    {"different blocking primitive", R"ml(
struct Peer { addr: string; }
struct Update { data: string; }
@entry
fn broadcast(p: Peer, u: Update) {
  sync (u) {
    network_send(p, u.data);
  }
}
)ml",
     true},
    {"safe: copy under lock, write outside", R"ml(
struct Node2 { data: string; }
struct Archive2 { n: int; }
@entry
fn serialize_safe(node: Node2, oa: Archive2) {
  let data = "";
  sync (node) {
    data = node.data;
  }
  write_record(oa, data);
  oa.n = oa.n + 1;
}
)ml",
     false},
    {"safe: pure computation under lock", R"ml(
struct Counter2 { n: int; }
@entry
fn bump_twice(c: Counter2) {
  sync (c) {
    c.n = c.n + 1;
    c.n = c.n + 1;
  }
  fsync_log(c);
}
)ml",
     false},
};

struct RuleScore {
  int true_positives = 0;
  int false_negatives = 0;
  int false_positives = 0;
};

void print_generalization_table() {
  std::printf("=== Fig. 6: narrow vs generalized rule on evolution variants ===\n\n");
  std::printf("%-36s %7s | %-10s %-10s\n", "variant", "is bug", "narrow", "general");
  RuleScore narrow_score;
  RuleScore general_score;
  for (const Variant& variant : kVariants) {
    const minilang::Program program = minilang::parse_checked(variant.source);
    const analysis::CallGraph graph = analysis::CallGraph::build(program);
    const bool narrow_hits =
        !analysis::check_specific_call_in_sync(program, graph, "write_record").empty();
    const bool general_hits = !analysis::check_no_blocking_in_sync(program, graph).empty();
    std::printf("%-36s %7s | %-10s %-10s\n", variant.name, variant.is_bug ? "yes" : "no",
                narrow_hits ? "FLAGGED" : "-", general_hits ? "FLAGGED" : "-");
    const auto score = [&](RuleScore& s, bool hit) {
      if (variant.is_bug && hit) ++s.true_positives;
      if (variant.is_bug && !hit) ++s.false_negatives;
      if (!variant.is_bug && hit) ++s.false_positives;
    };
    score(narrow_score, narrow_hits);
    score(general_score, general_hits);
  }
  std::printf("\n%-10s recall %d/%d, false positives %d\n", "narrow:",
              narrow_score.true_positives,
              narrow_score.true_positives + narrow_score.false_negatives,
              narrow_score.false_positives);
  std::printf("%-10s recall %d/%d, false positives %d\n", "general:",
              general_score.true_positives,
              general_score.true_positives + general_score.false_negatives,
              general_score.false_positives);
  std::printf("\nshape check: the narrow rule catches only the literal write_record-\n"
              "in-sync recurrence and misses helper-indirected or different-primitive\n"
              "blocking; the generalized rule catches all three recurrences with zero\n"
              "false positives on the safe variants.\n\n");
}

void BM_GeneralRuleCheck(benchmark::State& state) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("zk-2201-sync-serialize");
  const minilang::Program program = minilang::parse_checked(ticket->patched_source);
  for (auto _ : state) {
    const analysis::CallGraph graph = analysis::CallGraph::build(program);
    benchmark::DoNotOptimize(analysis::check_no_blocking_in_sync(program, graph).size());
  }
}
BENCHMARK(BM_GeneralRuleCheck)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_generalization_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
