#include "minilang/compiler.hpp"

#include <unordered_map>

namespace lisa::minilang {

namespace {

class FunctionCompiler {
 public:
  FunctionCompiler(Module& module, const Program& program)
      : module_(module), program_(program) {}

  Chunk compile_function(const FuncDecl& fn) {
    chunk_ = Chunk{};
    chunk_.name = fn.name;
    chunk_.arity = static_cast<int>(fn.params.size());
    chunk_.is_blocking = fn.has_annotation("blocking");
    scopes_.clear();
    scopes_.emplace_back();
    next_slot_ = 0;
    sync_depth_ = 0;
    try_depth_ = 0;
    loops_.clear();
    for (const Param& param : fn.params) declare(param.name);
    compile_block(fn.body);
    // Implicit `return null` at the end of every function body.
    emit(Op::kPushNull);
    emit(Op::kReturn);
    chunk_.slot_count = next_slot_;
    return std::move(chunk_);
  }

 private:
  struct LoopContext {
    int sync_depth;
    int try_depth;
    std::vector<int> break_jumps;     // indices of kJump insns to patch to end
    std::vector<int> continue_jumps;  // ... to patch to loop head
  };

  [[noreturn]] void fail(const std::string& message) { throw CompileError(message); }

  int emit(Op op, std::int32_t a = 0, std::int32_t b = 0, std::int32_t c = 0) {
    chunk_.code.push_back(Insn{op, a, b, c});
    return static_cast<int>(chunk_.code.size()) - 1;
  }

  [[nodiscard]] int here() const { return static_cast<int>(chunk_.code.size()); }

  void patch(int insn_index, int target) {
    chunk_.code[static_cast<std::size_t>(insn_index)].a = target;
  }

  int declare(const std::string& name) {
    const int slot = next_slot_++;
    scopes_.back()[name] = slot;
    return slot;
  }

  [[nodiscard]] int resolve(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return -1;
  }

  // -- Pools ------------------------------------------------------------

  int intern_int(std::int64_t value) {
    const auto it = int_index_.find(value);
    if (it != int_index_.end()) return it->second;
    module_.int_pool.push_back(value);
    const int index = static_cast<int>(module_.int_pool.size()) - 1;
    int_index_.emplace(value, index);
    return index;
  }

  int intern_string(const std::string& value, std::vector<std::string>& pool,
                    std::unordered_map<std::string, int>& index) {
    const auto it = index.find(value);
    if (it != index.end()) return it->second;
    pool.push_back(value);
    const int id = static_cast<int>(pool.size()) - 1;
    index.emplace(value, id);
    return id;
  }

  int intern_literal(const std::string& value) {
    return intern_string(value, module_.string_pool, string_index_);
  }
  int intern_name(const std::string& value) {
    return intern_string(value, module_.name_pool, name_index_);
  }

  // -- Statements ---------------------------------------------------------

  void compile_block(const std::vector<StmtPtr>& stmts) {
    scopes_.emplace_back();
    for (const StmtPtr& stmt : stmts) compile_stmt(*stmt);
    scopes_.pop_back();
  }

  void compile_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kLet: {
        compile_expr(*stmt.expr);
        emit(Op::kStore, declare(stmt.name));
        return;
      }
      case Stmt::Kind::kAssign: {
        const Expr& lvalue = *stmt.expr;
        switch (lvalue.kind) {
          case Expr::Kind::kVar: {
            const int slot = resolve(lvalue.text);
            if (slot < 0) fail("assignment to undeclared variable " + lvalue.text);
            compile_expr(*stmt.expr2);
            emit(Op::kStore, slot);
            return;
          }
          case Expr::Kind::kField:
            compile_expr(*lvalue.args[0]);
            compile_expr(*stmt.expr2);
            emit(Op::kFieldSet, intern_name(lvalue.text));
            return;
          case Expr::Kind::kIndex:
            compile_expr(*lvalue.args[0]);
            compile_expr(*lvalue.args[1]);
            compile_expr(*stmt.expr2);
            emit(Op::kIndexSet);
            return;
          default:
            fail("invalid assignment target");
        }
      }
      case Stmt::Kind::kIf: {
        compile_expr(*stmt.expr);
        const int to_else = emit(Op::kJumpIfFalse);
        compile_block(stmt.body);
        const int to_end = emit(Op::kJump);
        patch(to_else, here());
        compile_block(stmt.else_body);
        patch(to_end, here());
        return;
      }
      case Stmt::Kind::kWhile: {
        const int head = here();
        compile_expr(*stmt.expr);
        const int to_end = emit(Op::kJumpIfFalse);
        loops_.push_back(LoopContext{sync_depth_, try_depth_, {}, {}});
        compile_block(stmt.body);
        LoopContext loop = std::move(loops_.back());
        loops_.pop_back();
        for (const int jump : loop.continue_jumps) patch(jump, head);
        emit(Op::kJump, head);
        patch(to_end, here());
        for (const int jump : loop.break_jumps) patch(jump, here());
        return;
      }
      case Stmt::Kind::kReturn: {
        if (stmt.expr) compile_expr(*stmt.expr);
        else emit(Op::kPushNull);
        emit(Op::kReturn);
        return;
      }
      case Stmt::Kind::kThrow: {
        compile_expr(*stmt.expr);
        emit(Op::kThrow);
        return;
      }
      case Stmt::Kind::kExpr: {
        compile_expr(*stmt.expr);
        emit(Op::kPop);
        return;
      }
      case Stmt::Kind::kSpawn: {
        // The VM has no scheduler: spawn degrades to the serial semantics
        // (the thread root runs inline to completion), matching the
        // unscheduled tree-walking interpreter.
        compile_expr(*stmt.expr);
        emit(Op::kPop);
        return;
      }
      case Stmt::Kind::kSync: {
        compile_expr(*stmt.expr);
        emit(Op::kSyncEnter);
        ++sync_depth_;
        compile_block(stmt.body);
        --sync_depth_;
        emit(Op::kSyncExit);
        return;
      }
      case Stmt::Kind::kBlock:
        compile_block(stmt.body);
        return;
      case Stmt::Kind::kTry: {
        scopes_.emplace_back();
        const int catch_slot = declare(stmt.catch_var);
        const int try_push = emit(Op::kTryPush, /*a=*/0, /*b=*/catch_slot);
        ++try_depth_;
        compile_block(stmt.body);
        --try_depth_;
        emit(Op::kTryPop);
        const int to_end = emit(Op::kJump);
        patch(try_push, here());  // handler ip
        for (const StmtPtr& handler_stmt : stmt.else_body) compile_stmt(*handler_stmt);
        patch(to_end, here());
        scopes_.pop_back();
        return;
      }
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue: {
        if (loops_.empty()) fail("break/continue outside loop");
        LoopContext& loop = loops_.back();
        // Unwind monitors/handlers entered since the loop started.
        for (int i = sync_depth_; i > loop.sync_depth; --i) emit(Op::kSyncExit);
        for (int i = try_depth_; i > loop.try_depth; --i) emit(Op::kTryPop);
        const int jump = emit(Op::kJump);
        if (stmt.kind == Stmt::Kind::kBreak) loop.break_jumps.push_back(jump);
        else loop.continue_jumps.push_back(jump);
        return;
      }
    }
  }

  // -- Expressions ----------------------------------------------------------

  void compile_expr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        emit(Op::kPushInt, intern_int(expr.int_value));
        return;
      case Expr::Kind::kBoolLit:
        emit(Op::kPushBool, expr.bool_value ? 1 : 0);
        return;
      case Expr::Kind::kStrLit:
        emit(Op::kPushStr, intern_literal(expr.text));
        return;
      case Expr::Kind::kNullLit:
        emit(Op::kPushNull);
        return;
      case Expr::Kind::kVar: {
        const int slot = resolve(expr.text);
        if (slot < 0) fail("unknown variable: " + expr.text);
        emit(Op::kLoad, slot);
        return;
      }
      case Expr::Kind::kField:
        compile_expr(*expr.args[0]);
        emit(Op::kFieldGet, intern_name(expr.text));
        return;
      case Expr::Kind::kIndex:
        compile_expr(*expr.args[0]);
        compile_expr(*expr.args[1]);
        emit(Op::kIndexGet);
        return;
      case Expr::Kind::kUnary:
        compile_expr(*expr.args[0]);
        emit(expr.un_op == UnOp::kNot ? Op::kNot : Op::kNeg);
        return;
      case Expr::Kind::kBinary:
        compile_binary(expr);
        return;
      case Expr::Kind::kCall: {
        for (const ExprPtr& arg : expr.args) compile_expr(*arg);
        const int chunk = module_.chunk_of(expr.text);
        if (chunk >= 0) {
          emit(Op::kCall, chunk, static_cast<std::int32_t>(expr.args.size()));
        } else {
          emit(Op::kCallBuiltin, intern_name(expr.text),
               static_cast<std::int32_t>(expr.args.size()));
        }
        return;
      }
      case Expr::Kind::kNew: {
        for (const ExprPtr& arg : expr.args) compile_expr(*arg);
        NewSpec spec;
        spec.struct_name = expr.text;
        spec.fields = expr.field_names;
        module_.new_specs.push_back(std::move(spec));
        emit(Op::kNew, static_cast<std::int32_t>(module_.new_specs.size()) - 1);
        return;
      }
    }
  }

  void compile_binary(const Expr& expr) {
    switch (expr.bin_op) {
      case BinOp::kAnd: {
        compile_expr(*expr.args[0]);
        const int to_false = emit(Op::kJumpIfFalse);
        compile_expr(*expr.args[1]);
        const int to_end = emit(Op::kJump);
        patch(to_false, here());
        emit(Op::kPushBool, 0);
        patch(to_end, here());
        return;
      }
      case BinOp::kOr: {
        compile_expr(*expr.args[0]);
        const int to_true = emit(Op::kJumpIfTrue);
        compile_expr(*expr.args[1]);
        const int to_end = emit(Op::kJump);
        patch(to_true, here());
        emit(Op::kPushBool, 1);
        patch(to_end, here());
        return;
      }
      default: {
        compile_expr(*expr.args[0]);
        compile_expr(*expr.args[1]);
        switch (expr.bin_op) {
          case BinOp::kAdd: emit(Op::kAdd); return;
          case BinOp::kSub: emit(Op::kSub); return;
          case BinOp::kMul: emit(Op::kMul); return;
          case BinOp::kDiv: emit(Op::kDiv); return;
          case BinOp::kMod: emit(Op::kMod); return;
          case BinOp::kEq: emit(Op::kEq); return;
          case BinOp::kNe: emit(Op::kNe); return;
          case BinOp::kLt: emit(Op::kLt); return;
          case BinOp::kLe: emit(Op::kLe); return;
          case BinOp::kGt: emit(Op::kGt); return;
          case BinOp::kGe: emit(Op::kGe); return;
          default: fail("unreachable binary op");
        }
      }
    }
  }

  Module& module_;
  const Program& program_;
  Chunk chunk_;
  std::vector<std::unordered_map<std::string, int>> scopes_;
  int next_slot_ = 0;
  int sync_depth_ = 0;
  int try_depth_ = 0;
  std::vector<LoopContext> loops_;
  std::unordered_map<std::int64_t, int> int_index_;
  std::unordered_map<std::string, int> string_index_;
  std::unordered_map<std::string, int> name_index_;
};

}  // namespace

Module compile(const Program& program) {
  Module module;
  module.program = &program;
  // Pre-register every function so calls resolve regardless of order.
  for (std::size_t i = 0; i < program.functions.size(); ++i)
    module.function_index[program.functions[i].name] = static_cast<int>(i);
  FunctionCompiler compiler(module, program);
  module.chunks.reserve(program.functions.size());
  for (const FuncDecl& fn : program.functions)
    module.chunks.push_back(compiler.compile_function(fn));
  return module;
}

namespace {
const char* op_name(Op op) {
  switch (op) {
    case Op::kPushInt: return "push_int";
    case Op::kPushBool: return "push_bool";
    case Op::kPushStr: return "push_str";
    case Op::kPushNull: return "push_null";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kFieldGet: return "field_get";
    case Op::kFieldSet: return "field_set";
    case Op::kIndexGet: return "index_get";
    case Op::kIndexSet: return "index_set";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kNot: return "not";
    case Op::kNeg: return "neg";
    case Op::kJump: return "jump";
    case Op::kJumpIfFalse: return "jump_if_false";
    case Op::kJumpIfTrue: return "jump_if_true";
    case Op::kCall: return "call";
    case Op::kCallBuiltin: return "call_builtin";
    case Op::kNew: return "new";
    case Op::kPop: return "pop";
    case Op::kReturn: return "return";
    case Op::kThrow: return "throw";
    case Op::kTryPush: return "try_push";
    case Op::kTryPop: return "try_pop";
    case Op::kSyncEnter: return "sync_enter";
    case Op::kSyncExit: return "sync_exit";
  }
  return "?";
}
}  // namespace

std::string disassemble(const Module& module, const Chunk& chunk) {
  std::string out = "fn " + chunk.name + " (arity " + std::to_string(chunk.arity) +
                    ", slots " + std::to_string(chunk.slot_count) + ")\n";
  for (std::size_t i = 0; i < chunk.code.size(); ++i) {
    const Insn& insn = chunk.code[i];
    out += "  " + std::to_string(i) + ": " + op_name(insn.op);
    switch (insn.op) {
      case Op::kPushInt:
        out += " " + std::to_string(module.int_pool[static_cast<std::size_t>(insn.a)]);
        break;
      case Op::kPushStr:
        out += " \"" + module.string_pool[static_cast<std::size_t>(insn.a)] + "\"";
        break;
      case Op::kFieldGet:
      case Op::kFieldSet:
      case Op::kCallBuiltin:
        out += " " + module.name_pool[static_cast<std::size_t>(insn.a)];
        if (insn.op == Op::kCallBuiltin) out += "/" + std::to_string(insn.b);
        break;
      case Op::kCall:
        out += " " + module.chunks[static_cast<std::size_t>(insn.a)].name + "/" +
               std::to_string(insn.b);
        break;
      case Op::kNew:
        out += " " + module.new_specs[static_cast<std::size_t>(insn.a)].struct_name;
        break;
      case Op::kLoad:
      case Op::kStore:
      case Op::kPushBool:
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
      case Op::kTryPush:
        out += " " + std::to_string(insn.a);
        if (insn.op == Op::kTryPush) out += " slot=" + std::to_string(insn.b);
        break;
      default:
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace lisa::minilang
