// TF-IDF embeddings and RAG-style test selection.
//
// §3.2: "Our system automatically selects relevant tests for each path using
// LLM-based similarity search over test embeddings." The offline substitute
// embeds each @test function's source with TF-IDF over identifier tokens and
// ranks tests by cosine similarity against a textual description of the
// execution path (entry function, guards, target). Like the paper's
// selection, the result is an over-approximation fed to the concolic engine.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/paths.hpp"
#include "minilang/ast.hpp"

namespace lisa::inference {

/// Sparse TF-IDF vector keyed by token.
using SparseVector = std::map<std::string, double>;

class TfIdfModel {
 public:
  /// Fits document frequencies over the corpus of documents.
  void fit(const std::vector<std::string>& documents);

  /// Embeds one text under the fitted model (L2-normalized TF-IDF).
  [[nodiscard]] SparseVector embed(const std::string& text) const;

  /// Cosine similarity of two embeddings (0 when either is empty).
  [[nodiscard]] static double cosine(const SparseVector& a, const SparseVector& b);

  [[nodiscard]] std::size_t vocabulary_size() const { return idf_.size(); }

 private:
  std::map<std::string, double> idf_;
  std::size_t document_count_ = 0;
};

struct TestRanking {
  std::string test_name;
  double score = 0.0;
};

/// Ranks a program's @test functions against path/contract descriptions.
class TestSelector {
 public:
  /// Fits a model over all @test functions of `program` (which must outlive
  /// the selector).
  explicit TestSelector(const minilang::Program& program);

  /// All tests ranked by similarity to `query`, best first. Deterministic:
  /// ties break by test name.
  [[nodiscard]] std::vector<TestRanking> rank(const std::string& query) const;

  /// Top `max_tests` tests with score >= `min_score`.
  [[nodiscard]] std::vector<std::string> select(const std::string& query,
                                                std::size_t max_tests,
                                                double min_score = 0.0) const;

  [[nodiscard]] std::size_t test_count() const { return tests_.size(); }

  /// Textual description of an execution path for use as a query — the
  /// "features involved by this execution path" of §3.2.
  [[nodiscard]] static std::string describe_path(const analysis::ExecutionPath& path);

 private:
  struct TestDoc {
    std::string name;
    SparseVector embedding;
  };
  TfIdfModel model_;
  std::vector<TestDoc> tests_;
};

}  // namespace lisa::inference
