// Seeded chaos tests: random operation sequences against the mini systems,
// asserting their safety invariants hold whenever the guarding checks are
// enabled — and that the injected incident classes are the ONLY way the
// invariants break when checks are disabled.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "systems/cassandra/hints.hpp"
#include "systems/hbase/snapshots.hpp"
#include "systems/hdfs/replication.hpp"
#include "systems/sim/event_loop.hpp"
#include "systems/zookeeper/server.hpp"

namespace lisa::systems {
namespace {

class ChaosSeed : public ::testing::TestWithParam<int> {
 protected:
  support::Rng rng{static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL + 1};
};

TEST_P(ChaosSeed, EventLoopTimeIsMonotonic) {
  EventLoop loop;
  std::int64_t last_seen = -1;
  bool monotonic = true;
  std::function<void(int)> spawn = [&](int depth) {
    if (loop.now() < last_seen) monotonic = false;
    last_seen = loop.now();
    if (depth <= 0) return;
    const int children = 1 + static_cast<int>(rng.next_below(3));
    for (int i = 0; i < children; ++i)
      loop.schedule_after(rng.next_in(0, 50), [&spawn, depth] { spawn(depth - 1); });
  };
  for (int i = 0; i < 5; ++i)
    loop.schedule_at(rng.next_in(0, 100), [&spawn] { spawn(4); });
  loop.run_all(100'000);
  EXPECT_TRUE(monotonic);
}

TEST_P(ChaosSeed, FixedZooKeeperNeverLeaksEphemerals) {
  EventLoop loop;
  zk::ZkConfig config;
  config.session_timeout_ms = 500;
  zk::ZooKeeperServer server(loop, config);  // fix enabled
  std::vector<std::int64_t> sessions;
  for (int step = 0; step < 200; ++step) {
    loop.run_until(loop.now() + rng.next_in(0, 40));
    switch (rng.next_below(5)) {
      case 0:
        sessions.push_back(server.create_session("chaos"));
        break;
      case 1:
        if (!sessions.empty())
          server.create(sessions[rng.pick_index(sessions.size())],
                        "/c/" + std::to_string(step), "d", /*ephemeral=*/true);
        break;
      case 2:
        if (!sessions.empty())
          server.touch_session(sessions[rng.pick_index(sessions.size())]);
        break;
      case 3:
        if (!sessions.empty())
          server.close_session(sessions[rng.pick_index(sessions.size())]);
        break;
      default:
        server.take_snapshot();
        break;
    }
  }
  for (const std::int64_t session : sessions) server.close_session(session);
  loop.run_until(loop.now() + 2000);
  EXPECT_TRUE(server.find_stale_ephemerals().empty());
  EXPECT_EQ(server.live_sessions(), 0u);
}

TEST_P(ChaosSeed, CheckedReplicationNeverTargetsDecommissioning) {
  EventLoop loop;
  hdfs::ReplicationManager manager(loop);  // both checks on
  std::vector<std::string> names;
  std::int64_t block = 1;
  for (int step = 0; step < 150; ++step) {
    loop.run_until(loop.now() + rng.next_in(0, 30));
    switch (rng.next_below(5)) {
      case 0: {
        const std::string name = "dn" + std::to_string(names.size());
        manager.add_datanode(name);
        names.push_back(name);
        break;
      }
      case 1:
        if (!names.empty()) manager.heartbeat(names[rng.pick_index(names.size())]);
        break;
      case 2:
        if (!names.empty())
          manager.start_decommission(names[rng.pick_index(names.size())]);
        break;
      case 3:
        manager.place_block(block++);
        break;
      default:
        manager.expire_dead_nodes();
        manager.replicate_under_replicated();
        break;
    }
  }
  EXPECT_EQ(manager.stats().placed_on_decommissioning, 0u);
  // No block ever exceeds the replication factor on live nodes.
  for (const auto& [id, count] : manager.replica_counts()) EXPECT_LE(count, 3) << id;
}

TEST_P(ChaosSeed, CoveredSnapshotStoreNeverServesExpired) {
  EventLoop loop;
  hbase::SnapshotStore store(loop);  // full check coverage
  std::vector<std::string> names;
  for (int step = 0; step < 150; ++step) {
    loop.run_until(loop.now() + rng.next_in(0, 100));
    switch (rng.next_below(4)) {
      case 0: {
        const std::string name = "snap" + std::to_string(names.size());
        store.create_snapshot(name, rng.next_bool(0.3) ? 0 : rng.next_in(50, 500), {"row"});
        names.push_back(name);
        break;
      }
      case 1:
        if (!names.empty()) store.restore(names[rng.pick_index(names.size())]);
        break;
      case 2:
        if (!names.empty()) store.export_snapshot(names[rng.pick_index(names.size())]);
        break;
      default:
        if (!names.empty()) store.scan(names[rng.pick_index(names.size())]);
        break;
    }
  }
  EXPECT_EQ(store.stats().expired_served, 0u);
}

TEST_P(ChaosSeed, CheckedHintReplayNeverResurrects) {
  EventLoop loop;
  cassandra::HintedHandoff handoff(loop);
  std::vector<std::string> hosts;
  for (int step = 0; step < 150; ++step) {
    switch (rng.next_below(5)) {
      case 0: {
        const std::string host = "10.0.0." + std::to_string(hosts.size());
        handoff.add_node(host);
        hosts.push_back(host);
        break;
      }
      case 1:
        if (!hosts.empty())
          handoff.queue_hint(hosts[rng.pick_index(hosts.size())], "m", rng.next_bool());
        break;
      case 2:
        if (!hosts.empty()) handoff.decommission(hosts[rng.pick_index(hosts.size())]);
        break;
      case 3:
        if (!hosts.empty())
          handoff.replay_endpoint(hosts[rng.pick_index(hosts.size())], /*check_ring=*/true);
        break;
      default:
        handoff.replay_all(/*check_ring=*/true);
        break;
    }
  }
  EXPECT_EQ(handoff.stats().rows_resurrected, 0u);
  EXPECT_EQ(handoff.stats().hints_to_decommissioned, 0u);
}

TEST_P(ChaosSeed, BuggyZooKeeperLeaksExactlyTheRacedCreates) {
  EventLoop loop;
  zk::ZkConfig config;
  config.fix_zk1208 = false;
  config.session_timeout_ms = 100'000;  // no expiry noise
  zk::ZooKeeperServer server(loop, config);
  int raced = 0;
  for (int i = 0; i < 30; ++i) {
    const std::int64_t session = server.create_session("c");
    server.create(session, "/pre/" + std::to_string(i), "d", true);
    server.close_session(session);
    if (rng.next_bool(0.5)) {
      // The racing create lands in the CLOSING window and will leak.
      if (server.create(session, "/raced/" + std::to_string(i), "d", true) ==
          zk::ZkStatus::kOk)
        ++raced;
    }
    loop.run_until(loop.now() + 100);
  }
  EXPECT_EQ(server.find_stale_ephemerals().size(), static_cast<std::size_t>(raced));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeed, ::testing::Range(1, 13));

}  // namespace
}  // namespace lisa::systems
