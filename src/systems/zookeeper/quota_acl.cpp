#include "systems/zookeeper/quota_acl.hpp"

namespace lisa::systems::zk {

bool QuotaTree::add(const std::string& path, bool check) {
  if (check && node_count() >= quota_limit_) {
    ++stats_.creates_rejected;
    return false;
  }
  nodes_[path] = true;
  ++stats_.creates_ok;
  if (node_count() > quota_limit_) ++stats_.creates_over_quota;
  return true;
}

bool QuotaTree::create_node(const std::string& path) {
  return add(path, guards_.create_checks_quota);
}

std::string QuotaTree::create_sequential(const std::string& prefix) {
  const std::string path = prefix + std::to_string(++seq_counter_);
  if (!add(path, guards_.sequential_checks_quota)) return "";
  return path;
}

bool AclManager::install(const AclEntry& entry, bool validate) {
  if (validate && entry.scheme.empty()) {
    ++stats_.rejected;
    return false;
  }
  if (entry.scheme.empty()) ++stats_.installed_unvalidated;
  installed_[entry.id] = entry;
  ++stats_.installed;
  return true;
}

bool AclManager::set_acl(const AclEntry& entry) {
  return install(entry, guards_.set_path_validates);
}

std::size_t AclManager::restore_from_snapshot(const std::vector<AclEntry>& entries) {
  std::size_t count = 0;
  for (const AclEntry& entry : entries)
    if (install(entry, guards_.restore_path_validates)) ++count;
  return count;
}

bool AclManager::is_exposed(const std::string& id) const {
  const auto it = installed_.find(id);
  return it != installed_.end() && it->second.scheme.empty();
}

}  // namespace lisa::systems::zk
