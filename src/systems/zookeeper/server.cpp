#include "systems/zookeeper/server.hpp"

namespace lisa::systems::zk {

const char* zk_status_name(ZkStatus status) {
  switch (status) {
    case ZkStatus::kOk: return "OK";
    case ZkStatus::kSessionExpired: return "SESSION_EXPIRED";
    case ZkStatus::kSessionClosing: return "SESSION_CLOSING";
    case ZkStatus::kNodeExists: return "NODE_EXISTS";
    case ZkStatus::kNoNode: return "NO_NODE";
  }
  return "?";
}

ZooKeeperServer::ZooKeeperServer(EventLoop& loop, ZkConfig config)
    : loop_(loop), config_(config) {
  schedule_expiry_sweep();
}

void ZooKeeperServer::schedule_expiry_sweep() {
  loop_.schedule_after(config_.session_timeout_ms / 2, [this] {
    const std::int64_t now = loop_.now();
    std::vector<std::int64_t> expired;
    for (const auto& [id, session] : sessions_) {
      if (session.state == SessionState::kConnected &&
          now - session.last_touch_ms > config_.session_timeout_ms)
        expired.push_back(id);
    }
    for (const std::int64_t id : expired) {
      ++stats_.sessions_expired;
      close_session(id);
    }
    schedule_expiry_sweep();
  });
}

std::int64_t ZooKeeperServer::create_session(const std::string& owner) {
  const std::int64_t id = next_session_id_++;
  sessions_[id] = Session{id, owner, SessionState::kConnected, loop_.now()};
  return id;
}

bool ZooKeeperServer::touch_session(std::int64_t session_id) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.state != SessionState::kConnected) return false;
  it->second.last_touch_ms = loop_.now();
  return true;
}

void ZooKeeperServer::close_session(std::int64_t session_id) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.state != SessionState::kConnected) return;
  it->second.state = SessionState::kClosing;
  // Phase 1: collect this session's ephemeral nodes NOW. Anything created
  // after this point but before phase 2 is missed — the ZK-1208 window.
  std::vector<std::string> collected;
  for (const auto& [path, node] : nodes_)
    if (node.ephemeral_owner == session_id) collected.push_back(path);
  loop_.schedule_after(config_.close_linger_ms,
                       [this, session_id, collected = std::move(collected)]() mutable {
                         finish_close(session_id, std::move(collected));
                       });
}

void ZooKeeperServer::finish_close(std::int64_t session_id, std::vector<std::string> collected) {
  for (const std::string& path : collected) {
    if (nodes_.erase(path) > 0) fire_watches(path, "deleted");
  }
  const auto it = sessions_.find(session_id);
  if (it != sessions_.end()) it->second.state = SessionState::kClosed;
}

std::optional<SessionState> ZooKeeperServer::session_state(std::int64_t session_id) const {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second.state;
}

std::size_t ZooKeeperServer::live_sessions() const {
  std::size_t count = 0;
  for (const auto& [id, session] : sessions_)
    if (session.state == SessionState::kConnected) ++count;
  return count;
}

ZkStatus ZooKeeperServer::create(std::int64_t session_id, const std::string& path,
                                 const std::string& data, bool ephemeral) {
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.state == SessionState::kClosed) {
    ++stats_.creates_rejected;
    return ZkStatus::kSessionExpired;
  }
  // The low-level semantics of ZK-1208: no ephemeral node may be created on a
  // closing session. With the fix disabled the create slips into the close
  // window and the node outlives its session.
  if (config_.fix_zk1208 && ephemeral && it->second.state == SessionState::kClosing) {
    ++stats_.creates_rejected;
    return ZkStatus::kSessionClosing;
  }
  if (nodes_.count(path) > 0) {
    ++stats_.creates_rejected;
    return ZkStatus::kNodeExists;
  }
  // Writers queue behind the tree lock during (buggy) snapshot serialization.
  if (tree_locked_) stats_.write_stall_ms += config_.disk_write_ms;
  nodes_[path] = Node{data, ephemeral ? session_id : 0, loop_.now()};
  ++stats_.creates_ok;
  fire_watches(path, "created");
  return ZkStatus::kOk;
}

std::optional<std::string> ZooKeeperServer::get_data(const std::string& path) const {
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.data;
}

std::vector<std::string> ZooKeeperServer::get_children(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, node] : nodes_) {
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        path[prefix.size()] == '/')
      out.push_back(path);
  }
  return out;
}

ZkStatus ZooKeeperServer::delete_node(const std::string& path) {
  if (nodes_.erase(path) == 0) return ZkStatus::kNoNode;
  fire_watches(path, "deleted");
  return ZkStatus::kOk;
}

bool ZooKeeperServer::exists(const std::string& path) const { return nodes_.count(path) > 0; }

void ZooKeeperServer::watch(const std::string& path, WatchCallback callback) {
  watches_.emplace(path, std::move(callback));
}

void ZooKeeperServer::fire_watches(const std::string& path, const std::string& type) {
  const auto range = watches_.equal_range(path);
  std::vector<WatchCallback> to_fire;
  for (auto it = range.first; it != range.second; ++it) to_fire.push_back(it->second);
  watches_.erase(range.first, range.second);  // one-shot, like real ZooKeeper
  for (WatchCallback& callback : to_fire) {
    ++stats_.watches_fired;
    callback(WatchEvent{path, type});
  }
}

std::size_t ZooKeeperServer::take_snapshot() {
  ++stats_.snapshots_taken;
  const std::size_t count = nodes_.size();
  const std::int64_t write_cost =
      static_cast<std::int64_t>(count) * config_.disk_write_ms;
  if (!config_.fix_sync_blocking) {
    // Buggy shape (ZK-2201): every record written while the tree lock is
    // held; writers that arrive during this window stall.
    tree_locked_ = true;
    loop_.schedule_after(write_cost, [this] { tree_locked_ = false; });
  }
  // Fixed shape: state is copied under the lock (treated as instantaneous
  // here) and written outside — writers never observe the lock held.
  return count;
}

std::vector<std::string> ZooKeeperServer::find_stale_ephemerals() {
  std::vector<std::string> out;
  for (const auto& [path, node] : nodes_) {
    if (node.ephemeral_owner == 0) continue;
    const auto it = sessions_.find(node.ephemeral_owner);
    if (it == sessions_.end() || it->second.state == SessionState::kClosed) {
      out.push_back(path);
      ++stats_.stale_ephemerals_detected;
    }
  }
  return out;
}

}  // namespace lisa::systems::zk
