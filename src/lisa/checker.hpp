// Contract enforcement: static path assertion + concolic confirmation.
//
// For a state-predicate contract <P> s:
//   * STATIC: the execution tree enumerates every entry→s path; each path's
//     condition π is checked against the renamed contract — the path is
//     VIOLATED iff π ∧ ¬P is satisfiable (the trace "fulfills the complement
//     of the checker formula", §3.2, with missing checks unconstrained).
//     Paths whose contract variables cannot be expressed in entry terms are
//     UNMAPPABLE and surfaced for a developer verdict.
//   * SANITY: the paths fixed by the original patch must verify — "we want at
//     least one path in this execution tree that will give verified result".
//   * DYNAMIC: relevant @test functions are selected by embedding similarity
//     and replayed on the concolic engine, which fires the injected check at
//     every target hit; static paths never reached by any selected test are
//     reported uncovered ("either the test suite does not have enough
//     coverage, or the LLM misses the related tests").
//
// Structural contracts are checked over the call graph instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lisa/contract.hpp"
#include "minilang/ast.hpp"
#include "obs/provenance.hpp"
#include "support/budget.hpp"
#include "support/json.hpp"

namespace lisa::staticcheck {
class SliceEngine;
struct SliceRequest;
}

namespace lisa::core {

enum class PathVerdict { kVerified, kViolated, kUnmappable, kInconclusive };

[[nodiscard]] const char* path_verdict_name(PathVerdict verdict);

/// Inverse of path_verdict_name; nullopt on an unrecognized name (journal
/// entries written by a different build).
[[nodiscard]] std::optional<PathVerdict> path_verdict_from_name(const std::string& name);

struct PathReport {
  std::vector<std::string> call_chain;
  int target_stmt_id = -1;
  std::string target_text;
  std::string path_condition;
  std::string contract_condition;  // renamed to canonical names
  PathVerdict verdict = PathVerdict::kVerified;
  std::string counterexample;  // model of π ∧ ¬P for violated paths
  std::string detail;          // kInconclusive: why the verdict was refused
  bool covered_by_test = false;
  std::vector<std::string> covering_tests;
};

struct DynamicReport {
  std::vector<std::string> selected_tests;
  int tests_run = 0;
  int tests_passed = 0;
  int target_hits = 0;
  int symbolic_violations = 0;
  int concrete_violations = 0;
  /// Target hits whose π ∧ ¬P query came back unknown (budget or fault):
  /// neither a violation nor a confirmation.
  int inconclusive_hits = 0;
  /// Runs cut short by the step limit or an exhausted budget.
  int degraded_runs = 0;
  std::vector<std::string> violation_details;
};

struct ContractCheckReport {
  std::string contract_id;
  std::string target_fragment;
  std::size_t target_statements = 0;
  std::vector<PathReport> paths;
  int verified = 0;
  int violated = 0;
  int unmappable = 0;
  int inconclusive = 0;     // paths refused by budget / fault / solver unknown
  int uncovered = 0;        // static paths no selected test exercised
  std::size_t raw_paths = 0;  // before pruning/dedup (ablation metric)
  bool truncated = false;
  /// ≥1 statically verified path (the fixed path) — the paper's sanity
  /// check; also the cross-validation signal that grounds LLM output
  /// against actual system behaviour (§5).
  bool sanity_ok = false;
  DynamicReport dynamic;
  std::vector<std::string> structural_violations;  // structural contracts

  // Static screening (src/staticcheck): three-valued verdict computed before
  // the expensive phases. Empty string when screening was disabled.
  std::string screen_verdict;   // "proved-safe" | "proved-violated" | "unknown"
  std::string screen_witness;   // entry->target chain + model for refutations
  std::string screen_reason;
  double screen_ms = 0.0;
  /// Time spent computing interprocedural summaries (Screener construction,
  /// not counted in screen_ms; 0 when summaries are disabled).
  double summary_ms = 0.0;
  /// True when the screener verdict made the concolic replay unnecessary.
  bool screen_skipped_concolic = false;

  /// Resource governance (support/budget.hpp): set when the attached budget
  /// latched exhausted at any point during this contract's check. The
  /// skipped work is accounted under `inconclusive` / dynamic degradation —
  /// never silently dropped.
  bool budget_exhausted = false;
  std::string budget_reason;
  /// Typed exhaustion cause ("deadline" | "smt-queries" | "paths" |
  /// "fork-points" | "steps"); empty unless budget_exhausted.
  std::string budget_resource;

  /// Schedule exploration (concolic/schedule.hpp): interleaving contracts
  /// with `atomic` / `eventually` patterns are decided by re-running every
  /// spawning @test under the cooperative scheduler, one interleaving per
  /// run. Serial replay sees exactly one schedule and is provably blind to
  /// these bugs, so the explorer's verdict is the contract's verdict.
  int schedules_explored = 0;
  /// False when the DFS could not drain the reduced schedule space within
  /// the bound (or the budget): "no violation found so far", never a pass.
  bool schedule_conclusive = true;
  int schedule_violations = 0;
  /// Compact replayable witness of the first violating interleaving
  /// (ScheduleWitness::to_compact): seed + decision list re-derive the
  /// identical trace on any later run.
  std::string schedule_witness;
  std::string schedule_inconclusive_reason;
  std::vector<std::string> schedule_violation_details;

  /// Slice fingerprint of this contract's verdict cone
  /// (staticcheck/slice.hpp): the canonical identity of everything the
  /// verdict can depend on. Journal resume replays a checkpointed entry iff
  /// its slice_fp still matches the current program; empty when fingerprint
  /// computation was not requested (CheckOptions::compute_slice_fp).
  std::string slice_fp;

  /// True when the checked program satisfies the contract everywhere.
  [[nodiscard]] bool passed() const {
    return violated == 0 && structural_violations.empty() &&
           dynamic.symbolic_violations == 0 && dynamic.concrete_violations == 0 &&
           schedule_violations == 0;
  }

  /// True when every phase ran to completion: no path refused, no run
  /// degraded, no budget exhaustion. `passed() && !conclusive()` means
  /// "no violation found so far" — needs attention, not a green light.
  [[nodiscard]] bool conclusive() const {
    return !budget_exhausted && inconclusive == 0 &&
           dynamic.inconclusive_hits == 0 && dynamic.degraded_runs == 0 &&
           schedule_conclusive;
  }

  /// Canonical rendering of everything verdict-relevant — counts, per-path
  /// verdicts and counterexamples, dynamic violations, structural findings,
  /// screen verdict — excluding timings and the screen reason/witness
  /// phrasing. Two runs decided a contract identically iff their signatures
  /// are byte-identical: the equivalence oracle for incremental re-checking
  /// (bench_incremental) and resume tests.
  [[nodiscard]] std::string verdict_signature() const;

  [[nodiscard]] support::Json to_json() const;
  /// Rebuilds a report from its to_json form (checkpoint journal resume).
  /// Best-effort: unknown verdict names degrade to kInconclusive.
  [[nodiscard]] static ContractCheckReport from_json(const support::Json& json);
};

struct CheckOptions {
  bool run_concolic = true;
  bool prune_irrelevant = true;   // §3.2 relevant-variable branch pruning
  std::size_t max_paths = 4096;
  std::size_t max_tests_per_contract = 8;
  double min_test_score = 0.01;
  /// Override test selection: run exactly these tests (empty = use RAG
  /// selection). Used by the test-selection ablation.
  std::vector<std::string> forced_tests;
  /// Run the staticcheck screener before the expensive phases. A ProvedSafe
  /// verdict skips the concolic replay (the static tree still runs, and
  /// forced tests are always honoured); Unknown contracts proceed unchanged.
  bool static_screen = true;
  /// Additionally skip concolic replay on ProvedViolated verdicts — the
  /// static witness already fails the contract. Used by the CI gate and the
  /// screening benchmark, where only the pass/fail outcome matters.
  bool trust_screen_verdicts = false;
  /// Compute interprocedural function summaries for the screener's dataflow
  /// facts (staticcheck/summaries.hpp). Off = PR 2 call-site-havoc facts;
  /// the ablation axis of bench_static_screening. Never affects the static
  /// tree or concolic phases, only which contracts the screener can settle.
  bool use_summaries = true;
  /// Schedule-exploration bound for interleaving contracts with `atomic` /
  /// `eventually` patterns: the total number of interleavings the explorer
  /// may run across all spawning @tests before the verdict degrades to a
  /// typed inconclusive. Every run is charged to the budget's `schedules`
  /// resource when one is attached.
  int max_schedules = 2048;
  /// Seed for the explorer's PCT-style random phase (used only when the DFS
  /// cannot drain the reduced schedule space within the bound). Fixed
  /// default so repeated runs explore identical schedules.
  std::uint64_t schedule_seed = 0x5eedULL;
  /// Cooperative resource budget shared across phases: the static loop
  /// charges paths and SMT queries, the concolic engine charges steps and
  /// fork points. Refused work surfaces as kInconclusive paths or degraded
  /// runs. nullptr = ungoverned (byte-identical to the pre-budget checker).
  support::Budget* budget = nullptr;
  /// Verdict provenance (obs/provenance.hpp): when set, the checker records
  /// the complete evidence chain — screen facts and summaries, every static
  /// path's π ∧ ¬P query, concolic hits, budget charges, and a narrated
  /// counterexample for violated contracts. nullptr = zero-cost (the check
  /// output is byte-identical to an uncaptured run).
  obs::ProvenanceLedger* ledger = nullptr;
  /// Compute the contract's slice fingerprint and record it on the report
  /// (and ledger capture). Off by default so ungoverned check output stays
  /// byte-identical; the pipeline and gate turn it on whenever a journal or
  /// ledger is attached.
  bool compute_slice_fp = false;
};

/// The canonical slice request for `contract` — the single construction the
/// checker, resume, and `lisa slice` all share, so their fingerprints agree.
/// `run_concolic` must match the CheckOptions in effect: state-predicate
/// cones include @test functions iff concolic replay is on; structural and
/// interleaving cones always include them (their analyses scan every
/// function).
[[nodiscard]] staticcheck::SliceRequest contract_slice_request(
    const SemanticContract& contract, bool run_concolic);

/// The slice fingerprint Checker::check records for `contract` — exposed so
/// resume can recompute it against the current program without running the
/// check.
[[nodiscard]] std::string contract_slice_fingerprint(const staticcheck::SliceEngine& engine,
                                                     const SemanticContract& contract,
                                                     bool run_concolic);

class Checker {
 public:
  /// Checks one contract against one program version.
  [[nodiscard]] ContractCheckReport check(const minilang::Program& program,
                                          const SemanticContract& contract,
                                          const CheckOptions& options = {}) const;
};

}  // namespace lisa::core
