#include "concolic/schedule.hpp"

#include <random>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "minilang/printer.hpp"
#include "support/faultpoint.hpp"

namespace lisa::concolic {

using minilang::Expr;
using minilang::ExprPtr;
using minilang::FuncDecl;
using minilang::ScheduleOp;
using minilang::Stmt;
using minilang::StmtPtr;
using minilang::ThreadStatus;

std::string ScheduleWitness::decisions_text() const {
  std::string out;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(decisions[i]);
  }
  return out;
}

std::vector<int> ScheduleWitness::parse_decisions(const std::string& text) {
  std::vector<int> out;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      if (!current.empty()) out.push_back(std::stoi(current));
      current.clear();
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::stoi(current));
  return out;
}

std::string ScheduleWitness::to_compact() const {
  // detail is last because it is free-form text; every other field is
  // ';'-free by construction.
  return "test=" + test + ";seed=" + std::to_string(seed) +
         ";decisions=" + decisions_text() + ";outcome=" + outcome + ";detail=" + detail;
}

ScheduleWitness ScheduleWitness::from_compact(const std::string& text) {
  ScheduleWitness witness;
  const auto field = [&](const std::string& key) -> std::string {
    const std::string marker = key + "=";
    const std::size_t at = text.find(marker);
    if (at == std::string::npos) return "";
    const std::size_t start = at + marker.size();
    const std::size_t end = key == "detail" ? std::string::npos : text.find(';', start);
    return text.substr(start, end == std::string::npos ? end : end - start);
  };
  witness.test = field("test");
  const std::string seed_text = field("seed");
  if (!seed_text.empty()) witness.seed = std::stoull(seed_text);
  witness.decisions = parse_decisions(field("decisions"));
  witness.outcome = field("outcome");
  witness.detail = field("detail");
  return witness;
}

namespace {

// --- conflict detection ----------------------------------------------------

/// Operations that always branch. Thread lifecycle ops (start/spawn/join)
/// because their data footprint is unknown; monitor ops (sync/wait/notify)
/// because their effect is *control*, not data — wait(m) commutes with a
/// field write as a state transition, yet delaying the wait past a later
/// notify loses the wakeup entirely. Pending-op conflict detection cannot
/// see that future, so monitor ordering is never pruned (this is what makes
/// the missed-notify corpus case reachable).
bool footprint_unknown(ScheduleOp::Kind kind) {
  switch (kind) {
    case ScheduleOp::Kind::kStart:
    case ScheduleOp::Kind::kSpawn:
    case ScheduleOp::Kind::kJoin:
    case ScheduleOp::Kind::kSyncEnter:
    case ScheduleOp::Kind::kSyncExit:
    case ScheduleOp::Kind::kWait:
    case ScheduleOp::Kind::kNotify:
      return true;
    case ScheduleOp::Kind::kFieldRead:
    case ScheduleOp::Kind::kFieldWrite:
    case ScheduleOp::Kind::kBlocking:
      return false;
  }
  return true;
}

/// Two pending operations commute iff they touch provably different named
/// resources (different monitors, different object fields). Same resource
/// always conflicts — deliberately including read/read, because container
/// mutations via builtins (put/push/del) are only visible here as the field
/// *read* that fetched the container.
bool ops_conflict(const ScheduleOp& a, const ScheduleOp& b) {
  if (footprint_unknown(a.kind) || footprint_unknown(b.kind)) return true;
  if (a.resource.empty() || b.resource.empty()) return true;
  return a.resource == b.resource;
}

bool has_conflict(const std::vector<ThreadStatus>& runnable) {
  for (std::size_t i = 0; i < runnable.size(); ++i)
    for (std::size_t j = i + 1; j < runnable.size(); ++j)
      if (ops_conflict(runnable[i].op, runnable[j].op)) return true;
  return false;
}

/// Dependence for the sleep-set *wake* rule. ops_conflict decides where the
/// DFS must branch and is deliberately future-blind (an op whose footprint
/// is unknown always branches); this relation instead asks whether the
/// *immediate effect* of the granted segment can interact with a sleeping
/// thread's recorded pending op:
///   - start/spawn/join segments are purely local or control-forced (every
///     shared access is its own later yield point), so they wake nothing;
///   - monitor and field ops interact only through the same named resource
///     (a monitor key never equals a field key — acquiring s is independent
///     of writing s.ephemerals);
///   - wait/notify/blocking carry invisible futures (a delayed wait loses a
///     later notify; blocking advances the shared virtual clock), so they
///     conservatively wake every sleeper.
/// Precision here is what makes the pruning effective: a sleeping thread
/// that survives the granted op means the current interleaving still covers
/// the one where it ran earlier.
bool wake_dependent(const ScheduleOp& granted, const ScheduleOp& sleeping) {
  const auto local_only = [](ScheduleOp::Kind kind) {
    return kind == ScheduleOp::Kind::kStart || kind == ScheduleOp::Kind::kSpawn ||
           kind == ScheduleOp::Kind::kJoin;
  };
  if (local_only(granted.kind) || local_only(sleeping.kind)) return false;
  const auto named_resource = [](ScheduleOp::Kind kind) {
    return kind == ScheduleOp::Kind::kSyncEnter || kind == ScheduleOp::Kind::kSyncExit ||
           kind == ScheduleOp::Kind::kFieldRead || kind == ScheduleOp::Kind::kFieldWrite;
  };
  if (named_resource(granted.kind) && named_resource(sleeping.kind))
    return !granted.resource.empty() && granted.resource == sleeping.resource;
  return true;  // wait / notify / blocking: never prune past them
}

// --- controllers -----------------------------------------------------------

/// One decision point on the DFS stack: the awake alternatives that existed
/// when the frontier first reached it (thread + its pending op, needed for
/// sleep inheritance), and which one the next run takes.
struct ChoicePoint {
  std::vector<ThreadStatus> alternatives;
  std::size_t next = 0;
};

/// Stateless-search DFS with sleep sets. Each run replays the stack prefix,
/// then extends the frontier:
///   - at a replayed choice point, the alternatives already explored there
///     are put to sleep on their recorded ops (the prefix is byte-identical
///     across runs, so the recorded ops are exactly their pending ops);
///   - a sleeping thread wakes when a granted op is wake_dependent with its
///     recorded op — until then, scheduling it would only permute commuting
///     segments of an interleaving another run already covers;
///   - a fresh choice point branches over every *awake* runnable thread
///     when some pair of pending ops conflicts (only the lowest id when all
///     commute), and prunes the run outright when every runnable thread is
///     asleep — the classic sleep-set cut that keeps the schedule count
///     polynomial where naive conflict branching explodes.
class DfsController final : public minilang::ScheduleController {
 public:
  explicit DfsController(std::vector<ChoicePoint>& stack) : stack_(stack) {}

  int pick(const std::vector<ThreadStatus>& runnable) override {
    int chosen;
    if (depth_ < stack_.size()) {
      const ChoicePoint& point = stack_[depth_];
      // Sleep inheritance: alternatives tried by earlier runs are covered.
      for (std::size_t i = 0; i < point.next; ++i)
        sleeping_[point.alternatives[i].thread_id] = point.alternatives[i].op;
      chosen = point.alternatives[point.next].thread_id;
      bool still_runnable = false;
      for (const ThreadStatus& status : runnable)
        if (status.thread_id == chosen) still_runnable = true;
      if (!still_runnable) chosen = runnable.front().thread_id;
    } else {
      std::vector<ThreadStatus> awake;
      for (const ThreadStatus& status : runnable)
        if (sleeping_.find(status.thread_id) == sleeping_.end())
          awake.push_back(status);
      if (awake.empty()) return kPruneRun;  // every continuation is covered
      ChoicePoint point;
      if (has_conflict(runnable))
        point.alternatives = std::move(awake);
      else
        point.alternatives.push_back(awake.front());
      chosen = point.alternatives.front().thread_id;
      stack_.push_back(std::move(point));
    }
    ++depth_;
    trace_.push_back(chosen);
    return chosen;
  }

  void observe(const ThreadStatus& granted) override {
    for (auto it = sleeping_.begin(); it != sleeping_.end();) {
      if (it->first != granted.thread_id && wake_dependent(granted.op, it->second))
        it = sleeping_.erase(it);
      else
        ++it;
    }
    sleeping_.erase(granted.thread_id);
  }

  [[nodiscard]] const std::vector<int>& trace() const { return trace_; }

 private:
  std::vector<ChoicePoint>& stack_;
  std::unordered_map<int, ScheduleOp> sleeping_;
  std::size_t depth_ = 0;
  std::vector<int> trace_;
};

/// Advances the DFS to the next unexplored schedule. Returns false when the
/// stack drains — the reduced schedule space is exhausted.
bool advance(std::vector<ChoicePoint>& stack) {
  while (!stack.empty()) {
    ChoicePoint& top = stack.back();
    if (++top.next < top.alternatives.size()) return true;
    stack.pop_back();
  }
  return false;
}

/// Seeded uniform choice at every decision point (the PCT-style phase).
class RandomController final : public minilang::ScheduleController {
 public:
  explicit RandomController(std::uint64_t seed) : rng_(seed) {}

  int pick(const std::vector<ThreadStatus>& runnable) override {
    const std::size_t index = static_cast<std::size_t>(rng_() % runnable.size());
    const int chosen = runnable[index].thread_id;
    trace_.push_back(chosen);
    return chosen;
  }

  [[nodiscard]] const std::vector<int>& trace() const { return trace_; }

 private:
  std::mt19937_64 rng_;
  std::vector<int> trace_;
};

/// Follows a witness decision list; past its end (or when the recorded
/// thread is no longer runnable) falls back to lowest id, deterministically.
class ReplayController final : public minilang::ScheduleController {
 public:
  explicit ReplayController(const std::vector<int>& decisions) : decisions_(decisions) {}

  int pick(const std::vector<ThreadStatus>& runnable) override {
    int chosen = runnable.front().thread_id;
    if (index_ < decisions_.size()) {
      const int want = decisions_[index_];
      for (const ThreadStatus& status : runnable)
        if (status.thread_id == want) chosen = want;
    }
    ++index_;
    return chosen;
  }

 private:
  const std::vector<int>& decisions_;
  std::size_t index_ = 0;
};

// --- spawn detection -------------------------------------------------------

void collect_expr_calls(const Expr& expr, std::unordered_set<std::string>& calls) {
  if (expr.kind == Expr::Kind::kCall) calls.insert(expr.text);
  for (const ExprPtr& arg : expr.args) collect_expr_calls(*arg, calls);
}

void walk_stmt(const Stmt& stmt, bool& spawns, std::unordered_set<std::string>& calls) {
  if (stmt.kind == Stmt::Kind::kSpawn) spawns = true;
  if (stmt.expr) collect_expr_calls(*stmt.expr, calls);
  if (stmt.expr2) collect_expr_calls(*stmt.expr2, calls);
  for (const StmtPtr& child : stmt.body) walk_stmt(*child, spawns, calls);
  for (const StmtPtr& child : stmt.else_body) walk_stmt(*child, spawns, calls);
}

}  // namespace

ScheduleExplorer::ScheduleExplorer(const minilang::Program& program,
                                   ScheduleExploreOptions options)
    : program_(program), options_(options) {}

bool ScheduleExplorer::test_spawns(const std::string& test_name) const {
  std::unordered_set<std::string> visited;
  std::vector<std::string> work{test_name};
  while (!work.empty()) {
    const std::string name = std::move(work.back());
    work.pop_back();
    if (!visited.insert(name).second) continue;
    const FuncDecl* fn = program_.find_function(name);
    if (fn == nullptr) continue;  // builtin
    bool spawns = false;
    std::unordered_set<std::string> calls;
    for (const StmtPtr& stmt : fn->body) walk_stmt(*stmt, spawns, calls);
    if (spawns) return true;
    for (const std::string& callee : calls) work.push_back(callee);
  }
  return false;
}

void ScheduleExplorer::explore_into(const std::string& test_name,
                                    ScheduleExplorationResult& out) {
  const int bound = options_.max_schedules > 0 ? options_.max_schedules : 1;
  const auto charge = [&]() -> bool {
    return options_.budget == nullptr || options_.budget->charge_schedule();
  };
  const auto note_budget_exhausted = [&]() {
    out.conclusive = false;
    if (out.inconclusive_reason.empty())
      out.inconclusive_reason = options_.budget != nullptr
                                    ? options_.budget->exhausted_reason()
                                    : "schedule budget exhausted";
  };
  const auto note_degraded = [&](const minilang::ScheduleRunResult& run) {
    out.conclusive = false;
    if (out.inconclusive_reason.empty())
      out.inconclusive_reason = "schedule run degraded: " + run.error;
  };
  const auto record_witness = [&](const minilang::ScheduleRunResult& run,
                                  const std::vector<int>& trace, std::uint64_t seed) {
    ScheduleWitness witness;
    witness.test = test_name;
    witness.seed = seed;
    witness.decisions = trace;
    witness.detail = run.error;
    witness.outcome = run.hung ? "hang"
                     : run.error.find("assertion failed") != std::string::npos
                         ? "assert-failure"
                         : "exception";
    out.witnesses.push_back(std::move(witness));
    out.violation_found = true;
  };

  // Phase 1: DFS over conflict-directed choice points.
  std::vector<ChoicePoint> stack;
  bool dfs_complete = false;
  while (out.schedules_explored < bound) {
    if (!charge()) {
      note_budget_exhausted();
      return;
    }
    minilang::Interp interp(program_);
    DfsController controller(stack);
    const minilang::ScheduleRunResult run =
        interp.run_scheduled_test(test_name, controller);
    ++out.schedules_explored;
    if (run.pruned) {
      // Sleep-set cut: this interleaving only permutes commuting segments
      // of one already explored. A charged probe, not a verdict.
    } else if (run.degraded) {
      note_degraded(run);
    } else if (!run.test_passed) {
      record_witness(run, controller.trace(), 0);
      return;
    }
    if (!advance(stack)) {
      dfs_complete = true;
      break;
    }
  }
  if (dfs_complete) return;  // conclusive for this test (unless degraded above)

  // Phase 2: seeded random search for whatever bound remains. Whatever it
  // finds, exploration is no longer a proof of absence.
  out.conclusive = false;
  if (out.inconclusive_reason.empty())
    out.inconclusive_reason = "schedule space not exhausted within " +
                              std::to_string(bound) +
                              " schedules (DFS incomplete; random phase found no violation)";
  while (out.schedules_explored < bound) {
    if (!charge()) {
      note_budget_exhausted();
      return;
    }
    const std::uint64_t seed =
        options_.seed + static_cast<std::uint64_t>(out.schedules_explored);
    minilang::Interp interp(program_);
    RandomController controller(seed);
    const minilang::ScheduleRunResult run =
        interp.run_scheduled_test(test_name, controller);
    ++out.schedules_explored;
    if (run.degraded) {
      note_degraded(run);
    } else if (!run.test_passed) {
      record_witness(run, controller.trace(), seed);
      return;
    }
  }
}

ScheduleExplorationResult ScheduleExplorer::explore() {
  ScheduleExplorationResult out;
  const support::FaultAction fault = support::faultpoint("schedule.explore");
  if (fault != support::FaultAction::kNone) {
    out.conclusive = false;
    out.inconclusive_reason = std::string("fault injected: schedule.explore (") +
                              support::fault_action_name(fault) + ")";
    return out;
  }
  for (const FuncDecl* test : program_.functions_with("test")) {
    if (!test_spawns(test->name)) continue;
    ++out.tests_with_threads;
    explore_into(test->name, out);
    if (out.violation_found) break;  // first violating schedule decides the verdict
  }
  return out;
}

ScheduleExplorationResult ScheduleExplorer::explore_test(const std::string& test_name) {
  ScheduleExplorationResult out;
  if (!test_spawns(test_name)) {
    // One serial schedule is the whole space: vacuously conclusive.
    out.conclusive = true;
    return out;
  }
  out.tests_with_threads = 1;
  explore_into(test_name, out);
  return out;
}

minilang::ScheduleRunResult ScheduleExplorer::replay(
    const ScheduleWitness& witness,
    const std::function<void(minilang::Interp&)>& configure) {
  minilang::Interp interp(program_);
  if (configure) configure(interp);
  ReplayController controller(witness.decisions);
  return interp.run_scheduled_test(witness.test, controller);
}

namespace {

constexpr std::size_t kNarrationMaxSteps = 400;
constexpr std::int64_t kNarrationFuel = 200'000;

/// Records the interleaved step trace of a witness replay, each step tagged
/// with the MiniLang thread that executed it. Exactly one thread runs
/// interpreter code at a time (the scheduler hands a single execution token
/// between OS threads), so the unsynchronized appends are safe.
class ScheduleNarrator final : public minilang::ExecObserver {
 public:
  explicit ScheduleNarrator(obs::Narration* out) : out_(out) {}

  void attach(minilang::Interp* interp) { interp_ = interp; }

  [[nodiscard]] bool wants_state() override { return true; }

  void on_state(const minilang::FuncDecl& fn, const minilang::Stmt& stmt,
                minilang::StateAccess& state) override {
    if (out_->steps.size() >= kNarrationMaxSteps) {
      truncated_ = true;
      return;
    }
    obs::NarrationStep step;
    step.function = fn.name;
    step.line = stmt.loc.line;
    step.stmt = minilang::stmt_header_text(stmt);
    if (step.stmt.size() > 96) step.stmt = step.stmt.substr(0, 93) + "...";
    step.sync_depth = state.sync_depth();
    step.thread = interp_ != nullptr ? interp_->current_thread_id() : 0;
    out_->steps.push_back(std::move(step));
  }

  [[nodiscard]] bool truncated() const { return truncated_; }

 private:
  obs::Narration* out_;
  minilang::Interp* interp_ = nullptr;
  bool truncated_ = false;
};

}  // namespace

obs::Narration narrate_schedule(const minilang::Program& program,
                                const ScheduleWitness& witness) {
  obs::Narration narration;
  narration.kind = "schedule-replay";
  narration.test = witness.test;
  ScheduleNarrator narrator(&narration);
  ScheduleExplorer explorer(program, ScheduleExploreOptions{});
  const minilang::ScheduleRunResult run =
      explorer.replay(witness, [&](minilang::Interp& interp) {
        narrator.attach(&interp);
        interp.set_fuel(kNarrationFuel);
        interp.set_observer(&narrator);
      });
  narration.reproduced = !run.test_passed;
  std::string detail = "schedule [" + witness.decisions_text() + "] replayed";
  if (!run.test_passed)
    detail += ": " + (run.error.empty() ? witness.outcome : run.error);
  else
    detail += ": violation not reproduced (stale witness)";
  if (narrator.truncated()) detail += "; step trace truncated";
  narration.detail = std::move(detail);
  return narration;
}

}  // namespace lisa::concolic
