// Mini-Cassandra read path: replicated rows with tombstones and gc_grace,
// foreground read repair and background anti-entropy, plus counter writes
// during bootstrap.
//
// Native analogs of the CASS-R1/R2 (purgeable tombstone repaired back →
// resurrection) and CASS-C1/C2 (counter applied on a bootstrapping node →
// double counting) corpus cases, with per-path check toggles.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "systems/sim/event_loop.hpp"

namespace lisa::systems::cassandra {

struct RepairGuards {
  bool foreground_checks_purgeable = true;
  bool background_checks_purgeable = true;
  bool single_counter_checks_bootstrap = true;
  bool batch_counter_checks_bootstrap = true;
};

struct RepairStats {
  std::uint64_t repairs_sent = 0;
  std::uint64_t purgeable_repaired = 0;   // incident: resurrection
  std::uint64_t repairs_skipped = 0;
  std::uint64_t counters_applied = 0;
  std::uint64_t counters_on_bootstrap = 0;  // incident: double count
  std::uint64_t counters_rejected = 0;
};

class ReplicaSet {
 public:
  ReplicaSet(EventLoop& loop, std::int64_t gc_grace_ms, RepairGuards guards = {})
      : loop_(loop), gc_grace_ms_(gc_grace_ms), guards_(guards) {}

  /// Writes a live row (clears any tombstone).
  void write_row(const std::string& key, const std::string& value);
  /// Deletes a row: a tombstone with the current timestamp.
  void delete_row(const std::string& key);
  /// True if the row's tombstone has outlived gc_grace (repairing it back
  /// would resurrect deleted data on replicas that already purged it).
  [[nodiscard]] bool is_purgeable(const std::string& key) const;

  /// Foreground read repair for one key (triggered by a digest mismatch).
  bool read_repair(const std::string& key);
  /// Background anti-entropy over every row.
  std::size_t background_repair();

  // -- Counters ---------------------------------------------------------

  void add_counter_node(const std::string& host, bool bootstrapping);
  void finish_bootstrap(const std::string& host);
  bool write_counter(const std::string& host, std::int64_t delta);
  std::size_t write_counter_batch(const std::string& host,
                                  const std::vector<std::int64_t>& deltas);
  [[nodiscard]] std::int64_t counter_value(const std::string& host) const;

  [[nodiscard]] const RepairStats& stats() const { return stats_; }

 private:
  struct Row {
    std::string value;
    bool tombstoned = false;
    std::int64_t tombstone_ms = 0;
  };
  struct CounterNode {
    bool bootstrapping = false;
    std::int64_t value = 0;
  };

  bool repair_one(const std::string& key, bool check);
  bool apply_counter(const std::string& host, std::int64_t delta, bool check);

  EventLoop& loop_;
  std::int64_t gc_grace_ms_;
  RepairGuards guards_;
  RepairStats stats_;
  std::map<std::string, Row> rows_;
  std::map<std::string, CounterNode> counters_;
};

}  // namespace lisa::systems::cassandra
