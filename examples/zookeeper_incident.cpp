// Reproduces the paper's Figure 2 incident end-to-end on the native
// mini-ZooKeeper, then shows how the LISA contract learned from the first
// incident would have prevented the second one.
//
// Timeline (all virtual time):
//   1. Kafka-style consumers register ephemeral nodes for their addresses.
//   2. A consumer crashes; its session close races with a create that lands
//      in the CLOSING window (ZOOKEEPER-1208). With the buggy server the
//      node survives — producers keep sending to a dead address.
//   3. The same replay on a fixed server shows the create rejected.
//   4. LISA infers <s != null && !s.is_closing> create_ephemeral_node< >
//      from the incident ticket and flags the batch path that caused
//      ZOOKEEPER-1496 a year later.
#include <cstdio>

#include "lisa/pipeline.hpp"
#include "systems/sim/event_loop.hpp"
#include "systems/zookeeper/registry.hpp"
#include "systems/zookeeper/server.hpp"

namespace {

struct IncidentOutcome {
  std::size_t stale_nodes = 0;
  std::uint64_t stale_sends = 0;
  std::uint64_t ok_sends = 0;
};

IncidentOutcome replay_incident(bool fix_enabled) {
  using namespace lisa::systems;
  EventLoop loop;
  zk::ZkConfig config;
  config.fix_zk1208 = fix_enabled;
  zk::ZooKeeperServer server(loop, config);
  zk::ConsumerRegistry registry(server);
  std::map<std::string, bool> live;

  // Three healthy consumers register.
  for (int i = 1; i <= 3; ++i) {
    const std::string id = "consumer-" + std::to_string(i);
    registry.register_consumer(id, "host-" + std::to_string(i) + ":9092");
    live[id] = true;
  }

  // consumer-2 crashes at t=100; its client library races: the session close
  // begins, and a queued (re)create of the registration node arrives while
  // the session is CLOSING — the ZK-1208 window.
  loop.schedule_at(100, [&] {
    live["consumer-2"] = false;
    const std::int64_t session = 2;  // consumer-2's session id
    server.close_session(session);
    server.create(session, "/consumers/ids/consumer-2b", "host-2:9092",
                  /*ephemeral=*/true);
  });
  loop.run_until(2000);

  // Producers send one message to every registered consumer for a while.
  zk::Producer producer(registry, &live);
  live["consumer-2b"] = false;  // the re-registration points at the dead host
  for (int round = 0; round < 50; ++round) {
    for (const std::string& id : registry.list_consumers()) producer.send(id);
  }

  IncidentOutcome outcome;
  outcome.stale_nodes = server.find_stale_ephemerals().size();
  outcome.stale_sends = producer.stale_address_errors();
  outcome.ok_sends = producer.sent_ok();
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== Replaying ZOOKEEPER-1208 (Fig. 2) on mini-ZooKeeper ===\n\n");

  const IncidentOutcome buggy = replay_incident(/*fix_enabled=*/false);
  std::printf("buggy server : stale ephemeral nodes = %zu, sends to dead address = %llu, "
              "healthy sends = %llu\n",
              buggy.stale_nodes, static_cast<unsigned long long>(buggy.stale_sends),
              static_cast<unsigned long long>(buggy.ok_sends));

  const IncidentOutcome fixed = replay_incident(/*fix_enabled=*/true);
  std::printf("fixed server : stale ephemeral nodes = %zu, sends to dead address = %llu, "
              "healthy sends = %llu\n\n",
              fixed.stale_nodes, static_cast<unsigned long long>(fixed.stale_sends),
              static_cast<unsigned long long>(fixed.ok_sends));

  std::printf("=== What LISA learns from the incident ticket ===\n\n");
  const lisa::corpus::FailureTicket* ticket =
      lisa::corpus::Corpus::find("zk-1208-ephemeral-create");
  const lisa::core::Pipeline pipeline;
  const lisa::core::PipelineResult result = pipeline.run(*ticket, ticket->patched_source);
  for (const auto& low : result.proposal.low_level) {
    std::printf("low-level semantics: <%s> %s\n", low.condition_statement.c_str(),
                low.target_statement.c_str());
  }

  std::printf("\n=== Enforcing it on the post-fix codebase ===\n\n");
  for (const auto& report : result.reports) {
    for (const auto& path : report.paths) {
      std::string chain;
      for (const std::string& fn : path.call_chain) {
        if (!chain.empty()) chain += " -> ";
        chain += fn;
      }
      std::printf("  [%-9s] %s\n", lisa::core::path_verdict_name(path.verdict),
                  chain.c_str());
    }
  }
  std::printf("\nThe batch_create path — the exact shape of ZOOKEEPER-1496, which hit\n"
              "production a year later — is flagged the day the first fix lands.\n");
  return 0;
}
