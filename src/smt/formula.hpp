// Formula representation for the LISA SMT backend.
//
// The paper restricts semantic contracts to "conjunctions of
// implementation-local predicates ... such as state relations (v = c) and
// resources (handle.isOpen)". The corresponding decidable fragment is
// quantifier-free boolean structure over:
//   * boolean variables        (session.is_closing, s#null, handle.is_open)
//   * integer comparisons      (v ⋈ c  and  v ⋈ w  for ⋈ in ==,!=,<,<=,>,>=)
// This header defines immutable formula trees over that fragment; solver.hpp
// decides them.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace lisa::smt {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

[[nodiscard]] const char* cmp_op_text(CmpOp op);
/// The operator satisfied exactly when `op` is not: !(a < b) ⇔ a >= b.
[[nodiscard]] CmpOp cmp_negate(CmpOp op);
/// The operator with swapped operands: a < b ⇔ b > a.
[[nodiscard]] CmpOp cmp_swap(CmpOp op);

/// One theory atom. Variables are named by dotted access paths exactly as
/// they appear in contracts ("s.ttl", "session.is_closing"); the reserved
/// "#null" suffix marks nullness indicator variables.
struct Atom {
  enum class Kind { kBoolVar, kCmpConst, kCmpVar };

  Kind kind = Kind::kBoolVar;
  std::string lhs;              // variable name
  CmpOp op = CmpOp::kEq;        // comparisons only
  std::int64_t rhs_const = 0;   // kCmpConst
  std::string rhs_var;          // kCmpVar

  [[nodiscard]] static Atom bool_var(std::string name);
  [[nodiscard]] static Atom cmp_const(std::string lhs, CmpOp op, std::int64_t rhs);
  [[nodiscard]] static Atom cmp_var(std::string lhs, CmpOp op, std::string rhs);

  /// Canonical text, e.g. "s.ttl > 0"; equal atoms render equally.
  [[nodiscard]] std::string key() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.kind == b.kind && a.lhs == b.lhs && a.op == b.op &&
           a.rhs_const == b.rhs_const && a.rhs_var == b.rhs_var;
  }
};

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// Immutable formula node. Construct through the static factories, which
/// perform light simplification (constant folding, flattening of nested
/// conjunctions/disjunctions, double-negation elimination).
struct Formula {
  enum class Kind { kTrue, kFalse, kAtom, kNot, kAnd, kOr };

  Kind kind = Kind::kTrue;
  Atom atom;                        // kAtom
  std::vector<FormulaPtr> children; // kNot (1), kAnd/kOr (>=2 after flattening)

  [[nodiscard]] static FormulaPtr truth(bool value);
  [[nodiscard]] static FormulaPtr make_atom(Atom atom);
  [[nodiscard]] static FormulaPtr negate(FormulaPtr f);
  [[nodiscard]] static FormulaPtr conj(std::vector<FormulaPtr> fs);
  [[nodiscard]] static FormulaPtr disj(std::vector<FormulaPtr> fs);
  [[nodiscard]] static FormulaPtr conj2(FormulaPtr a, FormulaPtr b);
  [[nodiscard]] static FormulaPtr disj2(FormulaPtr a, FormulaPtr b);

  /// Infix rendering, fully parenthesized.
  [[nodiscard]] std::string to_string() const;

  /// All variable names mentioned by the formula.
  [[nodiscard]] std::set<std::string> variables() const;

  /// Structural equality.
  [[nodiscard]] bool equals(const Formula& other) const;
};

/// Negation-normal form: negations pushed to atoms, with comparison atoms
/// negated in place (e.g. ¬(x < 3) becomes x >= 3) so only boolean variables
/// keep explicit polarity.
[[nodiscard]] FormulaPtr to_nnf(const FormulaPtr& f);

}  // namespace lisa::smt
