// Observability overhead: instrumentation must be cheap enough to leave on.
//
// The pipeline's span/metric call sites are unconditional — there is no
// compile-time switch — so the cost that matters is the *disabled-tracer*
// cost: one relaxed atomic load plus a steady_clock read per span, and a
// relaxed fetch_add per metric. This bench
//   1. measures a corpus slice end-to-end with tracing off,
//   2. counts how many spans that slice creates (one traced run),
//   3. microbenchmarks the disabled ScopedSpan itself, and
//   4. asserts spans * per-span-cost stays under 3% of the slice time,
// exiting nonzero on violation so the bound is CI-enforceable.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "lisa/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace lisa;

constexpr const char* kSystem = "zookeeper";
constexpr double kOverheadBound = 0.03;

double run_slice_once() {
  const core::Pipeline pipeline;
  const auto start = std::chrono::steady_clock::now();
  for (const corpus::FailureTicket* ticket : corpus::Corpus::for_system(kSystem)) {
    const core::PipelineResult result = pipeline.run(*ticket, ticket->patched_source);
    benchmark::DoNotOptimize(result.total_violations());
  }
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

/// Median corpus-slice wall time with the tracer disabled.
double measure_slice_ms(int repetitions) {
  std::vector<double> times;
  for (int i = 0; i < repetitions; ++i) times.push_back(run_slice_once());
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Spans the slice creates when traced — the number of disabled-span
/// constructions the untraced run pays for.
std::size_t count_slice_spans() {
  obs::tracer().set_enabled(true);
  obs::tracer().clear();
  run_slice_once();
  const std::size_t spans = obs::tracer().size();
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
  return spans;
}

/// Per-construction cost of a disabled ScopedSpan (with one attr call,
/// matching the typical call site), in milliseconds.
double measure_disabled_span_ms() {
  constexpr int kIterations = 1'000'000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIterations; ++i) {
    obs::ScopedSpan span("bench.disabled");
    span.attr("i", i);
    benchmark::DoNotOptimize(span.live());
  }
  const double total_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  return total_ms / kIterations;
}

/// Returns 0 when the disabled-instrumentation bound holds, 1 otherwise.
int check_overhead_bound() {
  std::printf("=== observability overhead (tracing off) ===\n\n");
  const double slice_ms = measure_slice_ms(15);
  const std::size_t spans = count_slice_spans();
  const double span_ms = measure_disabled_span_ms();
  const double overhead_ms = static_cast<double>(spans) * span_ms;
  const double fraction = overhead_ms / slice_ms;
  std::printf("corpus slice (%s, tracing off):  %10.3f ms (median of 15)\n", kSystem,
              slice_ms);
  std::printf("spans created by the slice:            %10zu\n", spans);
  std::printf("disabled ScopedSpan cost:              %10.1f ns\n", span_ms * 1e6);
  std::printf("implied span overhead:                 %10.4f ms (%.3f%% of slice)\n",
              overhead_ms, fraction * 100.0);
  std::printf("bound:                                 %10.1f%%  →  %s\n\n",
              kOverheadBound * 100.0, fraction < kOverheadBound ? "PASS" : "FAIL");
  return fraction < kOverheadBound ? 0 : 1;
}

void BM_DisabledScopedSpan(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedSpan span("bench.disabled");
    benchmark::DoNotOptimize(span.live());
  }
}
BENCHMARK(BM_DisabledScopedSpan)->Unit(benchmark::kNanosecond);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter = obs::metrics().counter("bench.counter");
  for (auto _ : state) counter.add();
}
BENCHMARK(BM_CounterAdd)->Unit(benchmark::kNanosecond);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& histogram = obs::metrics().histogram("bench.histogram");
  double v = 0.1;
  for (auto _ : state) histogram.record(v += 0.001);
}
BENCHMARK(BM_HistogramRecord)->Unit(benchmark::kNanosecond);

void BM_SliceTracingOff(benchmark::State& state) {
  obs::tracer().set_enabled(false);
  for (auto _ : state) benchmark::DoNotOptimize(run_slice_once());
}
BENCHMARK(BM_SliceTracingOff)->Unit(benchmark::kMillisecond);

void BM_SliceTracingOn(benchmark::State& state) {
  obs::tracer().set_enabled(true);
  for (auto _ : state) {
    obs::tracer().clear();
    benchmark::DoNotOptimize(run_slice_once());
  }
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
}
BENCHMARK(BM_SliceTracingOn)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int violation = check_overhead_bound();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return violation;
}
