file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_zk_incident.dir/bench_fig23_zk_incident.cpp.o"
  "CMakeFiles/bench_fig23_zk_incident.dir/bench_fig23_zk_incident.cpp.o.d"
  "bench_fig23_zk_incident"
  "bench_fig23_zk_incident.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_zk_incident.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
