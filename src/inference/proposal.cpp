#include "inference/proposal.hpp"

namespace lisa::inference {

using support::Json;
using support::JsonArray;
using support::JsonObject;

Json SemanticsProposal::to_json() const {
  JsonObject root;
  root["case_id"] = case_id;
  root["high_level_semantics"] = high_level_semantics;
  JsonArray lows;
  for (const LowLevelSemantics& low : low_level) {
    JsonObject entry;
    entry["description"] = low.description;
    entry["target_statement"] = low.target_statement;
    entry["condition_statement"] = low.condition_statement;
    lows.push_back(Json(std::move(entry)));
  }
  root["low_level_semantics"] = Json(std::move(lows));
  root["reasoning"] = reasoning;
  root["kind"] = kind == corpus::SemanticsKind::kStatePredicate ? "state_predicate"
                                                                : "structural_pattern";
  if (!pattern.empty()) root["pattern"] = pattern;
  return Json(std::move(root));
}

SemanticsProposal SemanticsProposal::from_json(const Json& json) {
  SemanticsProposal proposal;
  proposal.case_id = json.get_string("case_id");
  proposal.high_level_semantics = json.get_string("high_level_semantics");
  proposal.reasoning = json.get_string("reasoning");
  proposal.kind = json.get_string("kind") == "structural_pattern"
                      ? corpus::SemanticsKind::kStructuralPattern
                      : corpus::SemanticsKind::kStatePredicate;
  proposal.pattern = json.get_string("pattern");
  if (json.has("low_level_semantics")) {
    for (const Json& entry : json.at("low_level_semantics").as_array()) {
      LowLevelSemantics low;
      low.description = entry.get_string("description");
      low.target_statement = entry.get_string("target_statement");
      low.condition_statement = entry.get_string("condition_statement");
      proposal.low_level.push_back(std::move(low));
    }
  }
  return proposal;
}

}  // namespace lisa::inference
