#include "support/jsonl.hpp"

#include <sstream>

namespace lisa::support {

std::string fnv1a_fingerprint(const std::string& inputs) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : inputs) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  std::ostringstream out;
  out << std::hex << hash;
  return out.str();
}

std::string jsonl_header(const std::string& kind, std::int64_t version,
                         const std::string& fingerprint) {
  JsonObject header;
  header["journal"] = kind;
  header["version"] = version;
  header["fingerprint"] = fingerprint;
  return Json(std::move(header)).dump();
}

bool jsonl_header_matches(const std::string& line, const std::string& kind,
                          std::int64_t version, const std::string& expected_fingerprint) {
  try {
    const Json header = Json::parse(line);
    if (header.get_string("journal") != kind) return false;
    if (header.get_int("version") != version) return false;
    if (!expected_fingerprint.empty() &&
        header.get_string("fingerprint") != expected_fingerprint)
      return false;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace lisa::support
