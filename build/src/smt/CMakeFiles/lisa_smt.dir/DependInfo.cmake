
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/formula.cpp" "src/smt/CMakeFiles/lisa_smt.dir/formula.cpp.o" "gcc" "src/smt/CMakeFiles/lisa_smt.dir/formula.cpp.o.d"
  "/root/repo/src/smt/minilang_bridge.cpp" "src/smt/CMakeFiles/lisa_smt.dir/minilang_bridge.cpp.o" "gcc" "src/smt/CMakeFiles/lisa_smt.dir/minilang_bridge.cpp.o.d"
  "/root/repo/src/smt/smtlib.cpp" "src/smt/CMakeFiles/lisa_smt.dir/smtlib.cpp.o" "gcc" "src/smt/CMakeFiles/lisa_smt.dir/smtlib.cpp.o.d"
  "/root/repo/src/smt/solver.cpp" "src/smt/CMakeFiles/lisa_smt.dir/solver.cpp.o" "gcc" "src/smt/CMakeFiles/lisa_smt.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lisa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/minilang/CMakeFiles/lisa_minilang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
