// Deterministic semantics-inference backend — the reproduction's o4-mini.
//
// The paper prompts an LLM with the failure description, the code diff, and
// the patched source, and asks it to walk through root cause → high-level
// semantics → low-level semantics → checkable (condition, target) pairs
// (Listing 1). No LLM is available offline, so this backend re-implements
// that *reasoning recipe* as a deterministic program over the same three
// inputs:
//
//   1. Root-cause localization: structural diff between buggy and patched
//      versions (corpus::diff_programs).
//   2. Guard extraction: an added `if` whose body throws/returns is an
//      early-exit guard — the protected statement is the next statement in
//      the enclosing block and the condition is the guard's negation. An
//      added `if` that wraps a call is a positive guard for that call.
//   3. Condition completion: pre-existing early-exit guards over the same
//      variable roots that dominate the target (e.g. the `s == null` check
//      that was already there) are conjoined, because the invariant the
//      developers relied on includes them.
//   4. Generalization (§3.1 / Fig. 6): the target statement is generalized
//      from the concrete call text to "<callee>(" so the rule matches every
//      call site of the protected operation; diffs that move a blocking
//      call out of a sync block (plus "blocked/synchronized"-style ticket
//      language) generalize to the structural no-blocking-in-sync rule.
//
// The ablation bench injects controlled noise (dropped conjuncts, flipped
// comparisons, renamed roots) to model LLM non-determinism/hallucination
// (§5), which the cross-validation stage must filter.
#pragma once

#include <atomic>
#include <cstdint>

#include "corpus/ticket.hpp"
#include "inference/proposal.hpp"

namespace lisa::inference {

struct MockLlmOptions {
  /// Probability that each low-level semantics is corrupted (hallucination
  /// model for the §5 ablation). 0 = faithful extraction.
  double noise = 0.0;
  std::uint64_t seed = 1;
  /// Fault modes for the robustness harness — deterministic stand-ins for a
  /// real backend's failure classes, consumed in call order:
  /// the first `transient_failures` infer() calls throw a transient
  /// InferenceError (rate limit / connection reset shape) ...
  int transient_failures = 0;
  /// ... the next `malformed_responses` calls return a structurally invalid
  /// proposal (free-form output that fails validate_proposal) ...
  int malformed_responses = 0;
  /// ... and every call stalls this long before answering (latency spike;
  /// changes timing, never results).
  int latency_spike_ms = 0;
};

class MockLlm {
 public:
  explicit MockLlm(MockLlmOptions options = {})
      : options_(options),
        transient_remaining_(options.transient_failures),
        malformed_remaining_(options.malformed_responses) {}

  /// Infers semantics from a failure ticket. Throws std::runtime_error if
  /// the ticket's sources do not parse (corpus corruption) and a transient
  /// InferenceError when a configured or injected backend fault fires
  /// (retryable via infer_with_retry).
  [[nodiscard]] SemanticsProposal infer(const corpus::FailureTicket& ticket) const;

  /// The prompt text a real-LLM backend would send (Listing 1 instantiated
  /// with this ticket); recorded into reports for auditability.
  [[nodiscard]] static std::string render_prompt(const corpus::FailureTicket& ticket);

 private:
  MockLlmOptions options_;
  mutable std::atomic<int> transient_remaining_;
  mutable std::atomic<int> malformed_remaining_;
};

}  // namespace lisa::inference
