// Hierarchical span tracing for the LISA pipeline.
//
// The paper positions LISA as a per-commit CI stage, which makes its cost
// profile (paths explored, SMT queries, screening savings) a first-class
// result. This tracer records *spans* — named wall-clock intervals with
// parent/child nesting and typed attributes — across every pipeline layer:
//
//   pipeline.run > pipeline.check > checker.contract > smt.solve
//                                                    > concolic.run_test
//
// Design constraints:
//   * Near-zero overhead when disabled: ScopedSpan's constructor reads one
//     relaxed atomic and a steady_clock timestamp; it allocates nothing and
//     records nothing. Instrumentation can therefore stay on in production
//     call sites unconditionally.
//   * Thread-safe when enabled: spans may begin/end on any thread; parent
//     linkage is per-thread (a thread-local span stack), and completed
//     records append to the tracer under a mutex.
//   * Exportable: chrome_trace() emits Chrome trace-event JSON ("X"
//     complete events) loadable in Perfetto / chrome://tracing. Span
//     timestamps share the process-epoch clock of support/log.hpp, so
//     stderr log lines are directly correlatable with trace timelines.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace lisa::obs {

/// One completed span. `start_us`/`dur_us` are microseconds relative to the
/// process epoch (support::process_epoch), matching log-line prefixes.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = root span of its thread
  std::uint32_t tid = 0;        // small sequential thread number, not OS tid
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  std::vector<std::pair<std::string, support::Json>> attrs;
};

class ScopedSpan;

/// Collects spans process-wide. Disabled by default; `lisa check --trace`
/// and `lisa profile` enable it around a run.
class Tracer {
 public:
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded spans (the id counter keeps advancing).
  void clear();
  [[nodiscard]] std::size_t size() const;
  /// Copies out every completed span, in completion order.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Chrome trace-event JSON: {"traceEvents": [...], "displayTimeUnit": "ms"}.
  /// Load in Perfetto (ui.perfetto.dev) or chrome://tracing.
  [[nodiscard]] support::Json chrome_trace() const;

 private:
  friend class ScopedSpan;
  std::uint64_t next_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void record(SpanRecord&& span);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// The process-global tracer every instrumentation site uses.
[[nodiscard]] Tracer& tracer();

/// RAII span. Construction opens the span (nesting under the innermost live
/// span of the current thread); destruction completes and records it. When
/// the tracer is disabled the object is inert — no allocation, no recording
/// — but elapsed_ms() still measures, so call sites can derive stage
/// timings from the same object that traces them.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(tracer(), name) {}
  ScopedSpan(Tracer& tracer, const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key/value attribute (contract id, path count, verdict...).
  /// No-ops when the span is not recording.
  void attr(const char* key, support::Json value);
  void attr(const char* key, const std::string& value) { attr(key, support::Json(value)); }
  void attr(const char* key, const char* value) { attr(key, support::Json(value)); }
  void attr(const char* key, std::int64_t value) { attr(key, support::Json(value)); }
  void attr(const char* key, int value) { attr(key, support::Json(value)); }
  void attr(const char* key, std::size_t value) { attr(key, support::Json(value)); }
  void attr(const char* key, double value) { attr(key, support::Json(value)); }
  void attr(const char* key, bool value) { attr(key, support::Json(value)); }

  /// Completes and records the span now instead of at end of scope
  /// (idempotent; the destructor then no-ops). For call sites where the
  /// measured region ends mid-scope. Children must already be closed.
  void close();

  /// True when this span will be recorded (tracer enabled at construction).
  [[nodiscard]] bool live() const { return record_ != nullptr; }

  /// Wall-clock milliseconds since construction. Valid even when disabled.
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Tracer* tracer_;
  std::unique_ptr<SpanRecord> record_;  // null when not recording
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lisa::obs
