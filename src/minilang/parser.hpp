// Recursive-descent parser for MiniLang.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "minilang/ast.hpp"

namespace lisa::minilang {

/// Error thrown for syntactically invalid programs.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, SourceLoc loc)
      : std::runtime_error(message + " at line " + std::to_string(loc.line) + ":" +
                           std::to_string(loc.column)),
        loc_(loc) {}
  [[nodiscard]] SourceLoc loc() const noexcept { return loc_; }

 private:
  SourceLoc loc_;
};

/// Parses a complete MiniLang compilation unit.
/// Throws LexError / ParseError on malformed input.
[[nodiscard]] Program parse(std::string_view source);

/// Parses a single expression (used by the contract translator to turn
/// condition strings like `s != null && s.is_closing == false` into ASTs).
[[nodiscard]] ExprPtr parse_expression(std::string_view source);

}  // namespace lisa::minilang
