// Tests for the bytecode compiler and VM, including differential checks
// against the tree-walking interpreter (the reference semantics) over the
// whole incident corpus.
#include <gtest/gtest.h>

#include "corpus/ticket.hpp"
#include "minilang/compiler.hpp"
#include "minilang/interp.hpp"
#include "minilang/sema.hpp"
#include "minilang/vm.hpp"

namespace lisa::minilang {
namespace {

struct Compiled {
  Program program;
  Module module;
};

Compiled compile_source(const std::string& source) {
  Compiled out{parse_checked(source), {}};
  out.module = compile(out.program);
  return out;
}

Value vm_call(const Compiled& compiled, const std::string& fn, std::vector<Value> args = {}) {
  Vm vm(compiled.module);
  return vm.call(fn, std::move(args));
}

TEST(Vm, ArithmeticAndLocals) {
  const Compiled c = compile_source(
      "fn main() -> int { let a = 6; let b = 7; let s = a * b; return s - 2; }");
  EXPECT_EQ(vm_call(c, "main").as_int(), 40);
}

TEST(Vm, BranchesAndLoops) {
  const Compiled c = compile_source(R"(
fn collatz_steps(n: int) -> int {
  let steps = 0;
  let x = n;
  while (x != 1) {
    if (x % 2 == 0) {
      x = x / 2;
    } else {
      x = 3 * x + 1;
    }
    steps = steps + 1;
  }
  return steps;
}
)");
  EXPECT_EQ(vm_call(c, "collatz_steps", {Value::of_int(6)}).as_int(), 8);
  EXPECT_EQ(vm_call(c, "collatz_steps", {Value::of_int(1)}).as_int(), 0);
}

TEST(Vm, ShortCircuitDoesNotEvaluateRhs) {
  const Compiled c = compile_source(
      "fn main() -> bool { let x = 0; return x != 0 && 10 / x > 1; }");
  EXPECT_FALSE(vm_call(c, "main").as_bool());
}

TEST(Vm, BreakAndContinue) {
  const Compiled c = compile_source(R"(
fn main() -> int {
  let total = 0;
  let i = 0;
  while (true) {
    i = i + 1;
    if (i > 10) { break; }
    if (i % 2 == 0) { continue; }
    total = total + i;
  }
  return total;
}
)");
  EXPECT_EQ(vm_call(c, "main").as_int(), 25);
}

TEST(Vm, StructsFieldsAndReferenceSemantics) {
  const Compiled c = compile_source(R"(
struct P { x: int; tags: list<string>; }
fn bump(p: P) { p.x = p.x + 1; }
fn main() -> int {
  let p = new P { x: 3 };
  bump(p);
  push(p.tags, "a");
  push(p.tags, "b");
  return p.x * 100 + len(p.tags);
}
)");
  EXPECT_EQ(vm_call(c, "main").as_int(), 402);
}

TEST(Vm, ExceptionsTryCatchAcrossCalls) {
  const Compiled c = compile_source(R"(
fn inner(n: int) -> int {
  if (n > 2) { throw "too big: " + n; }
  return n * 10;
}
fn middle(n: int) -> int { return inner(n) + 1; }
fn main(n: int) -> string {
  try {
    let v = middle(n);
    return "ok " + v;
  } catch (e) {
    return "caught " + e;
  }
}
)");
  EXPECT_EQ(vm_call(c, "main", {Value::of_int(2)}).as_string(), "ok 21");
  EXPECT_EQ(vm_call(c, "main", {Value::of_int(5)}).as_string(), "caught too big: 5");
}

TEST(Vm, UncaughtThrowEscapesAndVmRemainsUsable) {
  const Compiled c = compile_source(R"(
fn boom() { throw "kaboom"; }
fn fine() -> int { return 7; }
)");
  Vm vm(c.module);
  EXPECT_THROW(vm.call("boom", {}), MiniThrow);
  EXPECT_EQ(vm.call("fine", {}).as_int(), 7);
}

TEST(Vm, NullDerefUnwindsToHandler) {
  const Compiled c = compile_source(R"(
struct S { x: int; }
fn main() -> string {
  let s: S? = null;
  try {
    return "got " + s.x;
  } catch (e) {
    return "npe";
  }
}
)");
  EXPECT_EQ(vm_call(c, "main").as_string(), "npe");
}

TEST(Vm, DivideByZeroUnwinds) {
  const Compiled c = compile_source(R"(
fn main(d: int) -> int {
  try {
    return 10 / d;
  } catch (e) {
    return 0 - 1;
  }
}
)");
  EXPECT_EQ(vm_call(c, "main", {Value::of_int(2)}).as_int(), 5);
  EXPECT_EQ(vm_call(c, "main", {Value::of_int(0)}).as_int(), -1);
}

TEST(Vm, SyncDepthRestoredOnReturnAndThrow) {
  const Compiled c = compile_source(R"(
struct L { id: int; }
fn leaves_sync_by_return(l: L) -> int {
  sync (l) {
    return 1;
  }
}
fn leaves_sync_by_throw(l: L) {
  sync (l) {
    throw "out";
  }
}
fn main() -> int {
  let l = new L { id: 1 };
  let a = leaves_sync_by_return(l);
  try {
    leaves_sync_by_throw(l);
  } catch (e) {
    a = a + 1;
  }
  // If sync depth leaked, this blocking call would look "inside sync".
  write_record(l, "x");
  return a;
}
)");
  struct DepthCheck : ExecObserver {
    int max_depth = 0;
    void on_blocking(const std::string&, int sync_depth) override {
      max_depth = std::max(max_depth, sync_depth);
    }
  } check;
  Vm vm(c.module);
  vm.set_observer(&check);
  EXPECT_EQ(vm.call("main", {}).as_int(), 2);
  EXPECT_EQ(check.max_depth, 0);
}

TEST(Vm, BreakOutOfSyncInsideLoopBalances) {
  const Compiled c = compile_source(R"(
struct L { id: int; }
fn main() -> int {
  let l = new L { id: 1 };
  let i = 0;
  while (i < 5) {
    sync (l) {
      if (i == 2) { break; }
    }
    i = i + 1;
  }
  write_record(l, "after");
  return i;
}
)");
  struct DepthCheck : ExecObserver {
    int depth_at_blocking = -1;
    void on_blocking(const std::string&, int sync_depth) override {
      depth_at_blocking = sync_depth;
    }
  } check;
  Vm vm(c.module);
  vm.set_observer(&check);
  EXPECT_EQ(vm.call("main", {}).as_int(), 2);
  EXPECT_EQ(check.depth_at_blocking, 0);
}

TEST(Vm, FuelLimitStopsRunaways) {
  const Compiled c = compile_source("fn main() { while (true) { advance_clock(1); } }");
  Vm vm(c.module);
  vm.set_fuel(50'000);
  EXPECT_THROW(vm.call("main", {}), InterpError);
}

TEST(Vm, VirtualClockAndBlockingLatency) {
  const Compiled c = compile_source(R"(
fn main() -> int {
  let t0 = now();
  advance_clock(100);
  fsync_log(t0);
  return now() - t0;
}
)");
  Vm vm(c.module);
  vm.set_blocking_latency_ms(9);
  EXPECT_EQ(vm.call("main", {}).as_int(), 109);
}

TEST(Vm, DisassemblerListsInstructions) {
  const Compiled c = compile_source("fn f(x: int) -> int { return x + 1; }");
  const std::string listing = disassemble(c.module, c.module.chunks[0]);
  EXPECT_NE(listing.find("fn f"), std::string::npos);
  EXPECT_NE(listing.find("add"), std::string::npos);
  EXPECT_NE(listing.find("return"), std::string::npos);
}

TEST(Vm, BreakJumpsPastTryPopBalancesHandlers) {
  // `break` inside a try inside a loop must unwind the handler it skips;
  // otherwise a later throw would resurrect the dead handler.
  const Compiled c = compile_source(R"(
fn main() -> string {
  let i = 0;
  while (i < 3) {
    try {
      if (i == 1) { break; }
    } catch (e) {
      return "inner caught: " + e;
    }
    i = i + 1;
  }
  throw "after loop";
}
)");
  Vm vm(c.module);
  try {
    vm.call("main", {});
    ADD_FAILURE() << "expected MiniThrow";
  } catch (const MiniThrow& thrown) {
    // Must escape uncaught — NOT be caught by the loop's stale handler.
    EXPECT_EQ(thrown.value().as_string(), "after loop");
  }
}

TEST(Vm, ContinueInsideSyncBalancesMonitors) {
  const Compiled c = compile_source(R"(
struct L { id: int; }
fn main() -> int {
  let l = new L { id: 1 };
  let i = 0;
  let work = 0;
  while (i < 4) {
    i = i + 1;
    sync (l) {
      if (i % 2 == 0) { continue; }
      work = work + 1;
    }
  }
  fsync_log(l);
  return work;
}
)");
  struct DepthCheck : ExecObserver {
    int depth_at_blocking = -1;
    void on_blocking(const std::string&, int sync_depth) override {
      depth_at_blocking = sync_depth;
    }
  } check;
  Vm vm(c.module);
  vm.set_observer(&check);
  EXPECT_EQ(vm.call("main", {}).as_int(), 2);
  EXPECT_EQ(check.depth_at_blocking, 0);  // monitors released by continue
}

TEST(Vm, NestedTryRethrowReachesOuter) {
  const Compiled c = compile_source(R"(
fn main() -> string {
  try {
    try {
      throw "inner";
    } catch (e) {
      throw "re: " + e;
    }
  } catch (e2) {
    return e2;
  }
}
)");
  EXPECT_EQ(vm_call(c, "main").as_string(), "re: inner");
}

TEST(Vm, HandlerInCallerCatchesCalleeThrow) {
  const Compiled c = compile_source(R"(
fn deep(n: int) -> int {
  if (n == 0) { throw "bottom"; }
  return deep(n - 1);
}
fn main() -> string {
  try {
    deep(5);
    return "no throw";
  } catch (e) {
    return "caught " + e;
  }
}
)");
  EXPECT_EQ(vm_call(c, "main").as_string(), "caught bottom");
}

TEST(Vm, ReturnInsideTryDropsFrameHandlers) {
  const Compiled c = compile_source(R"(
fn leaves_try() -> int {
  try {
    return 1;
  } catch (e) {
    return 2;
  }
}
fn main() -> string {
  let v = leaves_try();
  throw "escape " + v;
}
)");
  Vm vm(c.module);
  try {
    vm.call("main", {});
    ADD_FAILURE() << "expected MiniThrow";
  } catch (const MiniThrow& thrown) {
    EXPECT_EQ(thrown.value().as_string(), "escape 1");
  }
}

// ---------------------------------------------------------------------------
// Differential: the VM must agree with the interpreter on the full corpus.
// ---------------------------------------------------------------------------

class CorpusDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusDifferential, VmMatchesInterpreterOnAllTests) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find(GetParam());
  ASSERT_NE(ticket, nullptr);
  for (const std::string* source :
       {&ticket->buggy_source, &ticket->patched_source, &ticket->latest_source}) {
    if (source->empty()) continue;
    const Program program = parse_checked(*source);
    const Module module = compile(program);
    for (const FuncDecl* test : program.functions_with("test")) {
      Interp interp(program);
      Vm vm(module);
      const bool interp_ok = interp.run_test(test->name);
      const bool vm_ok = vm.run_test(test->name);
      EXPECT_EQ(interp_ok, vm_ok) << ticket->case_id << " " << test->name << "\ninterp: "
                                  << interp.last_error() << "\nvm: " << vm.last_error();
      EXPECT_EQ(interp.take_output(), vm.take_output())
          << ticket->case_id << " " << test->name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, CorpusDifferential, ::testing::ValuesIn([] {
                           std::vector<std::string> ids;
                           for (const auto& ticket : corpus::Corpus::all())
                             ids.push_back(ticket.case_id);
                           return ids;
                         }()));

}  // namespace
}  // namespace lisa::minilang
