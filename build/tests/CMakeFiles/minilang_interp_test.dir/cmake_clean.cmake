file(REMOVE_RECURSE
  "CMakeFiles/minilang_interp_test.dir/minilang_interp_test.cpp.o"
  "CMakeFiles/minilang_interp_test.dir/minilang_interp_test.cpp.o.d"
  "minilang_interp_test"
  "minilang_interp_test.pdb"
  "minilang_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minilang_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
