#include "minilang/interp.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "minilang/builtins.hpp"
#include "minilang/printer.hpp"

namespace lisa::minilang {

const std::unordered_set<std::string>& blocking_builtins() {
  // Models the serialization / disk / network calls that the ZK-2201 class of
  // incidents performs while holding a monitor.
  static const std::unordered_set<std::string> names = {
      "write_record", "flush_to_disk", "fsync_log", "network_send", "block_io",
  };
  return names;
}

const char* schedule_op_name(ScheduleOp::Kind kind) {
  switch (kind) {
    case ScheduleOp::Kind::kStart: return "start";
    case ScheduleOp::Kind::kSpawn: return "spawn";
    case ScheduleOp::Kind::kSyncEnter: return "sync-enter";
    case ScheduleOp::Kind::kSyncExit: return "sync-exit";
    case ScheduleOp::Kind::kFieldRead: return "field-read";
    case ScheduleOp::Kind::kFieldWrite: return "field-write";
    case ScheduleOp::Kind::kBlocking: return "blocking";
    case ScheduleOp::Kind::kWait: return "wait";
    case ScheduleOp::Kind::kNotify: return "notify";
    case ScheduleOp::Kind::kJoin: return "join";
  }
  return "?";
}

namespace {

/// Unwind signal for threads of a torn-down schedule (deadlock, failure, or
/// early teardown). Deliberately not a MiniThrow/InterpError subtype so no
/// MiniLang `try` or engine catch site can swallow it.
struct ScheduleAborted {};

/// Deterministic monitor identity: object identity for objects, value
/// identity for primitives (two threads syncing on the string "log" contend
/// for the same monitor, matching how the lockset analysis names monitors).
std::string monitor_key_of(const Value& v) {
  if (v.is_object()) return "obj:" + std::to_string(v.as_object()->object_id);
  if (v.is_string()) return "str:" + v.as_string();
  if (v.is_int()) return "int:" + std::to_string(v.as_int());
  return "val:" + v.to_display();
}

}  // namespace

// ---------------------------------------------------------------------------
// Cooperative scheduler
// ---------------------------------------------------------------------------
//
// One OS thread per spawned MiniLang thread, but a single execution token:
// exactly one thread runs interpreter code at any instant, and the token
// moves only through `mu_`/`cv_` (which gives every handoff a happens-before
// edge, so the interpreter needs no further synchronization and runs are
// TSan-clean). Teardown is sequential for the same reason: an aborting
// schedule passes the token through each remaining thread in turn so that no
// two threads ever unwind interpreter frames concurrently.
class Interp::Scheduler final : public SchedulerHooks {
 public:
  enum class TState { kRunnable, kBlockedMonitor, kWaiting, kNotified, kJoining, kFinished };

  struct TRec {
    int id = 0;
    TState state = TState::kRunnable;
    ScheduleOp pending;       // the operation this thread performs when scheduled
    std::string blocked_on;   // monitor key for kBlockedMonitor/kWaiting/kNotified
    int wait_depth = 0;       // reentry depth to restore when a wait() resumes
    std::thread os_thread;    // empty for the main/test thread
    Interp::ThreadCtx ctx;
  };

  Scheduler(Interp& interp, ScheduleController& controller)
      : interp_(interp), controller_(controller) {
    auto main_rec = std::make_unique<TRec>();
    main_rec->id = 0;
    main_rec->ctx.id = 0;
    main_rec->pending = {ScheduleOp::Kind::kStart, ""};
    threads_.push_back(std::move(main_rec));
    saved_ctx_ = interp_.ctx_;
    interp_.ctx_ = &threads_[0]->ctx;
    active_ = 0;
  }

  ~Scheduler() override {
    finalize_teardown();
    interp_.ctx_ = saved_ctx_;
  }

  // --- yield points (called by the token-holding thread) -------------------

  void yield(ScheduleOp op) {
    std::unique_lock<std::mutex> lk(mu_);
    TRec& self = current_locked();
    self.pending = std::move(op);
    reschedule(lk, self);
  }

  void spawn(const FuncDecl& fn, std::vector<Value> args) {
    std::unique_lock<std::mutex> lk(mu_);
    TRec& self = current_locked();
    auto rec = std::make_unique<TRec>();
    rec->id = static_cast<int>(threads_.size());
    rec->ctx.id = rec->id;
    rec->pending = {ScheduleOp::Kind::kStart, fn.name};
    TRec* raw = rec.get();
    threads_.push_back(std::move(rec));
    ++result_.threads_spawned;
    raw->os_thread = std::thread([this, raw, &fn, moved_args = std::move(args)]() mutable {
      thread_main(*raw, fn, std::move(moved_args));
    });
    self.pending = {ScheduleOp::Kind::kSpawn, fn.name};
    reschedule(lk, self);
  }

  void sync_enter(const std::string& key) {
    std::unique_lock<std::mutex> lk(mu_);
    TRec& self = current_locked();
    self.pending = {ScheduleOp::Kind::kSyncEnter, "m:" + key};
    for (;;) {
      reschedule(lk, self);  // preemption point before acquisition
      const auto it = monitors_.find(key);
      if (it == monitors_.end()) {
        monitors_[key] = {self.id, 1};
        break;
      }
      if (it->second.first == self.id) {
        ++it->second.second;  // reentrant acquisition
        break;
      }
      self.state = TState::kBlockedMonitor;
      self.blocked_on = key;
    }
    self.state = TState::kRunnable;
    self.blocked_on.clear();
  }

  void sync_exit(const std::string& key) {
    std::unique_lock<std::mutex> lk(mu_);
    TRec& self = current_locked();
    const auto it = monitors_.find(key);
    if (it != monitors_.end() && it->second.first == self.id) {
      if (--it->second.second == 0) monitors_.erase(it);
    }
    self.pending = {ScheduleOp::Kind::kSyncExit, "m:" + key};
    reschedule(lk, self);
  }

  // --- builtin-reachable operations (SchedulerHooks) -----------------------

  void wait_on(const Value& monitor) override {
    const std::string key = monitor_key_of(monitor);
    std::unique_lock<std::mutex> lk(mu_);
    TRec& self = current_locked();
    // First a *runnable* yield before joining the waitset: this is the
    // check-to-wait window. A notify scheduled into it finds no waiter and
    // is lost — the missed-notify failure mode; without this gap the
    // preceding guard read and the wait would be atomic under the token.
    self.pending = {ScheduleOp::Kind::kWait, "m:" + key};
    reschedule(lk, self);
    // Release the monitor fully if held, remembering the depth to restore on
    // wakeup. Waiting *without* holding the monitor is deliberately allowed:
    // that unguarded check-then-wait is exactly the missed-notify bug shape
    // the corpus models (Java would throw IllegalMonitorStateException).
    self.wait_depth = 0;
    const auto it = monitors_.find(key);
    if (it != monitors_.end() && it->second.first == self.id) {
      self.wait_depth = it->second.second;
      monitors_.erase(it);
    }
    self.state = TState::kWaiting;
    self.blocked_on = key;
    self.pending = {ScheduleOp::Kind::kWait, "m:" + key};
    reschedule(lk, self);
    // Resumed: a notify moved us to kNotified and the runnable test held the
    // monitor free, so reacquisition at the remembered depth cannot fail.
    if (self.wait_depth > 0) monitors_[key] = {self.id, self.wait_depth};
    self.state = TState::kRunnable;
    self.blocked_on.clear();
    self.wait_depth = 0;
  }

  void notify(const Value& monitor, bool all) override {
    const std::string key = monitor_key_of(monitor);
    std::unique_lock<std::mutex> lk(mu_);
    TRec& self = current_locked();
    // Wake waiters in thread-id order (deterministic FIFO). A notify with no
    // waiter is lost — the missed-notify failure mode, not an error.
    for (const auto& rec : threads_) {
      if (rec->state == TState::kWaiting && rec->blocked_on == key) {
        rec->state = TState::kNotified;
        if (!all) break;
      }
    }
    self.pending = {ScheduleOp::Kind::kNotify, "m:" + key};
    reschedule(lk, self);
  }

  void join_all() override {
    std::unique_lock<std::mutex> lk(mu_);
    TRec& self = current_locked();
    self.pending = {ScheduleOp::Kind::kJoin, ""};
    while (unfinished_other_count(self.id) > 0) {
      self.state = TState::kJoining;
      reschedule(lk, self);
      self.state = TState::kRunnable;
    }
  }

  /// Implicit join when the test body returns: threads still running are
  /// drained to completion before the run is judged.
  void drain() { join_all(); }

  /// Joins every OS thread (aborting stragglers) and merges the outcome.
  /// Must be called off the token-passing paths, i.e. by run_scheduled_test
  /// after the main thread has unwound.
  void finalize(ScheduleRunResult& out) {
    finalize_teardown();
    out.threads_spawned = result_.threads_spawned;
    out.decisions = result_.decisions;
    out.hung = result_.hung;
    out.degraded = out.degraded || result_.degraded;
    out.pruned = result_.pruned;
    if (out.error.empty()) out.error = result_.error;
  }

 private:
  TRec& current_locked() { return *threads_[static_cast<std::size_t>(active_)]; }

  [[nodiscard]] int unfinished_other_count(int self_id) const {
    int count = 0;
    for (const auto& rec : threads_)
      if (rec->id != self_id && rec->state != TState::kFinished) ++count;
    return count;
  }

  [[nodiscard]] bool runnable_locked(const TRec& t) const {
    switch (t.state) {
      case TState::kRunnable:
        return true;
      case TState::kBlockedMonitor: {
        const auto it = monitors_.find(t.blocked_on);
        return it == monitors_.end() || it->second.first == t.id;
      }
      case TState::kNotified: {
        if (t.wait_depth == 0) return true;
        return monitors_.find(t.blocked_on) == monitors_.end();
      }
      case TState::kJoining:
        return unfinished_other_count(t.id) == 0;
      case TState::kWaiting:
      case TState::kFinished:
        return false;
    }
    return false;
  }

  [[nodiscard]] std::vector<ThreadStatus> collect_runnable() const {
    std::vector<ThreadStatus> runnable;  // threads_ is in id order already
    for (const auto& rec : threads_)
      if (runnable_locked(*rec)) runnable.push_back({rec->id, rec->pending});
    return runnable;
  }

  void activate(int id) {
    active_ = id;
    interp_.ctx_ = &threads_[static_cast<std::size_t>(id)]->ctx;
  }

  static const char* state_name(TState state) {
    switch (state) {
      case TState::kRunnable: return "runnable";
      case TState::kBlockedMonitor: return "blocked";
      case TState::kWaiting: return "waiting";
      case TState::kNotified: return "notified";
      case TState::kJoining: return "joining";
      case TState::kFinished: return "finished";
    }
    return "?";
  }

  void record_hang() {
    result_.hung = true;
    std::string detail = "schedule hang: no runnable thread;";
    for (const auto& rec : threads_) {
      if (rec->state == TState::kFinished) continue;
      detail += " t" + std::to_string(rec->id) + " " + state_name(rec->state);
      if (!rec->blocked_on.empty()) detail += " on " + rec->blocked_on;
    }
    if (result_.error.empty()) result_.error = detail;
  }

  /// Hands the token to the lowest-id unfinished thread other than
  /// `self_id`, so aborting threads unwind one at a time.
  void abort_next(int self_id) {
    for (const auto& rec : threads_) {
      if (rec->id != self_id && rec->state != TState::kFinished) {
        activate(rec->id);
        cv_.notify_all();
        return;
      }
    }
  }

  /// Core handoff: choose the next thread (consulting the controller only
  /// when the choice is real), activate it, and block until the token comes
  /// back. Throws ScheduleAborted when the schedule is being torn down.
  void reschedule(std::unique_lock<std::mutex>& lk, TRec& self) {
    if (aborting_) throw ScheduleAborted{};
    const std::vector<ThreadStatus> runnable = collect_runnable();
    if (runnable.empty()) {
      // Deadlock or missed notify: unfinished threads, none can proceed.
      record_hang();
      aborting_ = true;
      abort_next(self.id);
    } else {
      int next = runnable.front().thread_id;
      if (runnable.size() > 1) {
        ++result_.decisions;
        const int picked = controller_.pick(runnable);
        if (picked == ScheduleController::kPruneRun) {
          // The controller proved this interleaving redundant: tear the
          // schedule down with no verdict (sequential, like a hang abort).
          result_.pruned = true;
          aborting_ = true;
          abort_next(self.id);
          cv_.wait(lk, [&] { return active_ == self.id; });
          throw ScheduleAborted{};
        }
        for (const ThreadStatus& status : runnable)
          if (status.thread_id == picked) next = picked;
      }
      grant(runnable, next);
      activate(next);
      if (next == self.id) return;
      cv_.notify_all();
    }
    cv_.wait(lk, [&] { return active_ == self.id; });
    if (aborting_) throw ScheduleAborted{};
  }

  /// Reports the grant (thread + pending op) to the controller — every
  /// grant, even forced single-runnable ones, so sleep-set wake rules see
  /// the complete op stream.
  void grant(const std::vector<ThreadStatus>& runnable, int next) {
    for (const ThreadStatus& status : runnable)
      if (status.thread_id == next) {
        controller_.observe(status);
        return;
      }
  }

  /// Body of a spawned OS thread: wait for the first activation, run the
  /// MiniLang thread root, then hand the token onward.
  void thread_main(TRec& self, const FuncDecl& fn, std::vector<Value> args) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return active_ == self.id; });
      if (aborting_) {
        self.state = TState::kFinished;
        abort_next(self.id);
        return;
      }
    }
    bool failed = false;
    bool degraded = false;
    std::string error;
    try {
      interp_.call_function(fn, std::move(args));
    } catch (const ScheduleAborted&) {
      std::unique_lock<std::mutex> lk(mu_);
      self.state = TState::kFinished;
      abort_next(self.id);
      return;
    } catch (const MiniThrow& thrown) {
      failed = true;
      error = "thread t" + std::to_string(self.id) + ": " + thrown.value().to_display();
    } catch (const StepLimitExceeded& limit) {
      failed = true;
      degraded = true;
      error = limit.what();
    } catch (const InterpError& engine_error) {
      failed = true;
      error = "thread t" + std::to_string(self.id) + ": " + engine_error.what();
    }
    std::unique_lock<std::mutex> lk(mu_);
    self.state = TState::kFinished;
    self.pending = {};
    if (degraded) result_.degraded = true;
    if (failed) {
      // A failing thread decides the schedule: record it and stop scheduling
      // (sequential teardown keeps the remaining unwinds single-threaded).
      if (result_.error.empty()) result_.error = error;
      result_.failed = true;
      aborting_ = true;
    }
    if (aborting_) {
      abort_next(self.id);
      return;
    }
    const std::vector<ThreadStatus> runnable = collect_runnable();
    if (runnable.empty()) {
      if (unfinished_other_count(self.id) > 0) {
        record_hang();
        aborting_ = true;
        abort_next(self.id);
      }
      return;
    }
    int next = runnable.front().thread_id;
    if (runnable.size() > 1) {
      ++result_.decisions;
      const int picked = controller_.pick(runnable);
      if (picked == ScheduleController::kPruneRun) {
        result_.pruned = true;
        aborting_ = true;
        abort_next(self.id);
        return;
      }
      for (const ThreadStatus& status : runnable)
        if (status.thread_id == picked) next = picked;
    }
    grant(runnable, next);
    activate(next);
    cv_.notify_all();
  }

  /// Tears down any still-running threads (the exception paths) and joins
  /// every OS thread. Idempotent; called by finalize() and the destructor.
  void finalize_teardown() {
    {
      std::unique_lock<std::mutex> lk(mu_);
      threads_[0]->state = TState::kFinished;  // the main thread has unwound
      if (unfinished_other_count(0) > 0) {
        aborting_ = true;
        abort_next(0);
      }
    }
    for (const auto& rec : threads_)
      if (rec->os_thread.joinable()) rec->os_thread.join();
  }

  struct Result {
    int threads_spawned = 0;
    int decisions = 0;
    bool hung = false;
    bool degraded = false;
    bool pruned = false;
    bool failed = false;
    std::string error;
  };

  Interp& interp_;
  ScheduleController& controller_;
  Interp::ThreadCtx* saved_ctx_ = nullptr;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<TRec>> threads_;  // index == thread id
  std::unordered_map<std::string, std::pair<int, int>> monitors_;  // key -> (owner, depth)
  int active_ = 0;
  bool aborting_ = false;
  Result result_;
};

Interp::Interp(const Program& program) : program_(program) {}

void Interp::burn_fuel() {
  if (++fuel_used_ > fuel_limit_) throw StepLimitExceeded(fuel_limit_);
}

bool Interp::truthy(const Value& v, const Expr& where) const {
  if (!v.is_bool())
    throw InterpError("condition is not a bool: " + expr_text(where));
  return v.as_bool();
}

Value Interp::call(const std::string& function, std::vector<Value> args) {
  const FuncDecl* fn = program_.find_function(function);
  if (fn == nullptr) throw InterpError("unknown function: " + function);
  return call_function(*fn, std::move(args));
}

Value Interp::call_function(const FuncDecl& fn, std::vector<Value> args) {
  if (args.size() != fn.params.size())
    throw InterpError("arity mismatch calling " + fn.name + ": expected " +
                      std::to_string(fn.params.size()) + ", got " +
                      std::to_string(args.size()));
  if (++ctx_->call_depth > 256) {
    --ctx_->call_depth;
    throw InterpError("call depth limit exceeded in " + fn.name);
  }
  if (observer_ != nullptr) observer_->on_call(fn);
  if (fn.has_annotation("blocking")) {
    if (sched_ != nullptr)
      sched_->yield({ScheduleOp::Kind::kBlocking, "io:" + fn.name});
    now_ms_ += blocking_latency_ms_;
    if (observer_ != nullptr) observer_->on_blocking(fn.name, ctx_->sync_depth);
  }
  Frame frame;
  frame.scopes.emplace_back();
  for (std::size_t i = 0; i < args.size(); ++i)
    frame.scopes.back()[fn.params[i].name] = std::move(args[i]);
  Value return_value;
  const FuncDecl* caller_fn = ctx_->current_fn;
  ctx_->current_fn = &fn;
  try {
    exec_block(fn.body, frame, return_value);
  } catch (...) {
    ctx_->current_fn = caller_fn;
    --ctx_->call_depth;
    throw;
  }
  ctx_->current_fn = caller_fn;
  --ctx_->call_depth;
  return return_value;
}

namespace {

/// StateAccess over the executing frame's scope stack (interp.hpp). Built
/// per observed statement, only when the observer asked for state.
class FrameStateAccess final : public StateAccess {
 public:
  FrameStateAccess(std::vector<std::unordered_map<std::string, Value>>& scopes,
                   int sync_depth)
      : scopes_(scopes), sync_depth_(sync_depth) {}

  Value* lookup(const std::string& name) override {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  std::vector<std::string> local_names() const override {
    std::vector<std::string> names;
    for (const auto& scope : scopes_)
      for (const auto& [name, value] : scope) names.push_back(name);
    return names;
  }

  int sync_depth() const override { return sync_depth_; }

 private:
  std::vector<std::unordered_map<std::string, Value>>& scopes_;
  int sync_depth_;
};

}  // namespace

Interp::Flow Interp::exec_block(const std::vector<StmtPtr>& stmts, Frame& frame,
                                Value& return_value) {
  frame.scopes.emplace_back();
  Flow flow = Flow::kNormal;
  for (const StmtPtr& stmt : stmts) {
    flow = exec_stmt(*stmt, frame, return_value);
    if (flow != Flow::kNormal) break;
  }
  frame.scopes.pop_back();
  return flow;
}

Interp::Flow Interp::exec_stmt(const Stmt& stmt, Frame& frame, Value& return_value) {
  burn_fuel();
  covered_.insert(stmt.id);
  if (observer_ != nullptr) {
    static const FuncDecl kNoFunc{};
    const FuncDecl& owner = ctx_->current_fn != nullptr ? *ctx_->current_fn : kNoFunc;
    observer_->on_stmt(owner, stmt);
    if (observer_->wants_state()) {
      FrameStateAccess state(frame.scopes, ctx_->sync_depth);
      observer_->on_state(owner, stmt, state);
    }
  }
  switch (stmt.kind) {
    case Stmt::Kind::kLet:
      frame.scopes.back()[stmt.name] = eval(*stmt.expr, frame);
      return Flow::kNormal;
    case Stmt::Kind::kAssign:
      assign_lvalue(*stmt.expr, eval(*stmt.expr2, frame), frame);
      return Flow::kNormal;
    case Stmt::Kind::kIf: {
      if (truthy(eval(*stmt.expr, frame), *stmt.expr))
        return exec_block(stmt.body, frame, return_value);
      return exec_block(stmt.else_body, frame, return_value);
    }
    case Stmt::Kind::kWhile: {
      while (truthy(eval(*stmt.expr, frame), *stmt.expr)) {
        burn_fuel();
        const Flow flow = exec_block(stmt.body, frame, return_value);
        if (flow == Flow::kReturn) return flow;
        if (flow == Flow::kBreak) break;
      }
      return Flow::kNormal;
    }
    case Stmt::Kind::kReturn:
      if (stmt.expr) return_value = eval(*stmt.expr, frame);
      return Flow::kReturn;
    case Stmt::Kind::kThrow:
      throw MiniThrow(eval(*stmt.expr, frame));
    case Stmt::Kind::kExpr:
      eval(*stmt.expr, frame);
      return Flow::kNormal;
    case Stmt::Kind::kSpawn: {
      const Expr& call = *stmt.expr;
      const FuncDecl* fn = program_.find_function(call.text);
      if (fn == nullptr)
        throw InterpError("spawn target must be a declared function: " + call.text);
      std::vector<Value> args;
      args.reserve(call.args.size());
      for (const ExprPtr& arg : call.args) args.push_back(eval(*arg, frame));
      if (args.size() != fn->params.size())
        throw InterpError("arity mismatch spawning " + fn->name + ": expected " +
                          std::to_string(fn->params.size()) + ", got " +
                          std::to_string(args.size()));
      if (sched_ != nullptr) {
        sched_->spawn(*fn, std::move(args));
      } else {
        // Serial semantics: the thread root runs inline to completion at the
        // spawn point, so replay without the scheduler sees exactly one
        // interleaving. Only the schedule explorer quantifies over others.
        call_function(*fn, std::move(args));
      }
      return Flow::kNormal;
    }
    case Stmt::Kind::kSync: {
      const Value monitor = eval(*stmt.expr, frame);
      if (sched_ != nullptr) {
        const std::string key = monitor_key_of(monitor);
        sched_->sync_enter(key);
        ++ctx_->sync_depth;
        Flow flow;
        try {
          flow = exec_block(stmt.body, frame, return_value);
        } catch (...) {
          --ctx_->sync_depth;
          sched_->sync_exit(key);
          throw;
        }
        --ctx_->sync_depth;
        sched_->sync_exit(key);
        return flow;
      }
      ++ctx_->sync_depth;
      Flow flow;
      try {
        flow = exec_block(stmt.body, frame, return_value);
      } catch (...) {
        --ctx_->sync_depth;
        throw;
      }
      --ctx_->sync_depth;
      return flow;
    }
    case Stmt::Kind::kBlock:
      return exec_block(stmt.body, frame, return_value);
    case Stmt::Kind::kTry: {
      try {
        return exec_block(stmt.body, frame, return_value);
      } catch (const MiniThrow& thrown) {
        frame.scopes.emplace_back();
        frame.scopes.back()[stmt.catch_var] = thrown.value();
        Flow flow = Flow::kNormal;
        for (const StmtPtr& handler_stmt : stmt.else_body) {
          flow = exec_stmt(*handler_stmt, frame, return_value);
          if (flow != Flow::kNormal) break;
        }
        frame.scopes.pop_back();
        return flow;
      }
    }
    case Stmt::Kind::kBreak:
      return Flow::kBreak;
    case Stmt::Kind::kContinue:
      return Flow::kContinue;
  }
  return Flow::kNormal;
}

Value* Interp::lookup(Frame& frame, const std::string& name) {
  for (auto it = frame.scopes.rbegin(); it != frame.scopes.rend(); ++it) {
    const auto found = it->find(name);
    if (found != it->end()) return &found->second;
  }
  return nullptr;
}

void Interp::assign_lvalue(const Expr& lvalue, Value value, Frame& frame) {
  switch (lvalue.kind) {
    case Expr::Kind::kVar: {
      Value* slot = lookup(frame, lvalue.text);
      if (slot == nullptr) throw InterpError("assignment to undeclared variable " + lvalue.text);
      *slot = std::move(value);
      return;
    }
    case Expr::Kind::kField: {
      const Value base = eval(*lvalue.args[0], frame);
      if (base.is_null())
        throw MiniThrow(Value::of_string("NullPointerException: field write ." + lvalue.text));
      if (!base.is_object()) throw InterpError("field write on non-object");
      if (sched_ != nullptr)
        sched_->yield({ScheduleOp::Kind::kFieldWrite,
                       "f:" + std::to_string(base.as_object()->object_id) + "." + lvalue.text});
      base.as_object()->fields[lvalue.text] = std::move(value);
      return;
    }
    case Expr::Kind::kIndex: {
      const Value base = eval(*lvalue.args[0], frame);
      const Value index = eval(*lvalue.args[1], frame);
      if (base.is_list()) {
        auto& items = *base.as_list();
        const std::int64_t i = index.as_int();
        if (i < 0 || static_cast<std::size_t>(i) >= items.size())
          throw MiniThrow(Value::of_string("IndexOutOfBounds: " + std::to_string(i)));
        items[static_cast<std::size_t>(i)] = std::move(value);
        return;
      }
      if (base.is_map()) {
        const std::string key = index.is_string() ? index.as_string()
                                                  : std::to_string(index.as_int());
        (*base.as_map())[key] = std::move(value);
        return;
      }
      throw InterpError("index write on non-container");
    }
    default:
      throw InterpError("invalid assignment target");
  }
}

Value Interp::eval(const Expr& expr, Frame& frame) {
  burn_fuel();
  switch (expr.kind) {
    case Expr::Kind::kIntLit: return Value::of_int(expr.int_value);
    case Expr::Kind::kBoolLit: return Value::of_bool(expr.bool_value);
    case Expr::Kind::kStrLit: return Value::of_string(expr.text);
    case Expr::Kind::kNullLit: return Value::null();
    case Expr::Kind::kVar: {
      Value* slot = lookup(frame, expr.text);
      if (slot == nullptr) throw InterpError("unknown variable: " + expr.text);
      return *slot;
    }
    case Expr::Kind::kField: {
      const Value base = eval(*expr.args[0], frame);
      if (base.is_null())
        throw MiniThrow(Value::of_string("NullPointerException: field read ." + expr.text));
      if (!base.is_object()) throw InterpError("field read on non-object: ." + expr.text);
      if (sched_ != nullptr)
        sched_->yield({ScheduleOp::Kind::kFieldRead,
                       "f:" + std::to_string(base.as_object()->object_id) + "." + expr.text});
      const auto& fields = base.as_object()->fields;
      const auto it = fields.find(expr.text);
      if (it == fields.end())
        throw InterpError("object " + base.as_object()->struct_name + " has no field " +
                          expr.text);
      return it->second;
    }
    case Expr::Kind::kIndex: {
      const Value base = eval(*expr.args[0], frame);
      const Value index = eval(*expr.args[1], frame);
      if (base.is_list()) {
        const auto& items = *base.as_list();
        const std::int64_t i = index.as_int();
        if (i < 0 || static_cast<std::size_t>(i) >= items.size())
          throw MiniThrow(Value::of_string("IndexOutOfBounds: " + std::to_string(i)));
        return items[static_cast<std::size_t>(i)];
      }
      if (base.is_map()) {
        const std::string key = index.is_string() ? index.as_string()
                                                  : std::to_string(index.as_int());
        const auto& map = *base.as_map();
        const auto it = map.find(key);
        return it == map.end() ? Value::null() : it->second;
      }
      if (base.is_null())
        throw MiniThrow(Value::of_string("NullPointerException: index access"));
      throw InterpError("index on non-container");
    }
    case Expr::Kind::kUnary: {
      const Value operand = eval(*expr.args[0], frame);
      if (expr.un_op == UnOp::kNot) {
        if (!operand.is_bool()) throw InterpError("'!' on non-bool");
        return Value::of_bool(!operand.as_bool());
      }
      if (!operand.is_int()) throw InterpError("unary '-' on non-int");
      return Value::of_int(-operand.as_int());
    }
    case Expr::Kind::kBinary: return eval_binary(expr, frame);
    case Expr::Kind::kCall: {
      const FuncDecl* fn = program_.find_function(expr.text);
      if (fn != nullptr) {
        std::vector<Value> args;
        args.reserve(expr.args.size());
        for (const ExprPtr& arg : expr.args) args.push_back(eval(*arg, frame));
        return call_function(*fn, std::move(args));
      }
      return call_builtin(expr.text, expr, frame);
    }
    case Expr::Kind::kNew: {
      const StructDecl* decl = program_.find_struct(expr.text);
      if (decl == nullptr) throw InterpError("unknown struct: " + expr.text);
      auto object = std::make_shared<Object>();
      object->struct_name = expr.text;
      object->object_id = next_object_id_++;
      // Default-initialize every declared field, then apply initializers.
      for (const FieldDecl& field : decl->fields) {
        switch (field.type->kind) {
          case Type::Kind::kInt: object->fields[field.name] = Value::of_int(0); break;
          case Type::Kind::kBool: object->fields[field.name] = Value::of_bool(false); break;
          case Type::Kind::kString: object->fields[field.name] = Value::of_string(""); break;
          case Type::Kind::kList: object->fields[field.name] = Value::new_list(); break;
          case Type::Kind::kMap: object->fields[field.name] = Value::new_map(); break;
          default: object->fields[field.name] = Value::null(); break;
        }
      }
      for (std::size_t i = 0; i < expr.args.size(); ++i) {
        if (decl->find_field(expr.field_names[i]) == nullptr)
          throw InterpError("struct " + expr.text + " has no field " + expr.field_names[i]);
        object->fields[expr.field_names[i]] = eval(*expr.args[i], frame);
      }
      return Value::of_object(std::move(object));
    }
  }
  throw InterpError("unreachable expression kind");
}

Value Interp::eval_binary(const Expr& expr, Frame& frame) {
  // Short-circuit operators first.
  if (expr.bin_op == BinOp::kAnd) {
    const Value lhs = eval(*expr.args[0], frame);
    if (!truthy(lhs, *expr.args[0])) return Value::of_bool(false);
    return Value::of_bool(truthy(eval(*expr.args[1], frame), *expr.args[1]));
  }
  if (expr.bin_op == BinOp::kOr) {
    const Value lhs = eval(*expr.args[0], frame);
    if (truthy(lhs, *expr.args[0])) return Value::of_bool(true);
    return Value::of_bool(truthy(eval(*expr.args[1], frame), *expr.args[1]));
  }
  const Value lhs = eval(*expr.args[0], frame);
  const Value rhs = eval(*expr.args[1], frame);
  switch (expr.bin_op) {
    case BinOp::kEq: return Value::of_bool(lhs.equals(rhs));
    case BinOp::kNe: return Value::of_bool(!lhs.equals(rhs));
    case BinOp::kAdd:
      if (lhs.is_string() || rhs.is_string())
        return Value::of_string(lhs.to_display() + rhs.to_display());
      if (lhs.is_int() && rhs.is_int()) return Value::of_int(lhs.as_int() + rhs.as_int());
      throw InterpError("'+' on incompatible operands");
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod: {
      if (!lhs.is_int() || !rhs.is_int()) throw InterpError("arithmetic on non-int");
      const std::int64_t a = lhs.as_int();
      const std::int64_t b = rhs.as_int();
      switch (expr.bin_op) {
        case BinOp::kSub: return Value::of_int(a - b);
        case BinOp::kMul: return Value::of_int(a * b);
        case BinOp::kDiv:
          if (b == 0) throw MiniThrow(Value::of_string("ArithmeticException: divide by zero"));
          return Value::of_int(a / b);
        default:
          if (b == 0) throw MiniThrow(Value::of_string("ArithmeticException: mod by zero"));
          return Value::of_int(a % b);
      }
    }
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      if (lhs.is_string() && rhs.is_string()) {
        const int cmp = lhs.as_string().compare(rhs.as_string());
        switch (expr.bin_op) {
          case BinOp::kLt: return Value::of_bool(cmp < 0);
          case BinOp::kLe: return Value::of_bool(cmp <= 0);
          case BinOp::kGt: return Value::of_bool(cmp > 0);
          default: return Value::of_bool(cmp >= 0);
        }
      }
      if (!lhs.is_int() || !rhs.is_int()) throw InterpError("comparison on incompatible types");
      const std::int64_t a = lhs.as_int();
      const std::int64_t b = rhs.as_int();
      switch (expr.bin_op) {
        case BinOp::kLt: return Value::of_bool(a < b);
        case BinOp::kLe: return Value::of_bool(a <= b);
        case BinOp::kGt: return Value::of_bool(a > b);
        default: return Value::of_bool(a >= b);
      }
    }
    default:
      throw InterpError("unreachable binary operator");
  }
}

Value Interp::call_builtin(const std::string& name, const Expr& expr, Frame& frame) {
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const ExprPtr& arg : expr.args) args.push_back(eval(*arg, frame));
  if (sched_ != nullptr && blocking_builtins().count(name) > 0)
    sched_->yield({ScheduleOp::Kind::kBlocking, "io:" + name});
  BuiltinContext context;
  context.output = &output_;
  context.now_ms = &now_ms_;
  context.blocking_latency_ms = blocking_latency_ms_;
  context.observer = observer_;
  context.sync_depth = ctx_->sync_depth;
  context.sched = sched_;
  std::optional<Value> result = dispatch_builtin(name, args, context);
  if (!result.has_value()) throw InterpError("unknown function or builtin: " + name);
  return std::move(*result);
}

bool Interp::run_test(const std::string& test_name) {
  last_error_.clear();
  step_limit_hit_ = false;
  try {
    call(test_name, {});
    return true;
  } catch (const MiniThrow& thrown) {
    last_error_ = thrown.value().to_display();
    return false;
  } catch (const StepLimitExceeded& limit) {
    step_limit_hit_ = true;
    last_error_ = limit.what();
    return false;
  } catch (const InterpError& error) {
    last_error_ = error.what();
    return false;
  }
}

ScheduleRunResult Interp::run_scheduled_test(const std::string& test_name,
                                             ScheduleController& controller) {
  last_error_.clear();
  step_limit_hit_ = false;
  ScheduleRunResult out;
  const FuncDecl* fn = program_.find_function(test_name);
  if (fn == nullptr) {
    out.error = "unknown test: " + test_name;
    return out;
  }
  Scheduler scheduler(*this, controller);
  sched_ = &scheduler;
  bool main_ok = false;
  std::string main_error;
  try {
    call_function(*fn, {});
    scheduler.drain();  // implicit join: finish threads still running
    main_ok = true;
  } catch (const ScheduleAborted&) {
    // Hang or spawned-thread failure; the scheduler recorded the cause.
  } catch (const MiniThrow& thrown) {
    main_error = thrown.value().to_display();
  } catch (const StepLimitExceeded& limit) {
    step_limit_hit_ = true;
    out.degraded = true;
    main_error = limit.what();
  } catch (const InterpError& error) {
    main_error = error.what();
  }
  // Finalize (which joins every spawned thread, unwinding stragglers) must
  // run before sched_ is cleared: threads parked inside sync bodies call
  // sched_->sync_exit while unwinding ScheduleAborted.
  scheduler.finalize(out);
  sched_ = nullptr;
  if (!main_error.empty()) out.error = main_error;
  if (out.degraded) step_limit_hit_ = true;
  out.test_passed = main_ok && out.error.empty() && !out.hung && !out.degraded;
  last_error_ = out.error;
  return out;
}

std::pair<int, int> Interp::run_all_tests() {
  int passed = 0;
  int failed = 0;
  for (const FuncDecl* test : program_.functions_with("test")) {
    if (run_test(test->name))
      ++passed;
    else
      ++failed;
  }
  return {passed, failed};
}

}  // namespace lisa::minilang
