// Tests for the observability layer: span nesting (including across
// threads), histogram quantile math, disabled-tracer overhead, the Chrome
// trace-event export, and cost-table attribution.
#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "support/json.hpp"

namespace lisa::obs {
namespace {

// --- span recording ---------------------------------------------------------

TEST(TracerTest, RecordsNestedSpansWithParentLinkage) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(tracer, "outer");
    {
      ScopedSpan inner(tracer, "inner");
      ScopedSpan sibling_child(tracer, "grandchild");
    }
    ScopedSpan second(tracer, "second");
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);

  std::map<std::string, const SpanRecord*> by_name;
  for (const SpanRecord& span : spans) by_name[span.name] = &span;
  ASSERT_TRUE(by_name.count("outer"));
  const SpanRecord& outer = *by_name.at("outer");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(by_name.at("inner")->parent_id, outer.id);
  EXPECT_EQ(by_name.at("second")->parent_id, outer.id);
  EXPECT_EQ(by_name.at("grandchild")->parent_id, by_name.at("inner")->id);

  // Completion order: innermost spans close first.
  EXPECT_EQ(spans.front().name, "grandchild");
  EXPECT_EQ(spans.back().name, "outer");

  // Child intervals sit inside the parent interval.
  const SpanRecord& inner = *by_name.at("inner");
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.dur_us, outer.start_us + outer.dur_us + 1.0);
}

TEST(TracerTest, AttributesSurviveIntoTheRecord) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan span(tracer, "attrs");
    span.attr("contract", "zk-1208#0");
    span.attr("paths", std::size_t{7});
    span.attr("passed", true);
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 3u);
  EXPECT_EQ(spans[0].attrs[0].first, "contract");
  EXPECT_EQ(spans[0].attrs[0].second.as_string(), "zk-1208#0");
  EXPECT_EQ(spans[0].attrs[1].second.as_int(), 7);
  EXPECT_TRUE(spans[0].attrs[2].second.as_bool());
}

TEST(TracerTest, EachThreadNestsIndependently) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&tracer] {
      ScopedSpan root(tracer, "thread.root");
      ScopedSpan child(tracer, "thread.child");
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u * kThreads);
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& span : spans) by_id[span.id] = &span;
  std::set<std::uint32_t> tids;
  for (const SpanRecord& span : spans) {
    tids.insert(span.tid);
    if (span.name == "thread.root") {
      EXPECT_EQ(span.parent_id, 0u);
    } else {
      // Every child's parent is the root span *of its own thread* — never a
      // root on another thread that happened to be open at the same moment.
      ASSERT_TRUE(by_id.count(span.parent_id));
      const SpanRecord& parent = *by_id.at(span.parent_id);
      EXPECT_EQ(parent.name, "thread.root");
      EXPECT_EQ(parent.tid, span.tid);
    }
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(TracerTest, CloseCompletesMidScopeAndIsIdempotent) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(tracer, "outer");
    ScopedSpan early(tracer, "early");
    early.close();
    EXPECT_FALSE(early.live());
    early.close();  // second close is a no-op
    // A span opened after the close nests under outer, not under early.
    ScopedSpan late(tracer, "late");
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  std::map<std::string, const SpanRecord*> by_name;
  for (const SpanRecord& span : spans) by_name[span.name] = &span;
  EXPECT_EQ(by_name.at("late")->parent_id, by_name.at("outer")->id);
  EXPECT_EQ(by_name.at("early")->parent_id, by_name.at("outer")->id);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    ScopedSpan span(tracer, "invisible");
    EXPECT_FALSE(span.live());
    span.attr("ignored", 1);  // must be a no-op, not a crash
    EXPECT_GE(span.elapsed_ms(), 0.0);  // timing still works while disabled
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, ClearDropsSpansButKeepsIdsAdvancing) {
  Tracer tracer;
  tracer.set_enabled(true);
  { ScopedSpan span(tracer, "a"); }
  const std::uint64_t first_id = tracer.snapshot().at(0).id;
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  { ScopedSpan span(tracer, "b"); }
  EXPECT_GT(tracer.snapshot().at(0).id, first_id);
}

// --- Chrome trace export ----------------------------------------------------

TEST(TracerTest, ChromeTraceRoundTripsThroughJsonParser) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    ScopedSpan outer(tracer, "pipeline.run");
    outer.attr("case", "zk-1208");
    ScopedSpan inner(tracer, "smt.solve");
    inner.attr("status", "unsat");
  }
  const std::string dumped = tracer.chrome_trace().dump();
  const support::Json parsed = support::Json::parse(dumped);

  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ms");
  const support::JsonArray& events = parsed.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  for (const support::Json& event : events) {
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_EQ(event.at("cat").as_string(), "lisa");
    EXPECT_TRUE(event.has("name"));
    EXPECT_TRUE(event.has("ts"));
    EXPECT_TRUE(event.has("dur"));
    EXPECT_TRUE(event.has("pid"));
    EXPECT_TRUE(event.has("tid"));
    EXPECT_TRUE(event.at("args").has("span_id"));
    EXPECT_TRUE(event.at("args").has("parent_id"));
  }
  // Events appear in completion order: the inner span first.
  EXPECT_EQ(events[0].at("name").as_string(), "smt.solve");
  EXPECT_EQ(events[0].at("args").at("status").as_string(), "unsat");
  EXPECT_EQ(events[1].at("args").at("case").as_string(), "zk-1208");
  // Nesting is recoverable from the timestamps Perfetto uses.
  EXPECT_GE(events[0].at("ts").as_double(), events[1].at("ts").as_double());
}

// --- counters, gauges, histograms -------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  registry.counter("queries").add();
  registry.counter("queries").add(4);
  registry.gauge("live").set(17);
  EXPECT_EQ(registry.counter("queries").value(), 5);
  EXPECT_EQ(registry.gauge("live").value(), 17);
  registry.reset();
  EXPECT_EQ(registry.counter("queries").value(), 0);
  EXPECT_EQ(registry.gauge("live").value(), 0);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("same");
  Counter& b = registry.counter("same");
  EXPECT_EQ(&a, &b);
}

TEST(HistogramTest, ExactStatisticsAreExact) {
  Histogram histogram;
  for (const double v : {2.0, 8.0, 4.0}) histogram.record(v);
  EXPECT_EQ(histogram.count(), 3);
  EXPECT_DOUBLE_EQ(histogram.sum(), 14.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 2.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 8.0);
  EXPECT_NEAR(histogram.mean(), 14.0 / 3.0, 1e-12);
}

TEST(HistogramTest, QuantilesOfUniformSequenceWithinBucketError) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.record(static_cast<double>(i));
  // Log-scale buckets quantize to ~±4.5%; allow 10% against the exact ranks.
  EXPECT_NEAR(histogram.quantile(0.50), 500.0, 50.0);
  EXPECT_NEAR(histogram.quantile(0.95), 950.0, 95.0);
  EXPECT_NEAR(histogram.quantile(0.99), 990.0, 99.0);
  // Extremes clamp to the exact observed range.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 1000.0);
}

TEST(HistogramTest, QuantilesOfBimodalDistribution) {
  // 90 fast samples at ~1ms, 10 slow at ~100ms: p50 must sit in the fast
  // mode and p95/p99 in the slow mode.
  Histogram histogram;
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> fast(0.9, 1.1);
  std::uniform_real_distribution<double> slow(90.0, 110.0);
  for (int i = 0; i < 90; ++i) histogram.record(fast(rng));
  for (int i = 0; i < 10; ++i) histogram.record(slow(rng));
  EXPECT_NEAR(histogram.quantile(0.50), 1.0, 0.15);
  EXPECT_NEAR(histogram.quantile(0.95), 100.0, 15.0);
  EXPECT_NEAR(histogram.quantile(0.99), 100.0, 15.0);
}

TEST(HistogramTest, NonPositiveSamplesLandInUnderflowBucket) {
  Histogram histogram;
  histogram.record(0.0);
  histogram.record(-3.0);
  histogram.record(1.0);
  EXPECT_EQ(histogram.count(), 3);
  EXPECT_DOUBLE_EQ(histogram.min(), -3.0);
  // Rank 1 is the tracked-exactly minimum, not a bucket midpoint.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), -3.0);
}

TEST(HistogramTest, JsonSnapshotHasAllPercentileKeys) {
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.record(5.0);
  const support::Json json = histogram.to_json();
  for (const char* key : {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"})
    EXPECT_TRUE(json.has(key)) << key;
  EXPECT_EQ(json.at("count").as_int(), 100);
  EXPECT_NEAR(json.at("p50").as_double(), 5.0, 0.5);
}

TEST(MetricsTest, SnapshotGroupsByKind) {
  MetricsRegistry registry;
  registry.counter("smt.queries").add(3);
  registry.gauge("corpus.size").set(16);
  registry.histogram("smt.query_us").record(12.0);
  const support::Json snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.at("counters").at("smt.queries").as_int(), 3);
  EXPECT_EQ(snapshot.at("gauges").at("corpus.size").as_int(), 16);
  EXPECT_EQ(snapshot.at("histograms").at("smt.query_us").at("count").as_int(), 1);
}

// --- cost attribution -------------------------------------------------------

std::vector<SpanRecord> record_profile_fixture() {
  // pipeline.run [0..1000us]
  //   checker.contract{contract=c1} [100..900]
  //     smt.solve [200..300], smt.solve [400..450]
  //   smt.solve [950..960]   (outside any contract)
  std::vector<SpanRecord> spans;
  const auto make = [&](std::uint64_t id, std::uint64_t parent, const char* name,
                        double start, double end) {
    SpanRecord span;
    span.id = id;
    span.parent_id = parent;
    span.name = name;
    span.start_us = start;
    span.dur_us = end - start;
    spans.push_back(std::move(span));
  };
  make(1, 0, "pipeline.run", 0, 1000);
  make(2, 1, "checker.contract", 100, 900);
  spans.back().attrs.emplace_back("contract", support::Json("c1"));
  make(3, 2, "smt.solve", 200, 300);
  make(4, 2, "smt.solve", 400, 450);
  make(5, 1, "smt.solve", 950, 960);
  return spans;
}

TEST(ProfileTest, InclusiveAndExclusiveTimes) {
  const CostTable table = build_cost_table(record_profile_fixture());
  ASSERT_EQ(table.rows.size(), 3u);
  // Sorted by inclusive descending: run (1000) > contract (800) > solve (160).
  EXPECT_EQ(table.rows[0].name, "pipeline.run");
  EXPECT_NEAR(table.rows[0].inclusive_ms, 1.0, 1e-9);
  EXPECT_NEAR(table.rows[0].exclusive_ms, 1.0 - 0.8 - 0.01, 1e-9);
  EXPECT_EQ(table.rows[1].name, "checker.contract");
  EXPECT_NEAR(table.rows[1].inclusive_ms, 0.8, 1e-9);
  EXPECT_NEAR(table.rows[1].exclusive_ms, 0.8 - 0.15, 1e-9);
  EXPECT_EQ(table.rows[2].name, "smt.solve");
  EXPECT_EQ(table.rows[2].count, 3);
  EXPECT_NEAR(table.rows[2].inclusive_ms, 0.16, 1e-9);
  EXPECT_NEAR(table.wall_ms, 1.0, 1e-9);
}

TEST(ProfileTest, SmtHotspotsAttributeToEnclosingContract) {
  const CostTable table = build_cost_table(record_profile_fixture());
  ASSERT_EQ(table.hotspots.size(), 2u);
  EXPECT_EQ(table.hotspots[0].contract_id, "c1");
  EXPECT_EQ(table.hotspots[0].queries, 2);
  EXPECT_NEAR(table.hotspots[0].solve_ms, 0.15, 1e-9);
  EXPECT_EQ(table.hotspots[1].contract_id, "(outside checker)");
  EXPECT_EQ(table.hotspots[1].queries, 1);
}

TEST(ProfileTest, RenderAndJsonAgreeOnStructure) {
  const CostTable table = build_cost_table(record_profile_fixture());
  const support::Json json = table.to_json();
  EXPECT_TRUE(json.has("wall_ms"));
  EXPECT_EQ(json.at("spans").as_array().size(), 3u);
  EXPECT_EQ(json.at("smt_hotspots").as_array().size(), 2u);
  const std::string text = table.render();
  EXPECT_NE(text.find("pipeline.run"), std::string::npos);
  EXPECT_NE(text.find("c1"), std::string::npos);
  EXPECT_NE(text.find("wall clock"), std::string::npos);
}

TEST(ProfileTest, EmptySnapshotProducesEmptyTable) {
  const CostTable table = build_cost_table({});
  EXPECT_TRUE(table.rows.empty());
  EXPECT_TRUE(table.hotspots.empty());
  EXPECT_DOUBLE_EQ(table.wall_ms, 0.0);
}

// --- histogram merge --------------------------------------------------------

TEST(HistogramMerge, MergedQuantilesMatchUnionRecomputation) {
  std::mt19937 rng(20260808);
  std::uniform_real_distribution<double> fast(0.5, 2.0);
  std::uniform_real_distribution<double> slow(50.0, 200.0);
  Histogram a, b, combined;
  for (int i = 0; i < 500; ++i) {
    const double va = fast(rng), vb = slow(rng);
    a.record(va);
    combined.record(va);
    b.record(vb);
    combined.record(vb);
  }
  a.merge(b);
  // Buckets hold exact counts (only positions are quantized), so the merged
  // histogram is bit-equivalent to recording the union directly.
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99})
    EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
}

TEST(HistogramMerge, MergeIntoEmptyAndMergeOfEmpty) {
  Histogram empty, filled;
  filled.record(3.0);
  filled.record(9.0);
  // Merging an empty histogram is a no-op.
  Histogram target;
  target.record(3.0);
  target.record(9.0);
  target.merge(empty);
  EXPECT_EQ(target.count(), 2);
  EXPECT_DOUBLE_EQ(target.min(), 3.0);
  EXPECT_DOUBLE_EQ(target.max(), 9.0);
  // Merging INTO an empty histogram adopts the source's extremes exactly.
  Histogram fresh;
  fresh.merge(filled);
  EXPECT_EQ(fresh.count(), 2);
  EXPECT_DOUBLE_EQ(fresh.min(), 3.0);
  EXPECT_DOUBLE_EQ(fresh.max(), 9.0);
  EXPECT_DOUBLE_EQ(fresh.quantile(0.5), filled.quantile(0.5));
}

// --- prometheus exposition --------------------------------------------------

TEST(PrometheusTest, MetricNamesAreSanitizedWithPrefix) {
  EXPECT_EQ(prometheus_metric_name("smt.queries"), "lisa_smt_queries");
  EXPECT_EQ(prometheus_metric_name("gate.drift-findings"), "lisa_gate_drift_findings");
  // An embedded label suffix belongs to the labels, not the name.
  EXPECT_EQ(prometheus_metric_name("budget.exhausted{reason=deadline}"),
            "lisa_budget_exhausted");
}

TEST(PrometheusTest, LabelValuesAreEscaped) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_escape_label("line\nbreak"), "line\\nbreak");
}

TEST(PrometheusTest, RenderCoversCountersGaugesAndSummaries) {
  MetricsRegistry registry;
  registry.counter("smt.queries").add(7);
  registry.gauge("corpus.size").set(20);
  registry.histogram("gate.evaluation_ms").record(2.0);
  registry.histogram("gate.evaluation_ms").record(8.0);
  registry.counter("budget.exhausted{reason=deadline}").add(3);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# TYPE lisa_smt_queries counter\nlisa_smt_queries 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE lisa_corpus_size gauge\nlisa_corpus_size 20\n"),
            std::string::npos);
  // Histograms export as summaries: three quantiles plus _sum and _count.
  EXPECT_NE(text.find("# TYPE lisa_gate_evaluation_ms summary"), std::string::npos);
  EXPECT_NE(text.find("lisa_gate_evaluation_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lisa_gate_evaluation_ms{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(text.find("lisa_gate_evaluation_ms{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("lisa_gate_evaluation_ms_sum 10\n"), std::string::npos);
  EXPECT_NE(text.find("lisa_gate_evaluation_ms_count 2\n"), std::string::npos);
  // Embedded registry labels surface as real Prometheus labels.
  EXPECT_NE(text.find("lisa_budget_exhausted{reason=\"deadline\"} 3\n"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace lisa::obs
