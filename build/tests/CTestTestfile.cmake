# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/minilang_lexer_parser_test[1]_include.cmake")
include("/root/repo/build/tests/minilang_interp_test[1]_include.cmake")
include("/root/repo/build/tests/minilang_property_test[1]_include.cmake")
include("/root/repo/build/tests/minilang_vm_test[1]_include.cmake")
include("/root/repo/build/tests/smt_test[1]_include.cmake")
include("/root/repo/build/tests/smtlib_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/concolic_test[1]_include.cmake")
include("/root/repo/build/tests/testgen_test[1]_include.cmake")
include("/root/repo/build/tests/explorer_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/inference_test[1]_include.cmake")
include("/root/repo/build/tests/lisa_core_test[1]_include.cmake")
include("/root/repo/build/tests/lisa_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/systems_test[1]_include.cmake")
include("/root/repo/build/tests/systems_lifecycle_test[1]_include.cmake")
include("/root/repo/build/tests/systems_chaos_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
