// Ablation (§3.2 design choice): relevant-variable branch pruning.
//
// "The tree can still be huge, so we prune further: the concolic engine
//  follows only branches whose guards involve variables relevant to the
//  semantic." This bench measures the price of turning that off, on the
// corpus programs and on synthetic request handlers with growing numbers of
// irrelevant branches.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/callgraph.hpp"
#include "analysis/paths.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"
#include "smt/minilang_bridge.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace lisa;

std::string synthetic_handler(int irrelevant_branches) {
  std::string body;
  for (int i = 0; i < irrelevant_branches; ++i) {
    body += "  if (n > " + std::to_string(i) + ") { print(" + std::to_string(i) +
            "); } else { print(0 - " + std::to_string(i) + "); }\n";
  }
  return "struct S { flag: bool; }\n"
         "fn act(s: S) { print(s); }\n"
         "@entry\nfn handler(s: S, n: int) {\n" +
         body +
         "  if (s.flag) {\n"
         "    act(s);\n"
         "  }\n"
         "}\n";
}

void print_pruning_table() {
  std::printf("=== Ablation: relevant-variable branch pruning ===\n\n");
  std::printf("-- synthetic handler, growing irrelevant branch count --\n");
  std::printf("%10s | %12s %10s %10s | %12s %10s %10s\n", "branches", "paths", "raw",
              "ms", "paths", "raw", "ms");
  std::printf("%10s | %36s | %36s\n", "", "---------- pruned ----------",
              "--------- unpruned ---------");
  for (const int branches : {2, 4, 6, 8, 10, 12}) {
    const minilang::Program program = minilang::parse_checked(synthetic_handler(branches));
    const analysis::CallGraph graph = analysis::CallGraph::build(program);
    analysis::TreeOptions options;
    options.contract_condition = *smt::parse_condition("s.flag");
    options.max_paths = 1u << 20;

    support::Stopwatch timer;
    const analysis::ExecutionTree pruned =
        analysis::build_execution_tree(program, graph, "act(", options);
    const double pruned_ms = timer.elapsed_ms();

    options.prune_irrelevant = false;
    timer.reset();
    const analysis::ExecutionTree unpruned =
        analysis::build_execution_tree(program, graph, "act(", options);
    const double unpruned_ms = timer.elapsed_ms();

    std::printf("%10d | %12zu %10zu %10.2f | %12zu %10zu %10.2f\n", branches,
                pruned.paths.size(), pruned.enumerated_raw, pruned_ms,
                unpruned.paths.size(), unpruned.enumerated_raw, unpruned_ms);
  }

  std::printf("\n-- corpus cases (state-predicate contracts) --\n");
  std::printf("%-34s %14s %14s\n", "case", "pruned paths", "unpruned paths");
  std::size_t pruned_total = 0;
  std::size_t unpruned_total = 0;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    if (ticket.kind != corpus::SemanticsKind::kStatePredicate) continue;
    const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
    const core::TranslationResult translation = core::translate(proposal, ticket.system);
    const minilang::Program program = minilang::parse_checked(ticket.patched_source);
    const analysis::CallGraph graph = analysis::CallGraph::build(program);
    analysis::TreeOptions options;
    options.contract_condition = translation.contracts[0].condition;
    const analysis::ExecutionTree pruned = analysis::build_execution_tree(
        program, graph, translation.contracts[0].target_fragment, options);
    options.prune_irrelevant = false;
    const analysis::ExecutionTree unpruned = analysis::build_execution_tree(
        program, graph, translation.contracts[0].target_fragment, options);
    std::printf("%-34s %14zu %14zu\n", ticket.case_id.c_str(), pruned.paths.size(),
                unpruned.paths.size());
    pruned_total += pruned.paths.size();
    unpruned_total += unpruned.paths.size();
  }
  std::printf("%-34s %14zu %14zu\n", "TOTAL", pruned_total, unpruned_total);
  std::printf("\nshape check: pruned path counts stay flat while unpruned counts grow\n"
              "exponentially with irrelevant branching (2^k), making exhaustive checking\n"
              "impractical exactly as §3.2 argues.\n\n");
}

void BM_TreePruned(benchmark::State& state) {
  const minilang::Program program =
      minilang::parse_checked(synthetic_handler(static_cast<int>(state.range(0))));
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  analysis::TreeOptions options;
  options.contract_condition = *smt::parse_condition("s.flag");
  for (auto _ : state)
    benchmark::DoNotOptimize(
        analysis::build_execution_tree(program, graph, "act(", options).paths.size());
  state.counters["branches"] = static_cast<double>(state.range(0));
}
void BM_TreeUnpruned(benchmark::State& state) {
  const minilang::Program program =
      minilang::parse_checked(synthetic_handler(static_cast<int>(state.range(0))));
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  analysis::TreeOptions options;
  options.contract_condition = *smt::parse_condition("s.flag");
  options.prune_irrelevant = false;
  options.max_paths = 1u << 20;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        analysis::build_execution_tree(program, graph, "act(", options).paths.size());
  state.counters["branches"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TreePruned)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TreeUnpruned)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_pruning_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
