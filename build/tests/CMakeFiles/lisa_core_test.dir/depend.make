# Empty dependencies file for lisa_core_test.
# This may be replaced when dependencies are built.
