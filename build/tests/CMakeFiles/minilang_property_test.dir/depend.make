# Empty dependencies file for minilang_property_test.
# This may be replaced when dependencies are built.
