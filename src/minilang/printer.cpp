#include "minilang/printer.hpp"

namespace lisa::minilang {
namespace {

void append_expr(std::string& out, const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
      out += std::to_string(expr.int_value);
      return;
    case Expr::Kind::kBoolLit:
      out += expr.bool_value ? "true" : "false";
      return;
    case Expr::Kind::kStrLit: {
      out.push_back('"');
      for (char c : expr.text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out.push_back(c);
        }
      }
      out.push_back('"');
      return;
    }
    case Expr::Kind::kNullLit:
      out += "null";
      return;
    case Expr::Kind::kVar:
      out += expr.text;
      return;
    case Expr::Kind::kField:
      append_expr(out, *expr.args[0]);
      out.push_back('.');
      out += expr.text;
      return;
    case Expr::Kind::kIndex:
      append_expr(out, *expr.args[0]);
      out.push_back('[');
      append_expr(out, *expr.args[1]);
      out.push_back(']');
      return;
    case Expr::Kind::kUnary:
      out += expr.un_op == UnOp::kNot ? "!" : "-";
      out.push_back('(');
      append_expr(out, *expr.args[0]);
      out.push_back(')');
      return;
    case Expr::Kind::kBinary:
      out.push_back('(');
      append_expr(out, *expr.args[0]);
      out.push_back(' ');
      out += bin_op_text(expr.bin_op);
      out.push_back(' ');
      append_expr(out, *expr.args[1]);
      out.push_back(')');
      return;
    case Expr::Kind::kCall: {
      out += expr.text;
      out.push_back('(');
      for (std::size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) out += ", ";
        append_expr(out, *expr.args[i]);
      }
      out.push_back(')');
      return;
    }
    case Expr::Kind::kNew: {
      out += "new ";
      out += expr.text;
      out += " { ";
      for (std::size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += expr.field_names[i];
        out += ": ";
        append_expr(out, *expr.args[i]);
      }
      out += " }";
      return;
    }
  }
}

void append_stmt_header(std::string& out, const Stmt& stmt) {
  switch (stmt.kind) {
    case Stmt::Kind::kLet:
      out += "let ";
      out += stmt.name;
      if (stmt.declared_type) {
        out += ": ";
        out += stmt.declared_type->to_string();
      }
      out += " = ";
      append_expr(out, *stmt.expr);
      out.push_back(';');
      return;
    case Stmt::Kind::kAssign:
      append_expr(out, *stmt.expr);
      out += " = ";
      append_expr(out, *stmt.expr2);
      out.push_back(';');
      return;
    case Stmt::Kind::kIf:
      out += "if (";
      append_expr(out, *stmt.expr);
      out.push_back(')');
      return;
    case Stmt::Kind::kWhile:
      out += "while (";
      append_expr(out, *stmt.expr);
      out.push_back(')');
      return;
    case Stmt::Kind::kReturn:
      out += "return";
      if (stmt.expr) {
        out.push_back(' ');
        append_expr(out, *stmt.expr);
      }
      out.push_back(';');
      return;
    case Stmt::Kind::kThrow:
      out += "throw ";
      append_expr(out, *stmt.expr);
      out.push_back(';');
      return;
    case Stmt::Kind::kExpr:
      append_expr(out, *stmt.expr);
      out.push_back(';');
      return;
    case Stmt::Kind::kSync:
      out += "sync (";
      append_expr(out, *stmt.expr);
      out.push_back(')');
      return;
    case Stmt::Kind::kSpawn:
      out += "spawn ";
      append_expr(out, *stmt.expr);
      out.push_back(';');
      return;
    case Stmt::Kind::kBlock:
      out.push_back('{');
      return;
    case Stmt::Kind::kTry:
      out += "try";
      return;
    case Stmt::Kind::kBreak:
      out += "break;";
      return;
    case Stmt::Kind::kContinue:
      out += "continue;";
      return;
  }
}

void append_block(std::string& out, const std::vector<StmtPtr>& stmts, int depth);

void append_stmt(std::string& out, const Stmt& stmt, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  out += indent;
  append_stmt_header(out, stmt);
  switch (stmt.kind) {
    case Stmt::Kind::kIf:
      out += " {\n";
      append_block(out, stmt.body, depth + 1);
      out += indent;
      out.push_back('}');
      if (!stmt.else_body.empty()) {
        out += " else {\n";
        append_block(out, stmt.else_body, depth + 1);
        out += indent;
        out.push_back('}');
      }
      out.push_back('\n');
      return;
    case Stmt::Kind::kWhile:
    case Stmt::Kind::kSync:
      out += " {\n";
      append_block(out, stmt.body, depth + 1);
      out += indent;
      out += "}\n";
      return;
    case Stmt::Kind::kBlock:
      out.push_back('\n');
      append_block(out, stmt.body, depth + 1);
      out += indent;
      out += "}\n";
      return;
    case Stmt::Kind::kTry:
      out += " {\n";
      append_block(out, stmt.body, depth + 1);
      out += indent;
      out += "} catch (";
      out += stmt.catch_var;
      out += ") {\n";
      append_block(out, stmt.else_body, depth + 1);
      out += indent;
      out += "}\n";
      return;
    default:
      out.push_back('\n');
      return;
  }
}

void append_block(std::string& out, const std::vector<StmtPtr>& stmts, int depth) {
  for (const StmtPtr& stmt : stmts) append_stmt(out, *stmt, depth);
}

}  // namespace

std::string expr_text(const Expr& expr) {
  std::string out;
  append_expr(out, expr);
  return out;
}

std::string stmt_header_text(const Stmt& stmt) {
  std::string out;
  append_stmt_header(out, stmt);
  return out;
}

std::string function_text(const FuncDecl& fn) {
  std::string out;
  for (const std::string& annotation : fn.annotations) {
    out.push_back('@');
    out += annotation;
    out.push_back('\n');
  }
  out += "fn ";
  out += fn.name;
  out.push_back('(');
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i > 0) out += ", ";
    out += fn.params[i].name;
    out += ": ";
    out += fn.params[i].type->to_string();
  }
  out.push_back(')');
  if (fn.return_type && fn.return_type->kind != Type::Kind::kVoid) {
    out += " -> ";
    out += fn.return_type->to_string();
  }
  out += " {\n";
  append_block(out, fn.body, 1);
  out += "}\n";
  return out;
}

std::string program_text(const Program& program) {
  std::string out;
  for (const StructDecl& s : program.structs) {
    out += "struct ";
    out += s.name;
    out += " {\n";
    for (const FieldDecl& field : s.fields) {
      out += "  ";
      out += field.name;
      out += ": ";
      out += field.type->to_string();
      out += ";\n";
    }
    out += "}\n\n";
  }
  for (const FuncDecl& fn : program.functions) {
    out += function_text(fn);
    out.push_back('\n');
  }
  return out;
}

}  // namespace lisa::minilang
