#include "staticcheck/slice.hpp"

#include <algorithm>
#include <deque>

#include "analysis/paths.hpp"
#include "minilang/printer.hpp"
#include "staticcheck/summaries.hpp"
#include "support/jsonl.hpp"

namespace lisa::staticcheck {

using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;

namespace {

/// Footprint paths of a state-predicate condition: every variable the
/// formula mentions, with the "#null" nullness-indicator suffix stripped
/// back to the access path it marks.
std::vector<std::string> condition_footprint(const smt::FormulaPtr& condition) {
  std::set<std::string> paths;
  if (condition != nullptr) {
    for (std::string var : condition->variables()) {
      const std::size_t marker = var.rfind("#null");
      if (marker != std::string::npos && marker == var.size() - 5) var.resize(marker);
      if (!var.empty()) paths.insert(std::move(var));
    }
  }
  return {paths.begin(), paths.end()};
}

/// May `def` store into footprint entry `fp`? Interleaving footprints are
/// bare field names (`field_only`); state-predicate footprints are access
/// paths in the target frame, matched cross-frame through the conservative
/// field-name aliasing rule.
bool def_writes_footprint(const Definition& def, const std::string& fp, bool field_only) {
  if (field_only) {
    if (def.path == "*") return true;
    if (def.path.size() > 2 && def.path.compare(0, 2, "*.") == 0)
      return def.path.substr(2) == fp;
    return path_mentions_field(def.path, fp);
  }
  return def.may_write(fp);
}

}  // namespace

bool is_literal_new(const minilang::Expr& expr) {
  if (expr.kind != minilang::Expr::Kind::kNew) return false;
  for (const auto& arg : expr.args) {
    if (!arg) return false;
    switch (arg->kind) {
      case minilang::Expr::Kind::kIntLit:
      case minilang::Expr::Kind::kBoolLit:
      case minilang::Expr::Kind::kStrLit:
      case minilang::Expr::Kind::kNullLit:
        break;
      default:
        return false;
    }
  }
  return true;
}

SliceEngine::SliceEngine(const Program& program, const analysis::CallGraph& graph,
                         const SummaryMap* summaries)
    : program_(&program), graph_(&graph), summaries_(summaries) {}

const FuncDepGraph& SliceEngine::depgraph_for(const FuncDecl& fn) const {
  const auto it = cache_.find(&fn);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(&fn, FuncDepGraph::build(fn, *program_, summaries_)).first->second;
}

void SliceEngine::close_over_callees(std::set<std::string>& cone) const {
  std::deque<std::string> worklist(cone.begin(), cone.end());
  while (!worklist.empty()) {
    const std::string name = std::move(worklist.front());
    worklist.pop_front();
    for (const std::string& callee : graph_->callees_of(name)) {
      if (program_->find_function(callee) == nullptr) continue;  // builtin
      if (cone.insert(callee).second) worklist.push_back(callee);
    }
  }
}

void SliceEngine::close_over_callers(std::set<std::string>& cone,
                                     bool include_tests) const {
  std::deque<std::string> worklist(cone.begin(), cone.end());
  while (!worklist.empty()) {
    const std::string name = std::move(worklist.front());
    worklist.pop_front();
    for (const std::string& caller : graph_->callers_of(name)) {
      const FuncDecl* fn = program_->find_function(caller);
      if (fn == nullptr) continue;
      // Static path enumeration never roots at @test functions
      // (analysis/paths.cpp), so a test caller cannot influence a static
      // verdict — it joins the cone only when the concolic replay will run.
      if (!include_tests && fn->has_annotation("test")) continue;
      if (cone.insert(caller).second) worklist.push_back(caller);
    }
  }
}

std::string SliceEngine::summary_digest_text(const FunctionSummary& summary) {
  std::string text;
  const auto join_set = [&text](const char* key, const std::set<std::string>& items) {
    text += key;
    for (const std::string& item : items) text += " " + item;
    text += "\n";
  };
  join_set("mod", summary.mod_fields);
  join_set("ref", summary.ref_fields);
  text += "mod-params";
  for (const std::size_t index : summary.mod_params) text += " " + std::to_string(index);
  text += "\n";
  text += "flags " + std::to_string(summary.opaque_effects) + " " +
          std::to_string(summary.may_throw) + " " + std::to_string(summary.may_block) + " " +
          std::to_string(summary.net_monitor_normal) + " " +
          std::to_string(summary.net_monitor_throw) + " " +
          std::to_string(summary.concurrency_degraded) + "\n";
  text += "return-null " + std::to_string(static_cast<int>(summary.return_nullness)) + "\n";
  for (const auto& [path, fact] : summary.nullness_on_return)
    text += "on-return " + path + " " + (fact == NullFact::kNull ? "null" : "non-null") + "\n";
  text += "return-interval " + std::to_string(summary.return_interval.lo) + " " +
          std::to_string(summary.return_interval.hi) + "\n";
  for (const auto& [path, fact] : summary.boundary_nullness)
    text += "boundary-null " + path + " " + (fact == NullFact::kNull ? "null" : "non-null") +
            "\n";
  for (const auto& [path, range] : summary.boundary_intervals)
    text += "boundary-interval " + path + " " + std::to_string(range.lo) + " " +
            std::to_string(range.hi) + "\n";
  // Sites are rendered without line/column: positions shift when an edit
  // above them inserts or removes lines, and a pure shift must not change
  // any digest — the per-function text hashes in the fingerprint already
  // catch every real change.
  for (const auto& [monitor, site] : summary.acquired_locks)
    text += "lock " + monitor + " " + site.function + "\n";
  for (const auto& edge : summary.lock_order_edges)
    text += "lock-order " + edge.first + " -> " + edge.second + " @" + edge.function +
            (edge.via.empty() ? "" : " via " + edge.via) + "\n";
  for (const auto& [field, locks] : summary.field_locks) {
    text += "field-locks " + field + (locks.truncated ? " truncated" : "") + "\n";
    for (const auto& site : locks.sites) {
      text += "  site " + site.function + (site.is_write ? " write " : " read ") + site.base;
      for (const std::string& monitor : site.lockset) text += " +" + monitor;
      text += "\n";
    }
  }
  return text;
}

std::string SliceEngine::fingerprint_of(const SliceRequest& request,
                                        const SliceResult& result) const {
  std::string blob = "lisa-slice-fp v1\n";
  blob += "contract " + request.contract_text + "\n";
  blob += "fragment " + request.target_fragment + "\n";
  blob += "condition " + request.condition_text + "\n";
  blob += "pattern " + request.pattern + "\n";
  blob += "include-tests " + std::to_string(request.include_tests ? 1 : 0) + "\n";
  blob += "degraded " + std::to_string(result.degraded ? 1 : 0) + "\n";
  blob += "footprint";
  for (const std::string& path : result.footprint) blob += " " + path;
  blob += "\n";
  for (const std::string& target : result.targets) blob += "target " + target + "\n";
  for (const std::string& name : result.functions) {
    const FuncDecl* fn = program_->find_function(name);
    if (fn == nullptr) continue;
    blob += "fn " + name + " " + support::fnv1a_fingerprint(minilang::function_text(*fn)) +
            "\n";
    if (summaries_ != nullptr) {
      const FunctionSummary* summary = summaries_->find(name);
      if (summary != nullptr)
        blob += "sum " + name + " " +
                support::fnv1a_fingerprint(summary_digest_text(*summary)) + "\n";
    }
  }
  return support::fnv1a_fingerprint(blob);
}

SliceResult SliceEngine::slice(const SliceRequest& request) const {
  SliceResult result;
  const bool field_footprint = request.kind == SliceRequest::Kind::kInterleaving;

  // Footprint: what the contract's verdict predicate reads.
  if (request.kind == SliceRequest::Kind::kStatePredicate) {
    result.footprint = condition_footprint(request.condition);
  } else if (request.kind == SliceRequest::Kind::kInterleaving &&
             request.pattern == "guarded_field" && !request.target_fragment.empty()) {
    result.footprint.push_back(request.target_fragment);
  }

  // Target statements (state predicates only; the other kinds are
  // whole-program rules and carry no target list).
  std::vector<std::pair<const FuncDecl*, const Stmt*>> targets;
  if (request.kind == SliceRequest::Kind::kStatePredicate) {
    targets = analysis::find_target_statements(*program_, request.target_fragment);
    for (const auto& [fn, stmt] : targets)
      // No line number: the target's identity must survive edits above it in
      // the source, or every edit would invalidate every fingerprint.
      result.targets.push_back(fn->name + ": " + minilang::stmt_header_text(*stmt));
    std::sort(result.targets.begin(), result.targets.end());
  }

  // Function cone.
  if (summaries_ == nullptr) {
    // No interprocedural facts: every call is a havoc and boundary joins
    // are unknown, so the only sound cone is the whole program. Degrade
    // loudly; the fingerprint then keys on every function body.
    result.degraded = true;
    for (const FuncDecl& fn : program_->functions) result.functions.insert(fn.name);
  } else {
    switch (request.kind) {
      case SliceRequest::Kind::kStatePredicate:
        for (const auto& [fn, stmt] : targets) result.functions.insert(fn->name);
        close_over_callers(result.functions, request.include_tests);
        close_over_callees(result.functions);
        break;
      case SliceRequest::Kind::kStructural:
      case SliceRequest::Kind::kInterleaving:
        // Whole-program rules: the lock-state scan walks every function
        // and the lock graph is unioned over all thread roots.
        for (const FuncDecl& fn : program_->functions)
          if (!fn.has_annotation("test")) result.functions.insert(fn.name);
        close_over_callees(result.functions);
        break;
    }
    if (request.include_tests) {
      for (const FuncDecl& fn : program_->functions)
        if (fn.has_annotation("test")) result.functions.insert(fn.name);
      close_over_callees(result.functions);
    }
    for (const std::string& name : result.functions) {
      const FunctionSummary* summary = summaries_->find(name);
      if (summary != nullptr && (summary->opaque_effects || summary->concurrency_degraded))
        result.degraded = true;
    }
  }

  // Statement-level backward slice inside the target functions: closure
  // over def-use edges and control dependence, seeded from the target
  // statements plus the reaching definitions of the footprint paths.
  std::set<const FuncDecl*> target_fns;
  for (const auto& [fn, stmt] : targets) target_fns.insert(fn);
  for (const FuncDecl* fn : target_fns) {
    const FuncDepGraph& dep = depgraph_for(*fn);
    if (dep.degraded) result.degraded = true;
    std::map<int, std::string> roles;  // node id → role
    std::deque<int> worklist;
    const auto enqueue = [&](int node, const char* role) {
      if (node < 0) return;
      if (roles.emplace(node, role).second) worklist.push_back(node);
    };
    for (const auto& [target_fn, stmt] : targets) {
      if (target_fn != fn) continue;
      const int node = dep.cfg.node_of(stmt);
      enqueue(node, "target");
      if (node < 0) continue;
      for (const std::size_t index : dep.reach_in[static_cast<std::size_t>(node)]) {
        const Definition& def = dep.defs[index];
        for (const std::string& fp : result.footprint)
          if (def_writes_footprint(def, fp, field_footprint)) {
            enqueue(def.node, "data");
            break;
          }
      }
    }
    while (!worklist.empty()) {
      const int node = worklist.front();
      worklist.pop_front();
      for (const std::size_t index : dep.use_defs[static_cast<std::size_t>(node)])
        enqueue(dep.defs[index].node, "data");
      for (const int branch : dep.pdoms.control_deps(node)) enqueue(branch, "control");
    }
    for (const auto& [node, role] : roles) {
      const CfgNode& cfg_node = dep.cfg.node(node);
      if (cfg_node.stmt == nullptr) continue;  // entry/exit/join markers
      SliceStatement statement;
      statement.function = fn->name;
      statement.line = cfg_node.stmt->loc.line;
      statement.column = cfg_node.stmt->loc.column;
      statement.text = minilang::stmt_header_text(*cfg_node.stmt);
      statement.role = role;
      result.statements.push_back(std::move(statement));
    }
  }
  std::sort(result.statements.begin(), result.statements.end(),
            [](const SliceStatement& a, const SliceStatement& b) {
              return std::tie(a.function, a.line, a.column, a.text) <
                     std::tie(b.function, b.line, b.column, b.text);
            });
  result.statements.erase(
      std::unique(result.statements.begin(), result.statements.end(),
                  [](const SliceStatement& a, const SliceStatement& b) {
                    return std::tie(a.function, a.line, a.column, a.text) ==
                           std::tie(b.function, b.line, b.column, b.text);
                  }),
      result.statements.end());

  // Footprint writes across the whole cone (the irrelevance rule's input).
  if (!result.footprint.empty()) {
    for (const std::string& name : result.functions) {
      const FuncDecl* fn = program_->find_function(name);
      if (fn == nullptr) continue;
      const FuncDepGraph& dep = depgraph_for(*fn);
      for (const Definition& def : dep.defs) {
        if (def.kind == Definition::Kind::kParam) continue;
        for (const std::string& fp : result.footprint) {
          if (!def_writes_footprint(def, fp, field_footprint)) continue;
          SliceWriteSite site;
          site.function = name;
          site.line = def.loc.line;
          site.column = def.loc.column;
          site.path = def.path;
          if (def.path.find('.') == std::string::npos && def.stmt != nullptr) {
            const minilang::Expr* rhs = nullptr;
            if (def.kind == Definition::Kind::kLet) rhs = def.stmt->expr.get();
            if (def.kind == Definition::Kind::kAssign) rhs = def.stmt->expr2.get();
            site.literal_construction = rhs != nullptr && is_literal_new(*rhs);
          }
          result.footprint_writes.push_back(std::move(site));
          break;
        }
      }
    }
    std::sort(result.footprint_writes.begin(), result.footprint_writes.end(),
              [](const SliceWriteSite& a, const SliceWriteSite& b) {
                return std::tie(a.function, a.line, a.column, a.path) <
                       std::tie(b.function, b.line, b.column, b.path);
              });
  }

  result.fingerprint = fingerprint_of(request, result);
  return result;
}

}  // namespace lisa::staticcheck
