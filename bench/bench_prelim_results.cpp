// §4 Preliminary Results: LISA applied to the latest releases of mini-HBase
// and mini-HDFS with contracts mined from their historical tickets uncovers
// the two previously unknown bugs the paper reported, and regenerates the
// per-bug summary table.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lisa/pipeline.hpp"

namespace {

using namespace lisa;

struct HuntRow {
  std::string paper_bug;
  std::string learned_from;
  std::size_t targets = 0;
  int verified = 0;
  int violated = 0;
  std::string new_bug_path;
  bool found_expected = false;
};

HuntRow hunt(const std::string& case_id, const std::string& paper_bug,
             const std::string& expected_fn) {
  HuntRow row;
  row.paper_bug = paper_bug;
  const corpus::FailureTicket* ticket = corpus::Corpus::find(case_id);
  row.learned_from = ticket->original.id;
  const core::Pipeline pipeline;
  const core::PipelineResult result = pipeline.run(*ticket, ticket->latest_source);
  for (const core::ContractCheckReport& report : result.reports) {
    row.targets += report.target_statements;
    row.verified += report.verified;
    row.violated += report.violated;
    for (const core::PathReport& path : report.paths) {
      if (path.verdict != core::PathVerdict::kViolated) continue;
      for (const std::string& fn : path.call_chain) {
        if (!row.new_bug_path.empty()) row.new_bug_path += "->";
        row.new_bug_path += fn;
        if (fn == expected_fn) row.found_expected = true;
      }
    }
  }
  return row;
}

void print_prelim_table() {
  std::printf("=== §4 Preliminary results: unknown bugs in the latest releases ===\n\n");
  std::printf("%-22s %-14s %8s %9s %9s  %-36s %8s\n", "bug", "learned from", "targets",
              "verified", "violated", "new unguarded path", "matches");
  for (const HuntRow& row :
       {hunt("hbase-27671-snapshot-ttl", "Bug #1 (HBASE-29296)", "scan_snapshot"),
        hunt("hdfs-13924-observer-locations", "Bug #2 (HDFS-17768)",
             "get_batched_listing")}) {
    std::printf("%-22s %-14s %8zu %9d %9d  %-36s %8s\n", row.paper_bug.c_str(),
                row.learned_from.c_str(), row.targets, row.verified, row.violated,
                row.new_bug_path.c_str(), row.found_expected ? "paper" : "NO");
  }
  std::printf("\nshape check: exactly one violated path per system, on the same code\n"
              "path the paper's community-confirmed bugs were on; the fix LISA proposes\n"
              "(add the mined check to the new path) is the accepted fix.\n\n");
}

void BM_BugHunt(benchmark::State& state) {
  const char* ids[] = {"hbase-27671-snapshot-ttl", "hdfs-13924-observer-locations"};
  const corpus::FailureTicket* ticket =
      corpus::Corpus::find(ids[static_cast<std::size_t>(state.range(0))]);
  const core::Pipeline pipeline;
  for (auto _ : state) {
    const core::PipelineResult result = pipeline.run(*ticket, ticket->latest_source);
    benchmark::DoNotOptimize(result.total_violations());
  }
  state.SetLabel(ticket->case_id);
}
BENCHMARK(BM_BugHunt)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_prelim_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
