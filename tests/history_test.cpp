// Longitudinal observability: run-record round trips, history store
// durability (header, torn tail), drift-rule semantics (flake, settled-drop,
// latency/SMT regressions with floors), run/ledger diffing determinism, and
// the gate integration — a regressed run must turn the gate red with a
// narrated cause, and a history-less run must stay byte-identical.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/ticket.hpp"
#include "lisa/ci_gate.hpp"
#include "lisa/pipeline.hpp"
#include "obs/diff.hpp"
#include "obs/history.hpp"
#include "obs/provenance.hpp"

namespace {

using namespace lisa;

std::string temp_path(const std::string& name) {
  const std::string path =
      (std::filesystem::temp_directory_path() / ("lisa_history_test_" + name)).string();
  std::remove(path.c_str());
  return path;
}

const corpus::FailureTicket& ticket_or_die(const std::string& case_id) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find(case_id);
  EXPECT_NE(ticket, nullptr) << case_id;
  return *ticket;
}

obs::RunRecord make_record(const std::string& kind, const std::string& label,
                           double evaluation_ms, double settled = 1.0,
                           double smt_queries = 0.0) {
  obs::RunRecord record;
  record.kind = kind;
  record.label = label;
  record.input_fingerprint = "fp-default";
  record.metrics["evaluation_ms"] = evaluation_ms;
  record.metrics["settled_fraction"] = settled;
  record.metrics["smt_queries"] = smt_queries;
  return record;
}

// --- record serialization ---------------------------------------------------

TEST(RunRecord, JsonRoundTripPreservesEveryField) {
  obs::RunRecord record;
  record.kind = "gate";
  record.label = "series-1";
  record.input_fingerprint = "abc123";
  record.smt_digest = "deadbeef";
  obs::ContractOutcome outcome;
  outcome.verdict = "violated";
  outcome.passed = false;
  outcome.conclusive = true;
  outcome.signature_digest = "sig-1";
  outcome.slice_fp = "slice-1";
  outcome.smt_queries = 7;
  record.contracts["case#0"] = outcome;
  record.metrics["evaluation_ms"] = 12.5;
  record.metrics["settled_fraction"] = 0.75;
  record.meta["git_sha"] = "0123abcd";
  record.meta["git_dirty"] = "true";

  const obs::RunRecord reloaded = obs::RunRecord::from_json(record.to_json());
  EXPECT_EQ(reloaded.kind, "gate");
  EXPECT_EQ(reloaded.label, "series-1");
  EXPECT_EQ(reloaded.input_fingerprint, "abc123");
  EXPECT_EQ(reloaded.smt_digest, "deadbeef");
  ASSERT_EQ(reloaded.contracts.size(), 1u);
  const obs::ContractOutcome& back = reloaded.contracts.at("case#0");
  EXPECT_EQ(back.verdict, "violated");
  EXPECT_FALSE(back.passed);
  EXPECT_TRUE(back.conclusive);
  EXPECT_EQ(back.signature_digest, "sig-1");
  EXPECT_EQ(back.slice_fp, "slice-1");
  EXPECT_EQ(back.smt_queries, 7);
  EXPECT_DOUBLE_EQ(reloaded.metrics.at("evaluation_ms"), 12.5);
  EXPECT_DOUBLE_EQ(reloaded.metrics.at("settled_fraction"), 0.75);
  EXPECT_EQ(reloaded.meta.at("git_sha"), "0123abcd");
  EXPECT_EQ(reloaded.meta.at("git_dirty"), "true");
  // Serialization is byte-stable: dumping twice gives identical bytes.
  EXPECT_EQ(record.to_json().dump(), reloaded.to_json().dump());
}

// --- history store ----------------------------------------------------------

TEST(RunHistory, AppendCreatesHeaderAndLoadRoundTrips) {
  const std::string path = temp_path("roundtrip.jsonl");
  obs::RunHistory history(path);
  EXPECT_FALSE(history.load());  // absent file: fresh history, not an error
  EXPECT_TRUE(history.append(make_record("gate", "a", 1.0)));
  EXPECT_TRUE(history.append(make_record("check", "b", 2.0)));
  EXPECT_EQ(history.records().size(), 2u);

  // The first line is the shared journal header with an empty fingerprint
  // (one history file spans many inputs).
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("\"journal\":\"lisa-history\""), std::string::npos) << header;

  obs::RunHistory reloaded(path);
  EXPECT_TRUE(reloaded.load());
  ASSERT_EQ(reloaded.records().size(), 2u);
  EXPECT_EQ(reloaded.records()[0].kind, "gate");
  EXPECT_EQ(reloaded.records()[1].kind, "check");
  EXPECT_DOUBLE_EQ(reloaded.records()[1].metrics.at("evaluation_ms"), 2.0);
  std::remove(path.c_str());
}

TEST(RunHistory, TornTrailingLineIsSkippedNotFatal) {
  const std::string path = temp_path("torn.jsonl");
  obs::RunHistory history(path);
  EXPECT_TRUE(history.append(make_record("gate", "a", 1.0)));
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"kind\": \"gate\", \"label\": tor";  // crash mid-append
  }
  obs::RunHistory reloaded(path);
  EXPECT_TRUE(reloaded.load());
  EXPECT_EQ(reloaded.records().size(), 1u);
  // The store stays appendable after a torn tail.
  EXPECT_TRUE(reloaded.append(make_record("gate", "a", 2.0)));
  EXPECT_EQ(reloaded.records().size(), 2u);
  std::remove(path.c_str());
}

TEST(RunHistory, RejectsForeignJournalKinds) {
  const std::string path = temp_path("foreign.jsonl");
  {
    std::ofstream out(path);
    out << "{\"fingerprint\": \"x\", \"journal\": \"lisa-ledger\", \"version\": 1}\n";
  }
  obs::RunHistory history(path);
  EXPECT_FALSE(history.load());
  EXPECT_TRUE(history.records().empty());
  std::remove(path.c_str());
}

TEST(RunHistory, MatchingFiltersByKindAndLabelOldestFirst) {
  const std::string path = temp_path("matching.jsonl");
  obs::RunHistory history(path);
  EXPECT_TRUE(history.append(make_record("gate", "a", 1.0)));
  EXPECT_TRUE(history.append(make_record("gate", "b", 2.0)));
  EXPECT_TRUE(history.append(make_record("check", "a", 3.0)));
  EXPECT_TRUE(history.append(make_record("gate", "a", 4.0)));
  const std::vector<const obs::RunRecord*> gate_a = history.matching("gate", "a");
  ASSERT_EQ(gate_a.size(), 2u);
  EXPECT_DOUBLE_EQ(gate_a[0]->metrics.at("evaluation_ms"), 1.0);
  EXPECT_DOUBLE_EQ(gate_a[1]->metrics.at("evaluation_ms"), 4.0);
  EXPECT_EQ(history.matching("gate", "").size(), 3u);
  EXPECT_EQ(history.matching("", "").size(), 4u);
  std::remove(path.c_str());
}

// --- drift rules ------------------------------------------------------------

TEST(DriftMedian, LowerMiddleOnEvenSizes) {
  EXPECT_DOUBLE_EQ(obs::drift_median({}), 0.0);
  EXPECT_DOUBLE_EQ(obs::drift_median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(obs::drift_median({3.0, 1.0, 2.0}), 2.0);
  // Even size takes the LOWER middle: conservative for "x exceeds factor
  // times median" thresholds.
  EXPECT_DOUBLE_EQ(obs::drift_median({4.0, 1.0, 3.0, 2.0}), 2.0);
}

TEST(DetectDrift, EmptyBaselineYieldsNoFindings) {
  const obs::RunRecord current = make_record("gate", "a", 1000.0, 0.0, 1000.0);
  EXPECT_TRUE(obs::detect_drift({}, current).empty());
}

TEST(DetectDrift, LatencyRegressionNeedsFactorAndFloor) {
  std::vector<obs::RunRecord> baseline_storage;
  for (int i = 0; i < 3; ++i) baseline_storage.push_back(make_record("gate", "a", 10.0));
  std::vector<const obs::RunRecord*> baseline;
  for (const obs::RunRecord& record : baseline_storage) baseline.push_back(&record);

  // 10 ms -> 50 ms: 5x the median and +40 ms absolute — a regression.
  obs::DriftOptions options;
  const std::vector<obs::DriftFinding> slow =
      obs::detect_drift(baseline, make_record("gate", "a", 50.0), options);
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].kind, "latency-regression");
  EXPECT_EQ(slow[0].subject, "evaluation_ms");
  EXPECT_DOUBLE_EQ(slow[0].baseline, 10.0);
  EXPECT_DOUBLE_EQ(slow[0].observed, 50.0);
  EXPECT_TRUE(slow[0].fails_gate);
  EXPECT_NE(slow[0].cause.find("regressed to 50.00 ms"), std::string::npos);

  // 10 ms -> 31 ms: above the 3x factor but below the 25 ms absolute floor
  // — micro-run noise, not a finding.
  EXPECT_TRUE(obs::detect_drift(baseline, make_record("gate", "a", 31.0), options).empty());

  // Tightening the floor turns the same delta into a finding.
  options.min_latency_ms = 0.0;
  EXPECT_EQ(obs::detect_drift(baseline, make_record("gate", "a", 31.0), options).size(), 1u);
}

TEST(DetectDrift, SettledDropAndSmtRegression) {
  std::vector<obs::RunRecord> baseline_storage;
  for (int i = 0; i < 5; ++i)
    baseline_storage.push_back(make_record("gate", "a", 10.0, 1.0, 20.0));
  std::vector<const obs::RunRecord*> baseline;
  for (const obs::RunRecord& record : baseline_storage) baseline.push_back(&record);

  // Settled fraction 1.0 -> 0.5 and SMT queries 20 -> 60 in one run: both
  // rules fire, and findings come back sorted by kind.
  const std::vector<obs::DriftFinding> findings =
      obs::detect_drift(baseline, make_record("gate", "a", 10.0, 0.5, 60.0));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].kind, "settled-drop");
  EXPECT_DOUBLE_EQ(findings[0].observed, 0.5);
  EXPECT_EQ(findings[1].kind, "smt-regression");
  EXPECT_DOUBLE_EQ(findings[1].observed, 60.0);

  // A drop within tolerance (1.0 -> 0.96) stays quiet.
  EXPECT_TRUE(obs::detect_drift(baseline, make_record("gate", "a", 10.0, 0.96, 20.0)).empty());

  // SMT growth above the factor but below the 16-query absolute floor stays
  // quiet: 4 -> 12 triples the median but adds only 8 queries.
  std::vector<obs::RunRecord> small_storage;
  for (int i = 0; i < 5; ++i) small_storage.push_back(make_record("gate", "a", 10.0, 1.0, 4.0));
  std::vector<const obs::RunRecord*> small;
  for (const obs::RunRecord& record : small_storage) small.push_back(&record);
  EXPECT_TRUE(obs::detect_drift(small, make_record("gate", "a", 10.0, 1.0, 12.0)).empty());
}

TEST(DetectDrift, InterleavingConclusiveDropFailsGate) {
  // Baseline: schedule exploration drains every interleaving contract.
  std::vector<obs::RunRecord> baseline_storage;
  for (int i = 0; i < 5; ++i) {
    obs::RunRecord record = make_record("gate", "a", 10.0);
    record.metrics["interleaving_conclusive_fraction"] = 1.0;
    record.metrics["schedules_explored"] = 1300.0;
    baseline_storage.push_back(std::move(record));
  }
  std::vector<const obs::RunRecord*> baseline;
  for (const obs::RunRecord& record : baseline_storage) baseline.push_back(&record);

  // One of three schedule contracts stops concluding: the rule fires and
  // names the remedy in its cause.
  obs::RunRecord dropped = make_record("gate", "a", 10.0);
  dropped.metrics["interleaving_conclusive_fraction"] = 2.0 / 3.0;
  dropped.metrics["schedules_explored"] = 6000.0;
  const std::vector<obs::DriftFinding> findings = obs::detect_drift(baseline, dropped);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, "interleaving-conclusive-drop");
  EXPECT_EQ(findings[0].subject, "interleaving_conclusive_fraction");
  EXPECT_DOUBLE_EQ(findings[0].baseline, 1.0);
  EXPECT_TRUE(findings[0].fails_gate);
  EXPECT_NE(findings[0].cause.find("--max-schedules"), std::string::npos);

  // Within tolerance stays quiet; so does a thread-free run that never
  // writes the metric at all (no false positives from absence).
  obs::RunRecord near_baseline = make_record("gate", "a", 10.0);
  near_baseline.metrics["interleaving_conclusive_fraction"] = 0.97;
  EXPECT_TRUE(obs::detect_drift(baseline, near_baseline).empty());
  EXPECT_TRUE(obs::detect_drift(baseline, make_record("gate", "a", 10.0)).empty());
}

TEST(DetectDrift, VerdictFlipOnUnchangedFingerprintsIsAFlake) {
  obs::RunRecord before = make_record("gate", "a", 10.0);
  obs::ContractOutcome outcome;
  outcome.verdict = "passed";
  outcome.signature_digest = "sig-before";
  outcome.slice_fp = "slice-1";
  before.contracts["case#0"] = outcome;

  obs::RunRecord current = before;
  current.contracts["case#0"].verdict = "violated";
  current.contracts["case#0"].signature_digest = "sig-after";

  const std::vector<const obs::RunRecord*> baseline = {&before};
  const std::vector<obs::DriftFinding> findings = obs::detect_drift(baseline, current);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, "verdict-flip");
  EXPECT_EQ(findings[0].subject, "case#0");
  EXPECT_NE(findings[0].cause.find("passed -> violated"), std::string::npos);
  EXPECT_NE(findings[0].cause.find("flaky"), std::string::npos);

  // Same signature change with a MOVED slice fingerprint: the verdict cone
  // changed, so the flip is explained — not a flake.
  obs::RunRecord moved = current;
  moved.contracts["case#0"].slice_fp = "slice-2";
  EXPECT_TRUE(obs::detect_drift(baseline, moved).empty());

  // Different input fingerprints: the code changed — flips are expected.
  obs::RunRecord edited = current;
  edited.input_fingerprint = "fp-other";
  EXPECT_TRUE(obs::detect_drift(baseline, edited).empty());
}

TEST(DetectDrift, WarnOnlyModeReportsWithoutFailingTheGate) {
  std::vector<obs::RunRecord> baseline_storage;
  for (int i = 0; i < 3; ++i) baseline_storage.push_back(make_record("gate", "a", 10.0));
  std::vector<const obs::RunRecord*> baseline;
  for (const obs::RunRecord& record : baseline_storage) baseline.push_back(&record);
  obs::DriftOptions options;
  options.fail_gate = false;
  const std::vector<obs::DriftFinding> findings =
      obs::detect_drift(baseline, make_record("gate", "a", 500.0), options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].fails_gate);
}

TEST(DetectDrift, WindowLimitsTheBaselineNotTheFlakeRule) {
  // Six baseline runs at 10 ms, then five at 100 ms. With window=5 the
  // median is 100 ms, so a 120 ms run is NOT a regression — the window
  // tracks the new normal.
  std::vector<obs::RunRecord> baseline_storage;
  for (int i = 0; i < 6; ++i) baseline_storage.push_back(make_record("gate", "a", 10.0));
  for (int i = 0; i < 5; ++i) baseline_storage.push_back(make_record("gate", "a", 100.0));
  std::vector<const obs::RunRecord*> baseline;
  for (const obs::RunRecord& record : baseline_storage) baseline.push_back(&record);
  EXPECT_TRUE(obs::detect_drift(baseline, make_record("gate", "a", 120.0)).empty());
  // Against the old 10 ms world the same run WOULD regress (sanity).
  baseline.resize(6);
  EXPECT_EQ(obs::detect_drift(baseline, make_record("gate", "a", 120.0)).size(), 1u);
}

// --- run diffs --------------------------------------------------------------

TEST(DiffRuns, ReportsFlipsAndMetricDeltasDeterministically) {
  obs::RunRecord a = make_record("gate", "a", 10.0);
  obs::ContractOutcome outcome;
  outcome.verdict = "violated";
  outcome.passed = false;
  outcome.signature_digest = "sig-a";
  a.contracts["case#0"] = outcome;
  outcome.verdict = "passed";
  outcome.passed = true;
  outcome.signature_digest = "sig-same";
  a.contracts["case#1"] = outcome;

  obs::RunRecord b = a;
  b.contracts["case#0"].verdict = "passed";
  b.contracts["case#0"].passed = true;
  b.contracts["case#0"].signature_digest = "sig-b";
  b.metrics["evaluation_ms"] = 14.0;

  const obs::DiffReport report = obs::diff_runs(a, b);
  EXPECT_EQ(report.verdict_flips(), 1);
  ASSERT_EQ(report.contracts.size(), 1u);
  EXPECT_EQ(report.contracts[0].contract_id, "case#0");
  EXPECT_EQ(report.contracts[0].before, "violated");
  EXPECT_EQ(report.contracts[0].after, "passed");
  EXPECT_TRUE(report.contracts[0].flipped);
  EXPECT_EQ(report.contracts_unchanged, 1);
  ASSERT_EQ(report.metrics.size(), 1u);
  EXPECT_EQ(report.metrics[0].name, "evaluation_ms");
  EXPECT_DOUBLE_EQ(report.metrics[0].delta(), 4.0);

  // Text and JSON renderings are byte-stable across invocations.
  EXPECT_EQ(obs::render_diff_text(report), obs::render_diff_text(obs::diff_runs(a, b)));
  EXPECT_EQ(report.to_json().dump(), obs::diff_runs(a, b).to_json().dump());
  EXPECT_NE(obs::render_diff_text(report).find("[FLIP] case#0"), std::string::npos);
}

TEST(DiffRuns, IdenticalRunsSayIdentical) {
  const obs::RunRecord a = make_record("gate", "a", 10.0);
  const obs::DiffReport report = obs::diff_runs(a, a);
  EXPECT_TRUE(report.identical());
  EXPECT_EQ(report.verdict_flips(), 0);
}

// --- ledger diffs -----------------------------------------------------------

TEST(DiffLedgers, BuggyToPatchedShowsExactlyOneFlipWithEvidence) {
  const corpus::FailureTicket& ticket = ticket_or_die("hdfs-pending-race");
  const core::Pipeline pipeline;
  obs::ProvenanceLedger before, after;
  core::PipelineRunOptions run_options;
  run_options.ledger = &before;
  (void)pipeline.run(ticket, ticket.buggy_source, run_options);
  run_options.ledger = &after;
  (void)pipeline.run(ticket, ticket.patched_source, run_options);

  const obs::DiffReport report = obs::diff_ledgers(before, after);
  EXPECT_EQ(report.verdict_flips(), 1);
  ASSERT_FALSE(report.contracts.empty());
  const obs::ContractDelta& delta = report.contracts[0];
  EXPECT_EQ(delta.before, "violated");
  EXPECT_EQ(delta.after, "passed");
  EXPECT_FALSE(delta.notes.empty());  // the flip carries evidence deltas

  // Determinism: the same two ledgers diff to identical bytes, text and HTML.
  const obs::DiffReport again = obs::diff_ledgers(before, after);
  EXPECT_EQ(obs::render_diff_text(report), obs::render_diff_text(again));
  EXPECT_EQ(obs::render_diff_html(report), obs::render_diff_html(again));
  EXPECT_EQ(report.to_json().dump(), again.to_json().dump());

  // Self-diff is clean: no flips, no deltas.
  EXPECT_TRUE(obs::diff_ledgers(before, before).identical());
}

// --- gate integration -------------------------------------------------------

core::ContractStore store_for(const corpus::FailureTicket& ticket) {
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
  core::TranslationResult translation = core::translate(proposal, ticket.system);
  core::ContractStore store;
  store.add_all(std::move(translation.contracts));
  return store;
}

TEST(GateHistory, AppendsOneFingerprintedRecordPerRun) {
  const corpus::FailureTicket& ticket = ticket_or_die("hdfs-pending-race");
  const core::ContractStore store = store_for(ticket);
  core::CheckOptions options;
  options.run_concolic = false;
  const std::string path = temp_path("gate_append.jsonl");
  core::GateRunOptions run_options;
  run_options.history_path = path;
  for (int i = 0; i < 2; ++i) {
    const core::GateDecision decision =
        core::CiGate(options).evaluate(ticket.patched_source, store, run_options);
    EXPECT_TRUE(decision.allowed);
    EXPECT_EQ(decision.baseline_runs, i);  // first run sees an empty baseline
    EXPECT_TRUE(decision.drift_findings.empty());
  }
  obs::RunHistory history(path);
  ASSERT_TRUE(history.load());
  ASSERT_EQ(history.records().size(), 2u);
  const obs::RunRecord& record = history.records()[0];
  EXPECT_EQ(record.kind, "gate");
  EXPECT_FALSE(record.label.empty());
  EXPECT_FALSE(record.input_fingerprint.empty());
  EXPECT_FALSE(record.contracts.empty());
  EXPECT_GT(record.metrics.at("evaluation_ms"), 0.0);
  // Identical runs produce identical verdict signatures and fingerprints —
  // the property the flake rule relies on.
  const obs::RunRecord& second = history.records()[1];
  EXPECT_EQ(record.input_fingerprint, second.input_fingerprint);
  ASSERT_EQ(record.contracts.size(), second.contracts.size());
  for (const auto& [id, outcome] : record.contracts) {
    ASSERT_TRUE(second.contracts.count(id)) << id;
    EXPECT_EQ(outcome.signature_digest, second.contracts.at(id).signature_digest) << id;
    EXPECT_EQ(outcome.slice_fp, second.contracts.at(id).slice_fp) << id;
  }
  std::remove(path.c_str());
}

TEST(GateHistory, RegressedRunFailsTheGateWithNarratedCause) {
  const corpus::FailureTicket& ticket = ticket_or_die("hdfs-pending-race");
  const core::ContractStore store = store_for(ticket);
  core::CheckOptions options;
  options.run_concolic = false;
  const std::string path = temp_path("gate_drift.jsonl");
  core::GateRunOptions run_options;
  run_options.history_path = path;

  // Seed one real record, then clone it into a baseline whose latency no
  // real run can match — the next run must regress deterministically.
  const core::GateDecision seed =
      core::CiGate(options).evaluate(ticket.patched_source, store, run_options);
  ASSERT_TRUE(seed.allowed);
  obs::RunHistory history(path);
  ASSERT_TRUE(history.load());
  ASSERT_EQ(history.records().size(), 1u);
  obs::RunRecord fast = history.records()[0];
  fast.metrics["evaluation_ms"] = 1e-9;
  ASSERT_TRUE(history.append(fast));
  ASSERT_TRUE(history.append(fast));

  run_options.drift.min_latency_ms = 0.0;  // floor off: any real run exceeds 1e-9
  run_options.drift.window = 2;            // median over the two cloned records
  const core::GateDecision decision =
      core::CiGate(options).evaluate(ticket.patched_source, store, run_options);
  EXPECT_FALSE(decision.allowed);
  EXPECT_EQ(decision.baseline_runs, 3);
  ASSERT_FALSE(decision.drift_findings.empty());
  EXPECT_EQ(decision.drift_findings[0].kind, "latency-regression");
  EXPECT_TRUE(decision.drift_findings[0].fails_gate);
  bool narrated = false;
  for (const std::string& violation : decision.violations)
    if (violation.find("drift [latency-regression]") != std::string::npos) narrated = true;
  EXPECT_TRUE(narrated) << "blocked without a narrated drift cause";
  // The red run is recorded too — history keeps the incident.
  obs::RunHistory after(path);
  ASSERT_TRUE(after.load());
  EXPECT_EQ(after.records().size(), 4u);

  // Warn-only mode: same drift, gate stays green, finding still surfaces.
  run_options.drift.fail_gate = false;
  const core::GateDecision warned =
      core::CiGate(options).evaluate(ticket.patched_source, store, run_options);
  EXPECT_TRUE(warned.allowed);
  ASSERT_FALSE(warned.drift_findings.empty());
  EXPECT_FALSE(warned.drift_findings[0].fails_gate);
  EXPECT_TRUE(warned.needs_attention);
  std::remove(path.c_str());
}

TEST(GateHistory, DisabledHistoryIsByteIdentical) {
  const corpus::FailureTicket& ticket = ticket_or_die("zk-2201-sync-serialize");
  const core::ContractStore store = store_for(ticket);
  core::CheckOptions options;
  options.run_concolic = false;
  // No history path: the decision JSON must carry no longitudinal fields
  // and two runs must serialize identically once the (inherently noisy)
  // wall-clock timings are normalized — the null-handle discipline.
  core::GateDecision a = core::CiGate(options).evaluate(ticket.buggy_source, store);
  core::GateDecision b = core::CiGate(options).evaluate(ticket.buggy_source, store);
  EXPECT_EQ(a.baseline_runs, -1);
  a.evaluation_ms = b.evaluation_ms = 0.0;
  a.summary_ms = b.summary_ms = 0.0;
  for (core::GateDecision* decision : {&a, &b})
    for (core::ContractCheckReport& report : decision->reports) {
      report.screen_ms = 0.0;
      report.summary_ms = 0.0;
    }
  const std::string json = a.to_json().dump();
  EXPECT_EQ(json, b.to_json().dump());
  EXPECT_EQ(json.find("baseline_runs"), std::string::npos);
  EXPECT_EQ(json.find("drift_findings"), std::string::npos);
}

TEST(PipelineHistory, ChecksAppendRecordsKeyedByCaseId) {
  const corpus::FailureTicket& ticket = ticket_or_die("hdfs-pending-race");
  const std::string path = temp_path("pipeline.jsonl");
  const core::Pipeline pipeline;
  core::PipelineRunOptions run_options;
  run_options.history_path = path;
  const core::PipelineResult result =
      pipeline.run(ticket, ticket.patched_source, run_options);
  EXPECT_TRUE(result.all_passed());
  obs::RunHistory history(path);
  ASSERT_TRUE(history.load());
  ASSERT_EQ(history.records().size(), 1u);
  const obs::RunRecord& record = history.records()[0];
  EXPECT_EQ(record.kind, "check");
  EXPECT_EQ(record.label, ticket.case_id);
  EXPECT_FALSE(record.input_fingerprint.empty());
  EXPECT_GT(record.metrics.at("total_ms"), 0.0);
  EXPECT_EQ(record.metrics.at("violations"), 0.0);
  ASSERT_FALSE(record.contracts.empty());
  for (const auto& [id, outcome] : record.contracts) {
    EXPECT_EQ(outcome.verdict, "passed") << id;
    EXPECT_FALSE(outcome.signature_digest.empty()) << id;
  }
  std::remove(path.c_str());
}

}  // namespace
