#include "analysis/rename.hpp"

#include "support/strings.hpp"

namespace lisa::analysis {

std::string canonical_var(const std::string& var, const FrameMap& map) {
  // Opaque guards produced by the bridge are frame-local; qualify wholesale.
  if (support::starts_with(var, "opaque:")) return map.frame + "::" + var;
  // Root = segment before the first '.' or '#'.
  const std::size_t cut = var.find_first_of(".#");
  const std::string root = cut == std::string::npos ? var : var.substr(0, cut);
  const std::string rest = cut == std::string::npos ? "" : var.substr(cut);
  const auto it = map.roots.find(root);
  if (it == map.roots.end()) return map.frame + "::" + var;
  if (it->second == kOpaqueRoot) return kOpaqueRoot;
  return it->second + rest;
}

namespace {

smt::Atom rename_atom(const smt::Atom& atom,
                      const std::function<std::string(const std::string&)>& rename) {
  smt::Atom out = atom;
  std::string lhs = rename(atom.lhs);
  if (lhs == kOpaqueRoot) {
    // Collapse to an opaque boolean variable: the constraint's subject cannot
    // be expressed in canonical terms, so it constrains nothing checkable.
    return smt::Atom::bool_var("opaque:" + atom.key());
  }
  out.lhs = std::move(lhs);
  if (atom.kind == smt::Atom::Kind::kCmpVar) {
    std::string rhs = rename(atom.rhs_var);
    if (rhs == kOpaqueRoot) return smt::Atom::bool_var("opaque:" + atom.key());
    out.rhs_var = std::move(rhs);
  }
  return out;
}

}  // namespace

smt::FormulaPtr rename_formula(const smt::FormulaPtr& f,
                               const std::function<std::string(const std::string&)>& rename) {
  using smt::Formula;
  switch (f->kind) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return f;
    case Formula::Kind::kAtom:
      return Formula::make_atom(rename_atom(f->atom, rename));
    case Formula::Kind::kNot:
      return Formula::negate(rename_formula(f->children[0], rename));
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<smt::FormulaPtr> children;
      children.reserve(f->children.size());
      for (const smt::FormulaPtr& child : f->children)
        children.push_back(rename_formula(child, rename));
      return f->kind == Formula::Kind::kAnd ? Formula::conj(std::move(children))
                                            : Formula::disj(std::move(children));
    }
  }
  return f;
}

smt::FormulaPtr rename_formula(const smt::FormulaPtr& f, const FrameMap& map) {
  return rename_formula(f, [&](const std::string& var) { return canonical_var(var, map); });
}

bool has_opaque_root(const smt::FormulaPtr& f, const FrameMap& map) {
  for (const std::string& var : f->variables())
    if (canonical_var(var, map) == kOpaqueRoot) return true;
  return false;
}

}  // namespace lisa::analysis
