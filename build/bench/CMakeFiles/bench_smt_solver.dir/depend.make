# Empty dependencies file for bench_smt_solver.
# This may be replaced when dependencies are built.
