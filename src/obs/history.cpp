#include "obs/history.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/jsonl.hpp"

namespace lisa::obs {

using support::Json;
using support::JsonArray;
using support::JsonObject;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

Json RunRecord::to_json() const {
  JsonObject root;
  root["kind"] = kind;
  root["label"] = label;
  root["input_fingerprint"] = input_fingerprint;
  if (!smt_digest.empty()) root["smt_digest"] = smt_digest;
  JsonObject contract_entries;
  for (const auto& [id, outcome] : contracts) {
    JsonObject entry;
    entry["verdict"] = outcome.verdict;
    entry["passed"] = outcome.passed;
    entry["conclusive"] = outcome.conclusive;
    entry["signature_digest"] = outcome.signature_digest;
    if (!outcome.slice_fp.empty()) entry["slice_fp"] = outcome.slice_fp;
    if (outcome.smt_queries > 0) entry["smt_queries"] = outcome.smt_queries;
    contract_entries[id] = Json(std::move(entry));
  }
  root["contracts"] = Json(std::move(contract_entries));
  JsonObject metric_entries;
  for (const auto& [name, value] : metrics) metric_entries[name] = value;
  root["metrics"] = Json(std::move(metric_entries));
  if (!meta.empty()) {
    JsonObject meta_entries;
    for (const auto& [name, value] : meta) meta_entries[name] = value;
    root["meta"] = Json(std::move(meta_entries));
  }
  return Json(std::move(root));
}

RunRecord RunRecord::from_json(const Json& json) {
  RunRecord record;
  if (!json.is_object()) return record;
  record.kind = json.get_string("kind");
  record.label = json.get_string("label");
  record.input_fingerprint = json.get_string("input_fingerprint");
  record.smt_digest = json.get_string("smt_digest");
  if (json.has("contracts") && json.at("contracts").is_object()) {
    for (const auto& [id, entry] : json.at("contracts").as_object()) {
      if (!entry.is_object()) continue;
      ContractOutcome outcome;
      outcome.verdict = entry.get_string("verdict");
      outcome.passed = entry.has("passed") && entry.at("passed").is_bool() &&
                       entry.at("passed").as_bool();
      outcome.conclusive = entry.has("conclusive") && entry.at("conclusive").is_bool() &&
                           entry.at("conclusive").as_bool();
      outcome.signature_digest = entry.get_string("signature_digest");
      outcome.slice_fp = entry.get_string("slice_fp");
      outcome.smt_queries = entry.get_int("smt_queries");
      record.contracts[id] = std::move(outcome);
    }
  }
  if (json.has("metrics") && json.at("metrics").is_object())
    for (const auto& [name, value] : json.at("metrics").as_object())
      if (value.is_number()) record.metrics[name] = value.as_double();
  if (json.has("meta") && json.at("meta").is_object())
    for (const auto& [name, value] : json.at("meta").as_object())
      if (value.is_string()) record.meta[name] = value.as_string();
  return record;
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

bool RunHistory::load() {
  records_.clear();
  std::ifstream in(path_);
  if (!in) return false;  // absent file: fresh history, first append creates it
  std::string line;
  if (!std::getline(in, line)) return false;
  if (!support::jsonl_header_matches(line, kHistoryKind, kHistoryVersion, "")) return false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      RunRecord record = RunRecord::from_json(Json::parse(line));
      if (record.kind.empty()) continue;
      records_.push_back(std::move(record));
    } catch (const std::exception&) {
      // Torn tail from a crash mid-append: keep everything before it.
    }
  }
  return true;
}

bool RunHistory::append(const RunRecord& record) {
  if (path_.empty()) return false;
  bool need_header = false;
  {
    std::ifstream probe(path_);
    need_header = !probe || probe.peek() == std::ifstream::traits_type::eof();
  }
  std::ofstream out(path_, std::ios::app);
  if (!out) return false;
  if (need_header)
    out << support::jsonl_header(kHistoryKind, kHistoryVersion, "") << "\n";
  out << record.to_json().dump() << "\n";
  out.flush();
  if (!out.good()) return false;
  records_.push_back(record);
  return true;
}

std::vector<const RunRecord*> RunHistory::matching(const std::string& kind,
                                                   const std::string& label) const {
  std::vector<const RunRecord*> out;
  for (const RunRecord& record : records_) {
    if (!kind.empty() && record.kind != kind) continue;
    if (!label.empty() && record.label != label) continue;
    out.push_back(&record);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Drift detection
// ---------------------------------------------------------------------------

Json DriftFinding::to_json() const {
  JsonObject root;
  root["kind"] = kind;
  root["subject"] = subject;
  root["cause"] = cause;
  root["baseline"] = baseline;
  root["observed"] = observed;
  root["fails_gate"] = fails_gate;
  return Json(std::move(root));
}

double drift_median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  // Lower middle on even sizes: the conservative baseline for "observed
  // exceeds factor × median" style thresholds.
  const std::size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

namespace {

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f", value);
  return buffer;
}

/// Baseline values of one metric over the window, oldest first.
std::vector<double> metric_series(const std::vector<const RunRecord*>& window,
                                  const std::string& name) {
  std::vector<double> values;
  for (const RunRecord* record : window) {
    const auto it = record->metrics.find(name);
    if (it != record->metrics.end()) values.push_back(it->second);
  }
  return values;
}

}  // namespace

std::vector<DriftFinding> detect_drift(const std::vector<const RunRecord*>& baseline,
                                       const RunRecord& current,
                                       const DriftOptions& options) {
  std::vector<DriftFinding> findings;
  if (baseline.empty()) return findings;  // the first run IS the baseline
  const std::size_t window_size =
      std::min(baseline.size(), static_cast<std::size_t>(std::max(options.window, 1)));
  const std::vector<const RunRecord*> window(baseline.end() - static_cast<std::ptrdiff_t>(window_size),
                                             baseline.end());

  // Rule 1: verdict flips on unchanged fingerprints. Compare against the most
  // recent baseline record checking the SAME inputs — if the source and the
  // contract's verdict cone are unchanged yet the verdict signature differs,
  // the gate is nondeterministic about that contract: a flake.
  const RunRecord* same_inputs = nullptr;
  for (const RunRecord* record : baseline)  // full history, not just the window
    if (record->input_fingerprint == current.input_fingerprint &&
        !record->input_fingerprint.empty())
      same_inputs = record;  // keep the most recent
  if (same_inputs != nullptr) {
    for (const auto& [id, outcome] : current.contracts) {
      const auto it = same_inputs->contracts.find(id);
      if (it == same_inputs->contracts.end()) continue;
      const ContractOutcome& before = it->second;
      if (before.slice_fp != outcome.slice_fp) continue;  // cone changed: not a flake
      if (before.signature_digest == outcome.signature_digest) continue;
      if (before.signature_digest.empty() || outcome.signature_digest.empty()) continue;
      DriftFinding finding;
      finding.kind = "verdict-flip";
      finding.subject = id;
      finding.cause = "contract " + id + " was decided differently on unchanged inputs (" +
                      before.verdict + " -> " + outcome.verdict +
                      ", input fingerprint " + current.input_fingerprint +
                      ", slice fingerprint unchanged): the gate is flaky on this "
                      "contract — its verdict cannot be trusted until the "
                      "nondeterminism is found";
      finding.fails_gate = options.fail_gate;
      findings.push_back(std::move(finding));
    }
  }

  // Rule 2: settled-fraction drop — the static screener is settling fewer
  // contracts than it used to, so more work silently falls through to the
  // expensive phases.
  {
    const std::vector<double> series = metric_series(window, "settled_fraction");
    const auto it = current.metrics.find("settled_fraction");
    if (!series.empty() && it != current.metrics.end()) {
      const double median = drift_median(series);
      if (it->second < median - options.settled_drop) {
        DriftFinding finding;
        finding.kind = "settled-drop";
        finding.subject = "settled_fraction";
        finding.baseline = median;
        finding.observed = it->second;
        finding.cause = "settled fraction dropped to " + format_value(it->second) +
                        " from a baseline median of " + format_value(median) +
                        " (last " + std::to_string(window_size) +
                        " run(s)): the static screener settles fewer contracts than "
                        "it used to, so more contracts fall through to the slow path";
        finding.fails_gate = options.fail_gate;
        findings.push_back(std::move(finding));
      }
    }
  }

  // Rule 2b: interleaving-conclusive drop — schedule exploration is draining
  // fewer atomicity/liveness contracts within its bound than it used to.
  // Each inconclusive exploration is already a typed per-run failure; this
  // rule catches the longitudinal version, where the schedule workload grows
  // until the bound quietly stops being enough.
  {
    const std::vector<double> series =
        metric_series(window, "interleaving_conclusive_fraction");
    const auto it = current.metrics.find("interleaving_conclusive_fraction");
    if (!series.empty() && it != current.metrics.end()) {
      const double median = drift_median(series);
      if (it->second < median - options.conclusive_drop) {
        DriftFinding finding;
        finding.kind = "interleaving-conclusive-drop";
        finding.subject = "interleaving_conclusive_fraction";
        finding.baseline = median;
        finding.observed = it->second;
        finding.cause =
            "interleaving-conclusive fraction dropped to " + format_value(it->second) +
            " from a baseline median of " + format_value(median) + " (last " +
            std::to_string(window_size) +
            " run(s)): schedule exploration no longer drains the interleaving "
            "space of every atomicity/liveness contract — raise --max-schedules "
            "or shrink the spawning tests";
        finding.fails_gate = options.fail_gate;
        findings.push_back(std::move(finding));
      }
    }
  }

  // Rule 3: latency regressions on every watched *_ms metric present on both
  // sides. Factor × median AND an absolute floor: a 0.2 ms stage tripling to
  // 0.6 ms is noise, a 200 ms stage tripling is an incident.
  for (const auto& [name, observed] : current.metrics) {
    if (name.size() < 3 || name.compare(name.size() - 3, 3, "_ms") != 0) continue;
    const std::vector<double> series = metric_series(window, name);
    if (series.empty()) continue;
    const double median = drift_median(series);
    if (observed > median * options.latency_factor &&
        observed - median > options.min_latency_ms) {
      DriftFinding finding;
      finding.kind = "latency-regression";
      finding.subject = name;
      finding.baseline = median;
      finding.observed = observed;
      finding.cause = name + " regressed to " + format_value(observed) +
                      " ms from a baseline median of " + format_value(median) +
                      " ms (last " + std::to_string(window_size) + " run(s), threshold " +
                      format_value(options.latency_factor) +
                      "x): the gate got slower — find the new cost before it "
                      "normalizes";
      finding.fails_gate = options.fail_gate;
      findings.push_back(std::move(finding));
    }
  }

  // Rule 4: SMT query count regression — the solver is being asked more
  // questions for the same decision, usually a pruning or screening rot.
  {
    const std::vector<double> series = metric_series(window, "smt_queries");
    const auto it = current.metrics.find("smt_queries");
    if (!series.empty() && it != current.metrics.end()) {
      const double median = drift_median(series);
      if (it->second > median * options.smt_factor &&
          it->second - median >= options.min_smt_queries) {
        DriftFinding finding;
        finding.kind = "smt-regression";
        finding.subject = "smt_queries";
        finding.baseline = median;
        finding.observed = it->second;
        finding.cause = "SMT query count regressed to " + format_value(it->second) +
                        " from a baseline median of " + format_value(median) +
                        " (last " + std::to_string(window_size) +
                        " run(s)): the solver answers more queries for the same "
                        "verdicts — screening or pruning lost ground";
        finding.fails_gate = options.fail_gate;
        findings.push_back(std::move(finding));
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const DriftFinding& a, const DriftFinding& b) {
              return a.kind != b.kind ? a.kind < b.kind : a.subject < b.subject;
            });
  return findings;
}

}  // namespace lisa::obs
