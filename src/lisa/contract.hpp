// Semantic contracts — the machine-checkable form of low-level semantics.
//
// §3.1: "A low-level semantic includes two components. The first component is
// a concise description in natural language. The second component is a
// safety contract <P> s <Q>, where s is the target statement ... and σ
// denotes the program state. Concretely, we restrict P, Q to conjunctions of
// implementation-local predicates." For the ZooKeeper bug the recovered rule
// is <session.isClosing == false> createEphemeralNode <>.
//
// The translator turns LLM proposals (free-text condition/target statements)
// into contracts with solver formulas, applying the paper's normalization:
// parse the condition into the checkable fragment, reject out-of-fragment
// proposals, and keep the target as a canonical-text fragment matched against
// statement headers.
#pragma once

#include <string>
#include <vector>

#include "corpus/ticket.hpp"
#include "inference/proposal.hpp"
#include "smt/formula.hpp"
#include "support/json.hpp"

namespace lisa::core {

struct SemanticContract {
  std::string id;       // "<case_id>#<index>"
  std::string case_id;
  std::string system;
  corpus::SemanticsKind kind = corpus::SemanticsKind::kStatePredicate;
  std::string description;
  std::string high_level;
  /// Canonical-text fragment locating target statements, e.g.
  /// "create_ephemeral_node(".
  std::string target_fragment;
  /// Precondition text in target-frame local names.
  std::string condition_text;
  /// Parsed precondition (null for structural contracts).
  smt::FormulaPtr condition;
  /// Structural pattern id ("no_blocking_in_sync") for structural contracts.
  std::string pattern;

  [[nodiscard]] support::Json to_json() const;
  [[nodiscard]] static SemanticContract from_json(const support::Json& json);
};

struct TranslationResult {
  std::vector<SemanticContract> contracts;
  /// Low-level semantics whose condition fell outside the checkable fragment
  /// (surfaced to developers, per the paper's open questions).
  std::vector<std::string> rejected;
};

/// Translates a proposal into contracts. `system` labels provenance.
[[nodiscard]] TranslationResult translate(const inference::SemanticsProposal& proposal,
                                          const std::string& system);

}  // namespace lisa::core
