file(REMOVE_RECURSE
  "CMakeFiles/lisa_core.dir/authoring.cpp.o"
  "CMakeFiles/lisa_core.dir/authoring.cpp.o.d"
  "CMakeFiles/lisa_core.dir/checker.cpp.o"
  "CMakeFiles/lisa_core.dir/checker.cpp.o.d"
  "CMakeFiles/lisa_core.dir/ci_gate.cpp.o"
  "CMakeFiles/lisa_core.dir/ci_gate.cpp.o.d"
  "CMakeFiles/lisa_core.dir/composition.cpp.o"
  "CMakeFiles/lisa_core.dir/composition.cpp.o.d"
  "CMakeFiles/lisa_core.dir/contract.cpp.o"
  "CMakeFiles/lisa_core.dir/contract.cpp.o.d"
  "CMakeFiles/lisa_core.dir/pipeline.cpp.o"
  "CMakeFiles/lisa_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/lisa_core.dir/report.cpp.o"
  "CMakeFiles/lisa_core.dir/report.cpp.o.d"
  "liblisa_core.a"
  "liblisa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
