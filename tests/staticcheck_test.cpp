// Unit tests for src/staticcheck: CFG construction, the dataflow lattices,
// the lint driver, and the contract screener — including the regression
// property that screener verdicts always agree with the full checker.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"
#include "corpus/ticket.hpp"
#include "inference/mock_llm.hpp"
#include "lisa/checker.hpp"
#include "lisa/contract.hpp"
#include "minilang/sema.hpp"
#include "smt/minilang_bridge.hpp"
#include "smt/solver.hpp"
#include "staticcheck/analyses.hpp"
#include "staticcheck/cfg.hpp"
#include "staticcheck/concurrency.hpp"
#include "staticcheck/dataflow.hpp"
#include "staticcheck/screener.hpp"
#include "staticcheck/summaries.hpp"

namespace lisa::staticcheck {
namespace {

using minilang::Program;
using minilang::Stmt;

int count_kind(const Cfg& cfg, CfgNode::Kind kind) {
  int n = 0;
  for (const CfgNode& node : cfg.nodes())
    if (node.kind == kind) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// CFG construction
// ---------------------------------------------------------------------------

TEST(Cfg, LinearFunctionChainsEntryToExit) {
  const Program program = minilang::parse_checked(R"(
@entry
fn f(n: int) {
  let x = n;
  print(x);
}
)");
  const Cfg cfg = Cfg::build(program.functions[0]);
  EXPECT_EQ(count_kind(cfg, CfgNode::Kind::kEntry), 1);
  EXPECT_EQ(count_kind(cfg, CfgNode::Kind::kExit), 1);
  EXPECT_EQ(count_kind(cfg, CfgNode::Kind::kStmt), 2);
  // entry is first in RPO; every statement node is reachable.
  const std::vector<int> rpo = cfg.reverse_post_order();
  ASSERT_FALSE(rpo.empty());
  EXPECT_EQ(rpo.front(), cfg.entry());
  // node_of resolves each top-level statement.
  for (const minilang::StmtPtr& stmt : program.functions[0].body)
    EXPECT_GE(cfg.node_of(stmt.get()), 0);
}

TEST(Cfg, IfProducesGuardedEdgesAndJoin) {
  const Program program = minilang::parse_checked(R"(
@entry
fn f(n: int) {
  if (n > 0) {
    print(1);
  } else {
    print(2);
  }
  print(3);
}
)");
  const Cfg cfg = Cfg::build(program.functions[0]);
  const int cond = cfg.node_of(program.functions[0].body[0].get());
  ASSERT_GE(cond, 0);
  const CfgNode& branch = cfg.node(cond);
  EXPECT_EQ(branch.kind, CfgNode::Kind::kBranch);
  EXPECT_FALSE(branch.loop_head);
  // One taken and one not-taken edge, both guarded by the condition.
  std::set<bool> polarities;
  for (const CfgEdge& edge : branch.succs) {
    ASSERT_NE(edge.guard, nullptr);
    EXPECT_FALSE(edge.suppress_refine);
    polarities.insert(edge.taken);
  }
  EXPECT_EQ(polarities, (std::set<bool>{false, true}));
}

TEST(Cfg, WhileLoopHeadAndSuppressedExitGuard) {
  const Program program = minilang::parse_checked(R"(
@entry
fn f(n: int) {
  let i = 0;
  while (i < n) {
    i = i + 1;
  }
  print(i);
}
)");
  const Cfg cfg = Cfg::build(program.functions[0]);
  const int head = cfg.node_of(program.functions[0].body[1].get());
  ASSERT_GE(head, 0);
  const CfgNode& loop = cfg.node(head);
  EXPECT_TRUE(loop.loop_head);
  bool saw_taken = false;
  bool saw_exit = false;
  for (const CfgEdge& edge : loop.succs) {
    if (edge.taken) {
      saw_taken = true;
      EXPECT_FALSE(edge.suppress_refine);
    } else {
      saw_exit = true;
      // Falling past a loop records no exit guard (mirrors analysis/paths).
      EXPECT_TRUE(edge.suppress_refine);
    }
  }
  EXPECT_TRUE(saw_taken);
  EXPECT_TRUE(saw_exit);
  // The back edge makes the loop head one of its own transitive predecessors.
  EXPECT_GE(loop.preds.size(), 2u);
}

TEST(Cfg, BreakExitsLoopAndContinueReturnsToHead) {
  const Program program = minilang::parse_checked(R"(
@entry
fn f(n: int) {
  let i = 0;
  while (i < n) {
    i = i + 1;
    if (i > 3) {
      break;
    }
    if (i > 1) {
      continue;
    }
    print(i);
  }
  print(i);
}
)");
  const Cfg cfg = Cfg::build(program.functions[0]);
  // Every node is wired somewhere sane: the graph has exactly one exit and
  // the final print is reachable (break edges land past the loop).
  const std::vector<int> rpo = cfg.reverse_post_order();
  std::set<int> reachable;
  // Depth-first from entry using succ edges only.
  std::vector<int> stack{cfg.entry()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (!reachable.insert(id).second) continue;
    for (const CfgEdge& edge : cfg.node(id).succs) stack.push_back(edge.to);
  }
  const int last_print = cfg.node_of(program.functions[0].body.back().get());
  ASSERT_GE(last_print, 0);
  EXPECT_TRUE(reachable.count(last_print) > 0);
  EXPECT_TRUE(reachable.count(cfg.exit()) > 0);
}

TEST(Cfg, SyncBlocksGetEnterAndExitNodes) {
  const Program program = minilang::parse_checked(R"(
struct Node { data: string; }
@entry
fn f(n: Node) {
  sync (n) {
    print(1);
  }
  print(2);
}
)");
  const Cfg cfg = Cfg::build(program.functions[0]);
  EXPECT_EQ(count_kind(cfg, CfgNode::Kind::kSyncEnter), 1);
  EXPECT_EQ(count_kind(cfg, CfgNode::Kind::kSyncExit), 1);
}

TEST(Cfg, ExceptionEdgeOutOfSyncRecordsUnwindCount) {
  const Program program = minilang::parse_checked(R"(
struct Node { data: string; }
@entry
fn f(n: Node) {
  try {
    sync (n) {
      print(1);
    }
  } catch (e) {
    print(2);
  }
}
)");
  const Cfg cfg = Cfg::build(program.functions[0]);
  // The statement inside the sync body may throw; its exception edge must
  // release exactly the one monitor acquired since the try was entered.
  bool saw_unwind = false;
  for (const CfgNode& node : cfg.nodes())
    for (const CfgEdge& edge : node.succs)
      if (edge.sync_unwind > 0) {
        saw_unwind = true;
        EXPECT_EQ(edge.sync_unwind, 1);
      }
  EXPECT_TRUE(saw_unwind);
}

TEST(Cfg, TopLevelThrowUnwindsAllMonitorsToExit) {
  const Program program = minilang::parse_checked(R"(
struct Node { data: string; }
@entry
fn f(n: Node) {
  sync (n) {
    throw "boom";
  }
}
)");
  const Cfg cfg = Cfg::build(program.functions[0]);
  bool saw = false;
  for (const CfgNode& node : cfg.nodes())
    for (const CfgEdge& edge : node.succs)
      if (edge.to == cfg.exit() && edge.sync_unwind == 1) saw = true;
  EXPECT_TRUE(saw);
}

// ---------------------------------------------------------------------------
// Dataflow engine + lattices
// ---------------------------------------------------------------------------

TEST(Dataflow, NullnessRefinesGuardsPerBranchArm) {
  const Program program = minilang::parse_checked(R"(
struct Session { ok: bool; }
@entry
fn f(s: Session?) {
  if (s == null) {
    print(1);
  } else {
    print(2);
  }
}
)");
  const minilang::FuncDecl& fn = program.functions[0];
  const Cfg cfg = Cfg::build(fn);
  NullnessAnalysis analysis(program);
  const DataflowResult<NullnessAnalysis> result = run_forward(cfg, analysis);
  const Stmt* then_stmt = fn.body[0]->body[0].get();
  const Stmt* else_stmt = fn.body[0]->else_body[0].get();
  const int then_node = cfg.node_of(then_stmt);
  const int else_node = cfg.node_of(else_stmt);
  ASSERT_GE(then_node, 0);
  ASSERT_GE(else_node, 0);
  const auto& then_state = result.in[static_cast<std::size_t>(then_node)];
  const auto& else_state = result.in[static_cast<std::size_t>(else_node)];
  ASSERT_TRUE(then_state.count("s") > 0);
  EXPECT_EQ(then_state.at("s"), NullFact::kNull);
  ASSERT_TRUE(else_state.count("s") > 0);
  EXPECT_EQ(else_state.at("s"), NullFact::kNonNull);
}

TEST(Dataflow, NullnessJoinKeepsOnlyAgreeingFacts) {
  NullnessAnalysis analysis(Program{});
  NullnessAnalysis::State a{{"p", NullFact::kNull}, {"q", NullFact::kNonNull}};
  const NullnessAnalysis::State b{{"p", NullFact::kNonNull}, {"q", NullFact::kNonNull}};
  EXPECT_TRUE(analysis.join(a, b));  // p dropped -> state changed
  EXPECT_EQ(a.count("p"), 0u);      // disagreement -> unknown
  ASSERT_EQ(a.count("q"), 1u);      // agreement survives
  EXPECT_EQ(a.at("q"), NullFact::kNonNull);
  EXPECT_FALSE(analysis.join(a, a));  // join is idempotent
}

TEST(Dataflow, DefiniteAssignmentWarnsOnUnassignedFieldRead) {
  const Program program = minilang::parse_checked(R"(
struct Pair { a: int; b: int; }
@entry
fn f() {
  let p = new Pair { a: 1 };
  print(p.b);
}
)");
  const std::vector<Diagnostic> diagnostics = lint_program(program);
  bool saw = false;
  for (const Diagnostic& diagnostic : diagnostics)
    if (diagnostic.analysis == "definite-assignment" &&
        diagnostic.message.find("'b'") != std::string::npos)
      saw = true;
  EXPECT_TRUE(saw);
}

TEST(Dataflow, DefiniteAssignmentCleanWhenAssignedOnAllPaths) {
  const Program program = minilang::parse_checked(R"(
struct Pair { a: int; b: int; }
@entry
fn f(n: int) {
  let p = new Pair { a: 1 };
  if (n > 0) {
    p.b = 2;
  } else {
    p.b = 3;
  }
  print(p.b);
}
)");
  for (const Diagnostic& diagnostic : lint_program(program))
    EXPECT_NE(diagnostic.analysis, "definite-assignment") << diagnostic.render();
}

TEST(Dataflow, LockStateFlagsBlockingCallUnderMonitor) {
  const Program program = minilang::parse_checked(R"(
struct Node { data: string; }
@entry
fn f(n: Node) {
  sync (n) {
    write_record(n, n.data);
  }
}
)");
  const std::vector<Diagnostic> diagnostics = lint_program(program);
  bool saw = false;
  for (const Diagnostic& diagnostic : diagnostics)
    if (diagnostic.analysis == "lock-state" && diagnostic.severity == Severity::kError)
      saw = true;
  EXPECT_TRUE(saw);
}

TEST(Dataflow, LockStateReleasesMonitorOnExceptionUnwind) {
  // The blocking call sits in the catch handler: the monitor acquired in
  // the try body was released during unwinding, so there is no violation.
  // The structural walk (analysis/patterns.cpp) cannot see this; the
  // path-sensitive lattice can.
  const Program program = minilang::parse_checked(R"(
struct Node { data: string; }
@entry
fn f(n: Node) {
  try {
    sync (n) {
      throw "boom";
    }
  } catch (e) {
    write_record(n, "recovered");
  }
}
)");
  for (const Diagnostic& diagnostic : lint_program(program))
    EXPECT_NE(diagnostic.analysis, "lock-state") << diagnostic.render();
}

TEST(Dataflow, IntervalConstantConditionIsReported) {
  const Program program = minilang::parse_checked(R"(
@entry
fn f(n: int) {
  let x = 1;
  if (x < 2) {
    print(1);
  }
}
)");
  const std::vector<Diagnostic> diagnostics = lint_program(program);
  bool saw = false;
  for (const Diagnostic& diagnostic : diagnostics)
    if (diagnostic.analysis == "intervals" &&
        diagnostic.message.find("always true") != std::string::npos)
      saw = true;
  EXPECT_TRUE(saw);
}

TEST(Dataflow, IntervalFixpointTerminatesOnLoops) {
  // An incrementing loop has an infinite ascending chain without widening;
  // the engine must still reach a fixpoint well under the visit cap.
  const Program program = minilang::parse_checked(R"(
@entry
fn f(n: int) {
  let i = 0;
  while (i < n) {
    i = i + 1;
  }
  print(i);
}
)");
  const Cfg cfg = Cfg::build(program.functions[0]);
  IntervalAnalysis analysis(program);
  const DataflowResult<IntervalAnalysis> result = run_forward(cfg, analysis);
  EXPECT_LT(result.iterations,
            static_cast<int>(cfg.nodes().size()) * kMaxVisitsPerNode);
  // No dead-branch diagnostic: the loop guard is genuinely two-sided.
  for (const Diagnostic& diagnostic : lint_program(program))
    EXPECT_NE(diagnostic.analysis, "intervals") << diagnostic.render();
}

TEST(Dataflow, IntervalRefinementClampsGuardedRanges) {
  const Program program = minilang::parse_checked(R"(
@entry
fn f(n: int) {
  if (n > 10) {
    if (n > 5) {
      print(1);
    }
  }
}
)");
  // Inside `n > 10`, the nested `n > 5` is decided: always true.
  bool saw = false;
  for (const Diagnostic& diagnostic : lint_program(program))
    if (diagnostic.analysis == "intervals" &&
        diagnostic.message.find("always true") != std::string::npos)
      saw = true;
  EXPECT_TRUE(saw);
}

// ---------------------------------------------------------------------------
// Screener
// ---------------------------------------------------------------------------

TEST(Screener, FactsAtExposeConstantsAsFormulas) {
  const Program program = minilang::parse_checked(R"(
@entry
fn f() {
  let x = 5;
  print(x);
}
)");
  const minilang::FuncDecl& fn = program.functions[0];
  const Screener screener(program);
  const smt::FormulaPtr facts = screener.facts_at(fn, fn.body[1].get());
  ASSERT_NE(facts, nullptr);
  smt::Solver solver;
  // x is exactly 5 at the print: facts ∧ (x < 5) is unsatisfiable...
  const auto lt = smt::parse_condition("x < 5");
  ASSERT_TRUE(lt.has_value());
  EXPECT_FALSE(solver.solve(smt::Formula::conj2(facts, *lt)).sat());
  // ...while facts ∧ (x > 4) is satisfiable.
  const auto gt = smt::parse_condition("x > 4");
  ASSERT_TRUE(gt.has_value());
  EXPECT_TRUE(solver.solve(smt::Formula::conj2(facts, *gt)).sat());
}

TEST(Screener, ProvesGuardedContractSafe) {
  const Program program = minilang::parse_checked(R"(
struct Session { ok: bool; }
fn do_commit(s: Session) {
  if (s.ok) {
    print(1);
  }
}
fn act(s: Session) {
  do_commit(s);
}
@entry
fn handler(s: Session) {
  if (s.ok) {
    act(s);
  }
}
)");
  const Screener screener(program);
  const auto condition = smt::parse_condition("s.ok");
  ASSERT_TRUE(condition.has_value());
  const ScreenResult result = screener.screen_state_predicate("do_commit(", *condition);
  EXPECT_EQ(result.verdict, ScreenVerdict::kProvedSafe);
  EXPECT_GT(result.paths_checked, 0u);
}

TEST(Screener, RefutesUnguardedContractWithWitness) {
  const Program program = minilang::parse_checked(R"(
struct Session { ok: bool; }
fn do_commit(s: Session) {
  if (s.ok) {
    print(1);
  }
}
fn act(s: Session) {
  do_commit(s);
}
@entry
fn handler(s: Session) {
  act(s);
}
)");
  const Screener screener(program);
  const auto condition = smt::parse_condition("s.ok");
  ASSERT_TRUE(condition.has_value());
  const ScreenResult result = screener.screen_state_predicate("do_commit(", *condition);
  EXPECT_EQ(result.verdict, ScreenVerdict::kProvedViolated);
  EXPECT_FALSE(result.witness.empty());
}

TEST(Screener, MissingTargetIsUnknown) {
  const Program program = minilang::parse_checked(R"(
@entry
fn f(n: int) {
  print(n);
}
)");
  const Screener screener(program);
  const auto condition = smt::parse_condition("n > 0");
  ASSERT_TRUE(condition.has_value());
  const ScreenResult result =
      screener.screen_state_predicate("no_such_call(", *condition);
  EXPECT_EQ(result.verdict, ScreenVerdict::kUnknown);
}

TEST(Screener, StructuralVerdictMatchesLockState) {
  const Program clean = minilang::parse_checked(R"(
struct Node { data: string; }
@entry
fn f(n: Node) {
  let d = "";
  sync (n) {
    d = n.data;
  }
  write_record(n, d);
}
)");
  EXPECT_EQ(Screener(clean).screen_structural().verdict, ScreenVerdict::kProvedSafe);

  const Program dirty = minilang::parse_checked(R"(
struct Node { data: string; }
@entry
fn f(n: Node) {
  sync (n) {
    write_record(n, n.data);
  }
}
)");
  const ScreenResult result = Screener(dirty).screen_structural();
  EXPECT_EQ(result.verdict, ScreenVerdict::kProvedViolated);
  ASSERT_FALSE(result.diagnostics.empty());
  EXPECT_FALSE(result.witness.empty());
}

TEST(Screener, ProvedSafeSkipsConcolicInChecker) {
  const Program program = minilang::parse_checked(R"(
struct Session { ok: bool; }
fn do_commit(s: Session) {
  if (s.ok) {
    print(1);
  }
}
fn act(s: Session) {
  do_commit(s);
}
@entry
fn handler(s: Session) {
  if (s.ok) {
    act(s);
  }
}
@test
fn test_handler() {
  let s = new Session { ok: true };
  handler(s);
}
)");
  core::SemanticContract contract;
  contract.id = "synthetic#0";
  contract.kind = corpus::SemanticsKind::kStatePredicate;
  contract.target_fragment = "do_commit(";
  contract.condition_text = "s.ok";
  contract.condition = *smt::parse_condition("s.ok");
  const core::Checker checker;
  core::CheckOptions options;  // static_screen defaults on
  const core::ContractCheckReport report = checker.check(program, contract, options);
  EXPECT_EQ(report.screen_verdict, "proved-safe");
  EXPECT_TRUE(report.screen_skipped_concolic);
  EXPECT_EQ(report.dynamic.tests_run, 0);
  EXPECT_TRUE(report.passed());

  // Screening off: the concolic replay runs and reaches the same verdict.
  core::CheckOptions no_screen = options;
  no_screen.static_screen = false;
  const core::ContractCheckReport full = checker.check(program, contract, no_screen);
  EXPECT_GT(full.dynamic.tests_run, 0);
  EXPECT_TRUE(full.passed());
  EXPECT_TRUE(full.screen_verdict.empty());
}

TEST(Screener, ForcedTestsAlwaysRunDespiteVerdict) {
  const Program program = minilang::parse_checked(R"(
struct Session { ok: bool; }
fn do_commit(s: Session) {
  if (s.ok) {
    print(1);
  }
}
fn act(s: Session) {
  do_commit(s);
}
@entry
fn handler(s: Session) {
  if (s.ok) {
    act(s);
  }
}
@test
fn test_handler() {
  let s = new Session { ok: true };
  handler(s);
}
)");
  core::SemanticContract contract;
  contract.id = "synthetic#0";
  contract.kind = corpus::SemanticsKind::kStatePredicate;
  contract.target_fragment = "do_commit(";
  contract.condition_text = "s.ok";
  contract.condition = *smt::parse_condition("s.ok");
  core::CheckOptions options;
  options.forced_tests = {"test_handler"};
  const core::ContractCheckReport report =
      core::Checker().check(program, contract, options);
  EXPECT_EQ(report.screen_verdict, "proved-safe");
  EXPECT_FALSE(report.screen_skipped_concolic);
  EXPECT_EQ(report.dynamic.tests_run, 1);
}

// ---------------------------------------------------------------------------
// Interprocedural summaries
// ---------------------------------------------------------------------------

SummaryMap summarize_program(const Program& program) {
  return SummaryMap::compute(program, analysis::CallGraph::build(program));
}

TEST(Summaries, ModRefEffectsPropagateTransitively) {
  const Program program = minilang::parse_checked(R"(
struct S { a: int; b: int; }
fn write_a(s: S) {
  s.a = 1;
}
fn read_b(s: S) -> int {
  return s.b;
}
@entry
fn top(s: S) {
  write_a(s);
  print(read_b(s));
}
)");
  const SummaryMap map = summarize_program(program);

  const FunctionSummary* writer = map.find("write_a");
  ASSERT_NE(writer, nullptr);
  EXPECT_EQ(writer->mod_fields, (std::set<std::string>{"a"}));
  EXPECT_EQ(writer->mod_params, (std::set<std::size_t>{0}));
  EXPECT_FALSE(writer->may_throw);
  EXPECT_FALSE(writer->opaque_effects);

  const FunctionSummary* reader = map.find("read_b");
  ASSERT_NE(reader, nullptr);
  EXPECT_TRUE(reader->mod_fields.empty());
  EXPECT_TRUE(reader->mod_params.empty());
  EXPECT_EQ(reader->ref_fields, (std::set<std::string>{"b"}));

  // Effects flow bottom-up: the caller's MOD/REF sets include the callees'.
  const FunctionSummary* caller = map.find("top");
  ASSERT_NE(caller, nullptr);
  EXPECT_EQ(caller->mod_fields.count("a"), 1u);
  EXPECT_EQ(caller->ref_fields.count("b"), 1u);

  // Call-site effects: only what the callee can touch is killed.
  EXPECT_FALSE(map.effect_of("read_b").kills_field("a"));
  EXPECT_TRUE(map.effect_of("write_a").kills_field("a"));
  EXPECT_FALSE(map.effect_of("write_a").kills_field("b"));
  EXPECT_TRUE(map.effect_of("write_a").writes_param(0));
  // Builtins: container mutators write params but no struct fields; pure
  // builtins touch nothing; unknown names havoc everything.
  EXPECT_TRUE(map.effect_of("put").writes_param(0));
  EXPECT_FALSE(map.effect_of("put").kills_field("a"));
  EXPECT_FALSE(map.effect_of("print").writes_param(0));
  EXPECT_TRUE(map.effect_of("no_such_function").havoc_all);
}

TEST(Summaries, RecursiveReturnIntervalWidensToFixpoint) {
  const Program program = minilang::parse_checked(R"(
fn depth(n: int) -> int {
  if (n <= 0) { return 0; }
  return depth(n - 1) + 1;
}
@entry
fn drive(n: int) {
  print(depth(n));
}
)");
  const SummaryMap map = summarize_program(program);
  const FunctionSummary* summary = map.find("depth");
  ASSERT_NE(summary, nullptr);
  // Rounds climb [0,0] -> [0,1] -> [0,2], then widening pins the moving
  // upper bound; the fixpoint is [0, +inf), never empty and never top.
  EXPECT_EQ(summary->return_interval.lo, 0);
  EXPECT_EQ(summary->return_interval.hi, Interval::kMax);
  EXPECT_EQ(map.stats().recursive_components, 1);
  EXPECT_GT(map.stats().fixpoint_iterations, 0);
}

TEST(Summaries, MutualRecursionReachesFixpoint) {
  const Program program = minilang::parse_checked(R"(
fn even(n: int) -> bool {
  if (n == 0) { return true; }
  return odd(n - 1);
}
fn odd(n: int) -> bool {
  if (n == 0) { return false; }
  return even(n - 1);
}
@entry
fn drive(n: int) {
  print(even(n));
}
)");
  const SummaryMap map = summarize_program(program);
  const FunctionSummary* even = map.find("even");
  const FunctionSummary* odd = map.find("odd");
  ASSERT_NE(even, nullptr);
  ASSERT_NE(odd, nullptr);
  // even/odd form one two-member SCC; the fixpoint converges without
  // smuggling in spurious effects.
  EXPECT_EQ(map.stats().recursive_components, 1);
  EXPECT_FALSE(even->may_throw);
  EXPECT_FALSE(odd->may_throw);
  EXPECT_TRUE(even->mod_fields.empty());
  EXPECT_TRUE(odd->mod_params.empty());
}

TEST(Summaries, SyncBlocksProveZeroNetMonitorEffect) {
  const Program program = minilang::parse_checked(R"(
struct Node { value: int; }
fn bump_locked(node: Node) {
  sync (node) {
    node.value = node.value + 1;
  }
}
fn throw_under_sync(node: Node) {
  sync (node) {
    throw "boom";
  }
}
@entry
fn drive(node: Node) {
  bump_locked(node);
  throw_under_sync(node);
}
)");
  const SummaryMap map = summarize_program(program);
  const FunctionSummary* balanced = map.find("bump_locked");
  ASSERT_NE(balanced, nullptr);
  EXPECT_EQ(balanced->net_monitor_normal, 0);
  EXPECT_FALSE(balanced->may_throw);
  // Block-structured sync releases the monitor on the unwind edge too.
  const FunctionSummary* thrower = map.find("throw_under_sync");
  ASSERT_NE(thrower, nullptr);
  EXPECT_TRUE(thrower->may_throw);
  EXPECT_EQ(thrower->net_monitor_throw, 0);
}

TEST(Summaries, MayBlockRequiresCfgReachableBlockingCall) {
  const Program program = minilang::parse_checked(R"(
fn dead_block(path: string) {
  return;
  write_record(path, path);
}
fn live_block(path: string) {
  write_record(path, path);
}
@entry
fn drive(path: string) {
  dead_block(path);
  live_block(path);
}
)");
  // The syntactic call-graph bit says both reach a blocking builtin…
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  EXPECT_TRUE(graph.reaches_blocking("dead_block"));
  EXPECT_TRUE(graph.reaches_blocking("live_block"));
  // …but the summary is CFG-precise: the call after `return` is dead.
  const SummaryMap map = summarize_program(program);
  ASSERT_NE(map.find("dead_block"), nullptr);
  EXPECT_FALSE(map.find("dead_block")->may_block);
  ASSERT_NE(map.find("live_block"), nullptr);
  EXPECT_TRUE(map.find("live_block")->may_block);
}

TEST(Summaries, NullCheckTransfersThroughReturn) {
  const Program program = minilang::parse_checked(R"(
struct Conn { id: int; }
fn require(conn: Conn?) -> Conn {
  if (conn == null) { throw "null connection"; }
  return conn;
}
@entry
fn drive(conn: Conn?) {
  print(require(conn).id);
}
)");
  const SummaryMap map = summarize_program(program);
  const FunctionSummary* summary = map.find("require");
  ASSERT_NE(summary, nullptr);
  // The guard dominates every normal return, so both the returned value and
  // the caller's argument are known non-null after the call.
  EXPECT_EQ(summary->return_nullness, FunctionSummary::Nullability::kNonNull);
  const auto fact = summary->nullness_on_return.find("conn");
  ASSERT_NE(fact, summary->nullness_on_return.end());
  EXPECT_EQ(fact->second, NullFact::kNonNull);
  EXPECT_TRUE(summary->may_throw);
}

TEST(Summaries, TrackedObjectSurvivesReadOnlyCall) {
  // Definite-assignment ablation: without summaries a call escapes the
  // tracked object and the never-assigned-field read goes unreported; with
  // summaries the read-only callee keeps the tracking alive.
  const Program program = minilang::parse_checked(R"(
struct Gauge { count: int; }
fn inspect(g: Gauge) -> int {
  return g.count;
}
@entry
fn drive() {
  let g = new Gauge {};
  print(inspect(g));
  print(g.count);
}
)");
  const auto count_defassign = [](const std::vector<Diagnostic>& diags) {
    int n = 0;
    for (const Diagnostic& d : diags)
      if (d.analysis == "definite-assignment") ++n;
    return n;
  };
  EXPECT_EQ(count_defassign(lint_program(program, true, /*use_summaries=*/false)), 0);
  EXPECT_GE(count_defassign(lint_program(program, true, /*use_summaries=*/true)), 1);
}

TEST(Screener, FactClosureSettlesUnmappablePathOnlyWithSummaries) {
  // The only entry->target path passes the argument as a call expression, so
  // the path condition cannot be mapped onto the contract variables and the
  // havoc-mode screener must stay Unknown. With summaries, the callee's
  // return nullability becomes a boundary fact for the helper, and the
  // dataflow facts refute the contract's complement at the target: the
  // fact-closure rule settles the contract ProvedSafe.
  const Program program = minilang::parse_checked(R"(
struct Entry { rc: int; }
struct Table { entries: map<string, Entry>; }
fn checked(t: Table, id: string) -> Entry {
  let e = get(t.entries, id);
  if (e == null) { throw "missing entry"; }
  return e;
}
fn bump(e: Entry) {
  e.rc = e.rc + 1;
}
fn touch(t: Table, e: Entry?) {
  bump(e);
}
@entry
fn drive(t: Table, id: string) {
  touch(t, checked(t, id));
}
)");
  const auto condition = smt::parse_condition("!(e == null)");
  ASSERT_TRUE(condition.has_value());
  const Screener havoc(program, /*use_summaries=*/false);
  EXPECT_EQ(havoc.screen_state_predicate("bump(", *condition).verdict,
            ScreenVerdict::kUnknown);
  const Screener summarized(program, /*use_summaries=*/true);
  const ScreenResult result = summarized.screen_state_predicate("bump(", *condition);
  EXPECT_EQ(result.verdict, ScreenVerdict::kProvedSafe);
}

// The acceptance property for the whole subsystem: on every corpus program
// and contract, a settled screening verdict must agree with the full
// static + concolic checker — in both ablation modes. Screening may say
// Unknown, never the wrong thing; summaries must settle strictly more.
TEST(Screener, VerdictsAgreeWithFullCheckerAcrossCorpus) {
  int settled_havoc = 0;
  int settled_summaries = 0;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
    const core::TranslationResult translation =
        core::translate(proposal, ticket.system);
    for (const std::string* source :
         {&ticket.buggy_source, &ticket.patched_source, &ticket.latest_source}) {
      if (source->empty()) continue;
      const Program program = minilang::parse_checked(*source);
      for (const core::SemanticContract& contract : translation.contracts) {
        core::CheckOptions truth_options;
        truth_options.static_screen = false;
        const core::ContractCheckReport truth =
            core::Checker().check(program, contract, truth_options);
        for (const bool use_summaries : {false, true}) {
          core::CheckOptions screen_options;  // defaults: screening on
          screen_options.use_summaries = use_summaries;
          const core::ContractCheckReport screened =
              core::Checker().check(program, contract, screen_options);
          int& settled = use_summaries ? settled_summaries : settled_havoc;
          if (screened.screen_verdict == "proved-safe") {
            ++settled;
            EXPECT_TRUE(truth.passed())
                << ticket.case_id << " " << contract.id
                << (use_summaries ? " [summaries]" : " [havoc]")
                << ": screener said safe, checker found violations";
          } else if (screened.screen_verdict == "proved-violated") {
            ++settled;
            EXPECT_FALSE(truth.passed())
                << ticket.case_id << " " << contract.id
                << (use_summaries ? " [summaries]" : " [havoc]")
                << ": screener said violated, checker found none";
          }
        }
      }
    }
  }
  // The subsystem must actually settle a useful share of the corpus
  // (the bench measures the exact fraction; this is the smoke floor), and
  // interprocedural summaries must settle strictly more than call-site
  // havoc — the corpus keeps at least one contract only they can close.
  EXPECT_GT(settled_havoc, 0);
  EXPECT_GT(settled_summaries, settled_havoc);
}

// Pins the specific corpus case the summary ablation is built around: the
// hdfs-safemode replay-bookkeeping contract flows through a call-expression
// argument (an unmappable path), so havoc mode stays Unknown while the
// summary fact-closure rule proves it safe on both program versions.
TEST(Screener, SummaryClosureSettlesHdfsSafemodeBookkeeping) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find("hdfs-safemode-allocation");
  ASSERT_NE(ticket, nullptr);
  const core::TranslationResult translation =
      core::translate(inference::MockLlm().infer(*ticket), ticket->system);
  const core::SemanticContract* contract = nullptr;
  for (const core::SemanticContract& candidate : translation.contracts)
    if (candidate.target_fragment == "record_allocation(") contract = &candidate;
  ASSERT_NE(contract, nullptr);
  ASSERT_NE(contract->condition, nullptr);
  for (const std::string* source : {&ticket->buggy_source, &ticket->patched_source}) {
    const Program program = minilang::parse_checked(*source);
    const Screener havoc(program, /*use_summaries=*/false);
    EXPECT_EQ(havoc.screen_state_predicate(contract->target_fragment, contract->condition)
                  .verdict,
              ScreenVerdict::kUnknown);
    const Screener summarized(program, /*use_summaries=*/true);
    EXPECT_EQ(
        summarized.screen_state_predicate(contract->target_fragment, contract->condition)
            .verdict,
        ScreenVerdict::kProvedSafe);
  }
}

// ---------------------------------------------------------------------------
// Concurrency: locksets, the lock-order graph, and the race rule
// ---------------------------------------------------------------------------

SummaryMap summarize(const Program& program) {
  return SummaryMap::compute(program, analysis::CallGraph::build(program));
}

// A throw inside nested sync blocks unwinds through the monitors in LIFO
// order: the catch body holds nothing, and a later sync re-acquires cleanly.
TEST(Lockset, ThrowUnwindReleasesMonitorsLifo) {
  const Program program = minilang::parse_checked(R"(
struct A { x: int; }
struct B { y: int; }
@entry
fn f(a: A, b: B) {
  try {
    sync (a) {
      sync (b) {
        throw "E";
      }
    }
  } catch (e) {
    print(e);
  }
  sync (b) {
    b.y = 1;
  }
}
)");
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  const Cfg cfg = Cfg::build(program.functions[0]);
  LocksetAnalysis analysis_(program, graph);
  const auto result = run_forward(cfg, analysis_);
  const Stmt* catch_print = nullptr;
  const Stmt* guarded_write = nullptr;
  program.for_each_stmt([&](const minilang::FuncDecl&, const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kExpr) catch_print = &stmt;
    if (stmt.kind == Stmt::Kind::kAssign) guarded_write = &stmt;
  });
  ASSERT_NE(catch_print, nullptr);
  ASSERT_NE(guarded_write, nullptr);
  const int catch_node = cfg.node_of(catch_print);
  const int write_node = cfg.node_of(guarded_write);
  ASSERT_GE(catch_node, 0);
  ASSERT_GE(write_node, 0);
  // Both monitors released on the unwind path into the catch.
  EXPECT_TRUE(result.in[catch_node].held.empty());
  // The later sync re-acquires exactly its own monitor.
  EXPECT_EQ(result.in[write_node].held, (std::vector<std::string>{"b"}));
}

// The unwind path must not trip the deadlock or race rules: two roots with
// a consistent acquisition order stay clean even when one throws mid-sync.
TEST(Lockset, UnwindPathProducesNoFalseConcurrencyPositives) {
  const Program program = minilang::parse_checked(R"(
struct Pool { active: int; }
struct Conn { open: bool; sends: int; }

@entry
fn send_guarded(pool: Pool, conn: Conn) {
  sync (pool) {
    sync (conn) {
      if (conn.open == false) {
        throw "ConnectionClosedException";
      }
      conn.sends = conn.sends + 1;
    }
    pool.active = pool.active + 1;
  }
}

@entry
fn close_conn(pool: Pool, conn: Conn) {
  sync (pool) {
    sync (conn) {
      conn.open = false;
    }
    pool.active = pool.active - 1;
  }
}
)");
  for (const Diagnostic& diagnostic : lint_program(program)) {
    EXPECT_NE(diagnostic.analysis, "deadlock") << diagnostic.render();
    EXPECT_NE(diagnostic.analysis, "race") << diagnostic.render();
  }
}

// Satellite acceptance: a recursive SCC whose functions acquire monitors
// must reach the summary fixpoint in bounded rounds without degrading.
TEST(Summaries, RecursiveSccWithMonitorEffectsConverges) {
  const Program program = minilang::parse_checked(R"(
struct Node { next: Node?; count: int; }

fn walk(n: Node) {
  sync (n) {
    n.count = n.count + 1;
    if (n.next != null) {
      walk(n.next);
    }
  }
}

@entry
fn start(n: Node) {
  walk(n);
}
)");
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  const SummaryMap summaries = SummaryMap::compute(program, graph);
  EXPECT_GE(summaries.stats().recursive_components, 1);
  EXPECT_GT(summaries.stats().fixpoint_iterations, 0);
  // Well under the divergence safety net (16 rounds): the same-SCC verbatim
  // import keeps the monitor name set finite, so phase A settles fast.
  EXPECT_LT(summaries.stats().fixpoint_iterations, 8);
  const FunctionSummary* walk = summaries.find("walk");
  ASSERT_NE(walk, nullptr);
  EXPECT_FALSE(walk->concurrency_degraded);
  EXPECT_EQ(walk->acquired_locks.count("n"), 1u);
  // Self-acquisition on recursion is not a cycle: the graph stays acyclic.
  EXPECT_TRUE(LockGraph::build(program, graph, summaries).acyclic());
}

TEST(LockGraph, InterproceduralInversionIsOneLocatedCycle) {
  const auto source = [](bool inverted) {
    return std::string(R"(
struct A { x: int; }
struct B { y: int; }
fn lock_b_then_touch(a: A, b: B) {
  sync (b) {
    b.y = b.y + 1;
  }
}
fn lock_a_then_touch(a: A, b: B) {
  sync (a) {
    a.x = a.x + 1;
  }
}
@entry
fn first(a: A, b: B) {
  sync (a) {
    lock_b_then_touch(a, b);
  }
}
)") + (inverted ? R"(
@entry
fn second(a: A, b: B) {
  sync (b) {
    lock_a_then_touch(a, b);
  }
}
)"
                : R"(
@entry
fn second(a: A, b: B) {
  sync (a) {
    lock_b_then_touch(a, b);
  }
}
)");
  };
  const Program buggy = minilang::parse_checked(source(true));
  const analysis::CallGraph buggy_graph = analysis::CallGraph::build(buggy);
  const LockGraph cyclic = LockGraph::build(buggy, buggy_graph, summarize(buggy));
  EXPECT_FALSE(cyclic.acyclic());
  ASSERT_EQ(cyclic.cycles.size(), 1u);
  EXPECT_EQ(cyclic.cycles[0].monitors, (std::vector<std::string>{"a", "b"}));
  // The rendering carries located acquisition chains through the helpers.
  const std::string rendered = cyclic.cycles[0].render();
  EXPECT_NE(rendered.find("while holding"), std::string::npos);
  EXPECT_NE(rendered.find("lock_b_then_touch"), std::string::npos);
  const auto diagnostics = deadlock_diagnostics(cyclic);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].analysis, "deadlock");
  EXPECT_EQ(diagnostics[0].severity, Severity::kError);

  const Program patched = minilang::parse_checked(source(false));
  const analysis::CallGraph patched_graph = analysis::CallGraph::build(patched);
  const LockGraph acyclic = LockGraph::build(patched, patched_graph, summarize(patched));
  EXPECT_TRUE(acyclic.acyclic());
  EXPECT_TRUE(deadlock_diagnostics(acyclic).empty());
}

TEST(Race, InconsistentLocksetFlagsUnguardedWriteOnly) {
  const auto source = [](bool guarded) {
    return std::string(R"(
struct Counter { hits: int; }
@entry
fn observe(c: Counter) {
  sync (c) {
    c.hits = c.hits + 1;
  }
}
)") + (guarded ? R"(
@entry
fn reset(c: Counter) {
  sync (c) {
    c.hits = 0;
  }
}
)"
               : R"(
@entry
fn reset(c: Counter) {
  c.hits = 0;
}
)");
  };
  const Program buggy = minilang::parse_checked(source(false));
  const analysis::CallGraph buggy_graph = analysis::CallGraph::build(buggy);
  const auto diagnostics = race_diagnostics(buggy, buggy_graph, summarize(buggy));
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].analysis, "race");
  EXPECT_EQ(diagnostics[0].function, "reset");
  EXPECT_NE(diagnostics[0].message.find("'hits'"), std::string::npos);
  EXPECT_NE(diagnostics[0].message.find("observe"), std::string::npos);

  const Program patched = minilang::parse_checked(source(true));
  const analysis::CallGraph patched_graph = analysis::CallGraph::build(patched);
  EXPECT_TRUE(race_diagnostics(patched, patched_graph, summarize(patched)).empty());

  // Eraser bias: a field never guarded anywhere (single-threaded idiom)
  // stays silent even with two writing roots.
  const Program unguarded = minilang::parse_checked(R"(
struct Counter { hits: int; }
@entry
fn observe(c: Counter) {
  c.hits = c.hits + 1;
}
@entry
fn reset(c: Counter) {
  c.hits = 0;
}
)");
  const analysis::CallGraph unguarded_graph = analysis::CallGraph::build(unguarded);
  EXPECT_TRUE(race_diagnostics(unguarded, unguarded_graph, summarize(unguarded)).empty());
}

// Sync-free programs never grow concurrency diagnostics — the lint gating
// that keeps pre-concurrency corpus output byte-identical.
TEST(Lint, SyncFreeProgramHasNoConcurrencyDiagnostics) {
  const Program program = minilang::parse_checked(R"(
struct S { n: int; }
@entry
fn bump(s: S) {
  s.n = s.n + 1;
}
@entry
fn clear(s: S) {
  s.n = 0;
}
)");
  for (const Diagnostic& diagnostic : lint_program(program)) {
    EXPECT_NE(diagnostic.analysis, "deadlock") << diagnostic.render();
    EXPECT_NE(diagnostic.analysis, "race") << diagnostic.render();
  }
}

TEST(Screener, InterleavingNeedsSummariesAndKnownPattern) {
  const Program program = minilang::parse_checked(R"(
struct S { n: int; }
@entry
fn bump(s: S) {
  sync (s) {
    s.n = s.n + 1;
  }
}
)");
  const Screener havoc(program, /*use_summaries=*/false);
  EXPECT_EQ(havoc.screen_interleaving("lock_order_acyclic", "sync (", "lock_order_acyclic")
                .verdict,
            ScreenVerdict::kUnknown);
  const Screener summarized(program, /*use_summaries=*/true);
  EXPECT_EQ(summarized
                .screen_interleaving("lock_order_acyclic", "sync (", "lock_order_acyclic")
                .verdict,
            ScreenVerdict::kProvedSafe);
  EXPECT_EQ(summarized.screen_interleaving("guarded_field", "n", "holds(s)").verdict,
            ScreenVerdict::kProvedSafe);
  // Malformed guard and unknown pattern both stay Unknown, never safe.
  EXPECT_EQ(summarized.screen_interleaving("guarded_field", "n", "nonsense").verdict,
            ScreenVerdict::kUnknown);
  EXPECT_EQ(summarized.screen_interleaving("no_such_pattern", "n", "x").verdict,
            ScreenVerdict::kUnknown);
}

TEST(Lint, CorpusAggregateMatchesCli) {
  // The patched corpus keeps exactly one lock-state error by design:
  // zk-2201's serialize_acls retains blocking I/O under sync.
  int lock_errors = 0;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    const Program program = minilang::parse_checked(ticket.patched_source);
    for (const Diagnostic& diagnostic : lint_program(program))
      if (diagnostic.analysis == "lock-state" && diagnostic.severity == Severity::kError)
        ++lock_errors;
  }
  EXPECT_EQ(lock_errors, 1);
}

}  // namespace
}  // namespace lisa::staticcheck
