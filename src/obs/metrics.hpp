// Named counters, gauges, and log-scale latency histograms.
//
// The registry is the single home for pipeline cost accounting: stage
// latencies, SMT query counts and verdicts, concolic branch totals,
// screening savings. Report/CI-gate JSON and the `lisa profile` cost table
// read from here instead of hand-threading `_ms` fields through structs.
//
// Concurrency model: metric objects are bags of relaxed atomics — record on
// any thread, no locks on the hot path. The registry itself takes a mutex
// only on first registration of a name; returned references stay valid for
// the registry's lifetime (node-based storage).
//
// Histograms are log-scale (8 sub-buckets per power of two, ~±4.5% relative
// quantization error) over positive values, with exact count/sum/min/max.
// That resolution is enough to tell a 2 ms SMT query from a 3 ms one while
// keeping each histogram a fixed ~3 KB of atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "support/json.hpp"

namespace lisa::obs {

/// Monotonically increasing count (queries issued, paths verified...).
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (corpus size, live paths...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-scale histogram of positive samples (latencies, sizes).
class Histogram {
 public:
  static constexpr int kSubBucketsPerOctave = 8;
  static constexpr int kMinExponent = -10;  // 2^-10 ≈ 1 µs when recording ms
  static constexpr int kMaxExponent = 40;   // 2^40 — far above any latency
  static constexpr int kBuckets =
      (kMaxExponent - kMinExponent) * kSubBucketsPerOctave + 2;  // ±overflow

  void record(double value);

  [[nodiscard]] std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Value at quantile `q` in [0, 1] (0.5 = p50). Returns the geometric
  /// midpoint of the covering bucket — within the ~±4.5% quantization
  /// error — clamped to the exact observed [min, max]. 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p95":..,"p99":..}
  [[nodiscard]] support::Json to_json() const;

  /// Folds `other`'s samples into this histogram: bucket-wise counts add,
  /// count/sum add, min/max take the combined extremes. Because buckets are
  /// exact counts (only the positions are quantized), merged quantiles are
  /// identical to recording the union of both sample sets directly.
  void merge(const Histogram& other);

  void reset();

 private:
  static int bucket_index(double value);
  static double bucket_mid(int index);

  std::atomic<std::int64_t> buckets_[kBuckets]{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // min/max as atomics updated by CAS; sentinel infinities when empty.
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_samples_{false};
};

/// Name → metric. One process-global instance (metrics()); tests may build
/// their own.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Point-in-time JSON snapshot:
  ///   {"counters": {name: value}, "gauges": {...}, "histograms": {name: {...}}}
  [[nodiscard]] support::Json snapshot() const;

  /// Prometheus text exposition (format 0.0.4): counters and gauges as-is,
  /// histograms as summaries (p50/p95/p99 quantile samples plus _sum and
  /// _count). Names are sanitized to the Prometheus charset with a `lisa_`
  /// prefix; embedded-label names like `budget.exhausted{reason=deadline}`
  /// are split into a base name plus escaped labels.
  [[nodiscard]] std::string render_prometheus() const;

  /// Zeroes every registered metric (names stay registered).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-global registry every instrumentation site uses.
[[nodiscard]] MetricsRegistry& metrics();

/// Sanitizes a registry metric name (dotted, possibly with an embedded
/// `{label=value}` suffix) into a Prometheus metric name: `lisa_` prefix,
/// every character outside [a-zA-Z0-9_:] replaced by `_`. The embedded label
/// suffix, if any, is stripped here and handled separately. Exposed for
/// tests.
[[nodiscard]] std::string prometheus_metric_name(const std::string& name);

/// Escapes a label value for Prometheus exposition: backslash, double quote
/// and newline become \\, \" and \n. Exposed for tests.
[[nodiscard]] std::string prometheus_escape_label(const std::string& value);

}  // namespace lisa::obs
