// Static contract screening: prove or refute contracts before concolic
// execution (the pipeline's dominant cost).
//
// The screener combines two static sources:
//   * dataflow facts (nullness + intervals, analyses.hpp) at each target
//     statement, converted into the SMT fragment with the same variable
//     naming as smt/minilang_bridge.cpp;
//   * the guard-only execution tree (analysis/paths.cpp) — the same
//     abstraction the path checker uses, so screener verdicts never
//     contradict the checker's.
//
// Three-valued verdicts:
//   * ProvedSafe     — every enumerated entry→target path verifies
//     (π ∧ ¬P unsat) and none is unmappable. The checker's static phase
//     would report zero violations, and the concolic replay cannot fire a
//     symbolic violation, so the contract can skip concolic entirely.
//     With interprocedural summaries a second route exists: if no path
//     produced a satisfiable violation and the dataflow facts at *every*
//     target statement make ¬P unsatisfiable, unmappable paths (or the
//     absence of any path) no longer block the verdict — the facts alone
//     close the proof (see screen_state_predicate).
//   * ProvedViolated — some path has π ∧ ¬P satisfiable AND the dataflow
//     facts at the target are consistent with ¬P (the witness is not ruled
//     out by assignments the guard-only path condition cannot see). The
//     witness records the call chain and a satisfying model.
//   * Unknown        — anything else (no targets, truncation, unmappable
//     paths, or facts-refuted violations). Unknown contracts proceed to the
//     full static + concolic check; screening is purely an accelerator and
//     never changes which contracts ultimately fail.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"
#include "obs/provenance.hpp"
#include "smt/formula.hpp"
#include "staticcheck/analyses.hpp"
#include "staticcheck/cfg.hpp"
#include "staticcheck/diagnostics.hpp"
#include "staticcheck/slice.hpp"
#include "staticcheck/summaries.hpp"

namespace lisa::staticcheck {

enum class ScreenVerdict { kProvedSafe, kProvedViolated, kUnknown };

[[nodiscard]] const char* screen_verdict_name(ScreenVerdict verdict);

struct ScreenOptions {
  std::size_t max_paths = 4096;
  bool prune_irrelevant = true;  // mirror the checker's path pruning
  /// Provenance capture (obs/provenance.hpp): when active, the screener
  /// records its dataflow facts (per analysis, with source locations),
  /// function-summary evidence, and every SMT query it issues. An inert
  /// handle (the default) is the zero-cost path.
  obs::CaptureHandle capture;
};

struct ScreenResult {
  ScreenVerdict verdict = ScreenVerdict::kUnknown;
  std::size_t targets = 0;        // matched target statements
  std::size_t paths_checked = 0;  // enumerated entry→target paths
  /// For ProvedViolated: "entry -> ... -> target | model" witness line.
  std::string witness;
  /// Why the verdict was reached (diagnostic for reports and the CLI).
  std::string reason;
  /// Structural screening: lock-state diagnostics (one per blocking call
  /// reachable under a held monitor).
  std::vector<Diagnostic> diagnostics;
  double elapsed_ms = 0.0;
};

/// Screens contracts against one program. Builds the call graph once and
/// caches per-function CFGs + dataflow facts; the program must outlive it.
class Screener {
 public:
  /// `use_summaries` computes interprocedural function summaries up front
  /// and threads them through every dataflow query, strengthening the facts
  /// (MOD-set havoc instead of kill-everything, boundary facts, return
  /// intervals). With strong enough facts the screener can settle contracts
  /// whose execution tree alone is inconclusive: when every enumerated path
  /// either verifies or is unmappable and the facts at *every* target refute
  /// ¬P outright, the contract is proved safe without concolic replay.
  /// Disabling reproduces the PR 2 facts byte-for-byte (ablation baseline).
  explicit Screener(const minilang::Program& program, bool use_summaries = true);

  /// Screens a state-predicate contract <condition> at `target_fragment`.
  /// `condition` uses target-function-local variable names (as produced by
  /// contract translation); null conditions return Unknown.
  [[nodiscard]] ScreenResult screen_state_predicate(const std::string& target_fragment,
                                                    const smt::FormulaPtr& condition,
                                                    const ScreenOptions& options = {}) const;

  /// Screens the no-blocking-in-sync structural rule via the path-sensitive
  /// lock-state analysis. Structural rules are fully decidable statically:
  /// the verdict is never Unknown. The options overload records lock-state
  /// diagnostics into the provenance capture.
  [[nodiscard]] ScreenResult screen_structural() const;
  [[nodiscard]] ScreenResult screen_structural(const ScreenOptions& options) const;

  /// Screens an interleaving-sensitive contract against the concurrency
  /// summaries (staticcheck/concurrency.hpp). Two patterns:
  ///   * "lock_order_acyclic" — ProvedSafe iff the global lock-acquisition
  ///     graph over the thread roots has no cycle (and no summary degraded);
  ///     a cycle is a located ProvedViolated witness.
  ///   * "guarded_field" — `target_fragment` names the field and
  ///     `condition_text` its guard as "holds(<monitor>)". ProvedSafe when
  ///     every root-reachable access holds the guard and the lock graph is
  ///     acyclic; an access without the guard is ProvedViolated; truncated
  ///     summaries or an otherwise-guarded-but-cyclic program stay Unknown.
  /// Summaries disabled → Unknown (these verdicts are interprocedural).
  [[nodiscard]] ScreenResult screen_interleaving(const std::string& pattern,
                                                 const std::string& target_fragment,
                                                 const std::string& condition_text,
                                                 const ScreenOptions& options = {}) const;

  /// Dataflow facts at `stmt` of `fn` as a formula over local names
  /// (nullness indicator variables and interval bounds). Returns kTrue when
  /// nothing is known. Exposed for tests. The capture overload additionally
  /// records each fact with its producing analysis and source location.
  [[nodiscard]] smt::FormulaPtr facts_at(const minilang::FuncDecl& fn,
                                         const minilang::Stmt* stmt) const;
  [[nodiscard]] smt::FormulaPtr facts_at(const minilang::FuncDecl& fn,
                                         const minilang::Stmt* stmt,
                                         const obs::CaptureHandle& capture) const;

  [[nodiscard]] const analysis::CallGraph& graph() const { return graph_; }

  /// The interprocedural summaries, or nullptr when disabled. Exposes
  /// computation stats (components, fixpoint rounds, elapsed time) for the
  /// pipeline report and the ablation bench.
  [[nodiscard]] const SummaryMap* summaries() const {
    return summaries_.has_value() ? &*summaries_ : nullptr;
  }

 private:
  const Cfg& cfg_for(const minilang::FuncDecl& fn) const;
  const SliceEngine& slicer() const;

  /// Slice-based irrelevance rule: true when the contract's slice shows the
  /// footprint is written only by fully literal constructions, every target
  /// sees the footprint root bound exclusively to such constructions, and
  /// each construction's field facts make ¬P unsatisfiable. Fires only as a
  /// fallback where the fact closure is consulted (empty or unmappable
  /// trees), so it can never contradict the path checker: a locally
  /// constructed root makes the contract variables unmappable, which the
  /// checker reports as unmappable rather than violated.
  [[nodiscard]] bool slice_closure_refutes(const std::string& target_fragment,
                                           const smt::FormulaPtr& condition,
                                           const ScreenOptions& options,
                                           obs::PhasedSmtCapture& smt_capture) const;

  const minilang::Program* program_;
  analysis::CallGraph graph_;
  std::optional<SummaryMap> summaries_;
  mutable std::map<const minilang::FuncDecl*, Cfg> cfgs_;
  mutable std::optional<SliceEngine> slicer_;
};

}  // namespace lisa::staticcheck
