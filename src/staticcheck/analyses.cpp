#include "staticcheck/analyses.hpp"

#include <algorithm>
#include <tuple>

#include "minilang/interp.hpp"
#include "minilang/printer.hpp"
#include "staticcheck/concurrency.hpp"
#include "staticcheck/dataflow.hpp"
#include "staticcheck/depgraph.hpp"
#include "staticcheck/summaries.hpp"

namespace lisa::staticcheck {

using minilang::BinOp;
using minilang::Expr;
using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;
using minilang::StructDecl;
using minilang::Type;
using minilang::UnOp;

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

bool contains_call(const Expr& expr) {
  if (expr.kind == Expr::Kind::kCall) return true;
  for (const auto& arg : expr.args)
    if (arg && contains_call(*arg)) return true;
  return false;
}

namespace {

/// Dotted rendering of a var/field chain ("s", "req.session.owner"), or ""
/// when the expression is not a simple access path.
std::string access_path(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kVar:
      return expr.text;
    case Expr::Kind::kField: {
      const std::string base = access_path(*expr.args[0]);
      return base.empty() ? std::string() : base + "." + expr.text;
    }
    default:
      return {};
  }
}

/// True if `path` has a field segment equal to `field` (anywhere past the
/// root variable).
bool mentions_field(const std::string& path, const std::string& field) {
  std::size_t dot = path.find('.');
  while (dot != std::string::npos) {
    const std::size_t start = dot + 1;
    std::size_t end = path.find('.', start);
    if (end == std::string::npos) end = path.size();
    if (path.compare(start, end - start, field) == 0) return true;
    dot = path.find('.', start);
  }
  return false;
}

/// Walks every sub-expression of `expr`, including `expr` itself.
void walk_expr(const Expr& expr, const std::function<void(const Expr&)>& visit) {
  visit(expr);
  for (const auto& arg : expr.args)
    if (arg) walk_expr(*arg, visit);
}

/// Visits every statement-level expression of a node's statement.
void node_exprs(const CfgNode& node, const std::function<void(const Expr&)>& visit) {
  if (node.stmt == nullptr) return;
  if (node.stmt->expr) visit(*node.stmt->expr);
  if (node.stmt->expr2) visit(*node.stmt->expr2);
}

/// True when any statement-level expression of `node` contains a call.
bool node_has_call(const CfgNode& node) {
  bool found = false;
  node_exprs(node, [&](const Expr& e) { found = found || contains_call(e); });
  return found;
}

/// Every call expression (recursively) inside the node's statement exprs.
std::vector<const Expr*> node_calls(const CfgNode& node) {
  std::vector<const Expr*> calls;
  node_exprs(node, [&](const Expr& top) {
    walk_expr(top, [&](const Expr& e) {
      if (e.kind == Expr::Kind::kCall) calls.push_back(&e);
    });
  });
  return calls;
}

/// Legacy conservative call rule: drop every dotted (heap) fact.
template <typename State>
void kill_all_heap_facts(State& state) {
  for (auto it = state.begin(); it != state.end();)
    it = (it->first.find('.') != std::string::npos) ? state.erase(it) : std::next(it);
}

/// MOD-set call rule: drop dotted facts mentioning a field some callee in
/// `node` may write; unknown callees degrade to the legacy rule.
template <typename State>
void kill_mod_facts(const SummaryMap& summaries, const CfgNode& node, State& state) {
  for (const Expr* call : node_calls(node)) {
    const CallEffect effect = summaries.effect_of(call->text);
    if (effect.havoc_all) {
      kill_all_heap_facts(state);
      return;
    }
    if (effect.mod_fields == nullptr || effect.mod_fields->empty()) continue;
    for (auto it = state.begin(); it != state.end();) {
      bool killed = false;
      for (const std::string& field : *effect.mod_fields)
        if (mentions_field(it->first, field)) {
          killed = true;
          break;
        }
      it = killed ? state.erase(it) : std::next(it);
    }
  }
}

/// Nullable-pointer-ish types: struct references and `any` can be null.
bool null_trackable(const Type* type) {
  if (type == nullptr) return false;
  return type->kind == Type::Kind::kStruct || type->kind == Type::Kind::kAny;
}

}  // namespace

std::string expr_access_path(const Expr& expr) { return access_path(expr); }

bool write_kills(const std::string& written, const std::string& fact_path) {
  if (fact_path == written) return true;
  // Rebinding a variable or path invalidates everything reached through it.
  if (fact_path.size() > written.size() && fact_path.compare(0, written.size(), written) == 0 &&
      fact_path[written.size()] == '.')
    return true;
  // Field write `a.f = ...`: conservatively kill any fact mentioning a field
  // named `f` — another path may alias the same object.
  const std::size_t dot = written.rfind('.');
  if (dot != std::string::npos)
    return mentions_field(fact_path, written.substr(dot + 1));
  return false;
}

void for_each_node_expr(const CfgNode& node, const std::function<void(const Expr&)>& visit) {
  node_exprs(node, visit);
}

// ---------------------------------------------------------------------------
// Nullness
// ---------------------------------------------------------------------------

NullnessAnalysis::State NullnessAnalysis::boundary(const Cfg& cfg) const {
  State state;
  // Non-nullable reference parameters cannot legally be null on entry.
  for (const auto& param : cfg.function().params)
    if (null_trackable(param.type.get()) && !param.type->nullable)
      state[param.name] = NullFact::kNonNull;
  // Interprocedural boundary facts: what every call site actually passes.
  if (summaries_ != nullptr) {
    const FunctionSummary* summary = summaries_->find(cfg.function().name);
    if (summary != nullptr)
      for (const auto& [path, fact] : summary->boundary_nullness) state.emplace(path, fact);
  }
  return state;
}

bool NullnessAnalysis::join(State& into, const State& from) const {
  // Meet of partial maps: keep only facts both sides agree on.
  bool changed = false;
  for (auto it = into.begin(); it != into.end();) {
    const auto other = from.find(it->first);
    if (other == from.end() || other->second != it->second) {
      it = into.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  return changed;
}

void NullnessAnalysis::assign(const std::string& written, const Expr* rhs, State& state) const {
  for (auto it = state.begin(); it != state.end();)
    it = write_kills(written, it->first) ? state.erase(it) : std::next(it);
  if (rhs == nullptr) return;
  switch (rhs->kind) {
    case Expr::Kind::kNullLit:
      state[written] = NullFact::kNull;
      break;
    case Expr::Kind::kNew: {
      state[written] = NullFact::kNonNull;
      // Omitted struct-typed fields default to null (interp `new` semantics).
      const StructDecl* decl = program_->find_struct(rhs->text);
      if (decl == nullptr) break;
      for (const auto& field : decl->fields) {
        const auto given = std::find(rhs->field_names.begin(), rhs->field_names.end(), field.name);
        if (given == rhs->field_names.end()) {
          if (null_trackable(field.type.get())) state[written + "." + field.name] = NullFact::kNull;
          continue;
        }
        const Expr& init = *rhs->args[static_cast<std::size_t>(
            std::distance(rhs->field_names.begin(), given))];
        if (init.kind == Expr::Kind::kNullLit)
          state[written + "." + field.name] = NullFact::kNull;
        else if (init.kind == Expr::Kind::kNew)
          state[written + "." + field.name] = NullFact::kNonNull;
      }
      break;
    }
    case Expr::Kind::kCall: {
      if (summaries_ == nullptr) break;
      const FunctionSummary* callee = summaries_->find(rhs->text);
      if (callee == nullptr) break;
      if (callee->return_nullness == FunctionSummary::Nullability::kNonNull)
        state[written] = NullFact::kNonNull;
      else if (callee->return_nullness == FunctionSummary::Nullability::kNull)
        state[written] = NullFact::kNull;
      break;
    }
    default: {
      const std::string source = access_path(*rhs);
      if (source.empty()) break;
      const auto fact = state.find(source);
      if (fact != state.end()) state[written] = fact->second;
      break;
    }
  }
}

void NullnessAnalysis::apply_call_effects(const CfgNode& node, State& state) const {
  // Reversed pre-order approximates evaluation order (inner calls first):
  // each call kills its MOD facts, then contributes its return-time facts.
  std::vector<const Expr*> calls = node_calls(node);
  for (auto it = calls.rbegin(); it != calls.rend(); ++it) {
    const Expr* call = *it;
    const CallEffect effect = summaries_->effect_of(call->text);
    if (effect.havoc_all) {
      kill_all_heap_facts(state);
    } else if (effect.mod_fields != nullptr && !effect.mod_fields->empty()) {
      for (auto fact = state.begin(); fact != state.end();) {
        bool killed = false;
        for (const std::string& field : *effect.mod_fields)
          if (mentions_field(fact->first, field)) {
            killed = true;
            break;
          }
        fact = killed ? state.erase(fact) : std::next(fact);
      }
    }
    // Facts the callee establishes about its parameters on every normal
    // return transfer to the matching argument paths (callees cannot rebind
    // caller locals; the summary already drops params the callee rebinds).
    const FunctionSummary* callee = summaries_->find(call->text);
    if (callee == nullptr || callee->nullness_on_return.empty()) continue;
    const FuncDecl* decl = program_->find_function(call->text);
    if (decl == nullptr || decl->params.size() != call->args.size()) continue;
    for (const auto& [path, fact] : callee->nullness_on_return) {
      const std::size_t dot = path.find('.');
      const std::string root = dot == std::string::npos ? path : path.substr(0, dot);
      for (std::size_t i = 0; i < decl->params.size(); ++i) {
        if (decl->params[i].name != root) continue;
        const std::string arg_path = access_path(*call->args[i]);
        if (arg_path.empty()) break;
        state[dot == std::string::npos ? arg_path : arg_path + path.substr(dot)] = fact;
        break;
      }
    }
  }
}

void NullnessAnalysis::transfer(const CfgNode& node, State& state) const {
  if (node.stmt == nullptr) return;
  // A call may mutate heap objects: drop facts the callees' MOD sets cover
  // (all dotted paths when no summaries are available).
  if (node_has_call(node)) {
    if (summaries_ != nullptr)
      apply_call_effects(node, state);
    else
      kill_all_heap_facts(state);
  }
  switch (node.stmt->kind) {
    case Stmt::Kind::kLet:
      assign(node.stmt->name, node.stmt->expr.get(), state);
      break;
    case Stmt::Kind::kAssign: {
      const std::string written = access_path(*node.stmt->expr);
      if (!written.empty()) {
        assign(written, node.stmt->expr2.get(), state);
      } else if (node.stmt->expr->kind == Expr::Kind::kIndex) {
        // `a[i] = e`: kill facts reached through the container.
        const std::string base = access_path(*node.stmt->expr->args[0]);
        if (!base.empty())
          for (auto it = state.begin(); it != state.end();)
            it = write_kills(base + ".?", it->first) ? state.erase(it) : std::next(it);
      }
      break;
    }
    default:
      break;
  }
}

void NullnessAnalysis::refine(const Expr& guard, bool taken, State& state) const {
  switch (guard.kind) {
    case Expr::Kind::kUnary:
      if (guard.un_op == UnOp::kNot) refine(*guard.args[0], !taken, state);
      return;
    case Expr::Kind::kBinary:
      break;
    default:
      return;
  }
  if (guard.bin_op == BinOp::kAnd) {
    // Both conjuncts hold on the taken edge; nothing definite otherwise.
    if (taken) {
      refine(*guard.args[0], true, state);
      refine(*guard.args[1], true, state);
    }
    return;
  }
  if (guard.bin_op == BinOp::kOr) {
    if (!taken) {
      refine(*guard.args[0], false, state);
      refine(*guard.args[1], false, state);
    }
    return;
  }
  if (guard.bin_op != BinOp::kEq && guard.bin_op != BinOp::kNe) return;
  const Expr* lhs = guard.args[0].get();
  const Expr* rhs = guard.args[1].get();
  if (rhs->kind != Expr::Kind::kNullLit) std::swap(lhs, rhs);
  if (rhs->kind != Expr::Kind::kNullLit) return;
  const std::string path = access_path(*lhs);
  if (path.empty()) return;
  const bool is_null = (guard.bin_op == BinOp::kEq) == taken;
  state[path] = is_null ? NullFact::kNull : NullFact::kNonNull;
}

void NullnessAnalysis::report(const Cfg& cfg, const std::vector<State>& in,
                              const std::vector<bool>& reached,
                              std::vector<Diagnostic>& out) const {
  for (const CfgNode& node : cfg.nodes()) {
    if (!reached[static_cast<std::size_t>(node.id)]) continue;
    const State& state = in[static_cast<std::size_t>(node.id)];
    node_exprs(node, [&](const Expr& top) {
      walk_expr(top, [&](const Expr& e) {
        if (e.kind != Expr::Kind::kField && e.kind != Expr::Kind::kIndex) return;
        const std::string base = access_path(*e.args[0]);
        if (base.empty()) return;
        const auto fact = state.find(base);
        if (fact == state.end() || fact->second != NullFact::kNull) return;
        Diagnostic diag;
        diag.analysis = "nullness";
        diag.severity = Severity::kError;
        diag.function = cfg.function().name;
        diag.loc = e.loc;
        diag.message = "dereference of '" + base + "', which is null on every path reaching here";
        out.push_back(std::move(diag));
      });
    });
  }
}

// ---------------------------------------------------------------------------
// Definite assignment
// ---------------------------------------------------------------------------

DefiniteAssignmentAnalysis::State DefiniteAssignmentAnalysis::boundary(const Cfg& cfg) const {
  (void)cfg;
  return {};
}

bool DefiniteAssignmentAnalysis::join(State& into, const State& from) const {
  bool changed = false;
  for (auto it = into.begin(); it != into.end();) {
    const auto other = from.find(it->first);
    if (other == from.end()) {
      it = into.erase(it);  // tracked on one side only → stop tracking
      changed = true;
      continue;
    }
    // A field assigned on only one path may still hold its default: keep it
    // in the unassigned set (union).
    for (const std::string& field : other->second.unassigned)
      if (it->second.unassigned.insert(field).second) changed = true;
    ++it;
  }
  return changed;
}

void DefiniteAssignmentAnalysis::transfer(const CfgNode& node, State& state) const {
  if (node.stmt == nullptr) return;
  // A tracked object passed to a call escapes when the callee may write
  // through (or store) that parameter; without summaries, any call escapes.
  node_exprs(node, [&](const Expr& top) {
    walk_expr(top, [&](const Expr& e) {
      if (e.kind != Expr::Kind::kCall) return;
      const CallEffect effect = summaries_ != nullptr
                                    ? summaries_->effect_of(e.text)
                                    : CallEffect{.havoc_all = true};
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        const auto& arg = e.args[i];
        if (arg && arg->kind == Expr::Kind::kVar && effect.writes_param(i))
          state.erase(arg->text);
      }
    });
  });
  switch (node.stmt->kind) {
    case Stmt::Kind::kLet: {
      state.erase(node.stmt->name);
      const Expr* init = node.stmt->expr.get();
      if (init == nullptr || init->kind != Expr::Kind::kNew) break;
      const StructDecl* decl = program_->find_struct(init->text);
      if (decl == nullptr) break;
      Tracked tracked;
      for (const auto& field : decl->fields)
        if (std::find(init->field_names.begin(), init->field_names.end(), field.name) ==
            init->field_names.end())
          tracked.unassigned.insert(field.name);
      if (!tracked.unassigned.empty()) state[node.stmt->name] = std::move(tracked);
      break;
    }
    case Stmt::Kind::kAssign: {
      const Expr& lvalue = *node.stmt->expr;
      if (lvalue.kind == Expr::Kind::kVar) {
        state.erase(lvalue.text);
      } else if (lvalue.kind == Expr::Kind::kField &&
                 lvalue.args[0]->kind == Expr::Kind::kVar) {
        const auto tracked = state.find(lvalue.args[0]->text);
        if (tracked != state.end()) tracked->second.unassigned.erase(lvalue.text);
      }
      break;
    }
    default:
      break;
  }
}

void DefiniteAssignmentAnalysis::report(const Cfg& cfg, const std::vector<State>& in,
                                        const std::vector<bool>& reached,
                                        std::vector<Diagnostic>& out) const {
  for (const CfgNode& node : cfg.nodes()) {
    if (!reached[static_cast<std::size_t>(node.id)]) continue;
    const State& state = in[static_cast<std::size_t>(node.id)];
    const auto check = [&](const Expr& top) {
      walk_expr(top, [&](const Expr& e) {
        if (e.kind != Expr::Kind::kField || e.args[0]->kind != Expr::Kind::kVar) return;
        const auto tracked = state.find(e.args[0]->text);
        if (tracked == state.end() || tracked->second.unassigned.count(e.text) == 0) return;
        Diagnostic diag;
        diag.analysis = "definite-assignment";
        diag.severity = Severity::kWarning;
        diag.function = cfg.function().name;
        diag.loc = e.loc;
        diag.message = "field '" + e.text + "' of '" + e.args[0]->text +
                       "' is read before any assignment; it still holds its default value";
        out.push_back(std::move(diag));
      });
    };
    if (node.stmt != nullptr && node.stmt->kind == Stmt::Kind::kAssign) {
      // The lvalue's top-level field is being written, not read.
      if (node.stmt->expr2) check(*node.stmt->expr2);
      const Expr& lvalue = *node.stmt->expr;
      if (lvalue.kind == Expr::Kind::kIndex || lvalue.kind == Expr::Kind::kField)
        for (std::size_t i = lvalue.kind == Expr::Kind::kField ? 1 : 0; i < lvalue.args.size(); ++i)
          if (lvalue.args[i]) check(*lvalue.args[i]);
    } else {
      node_exprs(node, check);
    }
  }
}

// ---------------------------------------------------------------------------
// Lock state
// ---------------------------------------------------------------------------

LockStateAnalysis::State LockStateAnalysis::boundary(const Cfg& cfg) const {
  (void)cfg;
  return {};
}

bool LockStateAnalysis::join(State& into, const State& from) const {
  // "May hold" join: deeper nesting wins; ties keep the existing monitors.
  if (from.depth > into.depth) {
    into = from;
    return true;
  }
  return false;
}

void LockStateAnalysis::transfer(const CfgNode& node, State& state) const {
  if (node.kind == CfgNode::Kind::kSyncEnter) {
    ++state.depth;
    state.monitors.push_back(minilang::expr_text(*node.stmt->expr) + " (sync at line " +
                             std::to_string(node.stmt->loc.line) + ")");
  } else if (node.kind == CfgNode::Kind::kSyncExit) {
    if (state.depth > 0) --state.depth;
    if (!state.monitors.empty()) state.monitors.pop_back();
  }
  // Callees with a non-zero net monitor effect adjust the held count.
  // Block-structured `sync` makes the effect zero for every MiniLang
  // function today; the summary proves it instead of assuming it.
  if (summaries_ != nullptr && node.stmt != nullptr && node_has_call(node)) {
    for (const Expr* call : node_calls(node)) {
      const FunctionSummary* callee = summaries_->find(call->text);
      if (callee == nullptr || callee->net_monitor_normal == 0) continue;
      for (int i = callee->net_monitor_normal; i > 0; --i) {
        ++state.depth;
        state.monitors.push_back("monitor acquired inside " + call->text + "()");
      }
      for (int i = callee->net_monitor_normal; i < 0 && state.depth > 0; ++i) {
        --state.depth;
        if (!state.monitors.empty()) state.monitors.pop_back();
      }
    }
  }
}

bool LockStateAnalysis::call_may_block(const std::string& callee) const {
  if (summaries_ != nullptr) {
    const FunctionSummary* summary = summaries_->find(callee);
    if (summary != nullptr) return summary->may_block;
    return minilang::blocking_builtins().count(callee) > 0;
  }
  return graph_->reaches_blocking(callee);
}

void LockStateAnalysis::report(const Cfg& cfg, const std::vector<State>& in,
                               const std::vector<bool>& reached,
                               std::vector<Diagnostic>& out) const {
  if (cfg.function().has_annotation("test")) return;  // tests may block freely
  for (const CfgNode& node : cfg.nodes()) {
    if (!reached[static_cast<std::size_t>(node.id)]) continue;
    const State& state = in[static_cast<std::size_t>(node.id)];
    if (state.depth <= 0) continue;
    if (node.kind == CfgNode::Kind::kSyncEnter) continue;  // monitor expr runs unlocked
    node_exprs(node, [&](const Expr& top) {
      walk_expr(top, [&](const Expr& e) {
        if (e.kind != Expr::Kind::kCall || !call_may_block(e.text)) return;
        Diagnostic diag;
        diag.analysis = "lock-state";
        diag.severity = Severity::kError;
        diag.function = cfg.function().name;
        diag.loc = e.loc;
        diag.message = "call to " + e.text + " may block while holding monitor " +
                       (state.monitors.empty() ? std::string("?") : state.monitors.back());
        out.push_back(std::move(diag));
      });
    });
  }
}

// ---------------------------------------------------------------------------
// Intervals
// ---------------------------------------------------------------------------

namespace {

constexpr std::int64_t kNegInf = Interval::kMin;
constexpr std::int64_t kPosInf = Interval::kMax;

std::int64_t add_sat(std::int64_t a, std::int64_t b) {
  if (a == kNegInf || b == kNegInf) return kNegInf;
  if (a == kPosInf || b == kPosInf) return kPosInf;
  const __int128 sum = static_cast<__int128>(a) + b;
  if (sum <= kNegInf) return kNegInf;
  if (sum >= kPosInf) return kPosInf;
  return static_cast<std::int64_t>(sum);
}

Interval top() { return {}; }

}  // namespace

IntervalAnalysis::State IntervalAnalysis::boundary(const Cfg& cfg) const {
  State state;
  if (summaries_ != nullptr) {
    const FunctionSummary* summary = summaries_->find(cfg.function().name);
    if (summary != nullptr)
      for (const auto& [path, interval] : summary->boundary_intervals)
        if (!interval.unbounded() && !interval.empty()) state.emplace(path, interval);
  }
  return state;
}

bool IntervalAnalysis::join(State& into, const State& from) const {
  bool changed = false;
  for (auto it = into.begin(); it != into.end();) {
    const auto other = from.find(it->first);
    if (other == from.end()) {
      it = into.erase(it);
      changed = true;
      continue;
    }
    const Interval hull{std::min(it->second.lo, other->second.lo),
                        std::max(it->second.hi, other->second.hi)};
    if (!(hull == it->second)) {
      it->second = hull;
      changed = true;
    }
    if (it->second.unbounded()) {
      it = into.erase(it);  // top carries no information; keep the map sparse
      continue;
    }
    ++it;
  }
  return changed;
}

Interval IntervalAnalysis::eval(const Expr& expr, const State& state) const {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
      return Interval::constant(expr.int_value);
    case Expr::Kind::kCall: {
      // Clamp by the callee's summarized return interval. An *empty*
      // interval (recursive fixpoint still climbing) acts as the hull
      // identity through joins; outside summary computation it never
      // survives to a stored fact.
      if (summaries_ == nullptr) return top();
      const FunctionSummary* callee = summaries_->find(expr.text);
      return callee == nullptr ? top() : callee->return_interval;
    }
    case Expr::Kind::kVar:
    case Expr::Kind::kField: {
      const std::string path = access_path(expr);
      if (path.empty()) return top();
      const auto it = state.find(path);
      return it == state.end() ? top() : it->second;
    }
    case Expr::Kind::kUnary: {
      if (expr.un_op != UnOp::kNeg) return top();
      const Interval v = eval(*expr.args[0], state);
      if (v.unbounded()) return top();
      const std::int64_t lo = v.hi == kPosInf ? kNegInf : -v.hi;
      const std::int64_t hi = v.lo == kNegInf ? kPosInf : -v.lo;
      return {lo, hi};
    }
    case Expr::Kind::kBinary: {
      const Interval a = eval(*expr.args[0], state);
      const Interval b = eval(*expr.args[1], state);
      switch (expr.bin_op) {
        case BinOp::kAdd:
          return {add_sat(a.lo, b.lo), add_sat(a.hi, b.hi)};
        case BinOp::kSub:
          return {add_sat(a.lo, b.hi == kPosInf ? kNegInf : -b.hi),
                  add_sat(a.hi, b.lo == kNegInf ? kPosInf : -b.lo)};
        case BinOp::kMul:
          if (a.is_constant() && b.is_constant()) {
            const __int128 product = static_cast<__int128>(a.lo) * b.lo;
            if (product <= kNegInf || product >= kPosInf) return top();
            return Interval::constant(static_cast<std::int64_t>(product));
          }
          return top();
        case BinOp::kDiv:
          if (a.is_constant() && b.is_constant() && b.lo != 0)
            return Interval::constant(a.lo / b.lo);
          return top();
        case BinOp::kMod:
          if (a.is_constant() && b.is_constant() && b.lo != 0)
            return Interval::constant(a.lo % b.lo);
          return top();
        default:
          return top();
      }
    }
    default:
      return top();
  }
}

int IntervalAnalysis::decide(const Expr& guard, const State& state) const {
  switch (guard.kind) {
    case Expr::Kind::kBoolLit:
      return guard.bool_value ? 1 : 0;
    case Expr::Kind::kUnary: {
      if (guard.un_op != UnOp::kNot) return -1;
      const int inner = decide(*guard.args[0], state);
      return inner < 0 ? -1 : 1 - inner;
    }
    case Expr::Kind::kBinary:
      break;
    default:
      return -1;
  }
  if (guard.bin_op == BinOp::kAnd || guard.bin_op == BinOp::kOr) {
    const int a = decide(*guard.args[0], state);
    const int b = decide(*guard.args[1], state);
    if (guard.bin_op == BinOp::kAnd) {
      if (a == 0 || b == 0) return 0;
      if (a == 1 && b == 1) return 1;
    } else {
      if (a == 1 || b == 1) return 1;
      if (a == 0 && b == 0) return 0;
    }
    return -1;
  }
  const Interval a = eval(*guard.args[0], state);
  const Interval b = eval(*guard.args[1], state);
  if (a.unbounded() && b.unbounded()) return -1;
  switch (guard.bin_op) {
    case BinOp::kLt:
      if (a.hi < b.lo) return 1;
      if (a.lo >= b.hi) return 0;
      return -1;
    case BinOp::kLe:
      if (a.hi <= b.lo) return 1;
      if (a.lo > b.hi) return 0;
      return -1;
    case BinOp::kGt:
      if (a.lo > b.hi) return 1;
      if (a.hi <= b.lo) return 0;
      return -1;
    case BinOp::kGe:
      if (a.lo >= b.hi) return 1;
      if (a.hi < b.lo) return 0;
      return -1;
    case BinOp::kEq:
      if (a.is_constant() && b.is_constant()) return a.lo == b.lo ? 1 : 0;
      if (a.hi < b.lo || a.lo > b.hi) return 0;  // disjoint ranges
      return -1;
    case BinOp::kNe:
      if (a.is_constant() && b.is_constant()) return a.lo != b.lo ? 1 : 0;
      if (a.hi < b.lo || a.lo > b.hi) return 1;
      return -1;
    default:
      return -1;
  }
}

void IntervalAnalysis::apply_call_effects(const CfgNode& node, State& state) const {
  kill_mod_facts(*summaries_, node, state);
}

void IntervalAnalysis::transfer(const CfgNode& node, State& state) const {
  if (node.stmt == nullptr) return;
  if (node_has_call(node)) {
    if (summaries_ != nullptr)
      apply_call_effects(node, state);
    else
      kill_all_heap_facts(state);
  }
  std::string written;
  const Expr* rhs = nullptr;
  switch (node.stmt->kind) {
    case Stmt::Kind::kLet:
      written = node.stmt->name;
      rhs = node.stmt->expr.get();
      break;
    case Stmt::Kind::kAssign:
      written = access_path(*node.stmt->expr);
      rhs = node.stmt->expr2.get();
      break;
    default:
      return;
  }
  if (written.empty()) return;
  const Interval value = rhs != nullptr ? eval(*rhs, state) : top();
  for (auto it = state.begin(); it != state.end();)
    it = write_kills(written, it->first) ? state.erase(it) : std::next(it);
  if (!value.unbounded()) state[written] = value;
}

void IntervalAnalysis::refine(const Expr& guard, bool taken, State& state) const {
  switch (guard.kind) {
    case Expr::Kind::kUnary:
      if (guard.un_op == UnOp::kNot) refine(*guard.args[0], !taken, state);
      return;
    case Expr::Kind::kBinary:
      break;
    default:
      return;
  }
  if (guard.bin_op == BinOp::kAnd) {
    if (taken) {
      refine(*guard.args[0], true, state);
      refine(*guard.args[1], true, state);
    }
    return;
  }
  if (guard.bin_op == BinOp::kOr) {
    if (!taken) {
      refine(*guard.args[0], false, state);
      refine(*guard.args[1], false, state);
    }
    return;
  }
  // Normalize to `path OP interval` and clamp.
  const auto clamp = [&](const Expr& side, BinOp op, const Interval& bound) {
    const std::string path = access_path(side);
    if (path.empty() || bound.unbounded()) return;
    Interval current = top();
    const auto it = state.find(path);
    if (it != state.end()) current = it->second;
    switch (op) {
      case BinOp::kLt:
        if (bound.hi != kPosInf) current.hi = std::min(current.hi, bound.hi - 1);
        break;
      case BinOp::kLe:
        current.hi = std::min(current.hi, bound.hi);
        break;
      case BinOp::kGt:
        if (bound.lo != kNegInf) current.lo = std::max(current.lo, bound.lo + 1);
        break;
      case BinOp::kGe:
        current.lo = std::max(current.lo, bound.lo);
        break;
      case BinOp::kEq:
        current.lo = std::max(current.lo, bound.lo);
        current.hi = std::min(current.hi, bound.hi);
        break;
      default:
        return;
    }
    if (current.empty() || current.unbounded()) {
      state.erase(path);  // contradiction (dead edge) or no information
      return;
    }
    state[path] = current;
  };
  BinOp op = guard.bin_op;
  if (!taken) {
    switch (op) {
      case BinOp::kLt: op = BinOp::kGe; break;
      case BinOp::kLe: op = BinOp::kGt; break;
      case BinOp::kGt: op = BinOp::kLe; break;
      case BinOp::kGe: op = BinOp::kLt; break;
      case BinOp::kEq: op = BinOp::kNe; break;
      case BinOp::kNe: op = BinOp::kEq; break;
      default: return;
    }
  }
  if (op == BinOp::kNe) return;  // holes are not representable
  const Expr& lhs = *guard.args[0];
  const Expr& rhs = *guard.args[1];
  clamp(lhs, op, eval(rhs, state));
  // Mirror the comparison for the right operand: `a < b` also means `b > a`.
  BinOp mirrored = op;
  switch (op) {
    case BinOp::kLt: mirrored = BinOp::kGt; break;
    case BinOp::kLe: mirrored = BinOp::kGe; break;
    case BinOp::kGt: mirrored = BinOp::kLt; break;
    case BinOp::kGe: mirrored = BinOp::kLe; break;
    default: break;
  }
  clamp(rhs, mirrored, eval(lhs, state));
}

void IntervalAnalysis::report(const Cfg& cfg, const std::vector<State>& in,
                              const std::vector<bool>& reached,
                              std::vector<Diagnostic>& out) const {
  for (const CfgNode& node : cfg.nodes()) {
    if (node.kind != CfgNode::Kind::kBranch || node.loop_head) continue;
    if (!reached[static_cast<std::size_t>(node.id)]) continue;
    if (node.stmt == nullptr || !node.stmt->expr) continue;
    if (contains_call(*node.stmt->expr)) continue;
    const int verdict = decide(*node.stmt->expr, in[static_cast<std::size_t>(node.id)]);
    if (verdict < 0) continue;
    Diagnostic diag;
    diag.analysis = "intervals";
    diag.severity = Severity::kWarning;
    diag.function = cfg.function().name;
    diag.loc = node.stmt->expr->loc;
    diag.message = std::string("condition '") + minilang::expr_text(*node.stmt->expr) +
                   "' is always " + (verdict == 1 ? "true" : "false") +
                   "; the other branch is dead";
    out.push_back(std::move(diag));
  }
}

// ---------------------------------------------------------------------------
// Whole-program lint
// ---------------------------------------------------------------------------

std::vector<Diagnostic> lint_program(const Program& program, bool include_tests,
                                     bool use_summaries) {
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  const SummaryMap summary_map =
      use_summaries ? SummaryMap::compute(program, graph) : SummaryMap();
  const SummaryMap* summaries = use_summaries ? &summary_map : nullptr;
  std::vector<Diagnostic> out;
  for (const FuncDecl& fn : program.functions) {
    if (!include_tests && fn.has_annotation("test")) continue;
    const Cfg cfg = Cfg::build(fn);

    NullnessAnalysis nullness(program, summaries);
    const auto null_result = run_forward(cfg, nullness);
    nullness.report(cfg, null_result.in, null_result.reached, out);

    DefiniteAssignmentAnalysis assignment(program, summaries);
    const auto assign_result = run_forward(cfg, assignment);
    assignment.report(cfg, assign_result.in, assign_result.reached, out);

    LockStateAnalysis locks(program, graph, summaries);
    const auto lock_result = run_forward(cfg, locks);
    locks.report(cfg, lock_result.in, lock_result.reached, out);

    IntervalAnalysis intervals(program, summaries);
    const auto interval_result = run_forward(cfg, intervals);
    intervals.report(cfg, interval_result.in, interval_result.reached, out);

    // Dead stores / unused definitions: free byproducts of the reaching-
    // definition chains (depgraph.hpp). Local-only, so a degraded graph
    // (summaries off) reports the same findings.
    const FuncDepGraph dep = FuncDepGraph::build(fn, program, summaries);
    report_dead_defs(dep, out);
  }
  // Whole-program concurrency checks (deadlock cycles, inconsistent-lockset
  // races) need the interprocedural summaries and only fire on programs
  // that use monitors at all — sync-free programs keep byte-identical
  // output with and without this pass.
  if (summaries != nullptr) {
    bool has_sync = false;
    program.for_each_stmt([&](const FuncDecl&, const minilang::Stmt& stmt) {
      if (stmt.kind == minilang::Stmt::Kind::kSync) has_sync = true;
    });
    if (has_sync) {
      const LockGraph lock_graph = LockGraph::build(program, graph, *summaries);
      for (Diagnostic& diag : deadlock_diagnostics(lock_graph))
        out.push_back(std::move(diag));
      for (Diagnostic& diag : race_diagnostics(program, graph, *summaries))
        out.push_back(std::move(diag));
    }
  }
  // Deterministic output: one program is one file, so (line, column) is a
  // global position; break ties by function, analysis, then message, and
  // drop diagnostics that are identical in every field.
  const auto key = [](const Diagnostic& d) {
    return std::tie(d.loc.line, d.loc.column, d.function, d.analysis, d.message);
  };
  std::sort(out.begin(), out.end(),
            [&](const Diagnostic& a, const Diagnostic& b) { return key(a) < key(b); });
  out.erase(std::unique(out.begin(), out.end(),
                        [&](const Diagnostic& a, const Diagnostic& b) {
                          return key(a) == key(b) && a.severity == b.severity;
                        }),
            out.end());
  return out;
}

}  // namespace lisa::staticcheck
