#include "support/faultpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "support/log.hpp"
#include "support/strings.hpp"

namespace lisa::support {

const char* fault_action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kNone: return "none";
    case FaultAction::kFail: return "fail";
    case FaultAction::kTimeout: return "timeout";
    case FaultAction::kMalformed: return "malformed";
    case FaultAction::kDelay: return "delay";
  }
  return "?";
}

namespace {

bool parse_action(std::string_view name, FaultAction* action) {
  if (name == "fail") *action = FaultAction::kFail;
  else if (name == "timeout") *action = FaultAction::kTimeout;
  else if (name == "malformed") *action = FaultAction::kMalformed;
  else if (name == "delay") *action = FaultAction::kDelay;
  else return false;
  return true;
}

bool parse_int(std::string_view text, std::int64_t* out) {
  if (text.empty()) return false;
  std::int64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

FaultRegistry::FaultRegistry() {
  const char* env = std::getenv("LISA_FAULTPOINTS");
  if (env != nullptr && env[0] != '\0') {
    if (!configure(env))
      log(LogLevel::warn, "LISA_FAULTPOINTS is malformed, fault injection disarmed: ",
          env);
  }
}

bool FaultRegistry::configure(const std::string& spec) {
  std::map<std::string, Spec> parsed;
  for (const std::string& entry : split(spec, ',')) {
    const std::string trimmed{trim(entry)};
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos || eq == 0) { clear(); return false; }
    const std::string site = trimmed.substr(0, eq);
    std::string action_text = trimmed.substr(eq + 1);
    Spec site_spec;
    const std::size_t colon = action_text.find(':');
    std::string param;
    if (colon != std::string::npos) {
      param = action_text.substr(colon + 1);
      action_text = action_text.substr(0, colon);
    }
    if (!parse_action(action_text, &site_spec.action)) { clear(); return false; }
    if (site_spec.action == FaultAction::kDelay) {
      // delay's parameter is the sleep in milliseconds, fired on every visit.
      if (!param.empty() && !parse_int(param, &site_spec.delay_ms)) { clear(); return false; }
      if (param.empty()) site_spec.delay_ms = 1;
    } else if (!param.empty()) {
      if (!parse_int(param, &site_spec.remaining)) { clear(); return false; }
    }
    parsed[site] = site_spec;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  sites_ = std::move(parsed);
  armed_.store(!sites_.empty(), std::memory_order_relaxed);
  return true;
}

void FaultRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

FaultAction FaultRegistry::consume(const std::string& site, std::int64_t* delay_ms) {
  if (!armed_.load(std::memory_order_relaxed)) return FaultAction::kNone;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return FaultAction::kNone;
  Spec& spec = it->second;
  if (spec.remaining == 0) return FaultAction::kNone;  // spent
  if (spec.remaining > 0) --spec.remaining;
  ++spec.triggered;
  if (delay_ms != nullptr) *delay_ms = spec.delay_ms;
  return spec.action;
}

std::int64_t FaultRegistry::triggered(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.triggered;
}

std::vector<std::string> FaultRegistry::armed_sites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, spec] : sites_) names.push_back(name);
  return names;
}

FaultAction faultpoint(const std::string& site) {
  std::int64_t delay_ms = 0;
  const FaultAction action = FaultRegistry::instance().consume(site, &delay_ms);
  if (action == FaultAction::kNone) return action;
  log(LogLevel::warn, "fault injected at ", site, ": ", fault_action_name(action));
  if (action == FaultAction::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return FaultAction::kNone;  // a latency spike changes timing, not control flow
  }
  return action;
}

}  // namespace lisa::support
