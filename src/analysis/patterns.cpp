#include "analysis/patterns.hpp"

#include <functional>
#include <set>

#include "minilang/interp.hpp"
#include "minilang/printer.hpp"

namespace lisa::analysis {

using minilang::FuncDecl;
using minilang::Program;

namespace {

/// DFS from `name` to a blocking leaf, returning one witness chain.
std::vector<std::string> blocking_chain(const Program& program, const CallGraph& graph,
                                        const std::string& name) {
  std::vector<std::string> chain;
  std::set<std::string> visited;
  const std::function<bool(const std::string&)> dfs = [&](const std::string& current) -> bool {
    if (!visited.insert(current).second) return false;
    chain.push_back(current);
    if (minilang::blocking_builtins().count(current) > 0) return true;
    const FuncDecl* fn = program.find_function(current);
    if (fn != nullptr && fn->has_annotation("blocking")) return true;
    for (const std::string& callee : graph.callees_of(current))
      if (graph.reaches_blocking(callee) && dfs(callee)) return true;
    chain.pop_back();
    return false;
  };
  dfs(name);
  return chain;
}

}  // namespace

std::vector<PatternViolation> check_no_blocking_in_sync(const Program& program,
                                                        const CallGraph& graph) {
  std::vector<PatternViolation> out;
  for (const CallSite& site : graph.sites()) {
    if (!site.inside_sync) continue;
    if (site.caller->has_annotation("test")) continue;
    if (!graph.reaches_blocking(site.callee())) continue;
    PatternViolation violation;
    violation.function = site.caller->name;
    violation.stmt = site.stmt;
    violation.call_path = blocking_chain(program, graph, site.callee());
    violation.blocking_call =
        violation.call_path.empty() ? site.callee() : violation.call_path.back();
    violation.description = "blocking call " + violation.blocking_call +
                            " reachable inside sync block of " + site.caller->name + " via " +
                            minilang::stmt_header_text(*site.stmt);
    out.push_back(std::move(violation));
  }
  return out;
}

std::vector<PatternViolation> check_specific_call_in_sync(const Program& program,
                                                          const CallGraph& graph,
                                                          const std::string& specific_callee) {
  (void)program;
  std::vector<PatternViolation> out;
  for (const CallSite& site : graph.sites()) {
    if (!site.inside_sync || site.callee() != specific_callee) continue;
    if (site.caller->has_annotation("test")) continue;
    PatternViolation violation;
    violation.function = site.caller->name;
    violation.stmt = site.stmt;
    violation.blocking_call = specific_callee;
    violation.call_path = {specific_callee};
    violation.description = "direct call to " + specific_callee + " inside sync block of " +
                            site.caller->name;
    out.push_back(std::move(violation));
  }
  return out;
}

}  // namespace lisa::analysis
