# Empty compiler generated dependencies file for bench_gate_precision.
# This may be replaced when dependencies are built.
