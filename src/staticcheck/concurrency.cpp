#include "staticcheck/concurrency.hpp"

#include <algorithm>
#include <functional>

#include "minilang/printer.hpp"
#include "staticcheck/analyses.hpp"
#include "staticcheck/dataflow.hpp"

namespace lisa::staticcheck {

using minilang::Expr;
using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;

namespace {

/// Per-field cap on recorded access sites: keeps summaries cheap to compare
/// in the fixpoint. Dropped sites set `truncated`, so no consumer proves
/// safety from an incomplete set.
constexpr std::size_t kMaxFieldSites = 16;

/// Monitor/base names carry `callee::` namespace prefixes after import;
/// the tail is the name in the frame that actually holds the lock.
std::string name_tail(const std::string& name) {
  const std::size_t sep = name.rfind("::");
  return sep == std::string::npos ? name : name.substr(sep + 2);
}

void collect_calls(const Expr& expr, std::vector<const Expr*>& out) {
  if (expr.kind == Expr::Kind::kCall) out.push_back(&expr);
  for (const auto& arg : expr.args)
    if (arg) collect_calls(*arg, out);
}

/// Every field read reachable from `expr`: (base path, field name) pairs.
void collect_field_reads(const Expr& expr,
                         std::vector<std::pair<std::string, std::string>>& out) {
  if (expr.kind == Expr::Kind::kField && expr.args.size() == 1 && expr.args[0]) {
    const std::string base = expr_access_path(*expr.args[0]);
    if (!base.empty()) out.emplace_back(base, expr.text);
  }
  for (const auto& arg : expr.args)
    if (arg) collect_field_reads(*arg, out);
}

/// Rewrites a callee-namespace path into the caller's namespace: a path
/// rooted at callee parameter i becomes the caller's argument i access
/// path; anything else (callee locals, unrepresentable arguments) keeps
/// the callee's name under a `callee::` prefix.
std::string rewrite_path(const std::string& path, const Expr& call,
                         const FuncDecl* callee_decl) {
  const std::size_t dot = path.find('.');
  const std::string root = dot == std::string::npos ? path : path.substr(0, dot);
  const std::string rest = dot == std::string::npos ? "" : path.substr(dot);
  if (callee_decl != nullptr) {
    for (std::size_t i = 0;
         i < callee_decl->params.size() && i < call.args.size(); ++i) {
      if (callee_decl->params[i].name != root || !call.args[i]) continue;
      const std::string arg = expr_access_path(*call.args[i]);
      if (arg.empty()) break;  // computed argument: fall through to prefix
      return arg + rest;
    }
  }
  if (path.find("::") != std::string::npos) return path;  // already namespaced
  return call.text + "::" + path;
}

/// Inserts a field access, enforcing the deterministic per-field site cap.
void insert_site(FieldLockSummary& fls, FieldAccessSite site) {
  fls.sites.insert(std::move(site));
  while (fls.sites.size() > kMaxFieldSites) {
    fls.sites.erase(std::prev(fls.sites.end()));
    fls.truncated = true;
  }
}

std::string locate(const std::string& function, int line, int column) {
  return function + ":" + std::to_string(line) + ":" + std::to_string(column);
}

std::string render_edge(const LockOrderEdge& edge) {
  std::string text = "'" + edge.second + "' acquired at " +
                     locate(edge.function, edge.line, edge.column) +
                     " while holding '" + edge.first + "'";
  if (!edge.via.empty()) text += " (via " + edge.via + ")";
  return text;
}

/// Tarjan SCC over the monitor-name graph. Small and recursive: the node
/// count is bounded by the number of distinct monitors in the program.
struct MonitorScc {
  std::map<std::string, std::vector<std::string>> succs;
  std::map<std::string, int> index, low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;
  std::vector<std::vector<std::string>> components;

  void visit(const std::string& node) {
    index[node] = low[node] = next_index++;
    stack.push_back(node);
    on_stack[node] = true;
    for (const std::string& succ : succs[node]) {
      if (index.find(succ) == index.end()) {
        visit(succ);
        low[node] = std::min(low[node], low[succ]);
      } else if (on_stack[succ]) {
        low[node] = std::min(low[node], index[succ]);
      }
    }
    if (low[node] != index[node]) return;
    std::vector<std::string> component;
    while (true) {
      const std::string member = stack.back();
      stack.pop_back();
      on_stack[member] = false;
      component.push_back(member);
      if (member == node) break;
    }
    components.push_back(std::move(component));
  }
};

/// Thread roots in deterministic (name) order: the functions concurrent
/// threads enter — @entry functions plus uncalled non-test functions.
std::vector<const FuncDecl*> thread_roots(const analysis::CallGraph& graph) {
  std::vector<const FuncDecl*> roots = graph.entry_functions();
  std::sort(roots.begin(), roots.end(),
            [](const FuncDecl* a, const FuncDecl* b) { return a->name < b->name; });
  return roots;
}

}  // namespace

std::string monitor_path(const Expr& expr) {
  const std::string path = expr_access_path(expr);
  return path.empty() ? minilang::expr_text(expr) : path;
}

bool LocksetAnalysis::join(State& into, const State& from) const {
  std::size_t common = 0;
  while (common < into.held.size() && common < from.held.size() &&
         into.held[common] == from.held[common])
    ++common;
  if (common == into.held.size()) return false;
  into.held.resize(common);
  return true;
}

void LocksetAnalysis::transfer(const CfgNode& node, State& state) const {
  if (node.kind == CfgNode::Kind::kSyncEnter && node.stmt != nullptr &&
      node.stmt->expr) {
    state.held.push_back(monitor_path(*node.stmt->expr));
  } else if (node.kind == CfgNode::Kind::kSyncExit && !state.held.empty()) {
    state.held.pop_back();
  }
}

void summarize_concurrency(const Program& program, const analysis::CallGraph& graph,
                           const SummaryMap& map, const FuncDecl& fn, const Cfg& cfg,
                           FunctionSummary* out) {
  LocksetAnalysis locksets(program, graph, &map);
  const DataflowResult<LocksetAnalysis> result = run_forward(cfg, locksets);
  const analysis::Condensation condensation = graph.condensation();
  const int own_component = condensation.component_index(fn.name);

  const auto record_access = [&](const std::string& base, const std::string& field,
                                 bool is_write, const minilang::SourceLoc& loc,
                                 const std::vector<std::string>& held) {
    FieldAccessSite site;
    site.function = fn.name;
    site.line = loc.line;
    site.column = loc.column;
    site.is_write = is_write;
    site.base = base;
    site.lockset.insert(held.begin(), held.end());
    insert_site(out->field_locks[field], std::move(site));
  };

  for (const CfgNode& node : cfg.nodes()) {
    if (!result.reached[static_cast<std::size_t>(node.id)]) continue;
    const std::vector<std::string>& held =
        result.in[static_cast<std::size_t>(node.id)].held;

    // Direct acquisition: `sync (m)` acquires m while `held` is in force.
    if (node.kind == CfgNode::Kind::kSyncEnter && node.stmt != nullptr &&
        node.stmt->expr) {
      const std::string inner = monitor_path(*node.stmt->expr);
      out->acquired_locks.emplace(
          inner, SummarySite{fn.name, node.loc.line, node.loc.column});
      for (const std::string& outer : held) {
        if (outer == inner) continue;  // re-entrant by name: not an ordering
        out->lock_order_edges.insert(
            {outer, inner, fn.name, node.loc.line, node.loc.column, ""});
      }
    }

    // Field accesses under the must-held lockset.
    if (node.stmt != nullptr && node.stmt->kind == Stmt::Kind::kAssign) {
      const std::string path = expr_access_path(*node.stmt->expr);
      const std::size_t dot = path.rfind('.');
      if (dot != std::string::npos)
        record_access(path.substr(0, dot), path.substr(dot + 1), /*is_write=*/true,
                      node.stmt->loc, held);
      std::vector<std::pair<std::string, std::string>> reads;
      if (node.stmt->expr2) collect_field_reads(*node.stmt->expr2, reads);
      // The lvalue's base chain is read to reach the written field.
      if (node.stmt->expr->kind == Expr::Kind::kField && node.stmt->expr->args.size() == 1 &&
          node.stmt->expr->args[0])
        collect_field_reads(*node.stmt->expr->args[0], reads);
      for (const auto& [base, field] : reads)
        record_access(base, field, /*is_write=*/false, node.stmt->loc, held);
    } else if (node.stmt != nullptr && node.kind != CfgNode::Kind::kSyncExit) {
      std::vector<std::pair<std::string, std::string>> reads;
      for_each_node_expr(node, [&](const Expr& e) { collect_field_reads(e, reads); });
      for (const auto& [base, field] : reads)
        record_access(base, field, /*is_write=*/false, node.stmt->loc, held);
    }

    // Calls: import the callee's concurrency facts into this namespace.
    // Same-SCC imports stay verbatim — argument rewriting on a recursive
    // cycle would grow paths forever ("x" -> "x.next" -> "x.next.next").
    std::vector<const Expr*> calls;
    for_each_node_expr(node, [&](const Expr& e) { collect_calls(e, calls); });
    for (const Expr* call : calls) {
      const FunctionSummary* callee = map.find(call->text);
      if (callee == nullptr) continue;
      if (callee->concurrency_degraded) out->concurrency_degraded = true;
      const FuncDecl* decl = program.find_function(call->text);
      const bool same_scc =
          condensation.component_index(call->text) == own_component;
      const auto import = [&](const std::string& path) {
        return same_scc ? path : rewrite_path(path, *call, decl);
      };

      for (const auto& [lock, site] : callee->acquired_locks) {
        const std::string imported = import(lock);
        out->acquired_locks.emplace(imported, site);
        for (const std::string& outer : held) {
          if (outer == imported) continue;
          out->lock_order_edges.insert({outer, imported, site.function, site.line,
                                        site.column, call->text});
        }
      }
      for (const LockOrderEdge& edge : callee->lock_order_edges) {
        LockOrderEdge imported = edge;
        imported.first = import(edge.first);
        imported.second = import(edge.second);
        if (imported.via.empty()) imported.via = call->text;
        if (imported.first != imported.second)
          out->lock_order_edges.insert(std::move(imported));
      }
      for (const auto& [field, fls] : callee->field_locks) {
        FieldLockSummary& mine = out->field_locks[field];
        mine.truncated = mine.truncated || fls.truncated;
        for (const FieldAccessSite& site : fls.sites) {
          FieldAccessSite imported = site;
          imported.base = import(site.base);
          std::set<std::string> lockset;
          for (const std::string& lock : site.lockset) lockset.insert(import(lock));
          lockset.insert(held.begin(), held.end());
          imported.lockset = std::move(lockset);
          insert_site(mine, std::move(imported));
        }
      }
    }
  }
}

std::string LockCycle::render() const {
  std::string text;
  for (const LockOrderEdge& edge : edges) {
    if (!text.empty()) text += "; ";
    text += render_edge(edge);
  }
  return text;
}

LockGraph LockGraph::build(const Program& program, const analysis::CallGraph& graph,
                           const SummaryMap& summaries) {
  (void)program;
  LockGraph lock_graph;
  for (const FuncDecl* root : thread_roots(graph)) {
    const FunctionSummary* summary = summaries.find(root->name);
    if (summary == nullptr) continue;
    if (summary->concurrency_degraded) lock_graph.degraded = true;
    for (const LockOrderEdge& edge : summary->lock_order_edges)
      if (edge.first != edge.second) lock_graph.edges.insert(edge);
  }

  MonitorScc scc;
  for (const LockOrderEdge& edge : lock_graph.edges) {
    scc.succs[edge.first].push_back(edge.second);
    scc.succs[edge.second];  // ensure the node exists
  }
  for (const auto& [node, _] : scc.succs)
    if (scc.index.find(node) == scc.index.end()) scc.visit(node);

  for (std::vector<std::string>& component : scc.components) {
    if (component.size() < 2) continue;  // self-loops were excluded above
    LockCycle cycle;
    std::sort(component.begin(), component.end());
    const std::set<std::string> members(component.begin(), component.end());
    cycle.monitors = std::move(component);
    for (const LockOrderEdge& edge : lock_graph.edges)
      if (members.count(edge.first) > 0 && members.count(edge.second) > 0)
        cycle.edges.push_back(edge);
    lock_graph.cycles.push_back(std::move(cycle));
  }
  // Deterministic cycle order: by first monitor name.
  std::sort(lock_graph.cycles.begin(), lock_graph.cycles.end(),
            [](const LockCycle& a, const LockCycle& b) { return a.monitors < b.monitors; });
  return lock_graph;
}

std::map<std::string, FieldAccesses> shared_field_accesses(
    const Program& program, const analysis::CallGraph& graph,
    const SummaryMap& summaries) {
  (void)program;
  std::map<std::string, FieldAccesses> index;
  for (const FuncDecl* root : thread_roots(graph)) {
    const FunctionSummary* summary = summaries.find(root->name);
    if (summary == nullptr) continue;
    for (const auto& [field, fls] : summary->field_locks) {
      FieldAccesses& accesses = index[field];
      accesses.truncated =
          accesses.truncated || fls.truncated || summary->concurrency_degraded;
      for (const FieldAccessSite& site : fls.sites)
        accesses.sites.emplace_back(root->name, site);
    }
  }
  return index;
}

bool lockset_guards(const std::set<std::string>& lockset, const std::string& base) {
  const std::string base_tail = name_tail(base);
  for (const std::string& monitor : lockset) {
    const std::string tail = name_tail(monitor);
    if (tail == base_tail || base_tail.rfind(tail + ".", 0) == 0) return true;
  }
  return false;
}

bool lockset_covers(const std::set<std::string>& lockset, const std::string& guard) {
  for (const std::string& monitor : lockset)
    if (monitor == guard || name_tail(monitor) == guard) return true;
  return false;
}

std::vector<Diagnostic> deadlock_diagnostics(const LockGraph& graph) {
  std::vector<Diagnostic> out;
  for (const LockCycle& cycle : graph.cycles) {
    if (cycle.edges.empty()) continue;
    std::string monitors;
    for (const std::string& monitor : cycle.monitors) {
      if (!monitors.empty()) monitors += ", ";
      monitors += "'" + monitor + "'";
    }
    Diagnostic diag;
    diag.analysis = "deadlock";
    diag.severity = Severity::kError;
    diag.function = cycle.edges.front().function;
    diag.loc = {cycle.edges.front().line, cycle.edges.front().column};
    diag.message = "potential deadlock: lock-order cycle between " + monitors + ": " +
                   cycle.render();
    out.push_back(std::move(diag));
  }
  return out;
}

std::vector<Diagnostic> race_diagnostics(const Program& program,
                                         const analysis::CallGraph& graph,
                                         const SummaryMap& summaries) {
  std::vector<Diagnostic> out;
  const std::map<std::string, FieldAccesses> index =
      shared_field_accesses(program, graph, summaries);
  for (const auto& [field, accesses] : index) {
    std::set<std::string> roots;
    for (const auto& [root, site] : accesses.sites) roots.insert(root);
    if (roots.size() < 2) continue;

    const FieldAccessSite* guarded = nullptr;
    bool any_write = false;
    for (const auto& [root, site] : accesses.sites) {
      if (site.is_write) any_write = true;
      if (guarded == nullptr && lockset_guards(site.lockset, site.base))
        guarded = &site;
    }
    if (!any_write || guarded == nullptr) continue;
    std::string guard_monitor;
    for (const std::string& monitor : guarded->lockset)
      if (lockset_guards({monitor}, guarded->base)) {
        guard_monitor = name_tail(monitor);
        break;
      }

    std::string root_list;
    for (const std::string& root : roots) {
      if (!root_list.empty()) root_list += ", ";
      root_list += root;
    }

    std::set<std::string> reported;
    for (const auto& [root, site] : accesses.sites) {
      if (!site.is_write || lockset_guards(site.lockset, site.base)) continue;
      const std::string key = locate(site.function, site.line, site.column);
      if (!reported.insert(key).second) continue;
      Diagnostic diag;
      diag.analysis = "race";
      diag.severity = Severity::kError;
      diag.function = site.function;
      diag.loc = {site.line, site.column};
      diag.message = "possible race: field '" + field + "' of '" +
                     name_tail(site.base) + "' written without monitor '" +
                     guard_monitor + "' held, but guarded at " +
                     locate(guarded->function, guarded->line, guarded->column) +
                     " (thread roots: " + root_list + ")";
      out.push_back(std::move(diag));
    }
  }
  return out;
}

}  // namespace lisa::staticcheck
