#include "obs/explain.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <utility>

#include "minilang/interp.hpp"
#include "minilang/printer.hpp"
#include "support/strings.hpp"

namespace lisa::obs {

using minilang::FuncDecl;
using minilang::ObjectPtr;
using minilang::Program;
using minilang::StateAccess;
using minilang::Stmt;
using minilang::Value;
using smt::Atom;
using smt::CmpOp;
using smt::Formula;
using smt::FormulaPtr;

namespace {

constexpr std::size_t kMaxSteps = 400;
constexpr std::int64_t kReplayFuel = 200'000;

/// Thrown by the narrator once a replay has reproduced the violation: the
/// remaining test body adds nothing, and interp.cpp's catch-all sites all
/// rethrow, so this unwinds cleanly out of run_test.
struct StopReplay {};

bool concrete_cmp(std::int64_t a, CmpOp op, std::int64_t b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

std::string truncate(std::string text, std::size_t limit) {
  if (text.size() > limit) text = text.substr(0, limit - 3) + "...";
  return text;
}

/// Dotted access path of a var/field chain ("" for anything else). A local
/// copy of the staticcheck helper: explain sits below lisa_staticcheck in
/// the layer graph.
std::string access_path_of(const minilang::Expr& expr) {
  if (expr.kind == minilang::Expr::Kind::kVar) return expr.text;
  if (expr.kind == minilang::Expr::Kind::kField && expr.args.size() == 1 &&
      expr.args[0]) {
    const std::string base = access_path_of(*expr.args[0]);
    return base.empty() ? "" : base + "." + expr.text;
  }
  return "";
}

/// Monitor names from summaries may carry `fn::` namespace prefixes; the
/// runtime sync-header text never does. Compare the de-namespaced tails.
std::string monitor_tail(const std::string& name) {
  const std::size_t sep = name.rfind("::");
  return sep == std::string::npos ? name : name.substr(sep + 2);
}

bool monitor_matches(const std::string& runtime, const std::string& name) {
  return monitor_tail(runtime) == monitor_tail(name);
}

std::string value_brief(const Value& v) {
  if (v.is_null()) return "null";
  if (v.is_int()) return std::to_string(v.as_int());
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  if (v.is_string()) return "\"" + truncate(v.as_string(), 24) + "\"";
  if (v.is_object()) {
    const ObjectPtr& obj = v.as_object();
    return obj == nullptr ? "null" : "<" + obj->struct_name + ">";
  }
  if (v.is_list())
    return "list(len=" + std::to_string(v.as_list() == nullptr ? 0 : v.as_list()->size()) + ")";
  if (v.is_map())
    return "map(len=" + std::to_string(v.as_map() == nullptr ? 0 : v.as_map()->size()) + ")";
  return "?";
}

/// One model assignment to force into the live replay state. Parsed from the
/// checker's canonical model names:
///   frame::root.fields[#null]   — local `root` of function `frame`
///   obj<N>.fields[#null]        — heap object with identity N (concolic)
///   root.fields[#null]          — target-frame local (no frame prefix)
struct Injection {
  std::string var;                 // original model variable name
  std::string frame;               // owning function ("" = target frame)
  std::uint64_t object_id = 0;     // nonzero for identity names
  std::vector<std::string> path;   // root + fields (identity names: fields)
  bool null_marker = false;
  bool is_bool = false;
  bool bool_value = false;
  std::int64_t int_value = 0;
};

void parse_injection(const std::string& name, bool is_bool, bool bool_value,
                     std::int64_t int_value, std::vector<Injection>* out) {
  // Placeholder atoms for uninstantiable contract parts are not locations.
  if (support::starts_with(name, "opaque:")) return;
  Injection inj;
  inj.var = name;
  std::string body = name;
  if (support::ends_with(body, "#null")) {
    inj.null_marker = true;
    body = body.substr(0, body.size() - 5);
  }
  const std::size_t sep = body.find("::");
  if (sep != std::string::npos) {
    inj.frame = body.substr(0, sep);
    body = body.substr(sep + 2);
  }
  if (inj.frame.empty() && support::starts_with(body, "obj")) {
    std::size_t i = 3;
    std::uint64_t id = 0;
    bool digits = false;
    while (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i])) != 0) {
      id = id * 10 + static_cast<std::uint64_t>(body[i] - '0');
      ++i;
      digits = true;
    }
    if (digits && i < body.size() && body[i] == '.') {
      inj.object_id = id;
      body = body.substr(i + 1);
    }
  }
  for (std::string& segment : support::split(body, '.')) inj.path.push_back(std::move(segment));
  if (inj.path.empty() || inj.path.front().empty()) return;
  // Opaque roots ("!opaque") are unmappable by construction: skip.
  if (inj.frame.rfind('!', 0) == 0 || inj.path.front().rfind('!', 0) == 0) return;
  inj.is_bool = is_bool;
  inj.bool_value = bool_value;
  inj.int_value = int_value;
  out->push_back(std::move(inj));
}

std::vector<Injection> parse_model(const NarrationRequest& request) {
  std::vector<Injection> out;
  for (const auto& [name, value] : request.model_bools)
    parse_injection(name, true, value, 0, &out);
  for (const auto& [name, value] : request.model_ints)
    parse_injection(name, false, false, value, &out);
  return out;
}

/// Heap object with the given identity, reachable from the live locals.
/// Interp allocation order is deterministic, so a fresh replay of the same
/// test reassigns the same ids the concolic engine saw.
ObjectPtr find_object(StateAccess& state, std::uint64_t object_id) {
  std::vector<Value> queue;
  std::set<const void*> seen;
  for (const std::string& name : state.local_names()) {
    Value* slot = state.lookup(name);
    if (slot != nullptr) queue.push_back(*slot);
  }
  for (std::size_t i = 0; i < queue.size() && i < 4096; ++i) {
    const Value value = queue[i];
    if (value.is_object()) {
      const ObjectPtr& obj = value.as_object();
      if (obj == nullptr || !seen.insert(obj.get()).second) continue;
      if (obj->object_id == object_id) return obj;
      for (const auto& [field, field_value] : obj->fields) queue.push_back(field_value);
    } else if (value.is_list()) {
      if (value.as_list() != nullptr)
        for (const Value& item : *value.as_list()) queue.push_back(item);
    } else if (value.is_map()) {
      if (value.as_map() != nullptr)
        for (const auto& [key, item] : *value.as_map()) queue.push_back(item);
    }
  }
  return nullptr;
}

/// Resolves a dotted target-frame path against the live frame.
bool resolve_value(StateAccess& state, const std::string& dotted, Value* out) {
  const std::vector<std::string> segments = support::split(dotted, '.');
  if (segments.empty()) return false;
  Value* root = state.lookup(segments.front());
  if (root == nullptr) return false;
  Value current = *root;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    if (!current.is_object() || current.as_object() == nullptr) return false;
    const auto it = current.as_object()->fields.find(segments[i]);
    if (it == current.as_object()->fields.end()) return false;
    current = it->second;
  }
  *out = current;
  return true;
}

/// The replay observer: injects witness state, records the step trace with
/// variable deltas, and evaluates the predicate at every target arrival.
class Narrator final : public minilang::ExecObserver {
 public:
  Narrator(const NarrationRequest& request, const std::set<int>& targets,
           std::vector<Injection> injections, bool structural, bool interleaving,
           Narration* out)
      : request_(&request),
        targets_(&targets),
        injections_(std::move(injections)),
        structural_(structural),
        interleaving_(interleaving),
        out_(out) {}

  [[nodiscard]] bool wants_state() override { return true; }

  void on_state(const FuncDecl& fn, const Stmt& stmt, StateAccess& state) override {
    const bool at_target =
        !structural_ && !interleaving_ && targets_->count(stmt.id) > 0;
    apply_injections(fn, state, at_target);
    record_step(fn, stmt, state);
    if (interleaving_) check_interleaving(stmt, state);
    if (at_target) evaluate_predicate(state);
  }

  void on_blocking(const std::string& name, int sync_depth) override {
    if (!structural_ || sync_depth <= 0) return;
    target_reached_ = true;
    if (!out_->steps.empty()) {
      std::string& note = out_->steps.back().note;
      if (!note.empty()) note += "; ";
      note += "blocking call '" + name + "' while holding " + std::to_string(sync_depth) +
              " monitor(s)";
    }
    out_->kind = "structural-replay";
    out_->reproduced = true;
    out_->detail = "blocking call '" + name + "' executed under a held monitor (depth " +
                   std::to_string(sync_depth) + ")";
    throw StopReplay{};
  }

  /// Finalizes the non-reproducing outcomes after the replay returns.
  void finish() {
    if (out_->reproduced) return;
    if (truncated_) out_->detail = append_detail(out_->detail, "step trace truncated");
    if (target_reached_) {
      out_->kind = "not-reproduced";
      out_->detail = append_detail(
          structural_ ? "" : "replay reached the target but the predicate held",
          out_->detail);
    } else {
      out_->kind = "unavailable";
      out_->detail = append_detail(
          structural_ ? "no blocking call executed under a held monitor"
          : interleaving_
              ? "no replay exercised a cycle edge or an unguarded write"
              : "replay never reached the target statement",
          out_->detail);
    }
  }

 private:
  static std::string append_detail(std::string base, const std::string& extra) {
    if (extra.empty()) return base;
    if (base.empty()) return extra;
    return base + "; " + extra;
  }

  void note(std::string text) {
    if (!pending_note_.empty()) pending_note_ += "; ";
    pending_note_ += std::move(text);
  }

  // -- interleaving reproduction --------------------------------------------

  /// Appends `text` to the last recorded step's note (the step for `stmt`).
  void annotate_last_step(const std::string& text) {
    if (out_->steps.empty()) return;
    std::string& note = out_->steps.back().note;
    if (!note.empty()) note += "; ";
    note += text;
  }

  /// Tracks the concrete monitor stack (by sync-header text) against the
  /// interpreter's sync depth, and reproduces when a lock-order cycle edge
  /// is exercised or a guarded field is written with its guard not held.
  void check_interleaving(const Stmt& stmt, StateAccess& state) {
    const int raw_depth = state.sync_depth();
    const std::size_t depth =
        raw_depth > 0 ? static_cast<std::size_t>(raw_depth) : 0;
    while (monitors_.size() > depth) monitors_.pop_back();
    if (monitors_.size() < depth) {
      // Entered sync block(s) since the last observed statement; the newly
      // held monitor is the last sync header the replay passed.
      while (monitors_.size() < depth) monitors_.push_back(pending_monitor_);
      const std::string& inner = monitors_.back();
      for (std::size_t i = 0; i + 1 < monitors_.size(); ++i) {
        const std::string& outer = monitors_[i];
        for (const auto& [edge_outer, edge_inner] : request_->cycle_edges) {
          if (!monitor_matches(outer, edge_outer) ||
              !monitor_matches(inner, edge_inner))
            continue;
          annotate_last_step("acquired '" + inner + "' while holding '" + outer + "'");
          out_->kind = "interleaving-replay";
          out_->reproduced = true;
          out_->detail = "lock-order cycle edge exercised: acquired '" + inner +
                         "' while holding '" + outer + "' (cycle edge '" +
                         edge_outer + "' -> '" + edge_inner + "')";
          throw StopReplay{};
        }
      }
    }
    if (stmt.kind == Stmt::Kind::kSync && stmt.expr)
      pending_monitor_ = minilang::expr_text(*stmt.expr);

    if (request_->guarded_field.empty() || stmt.kind != Stmt::Kind::kAssign ||
        !stmt.expr)
      return;
    const std::string path = access_path_of(*stmt.expr);
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos || path.substr(dot + 1) != request_->guarded_field)
      return;
    for (const std::string& monitor : monitors_)
      if (monitor_matches(monitor, request_->guard_monitor)) return;
    annotate_last_step("writes '" + path + "' without '" + request_->guard_monitor +
                       "' held");
    out_->kind = "interleaving-replay";
    out_->reproduced = true;
    out_->detail = "write to guarded field '" + path + "' with monitor '" +
                   request_->guard_monitor + "' not held";
    throw StopReplay{};
  }

  // -- witness injection ----------------------------------------------------

  void apply_injections(const FuncDecl& fn, StateAccess& state, bool at_target) {
    for (const Injection& inj : injections_) {
      const bool frame_match = !inj.frame.empty() && inj.frame == fn.name;
      const bool identity = inj.object_id != 0;
      const bool local_at_target = inj.frame.empty() && !identity && at_target;
      if (frame_match || identity || local_at_target) apply_one(inj, state);
    }
  }

  /// The value the injection forces, given what currently sits there.
  /// Returns false when the witness demands state the narrator cannot
  /// fabricate (a non-null object where none exists).
  bool make_value(const Injection& inj, const Value& current, Value* out) {
    if (inj.null_marker) {
      if (inj.bool_value) {
        *out = Value::null();
        return true;
      }
      if (current.is_null()) {
        if (noted_skips_.insert(inj.var).second)
          note("cannot construct non-null witness for " + inj.var);
        return false;
      }
      *out = current;  // already non-null: the constraint holds as-is
      return true;
    }
    *out = inj.is_bool ? Value::of_bool(inj.bool_value) : Value::of_int(inj.int_value);
    return true;
  }

  void apply_one(const Injection& inj, StateAccess& state) {
    ObjectPtr parent;
    std::string leaf;
    Value current;
    if (inj.object_id != 0) {
      ObjectPtr obj = find_object(state, inj.object_id);
      if (obj == nullptr) return;
      Value cursor = Value::of_object(std::move(obj));
      if (!walk_to_parent(cursor, inj.path, 0, &parent, &leaf, &current)) return;
    } else {
      Value* slot = state.lookup(inj.path.front());
      if (slot == nullptr) return;
      if (inj.path.size() == 1) {
        Value next;
        if (!make_value(inj, *slot, &next)) return;
        if (value_brief(*slot) != value_brief(next))
          note("witness injected: " + inj.var + " := " + value_brief(next));
        *slot = std::move(next);
        return;
      }
      if (!walk_to_parent(*slot, inj.path, 1, &parent, &leaf, &current)) return;
    }
    Value next;
    if (!make_value(inj, current, &next)) return;
    if (value_brief(current) != value_brief(next))
      note("witness injected: " + inj.var + " := " + value_brief(next));
    parent->fields[leaf] = std::move(next);
  }

  /// Walks path[first..] from `root` to the object owning the leaf field.
  static bool walk_to_parent(const Value& root, const std::vector<std::string>& path,
                             std::size_t first, ObjectPtr* parent, std::string* leaf,
                             Value* current) {
    Value cursor = root;
    for (std::size_t i = first; i + 1 < path.size(); ++i) {
      if (!cursor.is_object() || cursor.as_object() == nullptr) return false;
      const auto it = cursor.as_object()->fields.find(path[i]);
      if (it == cursor.as_object()->fields.end()) return false;
      cursor = it->second;
    }
    if (!cursor.is_object() || cursor.as_object() == nullptr) return false;
    *parent = cursor.as_object();
    *leaf = path.back();
    const auto it = (*parent)->fields.find(*leaf);
    *current = it == (*parent)->fields.end() ? Value::null() : it->second;
    return true;
  }

  // -- step trace -----------------------------------------------------------

  /// Scalar view of the visible locals, one depth of object fields included
  /// (enough to show `s.is_closing: false -> true` deltas).
  static std::map<std::string, std::string> snapshot_of(StateAccess& state) {
    std::map<std::string, std::string> snapshot;
    for (const std::string& name : state.local_names()) {
      Value* slot = state.lookup(name);
      if (slot == nullptr) continue;
      snapshot[name] = value_brief(*slot);
      if (slot->is_object() && slot->as_object() != nullptr) {
        for (const auto& [field, value] : slot->as_object()->fields)
          if (!value.is_object() && !value.is_list() && !value.is_map())
            snapshot[name + "." + field] = value_brief(value);
      }
    }
    return snapshot;
  }

  void record_step(const FuncDecl& fn, const Stmt& stmt, StateAccess& state) {
    std::map<std::string, std::string> snapshot = snapshot_of(state);
    // The state before this statement shows what the *previous* statement
    // did: attach the delta to the step already recorded for it.
    if (!out_->steps.empty() && last_fn_ == fn.name && !last_snapshot_.empty()) {
      std::string delta;
      for (const auto& [name, value] : snapshot) {
        const auto it = last_snapshot_.find(name);
        if (it != last_snapshot_.end() && it->second == value) continue;
        if (!delta.empty()) delta += ", ";
        delta += it == last_snapshot_.end() ? name + " := " + value
                                            : name + ": " + it->second + " -> " + value;
      }
      if (!delta.empty()) {
        std::string& prev = out_->steps.back().note;
        if (!prev.empty()) prev += "; ";
        prev += delta;
      }
    }
    last_fn_ = fn.name;
    last_snapshot_ = std::move(snapshot);
    if (out_->steps.size() >= kMaxSteps) {
      truncated_ = true;
      pending_note_.clear();
      return;
    }
    NarrationStep step;
    step.function = fn.name;
    step.line = stmt.loc.line;
    step.stmt = truncate(minilang::stmt_header_text(stmt), 96);
    step.sync_depth = state.sync_depth();
    step.note = std::exchange(pending_note_, std::string());
    out_->steps.push_back(std::move(step));
  }

  // -- predicate evaluation at the target -----------------------------------

  bool eval_atom(StateAccess& state, const Atom& atom, bool* ok, std::string* shown) {
    Value value;
    if (atom.kind == Atom::Kind::kBoolVar) {
      if (support::ends_with(atom.lhs, "#null")) {
        const std::string path = atom.lhs.substr(0, atom.lhs.size() - 5);
        if (!resolve_value(state, path, &value)) {
          *ok = false;
          *shown = "unresolvable";
          return true;
        }
        *shown = path + " = " + value_brief(value);
        return value.is_null();
      }
      if (!resolve_value(state, atom.lhs, &value) || !value.is_bool()) {
        *ok = false;
        *shown = "unresolvable";
        return true;
      }
      *shown = atom.lhs + " = " + value_brief(value);
      return value.as_bool();
    }
    if (!resolve_value(state, atom.lhs, &value) || !value.is_int()) {
      *ok = false;
      *shown = "unresolvable";
      return true;
    }
    std::int64_t rhs = atom.rhs_const;
    std::string rhs_shown = std::to_string(rhs);
    if (atom.kind == Atom::Kind::kCmpVar) {
      Value rhs_value;
      if (!resolve_value(state, atom.rhs_var, &rhs_value) || !rhs_value.is_int()) {
        *ok = false;
        *shown = "unresolvable";
        return true;
      }
      rhs = rhs_value.as_int();
      rhs_shown = atom.rhs_var + " = " + std::to_string(rhs);
    }
    *shown = atom.lhs + " = " + std::to_string(value.as_int()) + ", " + rhs_shown;
    return concrete_cmp(value.as_int(), atom.op, rhs);
  }

  /// Returns the concrete value of `f`. `negated` tracks the polarity of the
  /// enclosing negations so each recorded term is the *literal* as it appears
  /// in the contract (NNF view): "!(s.is_closing)" holds when is_closing is
  /// false, which is what a reader checks against the trace.
  bool eval_formula(StateAccess& state, const FormulaPtr& f,
                    std::vector<PredicateTerm>* terms, bool* ok, bool negated = false) {
    switch (f->kind) {
      case Formula::Kind::kTrue: return true;
      case Formula::Kind::kFalse: return false;
      case Formula::Kind::kNot:
        return !eval_formula(state, f->children[0], terms, ok, !negated);
      case Formula::Kind::kAnd: {
        bool all = true;
        for (const FormulaPtr& child : f->children)
          all = eval_formula(state, child, terms, ok, negated) && all;
        return all;
      }
      case Formula::Kind::kOr: {
        bool any = false;
        for (const FormulaPtr& child : f->children)
          any = eval_formula(state, child, terms, ok, negated) || any;
        return any;
      }
      case Formula::Kind::kAtom: {
        PredicateTerm term;
        bool term_ok = true;
        const bool raw = eval_atom(state, f->atom, &term_ok, &term.value);
        term.text = negated ? "!(" + f->atom.key() + ")" : f->atom.key();
        term.holds = negated ? !raw : raw;
        if (!term_ok) *ok = false;
        terms->push_back(term);
        return raw;
      }
    }
    return true;
  }

  void evaluate_predicate(StateAccess& state) {
    target_reached_ = true;
    if (request_->contract == nullptr) return;
    std::vector<PredicateTerm> terms;
    bool ok = true;
    const bool holds = eval_formula(state, request_->contract, &terms, &ok);
    out_->predicate = std::move(terms);  // latest arrival wins
    if (ok && !holds) {
      out_->kind = "state-replay";
      out_->reproduced = true;
      out_->detail =
          "concrete state at the target statement violates the contract predicate";
      throw StopReplay{};
    }
  }

  const NarrationRequest* request_;
  const std::set<int>* targets_;
  std::vector<Injection> injections_;
  bool structural_ = false;
  bool interleaving_ = false;
  Narration* out_;
  /// Concrete monitor stack mirrored from sync_depth (interleaving mode).
  std::vector<std::string> monitors_;
  std::string pending_monitor_;

  std::string pending_note_;
  std::string last_fn_;
  std::map<std::string, std::string> last_snapshot_;
  std::set<std::string> noted_skips_;
  bool target_reached_ = false;
  bool truncated_ = false;
};

}  // namespace

Narration narrate_counterexample(const Program& program, const NarrationRequest& request) {
  const bool structural = request.kind == "structural-pattern";
  const bool interleaving = request.kind == "interleaving-sensitive";
  std::set<int> targets;
  if (!structural && !interleaving) {
    program.for_each_stmt([&](const FuncDecl& fn, const Stmt& stmt) {
      if (fn.has_annotation("test")) return;
      if (minilang::stmt_header_text(stmt).find(request.target_fragment) != std::string::npos)
        targets.insert(stmt.id);
    });
  }
  const std::vector<Injection> injections = parse_model(request);

  std::vector<std::string> candidates;
  std::set<std::string> seen;
  for (const std::string& test : request.candidate_tests)
    if (seen.insert(test).second) candidates.push_back(test);

  Narration best;
  best.kind = "unavailable";
  best.detail = candidates.empty()
                    ? "no candidate test available"
                : structural ? "no test executed a blocking call under a held monitor"
                : interleaving
                    ? "no test exercised a cycle edge or an unguarded write"
                    : "no candidate test reached the target statement";

  for (const std::string& test : candidates) {
    Narration attempt;
    attempt.test = test;
    Narrator narrator(request, targets, injections, structural, interleaving, &attempt);
    minilang::Interp interp(program);
    interp.set_fuel(kReplayFuel);
    interp.set_observer(&narrator);
    try {
      interp.run_test(test);
    } catch (const StopReplay&) {
      // reproduced: the narrator cut the replay short.
    } catch (const std::exception&) {
      // Engine error mid-replay (injection made state the test body cannot
      // handle): keep whatever narration accumulated and move on.
    }
    narrator.finish();
    if (attempt.reproduced) return attempt;
    if (best.kind == "unavailable" && attempt.kind != "unavailable") best = std::move(attempt);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Terminal rendering
// ---------------------------------------------------------------------------

namespace {

void append_line(std::string* out, const std::string& line) {
  *out += line;
  *out += '\n';
}

}  // namespace

std::string render_capture_text(const ContractCapture& capture) {
  std::string out;
  append_line(&out, "contract " + capture.contract_id +
                        (capture.system.empty() ? "" : " (" + capture.system + ")") + " — " +
                        capture.verdict);
  if (!capture.description.empty()) append_line(&out, "  " + capture.description);
  append_line(&out, "  kind: " + capture.kind + "  target: \"" + capture.target_fragment +
                        "\"  fingerprint: " + capture.fingerprint);
  if (!capture.condition_text.empty())
    append_line(&out, "  condition: " + capture.condition_text);

  if (!capture.screen_verdict.empty()) {
    append_line(&out, "  screen: " + capture.screen_verdict +
                          (capture.screen_reason.empty() ? "" : " — " + capture.screen_reason));
    if (!capture.screen_witness.empty())
      append_line(&out, "    witness: " + capture.screen_witness);
  }

  if (capture.schedules_explored > 0 || !capture.schedule_conclusive) {
    append_line(&out, "  schedules: " + std::to_string(capture.schedules_explored) +
                          " explored — " +
                          (capture.schedule_conclusive ? "conclusive" : "INCONCLUSIVE"));
    if (!capture.schedule_reason.empty())
      append_line(&out, "    " + capture.schedule_reason);
    if (!capture.schedule_witness.empty())
      append_line(&out, "    witness: " + capture.schedule_witness);
  }

  if (!capture.facts.empty()) {
    append_line(&out, "  facts (" + std::to_string(capture.facts.size()) + "):");
    for (const FactEvidence& fact : capture.facts)
      append_line(&out, "    [" + fact.analysis + "] " + fact.function + ":" +
                            std::to_string(fact.line) + ": " + fact.fact);
  }

  if (!capture.paths.empty()) {
    append_line(&out, "  paths (" + std::to_string(capture.paths.size()) + "):");
    for (const PathEvidence& path : capture.paths) {
      append_line(&out, "    " + path.chain + " — " + path.verdict);
      if (!path.path_condition.empty())
        append_line(&out, "      pi: " + truncate(path.path_condition, 160));
      if (!path.counterexample.empty())
        append_line(&out, "      counterexample: " + path.counterexample);
      if (!path.detail.empty()) append_line(&out, "      " + path.detail);
    }
  }

  if (!capture.hits.empty()) {
    append_line(&out, "  concolic hits (" + std::to_string(capture.hits.size()) + "):");
    for (const HitEvidence& hit : capture.hits) {
      append_line(&out, "    " + hit.test + " @ " + hit.function + "#" +
                            std::to_string(hit.stmt_id) + " — " + hit.outcome +
                            (hit.witness.empty() ? "" : " | " + hit.witness));
    }
  }

  if (!capture.smt_queries.empty()) {
    append_line(&out, "  smt queries (" + std::to_string(capture.smt_queries.size()) + "):");
    for (const SmtQueryEvidence& query : capture.smt_queries)
      append_line(&out, "    [" + query.phase + "] " + query.status + " " + query.digest +
                            (query.model.empty() ? "" : " model " + query.model) +
                            (query.reason.empty() ? "" : " (" + query.reason + ")"));
  }

  if (capture.budget.attached) {
    std::string line = "  budget: " + std::string(capture.budget.exhausted
                                                      ? "exhausted (" + capture.budget.resource + ")"
                                                      : "within limits");
    for (const auto& [resource, amount] : capture.budget.charges)
      line += "  " + resource + "=" + std::to_string(amount);
    append_line(&out, line);
    if (!capture.budget.reason.empty()) append_line(&out, "    " + capture.budget.reason);
  }

  const Narration& narration = capture.narration;
  if (!narration.kind.empty()) {
    append_line(&out, "  narration: " + narration.kind +
                          (narration.test.empty() ? "" : " via " + narration.test) +
                          (narration.reproduced ? " — violation reproduced" : ""));
    if (!narration.detail.empty()) append_line(&out, "    " + narration.detail);
    // Interleaved traces tag every step with its thread: [t0] is the test
    // body, [tN] the N-th spawned thread. Serial narrations stay untagged.
    const bool interleaved = narration.kind == "schedule-replay";
    for (const NarrationStep& step : narration.steps) {
      std::string line = "    " +
                         (interleaved ? "[t" + std::to_string(step.thread) + "] " : "") +
                         step.function + ":" + std::to_string(step.line) + "  " +
                         step.stmt;
      if (step.sync_depth > 0) line += "  [sync " + std::to_string(step.sync_depth) + "]";
      if (!step.note.empty()) line += "  | " + step.note;
      append_line(&out, line);
    }
    if (!narration.predicate.empty()) {
      append_line(&out, "    predicate at the target:");
      for (const PredicateTerm& term : narration.predicate)
        append_line(&out, "      " + term.text + "  ->  " +
                              std::string(term.holds ? "holds" : "VIOLATED") + "  (" +
                              term.value + ")");
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// HTML rendering
// ---------------------------------------------------------------------------

namespace {

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c; break;
    }
  }
  return out;
}

const char* verdict_class(const std::string& verdict) {
  if (verdict == "violated") return "bad";
  if (verdict == "passed") return "good";
  return "warn";
}

void render_contract_html(const ContractCapture& capture, std::string* out) {
  *out += "<details class=\"contract\" " +
          std::string(capture.verdict == "violated" ? "open" : "") + ">\n";
  *out += "<summary><span class=\"badge " + std::string(verdict_class(capture.verdict)) +
          "\">" + html_escape(capture.verdict) + "</span> <code>" +
          html_escape(capture.contract_id) + "</code> " + html_escape(capture.description) +
          "</summary>\n";
  *out += "<p class=\"meta\">kind " + html_escape(capture.kind) + " · target <code>" +
          html_escape(capture.target_fragment) + "</code> · fingerprint <code>" +
          html_escape(capture.fingerprint) + "</code></p>\n";
  if (!capture.condition_text.empty())
    *out += "<p class=\"meta\">condition <code>" + html_escape(capture.condition_text) +
            "</code></p>\n";

  if (!capture.screen_verdict.empty()) {
    *out += "<h4>Static screen</h4><p>" + html_escape(capture.screen_verdict) + " — " +
            html_escape(capture.screen_reason) + "</p>\n";
    if (!capture.screen_witness.empty())
      *out += "<p class=\"meta\">witness <code>" + html_escape(capture.screen_witness) +
              "</code></p>\n";
  }

  if (capture.schedules_explored > 0 || !capture.schedule_conclusive) {
    *out += "<h4>Schedule exploration</h4><p>" +
            std::to_string(capture.schedules_explored) + " interleaving(s) explored — " +
            std::string(capture.schedule_conclusive ? "conclusive" : "<strong>inconclusive</strong>");
    if (!capture.schedule_reason.empty())
      *out += " · " + html_escape(capture.schedule_reason);
    *out += "</p>\n";
    if (!capture.schedule_witness.empty())
      *out += "<p class=\"meta\">witness <code>" + html_escape(capture.schedule_witness) +
              "</code></p>\n";
  }

  if (!capture.facts.empty()) {
    *out += "<h4>Dataflow facts</h4><table><tr><th>analysis</th><th>location</th>"
            "<th>fact</th></tr>\n";
    for (const FactEvidence& fact : capture.facts)
      *out += "<tr><td>" + html_escape(fact.analysis) + "</td><td>" +
              html_escape(fact.function) + ":" + std::to_string(fact.line) + "</td><td><code>" +
              html_escape(fact.fact) + "</code></td></tr>\n";
    *out += "</table>\n";
  }

  if (!capture.paths.empty()) {
    *out += "<h4>Execution paths</h4><table><tr><th>chain</th><th>verdict</th>"
            "<th>evidence</th></tr>\n";
    for (const PathEvidence& path : capture.paths) {
      std::string evidence;
      if (!path.path_condition.empty())
        evidence += "&pi;: <code>" + html_escape(path.path_condition) + "</code><br>";
      if (!path.counterexample.empty())
        evidence += "counterexample: <code>" + html_escape(path.counterexample) + "</code><br>";
      if (!path.detail.empty()) evidence += html_escape(path.detail);
      *out += "<tr><td><code>" + html_escape(path.chain) + "</code></td><td>" +
              html_escape(path.verdict) + "</td><td>" + evidence + "</td></tr>\n";
    }
    *out += "</table>\n";
  }

  if (!capture.hits.empty()) {
    *out += "<h4>Concolic hits</h4><table><tr><th>test</th><th>target</th><th>outcome</th>"
            "<th>witness</th></tr>\n";
    for (const HitEvidence& hit : capture.hits)
      *out += "<tr><td><code>" + html_escape(hit.test) + "</code></td><td>" +
              html_escape(hit.function) + "#" + std::to_string(hit.stmt_id) + "</td><td>" +
              html_escape(hit.outcome) + "</td><td><code>" + html_escape(hit.witness) +
              "</code></td></tr>\n";
    *out += "</table>\n";
  }

  if (!capture.smt_queries.empty()) {
    *out += "<details><summary>SMT queries (" + std::to_string(capture.smt_queries.size()) +
            ")</summary><table><tr><th>phase</th><th>status</th><th>digest</th>"
            "<th>query</th><th>model</th></tr>\n";
    for (const SmtQueryEvidence& query : capture.smt_queries)
      *out += "<tr><td>" + html_escape(query.phase) + "</td><td>" + html_escape(query.status) +
              "</td><td><code>" + html_escape(query.digest) + "</code></td><td><code>" +
              html_escape(query.query) + "</code></td><td><code>" +
              html_escape(query.model.empty() ? query.reason : query.model) +
              "</code></td></tr>\n";
    *out += "</table></details>\n";
  }

  if (capture.budget.attached) {
    *out += "<h4>Budget</h4><p>" +
            std::string(capture.budget.exhausted
                            ? "exhausted — " + html_escape(capture.budget.resource)
                            : "within limits");
    for (const auto& [resource, amount] : capture.budget.charges)
      *out += " · " + html_escape(resource) + " = " + std::to_string(amount);
    *out += "</p>\n";
  }

  const Narration& narration = capture.narration;
  if (!narration.kind.empty()) {
    *out += "<h4>Counterexample narration</h4><p>" + html_escape(narration.kind);
    if (!narration.test.empty()) *out += " via <code>" + html_escape(narration.test) + "</code>";
    if (narration.reproduced) *out += " — <strong>violation reproduced</strong>";
    *out += "</p>\n";
    if (!narration.detail.empty())
      *out += "<p class=\"meta\">" + html_escape(narration.detail) + "</p>\n";
    if (!narration.steps.empty()) {
      const bool interleaved = narration.kind == "schedule-replay";
      *out += "<table class=\"trace\"><tr><th>location</th><th>statement</th>"
              "<th>sync</th><th>notes</th></tr>\n";
      for (const NarrationStep& step : narration.steps)
        *out += "<tr><td>" +
                (interleaved ? "[t" + std::to_string(step.thread) + "] " : "") +
                html_escape(step.function) + ":" + std::to_string(step.line) +
                "</td><td><code>" + html_escape(step.stmt) + "</code></td><td>" +
                (step.sync_depth > 0 ? std::to_string(step.sync_depth) : "") + "</td><td>" +
                html_escape(step.note) + "</td></tr>\n";
      *out += "</table>\n";
    }
    if (!narration.predicate.empty()) {
      *out += "<table><tr><th>predicate term</th><th>concrete value</th><th>holds</th></tr>\n";
      for (const PredicateTerm& term : narration.predicate)
        *out += "<tr><td><code>" + html_escape(term.text) + "</code></td><td>" +
                html_escape(term.value) + "</td><td class=\"" +
                (term.holds ? "good\">holds" : "bad\">VIOLATED") + "</td></tr>\n";
      *out += "</table>\n";
    }
  }
  *out += "</details>\n";
}

}  // namespace

std::string render_ledger_html(const ProvenanceLedger& ledger) {
  std::string out;
  out +=
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
      "<title>LISA gate failure report</title>\n<style>\n"
      "body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:64rem;"
      "color:#1a1a2e;line-height:1.45}\n"
      "code{background:#f2f2f7;padding:0 .2em;border-radius:3px;"
      "font-size:.92em;word-break:break-all}\n"
      "table{border-collapse:collapse;margin:.5rem 0;width:100%}\n"
      "th,td{border:1px solid #d8d8e0;padding:.25rem .5rem;text-align:left;"
      "vertical-align:top;font-size:.9rem}\n"
      "th{background:#f7f7fb}\n"
      ".badge{padding:.1em .5em;border-radius:1em;font-size:.85em;color:#fff}\n"
      ".badge.bad,td.bad{background:#c0392b;color:#fff}\n"
      ".badge.good,td.good{background:#1e8449;color:#fff}\n"
      ".badge.warn{background:#b9770e}\n"
      ".meta{color:#555;font-size:.9rem;margin:.2rem 0}\n"
      "details.contract{border:1px solid #d8d8e0;border-radius:6px;"
      "padding:.5rem 1rem;margin:.75rem 0}\n"
      "summary{cursor:pointer;font-weight:600}\n"
      "h4{margin:.8rem 0 .2rem}\n"
      "</style></head><body>\n";
  out += "<h1>LISA gate failure report</h1>\n";
  out += "<p class=\"meta\">run fingerprint <code>" + html_escape(ledger.run_fingerprint()) +
         "</code> · " + std::to_string(ledger.size()) + " contract(s)</p>\n";

  const ProposalEvidence& proposal = ledger.proposal();
  if (!proposal.case_id.empty()) {
    out += "<h3>Inference provenance</h3><p>case <code>" + html_escape(proposal.case_id) +
           "</code> — " + (proposal.succeeded ? "proposal accepted" : "proposal FAILED") +
           " after " + std::to_string(proposal.attempts) + " attempt(s), " +
           std::to_string(proposal.transient_errors) + " transient error(s), " +
           std::to_string(proposal.validation_failures) + " validation failure(s)</p>\n";
    if (!proposal.high_level.empty())
      out += "<p class=\"meta\">" + html_escape(proposal.high_level) + "</p>\n";
    if (!proposal.error.empty())
      out += "<p class=\"meta\">error: " + html_escape(proposal.error) + "</p>\n";
  }

  for (const std::string& id : ledger.contract_ids()) {
    const ContractCapture* capture = ledger.find(id);
    if (capture != nullptr) render_contract_html(*capture, &out);
  }
  out += "</body></html>\n";
  return out;
}

}  // namespace lisa::obs
