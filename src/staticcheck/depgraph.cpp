#include "staticcheck/depgraph.hpp"

#include <algorithm>
#include <functional>

#include "staticcheck/analyses.hpp"
#include "staticcheck/dataflow.hpp"
#include "staticcheck/summaries.hpp"

namespace lisa::staticcheck {

using minilang::Expr;
using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;

bool path_mentions_field(const std::string& path, const std::string& field) {
  std::size_t dot = path.find('.');
  while (dot != std::string::npos) {
    const std::size_t start = dot + 1;
    std::size_t end = path.find('.', start);
    if (end == std::string::npos) end = path.size();
    if (path.compare(start, end - start, field) == 0) return true;
    dot = path.find('.', start);
  }
  return false;
}

// ---------------------------------------------------------------------------
// Post-dominator tree
// ---------------------------------------------------------------------------

PostDomTree PostDomTree::build(const Cfg& cfg) {
  PostDomTree tree;
  const std::size_t n = cfg.nodes().size();
  tree.pdom_.assign(n, {});
  tree.ipdom_.assign(n, -1);
  tree.cdeps_.assign(n, {});
  if (n == 0) return tree;

  std::set<int> all;
  for (std::size_t i = 0; i < n; ++i) all.insert(static_cast<int>(i));
  const int exit = cfg.exit();
  for (std::size_t i = 0; i < n; ++i)
    tree.pdom_[i] = static_cast<int>(i) == exit ? std::set<int>{exit} : all;

  // Iterative set intersection over the reversed CFG. Function CFGs have
  // tens of nodes, so the quadratic simplicity beats Lengauer–Tarjan here.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const int id = static_cast<int>(i);
      if (id == exit) continue;
      const CfgNode& node = cfg.node(id);
      std::set<int> meet;
      bool first = true;
      for (const CfgEdge& edge : node.succs) {
        const std::set<int>& succ = tree.pdom_[static_cast<std::size_t>(edge.to)];
        if (first) {
          meet = succ;
          first = false;
        } else {
          std::set<int> narrowed;
          std::set_intersection(meet.begin(), meet.end(), succ.begin(), succ.end(),
                                std::inserter(narrowed, narrowed.begin()));
          meet = std::move(narrowed);
        }
      }
      // Successor-free non-exit nodes post-dominate only themselves.
      meet.insert(id);
      if (meet != tree.pdom_[i]) {
        tree.pdom_[i] = std::move(meet);
        changed = true;
      }
    }
  }

  // Immediate post-dominator: the strict post-dominator closest to the
  // node. Strict post-dominators form a chain, so the closest one's pdom
  // set has exactly the size of the strict set.
  for (std::size_t i = 0; i < n; ++i) {
    const int id = static_cast<int>(i);
    for (const int candidate : tree.pdom_[i]) {
      if (candidate == id) continue;
      if (tree.pdom_[static_cast<std::size_t>(candidate)].size() == tree.pdom_[i].size() - 1) {
        tree.ipdom_[i] = candidate;
        break;
      }
    }
  }

  // Ferrante–Ottenstein–Warren: for each branch edge b→s, everything on the
  // post-dominator chain from s up to (excluding) ipdom(b) is
  // control-dependent on b.
  for (std::size_t i = 0; i < n; ++i) {
    const CfgNode& node = cfg.node(static_cast<int>(i));
    if (node.succs.size() < 2) continue;
    const int stop = tree.ipdom_[i];
    for (const CfgEdge& edge : node.succs) {
      int walk = edge.to;
      while (walk != -1 && walk != stop) {
        tree.cdeps_[static_cast<std::size_t>(walk)].push_back(static_cast<int>(i));
        walk = tree.ipdom_[static_cast<std::size_t>(walk)];
      }
    }
  }
  for (auto& deps : tree.cdeps_) {
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  }
  return tree;
}

// ---------------------------------------------------------------------------
// Definitions
// ---------------------------------------------------------------------------

bool Definition::may_write(const std::string& use_path) const {
  if (path == "*") return use_path.find('.') != std::string::npos;
  if (path.size() > 2 && path.compare(0, 2, "*.") == 0)
    return path_mentions_field(use_path, path.substr(2));
  if (path.size() > 2 && path.compare(path.size() - 2, 2, ".*") == 0) {
    const std::string base = path.substr(0, path.size() - 2);
    return use_path.size() > base.size() + 1 &&
           use_path.compare(0, base.size(), base) == 0 && use_path[base.size()] == '.';
  }
  return write_kills(path, use_path);
}

namespace {

/// Collects the maximal access paths `expr` reads. Recursion stops at a
/// var/field chain (reading "a.f" records "a.f", not also "a" — prefix
/// definitions still match through `write_kills`' extension rule).
void collect_read_paths(const Expr& expr, std::set<std::string>& out) {
  const std::string path = expr_access_path(expr);
  if (!path.empty()) {
    out.insert(path);
    return;
  }
  for (const auto& arg : expr.args)
    if (arg) collect_read_paths(*arg, out);
}

/// Access paths a node reads. For assignments the lvalue itself is not a
/// read, but a dotted lvalue reads its base ("a.f = x" reads "a").
std::set<std::string> node_read_paths(const CfgNode& node) {
  std::set<std::string> reads;
  if (node.stmt == nullptr) return reads;
  const Stmt& stmt = *node.stmt;
  if (stmt.kind == Stmt::Kind::kAssign) {
    if (stmt.expr2) collect_read_paths(*stmt.expr2, reads);
    if (stmt.expr) {
      const std::string lvalue = expr_access_path(*stmt.expr);
      if (!lvalue.empty()) {
        const std::size_t dot = lvalue.rfind('.');
        if (dot != std::string::npos) reads.insert(lvalue.substr(0, dot));
      } else {
        // Non-path lvalue (m[k] = v): everything in it is a read.
        collect_read_paths(*stmt.expr, reads);
      }
    }
    return reads;
  }
  for_each_node_expr(node, [&](const Expr& expr) { collect_read_paths(expr, reads); });
  return reads;
}

/// Reaching-definitions lattice: the set of definition indices that may
/// reach a node, unioned at joins.
struct ReachingDefsAnalysis {
  using State = std::set<std::size_t>;

  const std::vector<Definition>* defs = nullptr;
  /// Definition indices generated per node id.
  const std::vector<std::vector<std::size_t>>* gen = nullptr;

  [[nodiscard]] State boundary(const Cfg& cfg) const {
    // Parameter pseudo-definitions live on the entry node.
    State state;
    for (std::size_t i = 0; i < defs->size(); ++i)
      if ((*defs)[i].kind == Definition::Kind::kParam) state.insert(i);
    (void)cfg;
    return state;
  }

  bool join(State& into, const State& from) const {
    const std::size_t before = into.size();
    into.insert(from.begin(), from.end());
    return into.size() != before;
  }

  void transfer(const CfgNode& node, State& state) const {
    for (const std::size_t index : (*gen)[static_cast<std::size_t>(node.id)]) {
      const Definition& def = (*defs)[index];
      // Strong update only for dot-free paths written by let/assign: a
      // MiniLang local's name is its identity (no address-of, callees
      // cannot rebind caller locals). Field writes stay weak — aliases.
      if ((def.kind == Definition::Kind::kLet || def.kind == Definition::Kind::kAssign) &&
          def.path.find('.') == std::string::npos) {
        for (auto it = state.begin(); it != state.end();) {
          const Definition& old = (*defs)[*it];
          it = (old.path == def.path) ? state.erase(it) : std::next(it);
        }
      }
      state.insert(index);
    }
  }

  void refine(const Expr& guard, bool taken, State& state) const {
    (void)guard;
    (void)taken;
    (void)state;
  }
  void edge_effect(const CfgEdge& edge, State& state) const {
    (void)edge;
    (void)state;
  }
  void widen(State& state) const { (void)state; }
};

}  // namespace

FuncDepGraph FuncDepGraph::build(const FuncDecl& fn, const Program& program,
                                 const SummaryMap* summaries) {
  (void)program;
  FuncDepGraph graph;
  graph.cfg = Cfg::build(fn);
  graph.pdoms = PostDomTree::build(graph.cfg);
  if (summaries == nullptr) graph.degraded = true;

  const std::size_t n = graph.cfg.nodes().size();
  std::vector<std::vector<std::size_t>> gen(n);

  // Parameter pseudo-definitions (boundary of the reaching analysis).
  for (const auto& param : fn.params) {
    Definition def;
    def.kind = Definition::Kind::kParam;
    def.node = graph.cfg.entry();
    def.path = param.name;
    def.loc = fn.loc;
    graph.defs.push_back(std::move(def));
  }

  // Statement and call-effect definitions, per node.
  for (const CfgNode& node : graph.cfg.nodes()) {
    const auto add_def = [&](Definition def) {
      def.node = node.id;
      def.stmt = node.stmt;
      if (node.stmt != nullptr) def.loc = node.stmt->loc;
      gen[static_cast<std::size_t>(node.id)].push_back(graph.defs.size());
      graph.defs.push_back(std::move(def));
    };

    if (node.stmt != nullptr) {
      const Stmt& stmt = *node.stmt;
      if (node.kind == CfgNode::Kind::kStmt && stmt.kind == Stmt::Kind::kLet) {
        Definition def;
        def.kind = Definition::Kind::kLet;
        def.path = stmt.name;
        add_def(std::move(def));
      } else if (node.kind == CfgNode::Kind::kStmt && stmt.kind == Stmt::Kind::kAssign &&
                 stmt.expr) {
        const std::string lvalue = expr_access_path(*stmt.expr);
        if (!lvalue.empty()) {
          Definition def;
          def.kind = Definition::Kind::kAssign;
          def.path = lvalue;
          add_def(std::move(def));
        }
      }
    }

    // Call MOD effects: what the callee may write in the caller's frame.
    std::vector<const Expr*> calls;
    for_each_node_expr(node, [&](const Expr& top) {
      std::function<void(const Expr&)> walk = [&](const Expr& expr) {
        if (expr.kind == Expr::Kind::kCall) calls.push_back(&expr);
        for (const auto& arg : expr.args)
          if (arg) walk(*arg);
      };
      walk(top);
    });
    for (const Expr* call : calls) {
      if (summaries == nullptr) {
        Definition def;
        def.kind = Definition::Kind::kCallMod;
        def.path = "*";
        def.callee = call->text;
        add_def(std::move(def));
        continue;
      }
      const CallEffect effect = summaries->effect_of(call->text);
      if (effect.havoc_all) {
        graph.degraded = true;
        Definition def;
        def.kind = Definition::Kind::kCallMod;
        def.path = "*";
        def.callee = call->text;
        add_def(std::move(def));
        continue;
      }
      if (effect.mod_fields != nullptr) {
        for (const std::string& field : *effect.mod_fields) {
          Definition def;
          def.kind = Definition::Kind::kCallMod;
          def.path = "*." + field;
          def.callee = call->text;
          add_def(std::move(def));
        }
      }
      for (std::size_t arg = 0; arg < call->args.size(); ++arg) {
        if (!effect.writes_param(arg)) continue;
        const std::string path =
            call->args[arg] ? expr_access_path(*call->args[arg]) : std::string();
        if (path.empty()) continue;
        Definition def;
        def.kind = Definition::Kind::kCallMod;
        def.path = path + ".*";
        def.callee = call->text;
        add_def(std::move(def));
      }
    }
  }

  ReachingDefsAnalysis analysis;
  analysis.defs = &graph.defs;
  analysis.gen = &gen;
  const auto fixpoint = run_forward(graph.cfg, analysis);

  graph.reach_in.assign(n, {});
  graph.use_defs.assign(n, {});
  graph.reads.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    if (!fixpoint.reached[i]) continue;
    graph.reach_in[i] = fixpoint.in[i];
    graph.reads[i] = node_read_paths(graph.cfg.node(static_cast<int>(i)));
    for (const std::size_t def_index : graph.reach_in[i])
      for (const std::string& read : graph.reads[i])
        if (graph.defs[def_index].may_write(read)) {
          graph.use_defs[i].insert(def_index);
          break;
        }
  }
  return graph;
}

std::set<std::size_t> FuncDepGraph::used_defs() const {
  std::set<std::size_t> used;
  for (const auto& uses : use_defs) used.insert(uses.begin(), uses.end());
  return used;
}

void report_dead_defs(const FuncDepGraph& graph, std::vector<Diagnostic>& out) {
  const std::set<std::size_t> used = graph.used_defs();
  for (std::size_t i = 0; i < graph.defs.size(); ++i) {
    const Definition& def = graph.defs[i];
    if (def.kind != Definition::Kind::kLet && def.kind != Definition::Kind::kAssign) continue;
    if (def.path.find('.') != std::string::npos) continue;  // aliasing ambiguity
    if (used.count(i) > 0) continue;
    Diagnostic diag;
    diag.analysis = def.kind == Definition::Kind::kLet ? "unused-def" : "dead-store";
    diag.severity = def.kind == Definition::Kind::kLet ? Severity::kNote : Severity::kWarning;
    diag.function = graph.cfg.function().name;
    diag.loc = def.loc;
    diag.message = def.kind == Definition::Kind::kLet
                       ? "local '" + def.path + "' is defined but never read"
                       : "value stored to '" + def.path + "' is never read";
    out.push_back(std::move(diag));
  }
}

}  // namespace lisa::staticcheck
