// Ledger and run-history diffing: what changed between two gate runs.
//
// `lisa diff` answers the question every "once bitten" postmortem starts
// with: which verdicts flipped between run A and run B, and on what
// evidence? Two granularities share one report type:
//
//   * diff_ledgers — two provenance ledgers (obs/provenance.hpp), the rich
//     form: per-contract verdict flips plus evidence-chain deltas — paths
//     that appeared/vanished/changed verdict, SMT queries whose outcome
//     changed (keyed by content digest), screen-verdict and narration
//     changes, slice-fingerprint movement;
//   * diff_runs — two RunRecords (obs/history.hpp), the longitudinal form:
//     verdict-signature flips plus per-metric deltas.
//
// Everything is deterministic and byte-stable: contracts sorted by id,
// notes emitted in a fixed rule order, metrics sorted by name, no
// wall-clock reads — diffing the same two files twice produces identical
// bytes (asserted by scripts/check.sh).
#pragma once

#include <string>
#include <vector>

#include "obs/history.hpp"
#include "obs/provenance.hpp"
#include "support/json.hpp"

namespace lisa::obs {

/// One metric whose value moved between the two runs.
struct MetricDelta {
  std::string name;
  double before = 0.0;
  double after = 0.0;
  [[nodiscard]] double delta() const { return after - before; }
};

/// One contract that differs between the two sides. `before`/`after` hold
/// the verdicts ("" = the contract is absent on that side).
struct ContractDelta {
  std::string contract_id;
  std::string before;
  std::string after;
  /// Present on both sides with different verdicts — the headline signal.
  bool flipped = false;
  /// Evidence-chain deltas in fixed rule order (screen, slice, paths, SMT,
  /// hits, budget, narration); human-readable, one change per entry.
  std::vector<std::string> notes;
};

/// The structured diff `lisa diff` renders as text, JSON, or HTML.
struct DiffReport {
  std::string label_a;
  std::string label_b;
  std::string fingerprint_a;
  std::string fingerprint_b;
  /// Contracts that differ, sorted by id. Unchanged contracts are counted,
  /// not listed — the report is about what moved.
  std::vector<ContractDelta> contracts;
  int contracts_unchanged = 0;
  /// Metric movements (run diffs only), sorted by name.
  std::vector<MetricDelta> metrics;

  [[nodiscard]] int verdict_flips() const;
  [[nodiscard]] bool identical() const {
    return contracts.empty() && metrics.empty();
  }

  [[nodiscard]] support::Json to_json() const;
};

/// Rich diff of two provenance ledgers (A = before, B = after).
[[nodiscard]] DiffReport diff_ledgers(const ProvenanceLedger& a, const ProvenanceLedger& b);

/// Longitudinal diff of two history records.
[[nodiscard]] DiffReport diff_runs(const RunRecord& a, const RunRecord& b);

/// Terminal rendering (byte-stable).
[[nodiscard]] std::string render_diff_text(const DiffReport& report);

/// Self-contained HTML rendering, same inline-CSS conventions as
/// render_ledger_html (obs/explain.hpp) — works as an offline CI artifact.
[[nodiscard]] std::string render_diff_html(const DiffReport& report);

}  // namespace lisa::obs
