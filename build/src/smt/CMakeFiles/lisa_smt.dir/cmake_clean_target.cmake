file(REMOVE_RECURSE
  "liblisa_smt.a"
)
