// Conversion between MiniLang boolean expressions and SMT formulas.
//
// Contracts are written as MiniLang condition expressions (e.g.
// `s != null && s.is_closing == false && s.ttl > 0`); branch guards collected
// by the static path walker and the concolic engine are MiniLang expressions
// too. This bridge maps both into the solver fragment:
//   * dotted access paths become variable names ("s.ttl")
//   * `p == null` / `p != null` become the nullness indicator "p#null"
//   * boolean-typed paths become boolean variables
//   * comparisons against integer literals / other paths become theory atoms
// Anything outside the fragment (calls, arithmetic over non-literals) is
// handled per OpaquePolicy.
#pragma once

#include <optional>
#include <string>

#include "minilang/ast.hpp"
#include "smt/formula.hpp"

namespace lisa::smt {

enum class OpaquePolicy {
  /// Out-of-fragment subexpressions make the whole conversion fail
  /// (returns nullopt). Used for contract conditions, which must be fully
  /// checkable.
  kReject,
  /// Out-of-fragment subexpressions become fresh boolean variables named
  /// "opaque:<canonical text>". Used for path conditions, where an opaque
  /// guard simply constrains nothing the contract talks about — matching the
  /// paper's rule that branches not involving relevant variables are skipped.
  kAbstract,
};

/// Converts a MiniLang boolean expression into a formula.
[[nodiscard]] std::optional<FormulaPtr> to_formula(const minilang::Expr& expr,
                                                   OpaquePolicy policy);

/// Renders the access path of a Var/Field chain ("s.owner.ttl"), or empty if
/// `expr` is not a pure path.
[[nodiscard]] std::string access_path(const minilang::Expr& expr);

/// Parses `condition_text` as a MiniLang expression and converts it with
/// kReject policy. Returns nullopt if the text does not parse or falls
/// outside the fragment. This is the entry point the contract translator
/// uses on LLM-proposed condition statements.
[[nodiscard]] std::optional<FormulaPtr> parse_condition(const std::string& condition_text);

}  // namespace lisa::smt
