// Fig. 5: the system workflow — per-stage latency and artifact counts for
// all 16 failure tickets through the full pipeline
// (ticket → LLM inference → translation → execution tree + tests + concolic
//  assertion → verdict).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "lisa/pipeline.hpp"

namespace {

using namespace lisa;

struct StageRow {
  double infer = 0, translate = 0, check = 0, total = 0;
  int contracts = 0, paths = 0, tests = 0, hits = 0;
};

std::vector<StageRow> run_all() {
  std::vector<StageRow> rows;
  const core::Pipeline pipeline;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    const core::PipelineResult result = pipeline.run(ticket, ticket.patched_source);
    StageRow row;
    row.infer = result.timings.infer_ms;
    row.translate = result.timings.translate_ms;
    row.check = result.timings.check_ms;
    row.total = result.timings.total_ms;
    row.contracts = static_cast<int>(result.contracts.size());
    for (const core::ContractCheckReport& report : result.reports) {
      row.paths += static_cast<int>(report.paths.size());
      row.tests += report.dynamic.tests_run;
      row.hits += report.dynamic.target_hits;
    }
    rows.push_back(row);
  }
  return rows;
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const std::size_t index =
      static_cast<std::size_t>(p * static_cast<double>(values.size() - 1));
  return values[index];
}

void print_stage_table() {
  std::printf("=== Fig. 5: workflow stage breakdown over the 20-ticket corpus ===\n\n");
  const std::vector<StageRow> rows = run_all();
  const auto column = [&](auto getter) {
    std::vector<double> values;
    for (const StageRow& row : rows) values.push_back(getter(row));
    double sum = 0;
    for (const double v : values) sum += v;
    std::printf("%10.2f %10.2f %10.2f", sum / values.size(), percentile(values, 0.5),
                percentile(values, 0.95));
  };
  std::printf("%-28s %10s %10s %10s\n", "stage", "mean ms", "p50 ms", "p95 ms");
  std::printf("%-28s", "LLM inference (mock)");
  column([](const StageRow& r) { return r.infer; });
  std::printf("\n%-28s", "translation to contracts");
  column([](const StageRow& r) { return r.translate; });
  std::printf("\n%-28s", "tree + tests + assertion");
  column([](const StageRow& r) { return r.check; });
  std::printf("\n%-28s", "end-to-end");
  column([](const StageRow& r) { return r.total; });

  int contracts = 0, paths = 0, tests = 0, hits = 0;
  for (const StageRow& row : rows) {
    contracts += row.contracts;
    paths += row.paths;
    tests += row.tests;
    hits += row.hits;
  }
  std::printf("\n\nartifacts: %d contracts inferred, %d execution paths asserted, "
              "%d tests replayed concolically, %d target hits checked against Z3-style "
              "complement queries\n\n",
              contracts, paths, tests, hits);
}

void BM_FullPipelinePerTicket(benchmark::State& state) {
  const auto& tickets = corpus::Corpus::all();
  const corpus::FailureTicket& ticket = tickets[static_cast<std::size_t>(state.range(0))];
  const core::Pipeline pipeline;
  for (auto _ : state) {
    const core::PipelineResult result = pipeline.run(ticket, ticket.patched_source);
    benchmark::DoNotOptimize(result.total_violations());
  }
  state.SetLabel(ticket.case_id);
}
BENCHMARK(BM_FullPipelinePerTicket)->DenseRange(0, 15)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_stage_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
