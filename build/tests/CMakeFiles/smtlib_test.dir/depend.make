# Empty dependencies file for smtlib_test.
# This may be replaced when dependencies are built.
