#include "systems/cassandra/hints.hpp"

namespace lisa::systems::cassandra {

void HintedHandoff::add_node(const std::string& host) {
  nodes_[host] = NodeState{host, false, 0};
}

void HintedHandoff::decommission(const std::string& host) {
  const auto it = nodes_.find(host);
  if (it != nodes_.end()) it->second.decommissioned = true;
}

const NodeState* HintedHandoff::node(const std::string& host) const {
  const auto it = nodes_.find(host);
  return it == nodes_.end() ? nullptr : &it->second;
}

void HintedHandoff::queue_hint(const std::string& host, const std::string& mutation,
                               bool resurrects) {
  pending_[host].push_back(Hint{mutation, resurrects});
  ++stats_.hints_queued;
}

std::size_t HintedHandoff::replay_endpoint(const std::string& host, bool check_ring) {
  const auto node_it = nodes_.find(host);
  const auto hints_it = pending_.find(host);
  if (node_it == nodes_.end() || hints_it == pending_.end()) return 0;
  if (check_ring && node_it->second.decommissioned) {
    stats_.hints_rejected += hints_it->second.size();
    pending_.erase(hints_it);
    return 0;
  }
  std::size_t delivered = 0;
  for (const Hint& hint : hints_it->second) {
    ++stats_.hints_delivered;
    ++node_it->second.mutations_applied;
    ++delivered;
    if (node_it->second.decommissioned) {
      ++stats_.hints_to_decommissioned;
      if (hint.resurrects) ++stats_.rows_resurrected;  // the incident symptom
    }
  }
  pending_.erase(hints_it);
  return delivered;
}

std::size_t HintedHandoff::replay_all(bool check_ring) {
  std::vector<std::string> hosts;
  hosts.reserve(pending_.size());
  for (const auto& [host, hints] : pending_) hosts.push_back(host);
  std::size_t total = 0;
  for (const std::string& host : hosts) total += replay_endpoint(host, check_ring);
  return total;
}

std::size_t HintedHandoff::pending_hints() const {
  std::size_t total = 0;
  for (const auto& [host, hints] : pending_) total += hints.size();
  return total;
}

}  // namespace lisa::systems::cassandra
