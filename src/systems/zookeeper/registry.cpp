#include "systems/zookeeper/registry.hpp"

namespace lisa::systems::zk {

std::optional<std::int64_t> ConsumerRegistry::register_consumer(const std::string& consumer_id,
                                                                const std::string& address) {
  const std::int64_t session = zk_.create_session("consumer-" + consumer_id);
  const ZkStatus status = zk_.create(session, path_for(consumer_id), address,
                                     /*ephemeral=*/true);
  if (status != ZkStatus::kOk) {
    zk_.close_session(session);
    return std::nullopt;
  }
  sessions_[consumer_id] = session;
  return session;
}

void ConsumerRegistry::unregister_consumer(const std::string& consumer_id) {
  const auto it = sessions_.find(consumer_id);
  if (it == sessions_.end()) return;
  zk_.close_session(it->second);
  sessions_.erase(it);
}

std::optional<std::string> ConsumerRegistry::lookup(const std::string& consumer_id) const {
  return zk_.get_data(path_for(consumer_id));
}

std::vector<std::string> ConsumerRegistry::list_consumers() const {
  std::vector<std::string> out;
  for (const std::string& path : zk_.get_children("/consumers/ids")) {
    const std::size_t slash = path.find_last_of('/');
    out.push_back(path.substr(slash + 1));
  }
  return out;
}

bool Producer::send(const std::string& consumer_id) {
  const std::optional<std::string> address = registry_.lookup(consumer_id);
  if (!address.has_value()) {
    ++unresolved_errors_;
    return false;
  }
  const auto it = live_->find(consumer_id);
  if (it == live_->end() || !it->second) {
    // Address resolved from a stale ephemeral node: the consumer is dead.
    ++stale_errors_;
    return false;
  }
  ++sent_ok_;
  return true;
}

}  // namespace lisa::systems::zk
