# Empty compiler generated dependencies file for lisa_core.
# This may be replaced when dependencies are built.
