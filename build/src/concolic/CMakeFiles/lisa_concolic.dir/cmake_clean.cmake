file(REMOVE_RECURSE
  "CMakeFiles/lisa_concolic.dir/engine.cpp.o"
  "CMakeFiles/lisa_concolic.dir/engine.cpp.o.d"
  "CMakeFiles/lisa_concolic.dir/explorer.cpp.o"
  "CMakeFiles/lisa_concolic.dir/explorer.cpp.o.d"
  "CMakeFiles/lisa_concolic.dir/testgen.cpp.o"
  "CMakeFiles/lisa_concolic.dir/testgen.cpp.o.d"
  "liblisa_concolic.a"
  "liblisa_concolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_concolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
