#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "support/stopwatch.hpp"
#include "support/strings.hpp"

namespace lisa::support {
namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};
std::once_flag g_env_once;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

/// Applies LISA_LOG_LEVEL once, before the first threshold read. An explicit
/// set_log_level() afterwards still wins (it stores over this).
void apply_env_level() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("LISA_LOG_LEVEL");
    if (env == nullptr) return;
    const std::optional<LogLevel> parsed = parse_log_level(env);
    if (parsed.has_value())
      g_level.store(*parsed, std::memory_order_relaxed);
    else
      // Direct write: log_line() would re-enter the call_once guard.
      std::fprintf(stderr, "%s\n",
                   render_log_line(LogLevel::warn,
                                   std::string("unrecognized LISA_LOG_LEVEL '") + env +
                                       "' ignored")
                       .c_str());
  });
}

}  // namespace

void set_log_level(LogLevel level) {
  apply_env_level();  // consume the env var so it cannot override this call later
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  apply_env_level();
  return g_level.load(std::memory_order_relaxed);
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  const std::string lowered = to_lower(name);
  if (lowered == "debug") return LogLevel::debug;
  if (lowered == "info") return LogLevel::info;
  if (lowered == "warn" || lowered == "warning") return LogLevel::warn;
  if (lowered == "error") return LogLevel::error;
  if (lowered == "off" || lowered == "none") return LogLevel::off;
  return std::nullopt;
}

std::uint32_t this_thread_number() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t number =
      next.fetch_add(1, std::memory_order_relaxed);
  return number;
}

std::string render_log_line(LogLevel level, const std::string& message) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[+%11.3fms] [t%u] [%s] ",
                process_elapsed_ms(), this_thread_number(), level_name(level));
  return prefix + message;
}

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::fprintf(stderr, "%s\n", render_log_line(level, message).c_str());
}

}  // namespace lisa::support
