// Verdict provenance: ledger round-trip, byte-stable determinism, and
// explain-vs-checker agreement (the narrated counterexample must concretely
// reproduce the violation the checker reported).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "corpus/ticket.hpp"
#include "lisa/checker.hpp"
#include "lisa/ci_gate.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"
#include "obs/explain.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "support/budget.hpp"

namespace {

using namespace lisa;

/// Runs the full pipeline on `source` with a provenance ledger attached.
core::PipelineResult run_with_ledger(const corpus::FailureTicket& ticket,
                                     const std::string& source,
                                     obs::ProvenanceLedger* ledger) {
  core::PipelineRunOptions run_options;
  run_options.ledger = ledger;
  const core::Pipeline pipeline;
  return pipeline.run(ticket, source, run_options);
}

const corpus::FailureTicket& ticket_or_die(const std::string& case_id) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find(case_id);
  EXPECT_NE(ticket, nullptr) << case_id;
  return *ticket;
}

TEST(ProvenanceLedger, CapturesFullEvidenceChain) {
  const corpus::FailureTicket& ticket = ticket_or_die("zk-1208-ephemeral-create");
  obs::ProvenanceLedger ledger;
  const core::PipelineResult result = run_with_ledger(ticket, ticket.buggy_source, &ledger);
  ASSERT_FALSE(result.reports.empty());
  EXPECT_FALSE(ledger.run_fingerprint().empty());
  EXPECT_EQ(ledger.size(), result.reports.size());

  const obs::ContractCapture* capture = ledger.find(result.reports[0].contract_id);
  ASSERT_NE(capture, nullptr);
  EXPECT_EQ(capture->system, "zookeeper");
  EXPECT_EQ(capture->kind, "state-predicate");
  EXPECT_EQ(capture->verdict, "violated");
  EXPECT_FALSE(capture->fingerprint.empty());
  // Every layer contributed evidence: screen facts, static paths, per-phase
  // SMT queries, and concolic hits.
  EXPECT_FALSE(capture->facts.empty());
  EXPECT_FALSE(capture->paths.empty());
  EXPECT_FALSE(capture->hits.empty());
  bool screen = false, static_path = false, concolic = false;
  for (const obs::SmtQueryEvidence& query : capture->smt_queries) {
    if (query.phase == "screen") screen = true;
    if (query.phase == "static-path") static_path = true;
    if (query.phase == "concolic") concolic = true;
    EXPECT_FALSE(query.digest.empty());
    EXPECT_EQ(query.digest, obs::evidence_digest(query.query));
  }
  EXPECT_TRUE(screen);
  EXPECT_TRUE(static_path);
  EXPECT_TRUE(concolic);
  // A violated static path keeps its model structured for the narrator.
  bool structured_model = false;
  for (const obs::PathEvidence& path : capture->paths)
    if (path.verdict == "violated" && !(path.model_bools.empty() && path.model_ints.empty()))
      structured_model = true;
  EXPECT_TRUE(structured_model);
  // The proposal provenance reflects the (fault-free) inference run.
  EXPECT_EQ(ledger.proposal().case_id, ticket.case_id);
  EXPECT_TRUE(ledger.proposal().succeeded);
  EXPECT_GE(ledger.proposal().attempts, 1);
}

TEST(ProvenanceLedger, JsonlRoundTripPreservesEveryField) {
  const corpus::FailureTicket& ticket = ticket_or_die("hbase-27671-snapshot-ttl");
  obs::ProvenanceLedger ledger;
  (void)run_with_ledger(ticket, ticket.buggy_source, &ledger);

  const std::string path = ::testing::TempDir() + "provenance_roundtrip.jsonl";
  ASSERT_TRUE(ledger.write_jsonl(path));
  obs::ProvenanceLedger loaded;
  ASSERT_TRUE(loaded.load_jsonl(path));
  EXPECT_EQ(loaded.size(), ledger.size());
  EXPECT_EQ(loaded.run_fingerprint(), ledger.run_fingerprint());
  // Byte-equality of the serialized forms implies field-level equality:
  // to_json covers every evidence record.
  EXPECT_EQ(loaded.to_jsonl(), ledger.to_jsonl());
  std::remove(path.c_str());
}

TEST(ProvenanceLedger, TwoIdenticalRunsProduceByteIdenticalLedgers) {
  const corpus::FailureTicket& ticket = ticket_or_die("hdfs-13924-observer-locations");
  obs::ProvenanceLedger first;
  obs::ProvenanceLedger second;
  (void)run_with_ledger(ticket, ticket.buggy_source, &first);
  (void)run_with_ledger(ticket, ticket.buggy_source, &second);
  EXPECT_EQ(first.to_jsonl(), second.to_jsonl());
  EXPECT_EQ(first.to_json().pretty(), second.to_json().pretty());
}

TEST(ProvenanceLedger, NullLedgerLeavesCheckOutputByteIdentical) {
  const corpus::FailureTicket& ticket = ticket_or_die("zk-quota-bypass");
  const minilang::Program program = minilang::parse_checked(ticket.buggy_source);
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
  core::TranslationResult translation = core::translate(proposal, ticket.system);
  ASSERT_FALSE(translation.contracts.empty());
  const core::Checker checker;
  core::CheckOptions plain;
  core::ContractCheckReport without = checker.check(program, translation.contracts[0], plain);
  obs::ProvenanceLedger ledger;
  core::CheckOptions captured;
  captured.ledger = &ledger;
  core::ContractCheckReport with = checker.check(program, translation.contracts[0], captured);
  // Wall-clock fields differ between any two runs; everything else must be
  // byte-identical — capture may not perturb a single verdict or witness.
  without.screen_ms = with.screen_ms = 0.0;
  without.summary_ms = with.summary_ms = 0.0;
  EXPECT_EQ(without.to_json().pretty(), with.to_json().pretty());
  EXPECT_GT(ledger.size(), 0u);
}

TEST(Explain, NarrationReproducesEveryViolatedCorpusContract) {
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    obs::ProvenanceLedger ledger;
    const core::PipelineResult result =
        run_with_ledger(ticket, ticket.buggy_source, &ledger);
    for (const core::ContractCheckReport& report : result.reports) {
      if (report.passed()) continue;
      const obs::ContractCapture* capture = ledger.find(report.contract_id);
      ASSERT_NE(capture, nullptr) << report.contract_id;
      const obs::Narration& narration = capture->narration;
      EXPECT_TRUE(narration.reproduced)
          << report.contract_id << ": narration kind=" << narration.kind
          << " detail=" << narration.detail;
      EXPECT_FALSE(narration.steps.empty()) << report.contract_id;
      if (narration.kind == "state-replay") {
        // Agreement: the narrated predicate, evaluated term-by-term on the
        // concrete replayed state, concretely violates Q.
        ASSERT_FALSE(narration.predicate.empty()) << report.contract_id;
        bool violated_term = false;
        for (const obs::PredicateTerm& term : narration.predicate)
          if (!term.holds) violated_term = true;
        EXPECT_TRUE(violated_term) << report.contract_id;
      } else {
        EXPECT_TRUE(narration.kind == "structural-replay" ||
                    narration.kind == "interleaving-replay" ||
                    narration.kind == "schedule-replay")
            << report.contract_id << ": " << narration.kind;
        if (narration.kind == "schedule-replay") {
          // A violating interleaving must narrate a multi-threaded trace:
          // at least one step off the main thread.
          bool off_main = false;
          for (const obs::NarrationStep& step : narration.steps)
            if (step.thread != 0) off_main = true;
          EXPECT_TRUE(off_main) << report.contract_id;
        }
      }
    }
  }
}

TEST(Explain, RenderingsCoverTheEvidenceChain) {
  const corpus::FailureTicket& ticket = ticket_or_die("zk-1208-ephemeral-create");
  obs::ProvenanceLedger ledger;
  (void)run_with_ledger(ticket, ticket.buggy_source, &ledger);
  const obs::ContractCapture* capture = ledger.find("zk-1208-ephemeral-create#0");
  ASSERT_NE(capture, nullptr);
  const std::string text = obs::render_capture_text(*capture);
  EXPECT_NE(text.find("violated"), std::string::npos);
  EXPECT_NE(text.find("smt queries"), std::string::npos);
  EXPECT_NE(text.find("narration"), std::string::npos);
  const std::string html = obs::render_ledger_html(ledger);
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find(capture->fingerprint), std::string::npos);
  EXPECT_NE(html.find("predicate term"), std::string::npos);
}

TEST(BudgetProvenance, ExhaustionReasonIsTypedAndCounted) {
  const corpus::FailureTicket& ticket = ticket_or_die("zk-1208-ephemeral-create");
  const minilang::Program program = minilang::parse_checked(ticket.buggy_source);
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
  core::TranslationResult translation = core::translate(proposal, ticket.system);
  ASSERT_FALSE(translation.contracts.empty());
  support::BudgetLimits limits;
  limits.max_smt_queries = 1;
  support::Budget budget(limits);
  core::CheckOptions options;
  options.budget = &budget;
  obs::metrics().reset();
  const core::Checker checker;
  const core::ContractCheckReport report =
      checker.check(program, translation.contracts[0], options);
  ASSERT_TRUE(report.budget_exhausted);
  EXPECT_EQ(report.budget_resource, "smt-queries");
  EXPECT_EQ(obs::metrics().counter("budget.exhausted{reason=smt-queries}").value(), 1);
  // The typed resource survives the journal round trip.
  const core::ContractCheckReport reloaded =
      core::ContractCheckReport::from_json(report.to_json());
  EXPECT_EQ(reloaded.budget_resource, "smt-queries");
}

TEST(GateProvenance, LedgerBindsToGateInputs) {
  const corpus::FailureTicket& ticket = ticket_or_die("zk-2201-sync-serialize");
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
  core::TranslationResult translation = core::translate(proposal, ticket.system);
  core::ContractStore store;
  store.add_all(std::move(translation.contracts));
  core::CheckOptions options;
  options.run_concolic = false;
  obs::ProvenanceLedger ledger;
  core::GateRunOptions run_options;
  run_options.ledger = &ledger;
  const core::GateDecision decision =
      core::CiGate(options).evaluate(ticket.buggy_source, store, run_options);
  EXPECT_FALSE(decision.allowed);
  EXPECT_FALSE(ledger.run_fingerprint().empty());
  EXPECT_EQ(ledger.size(), decision.reports.size());
  for (const core::ContractCheckReport& report : decision.reports) {
    const obs::ContractCapture* capture = ledger.find(report.contract_id);
    ASSERT_NE(capture, nullptr);
    EXPECT_EQ(capture->passed, report.passed());
  }
}

}  // namespace
