// DPLL(T) solver for the LISA contract fragment — the reproduction's Z3.
//
// Architecture (lazy SMT):
//   1. lower: every comparison atom is rewritten into *difference
//      constraints* `a - b <= k` over integer variables (a distinguished
//      ZERO variable encodes constants), so equalities/disequalities become
//      conjunctions/disjunctions of primitive bounds.
//   2. Tseitin-encode the lowered formula into CNF over primitive literals.
//   3. DPLL enumerates boolean models; each model's difference constraints
//      are checked with Bellman–Ford negative-cycle detection; inconsistent
//      models are blocked with a learned clause and search resumes.
// The fragment (boolean structure over v ⋈ c, v ⋈ w, boolean vars) is exactly
// what the paper's contracts use, and this procedure decides it.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/provenance.hpp"
#include "smt/formula.hpp"
#include "support/budget.hpp"

namespace lisa::smt {

/// kUnknown is the resource-governed outcome: the query was refused (budget
/// exhausted) or degraded (injected fault). It is NEVER produced by the
/// decision procedure itself — the fragment is decidable — so callers must
/// treat it as "cannot conclude", not as unsat.
enum class Status { kSat, kUnsat, kUnknown };

[[nodiscard]] const char* status_name(Status status);

/// A satisfying assignment (only meaningful when status == kSat). Variables
/// not mentioned in the model are unconstrained.
struct Model {
  std::map<std::string, bool> bools;
  std::map<std::string, std::int64_t> ints;

  [[nodiscard]] std::string to_string() const;
};

struct SolveResult {
  Status status = Status::kUnsat;
  Model model;
  std::string reason;  // why the query came back kUnknown ("" otherwise)

  [[nodiscard]] bool sat() const { return status == Status::kSat; }
  [[nodiscard]] bool unknown() const { return status == Status::kUnknown; }
};

/// Cumulative statistics for the solver-microbenchmark.
struct SolverStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t boolean_conflicts = 0;
  std::int64_t theory_conflicts = 0;
  std::int64_t clauses = 0;
  std::int64_t atoms = 0;
};

class Solver {
 public:
  /// Decides `formula`. Deterministic: same formula, same result and model
  /// — unless the attached budget refuses the query or the `smt.solve`
  /// fault point is armed, in which case the result is kUnknown.
  [[nodiscard]] SolveResult solve(const FormulaPtr& formula);

  /// True iff `premise → conclusion` was *proved* (premise ∧ ¬conclusion
  /// UNSAT). A kUnknown query yields false — conservative for every proof
  /// use (an unproved implication never upgrades a verdict).
  [[nodiscard]] bool implies(const FormulaPtr& premise, const FormulaPtr& conclusion);

  /// True iff the two formulas were proved to have the same models.
  [[nodiscard]] bool equivalent(const FormulaPtr& a, const FormulaPtr& b);

  /// Attaches a cooperative budget: every solve() charges one SMT query and
  /// returns kUnknown once the budget is exhausted. nullptr (the default)
  /// disables governance; `budget` must outlive the solver's queries.
  void set_budget(support::Budget* budget) { budget_ = budget; }

  /// Attaches a provenance capture sink (obs/provenance.hpp): every solve()
  /// reports its query text, status, and model. nullptr (the default) is
  /// the zero-cost path — no formula is rendered unless a sink is attached.
  void set_capture(obs::SmtCaptureSink* capture) { capture_ = capture; }

  /// Statistics accumulated across all queries on this instance.
  [[nodiscard]] const SolverStats& stats() const { return stats_; }

 private:
  SolverStats stats_;
  support::Budget* budget_ = nullptr;
  obs::SmtCaptureSink* capture_ = nullptr;
};

}  // namespace lisa::smt
