file(REMOVE_RECURSE
  "CMakeFiles/minilang_lexer_parser_test.dir/minilang_lexer_parser_test.cpp.o"
  "CMakeFiles/minilang_lexer_parser_test.dir/minilang_lexer_parser_test.cpp.o.d"
  "minilang_lexer_parser_test"
  "minilang_lexer_parser_test.pdb"
  "minilang_lexer_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minilang_lexer_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
