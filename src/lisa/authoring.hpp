// Developer-authored semantics (§5, second open question).
//
// "Besides mining low-level semantics from existing resources, another
//  approach is to enable developers to explicitly express these semantic
//  rules in a more effective way ... a structured prompt template to
//  describe expected behaviors in natural language ... paired with
//  LLM-assisted suggestions that generate corresponding formal rules."
//
// This module implements that interface: a structured template the developer
// fills in (subject / operation / forbidden state, in near-natural language)
// plus an assistant that turns it into a checkable contract, validates it
// against the codebase (targets exist, condition parses, variables resolve
// in the target frames) and reports actionable errors instead of silently
// producing a vacuous rule.
#pragma once

#include <string>
#include <vector>

#include "lisa/contract.hpp"
#include "minilang/ast.hpp"

namespace lisa::core {

/// The structured template a developer fills in.
struct DeveloperRule {
  std::string id;                // short rule name, e.g. "no-frozen-debit"
  std::string behavior;          // free text: what must never happen
  /// The protected operation, named by the function whose calls are guarded
  /// (the assistant expands it to the "<fn>(" target fragment).
  std::string operation;
  /// The required condition over the operation's calling context, written as
  /// a MiniLang boolean expression (e.g. "!(a == null) && !(a.frozen)").
  std::string required_condition;
};

struct AuthoringFeedback {
  bool accepted = false;
  std::vector<std::string> errors;    // must be fixed
  std::vector<std::string> warnings;  // suspicious but admissible
  SemanticContract contract;          // valid only when accepted
};

/// Validates a developer rule against `program` and assembles the contract.
/// Checks performed:
///   * the operation has at least one call site in the program;
///   * the condition parses into the checkable fragment;
///   * every condition variable root resolves in at least one target frame
///     (parameter or dominating local of a function containing a target);
///   * warns when the rule is vacuous (no entry path reaches any target).
[[nodiscard]] AuthoringFeedback author_rule(const minilang::Program& program,
                                            const DeveloperRule& rule);

}  // namespace lisa::core
