# Empty dependencies file for bench_ablation_llm_noise.
# This may be replaced when dependencies are built.
