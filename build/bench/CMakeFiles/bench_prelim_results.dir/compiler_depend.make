# Empty compiler generated dependencies file for bench_prelim_results.
# This may be replaced when dependencies are built.
