// Unit tests for src/staticcheck/slice and the fingerprint-keyed incremental
// machinery built on it: cone minimality, fingerprint stability and
// sensitivity, the screener's slice-irrelevance rule, and gate resume after
// a source edit.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>

#include "corpus/ticket.hpp"
#include "inference/mock_llm.hpp"
#include "lisa/checker.hpp"
#include "lisa/ci_gate.hpp"
#include "lisa/pipeline.hpp"
#include "minilang/sema.hpp"
#include "smt/minilang_bridge.hpp"
#include "staticcheck/screener.hpp"
#include "staticcheck/slice.hpp"

namespace lisa::staticcheck {
namespace {

using minilang::Program;

// A small service with a clear cone structure: `audit` and its helper are
// unreachable from the contract target's callers/callees, and the only test
// drives the target through `handler`.
constexpr const char* kService = R"(
struct Session { id: int; closed: bool; }
fn fetch(s: Session) -> bool {
  return s.closed;
}
fn commit(s: Session) {
  if (fetch(s)) {
    print(0);
  }
  print(s.id);
}
@entry
fn handler(s: Session) {
  if (!s.closed) {
    commit(s);
  }
}
fn audit_helper(n: int) -> int {
  return n + 1;
}
@entry
fn audit(n: int) {
  print(audit_helper(n));
}
@test
fn test_commit() {
  let s = new Session { id: 1, closed: false };
  handler(s);
}
)";

SliceRequest commit_request(bool include_tests) {
  SliceRequest request;
  request.kind = SliceRequest::Kind::kStatePredicate;
  request.target_fragment = "commit(";
  const auto condition = smt::parse_condition("!s.closed");
  EXPECT_TRUE(condition.has_value());
  request.condition = *condition;
  request.condition_text = "!s.closed";
  request.contract_text = "c1|commit(|!s.closed";
  request.include_tests = include_tests;
  return request;
}

TEST(SliceEngine, ConeIsMinimalForStatePredicates) {
  const Program program = minilang::parse_checked(kService);
  const Screener screener(program);
  const SliceEngine engine(program, screener.graph(), screener.summaries());

  const SliceResult sliced = engine.slice(commit_request(/*include_tests=*/false));
  EXPECT_FALSE(sliced.degraded);
  // Target + caller + callee — nothing from the audit side, no tests.
  const std::set<std::string> expected{"commit", "fetch", "handler"};
  EXPECT_EQ(sliced.functions, expected);
  ASSERT_EQ(sliced.targets.size(), 1u);
  EXPECT_EQ(sliced.targets[0].find("handler:"), 0u);
  // Footprint is the condition's read set, rooted at the target-local name.
  ASSERT_FALSE(sliced.footprint.empty());
  EXPECT_NE(std::find(sliced.footprint.begin(), sliced.footprint.end(), "s.closed"),
            sliced.footprint.end());
}

TEST(SliceEngine, IncludeTestsWidensTheCone) {
  const Program program = minilang::parse_checked(kService);
  const Screener screener(program);
  const SliceEngine engine(program, screener.graph(), screener.summaries());

  const SliceResult sliced = engine.slice(commit_request(/*include_tests=*/true));
  EXPECT_EQ(sliced.functions.count("test_commit"), 1u);
  EXPECT_EQ(sliced.functions.count("audit"), 0u);
}

TEST(SliceEngine, DegradesToWholeProgramWithoutSummaries) {
  const Program program = minilang::parse_checked(kService);
  const Screener screener(program);
  const SliceEngine engine(program, screener.graph(), nullptr);

  const SliceResult sliced = engine.slice(commit_request(/*include_tests=*/false));
  EXPECT_TRUE(sliced.degraded);
  EXPECT_EQ(sliced.functions.size(), program.functions.size());
}

TEST(SliceEngine, TargetStatementsCarryRoles) {
  const Program program = minilang::parse_checked(kService);
  const Screener screener(program);
  const SliceEngine engine(program, screener.graph(), screener.summaries());

  const SliceResult sliced = engine.slice(commit_request(/*include_tests=*/false));
  bool saw_target = false, saw_control = false;
  for (const SliceStatement& statement : sliced.statements) {
    if (statement.role == "target") saw_target = true;
    if (statement.role == "control") saw_control = true;
  }
  EXPECT_TRUE(saw_target);
  // The call site is guarded by `if (!s.closed)` — control dependence must
  // pull the branch into the statement slice.
  EXPECT_TRUE(saw_control);
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

std::string fingerprint_of(const std::string& source, bool include_tests) {
  const Program program = minilang::parse_checked(source);
  const Screener screener(program);
  const SliceEngine engine(program, screener.graph(), screener.summaries());
  return engine.slice(commit_request(include_tests)).fingerprint;
}

TEST(SliceFingerprint, StableAcrossEngines) {
  EXPECT_EQ(fingerprint_of(kService, false), fingerprint_of(kService, false));
  // include_tests is part of the identity: a pipeline (concolic) entry must
  // not be replayed by a gate (static-only) run or vice versa.
  EXPECT_NE(fingerprint_of(kService, false), fingerprint_of(kService, true));
}

TEST(SliceFingerprint, SensitiveToEditsInsideTheCone) {
  std::string edited = kService;
  const std::string from = "print(s.id);";
  edited.replace(edited.find(from), from.size(), "print(s.id + 1);");
  EXPECT_NE(fingerprint_of(kService, false), fingerprint_of(edited, false));
}

TEST(SliceFingerprint, InsensitiveToEditsOutsideTheCone) {
  std::string edited = kService;
  const std::string from = "return n + 1;";
  edited.replace(edited.find(from), from.size(), "return n + 2;");
  EXPECT_EQ(fingerprint_of(kService, false), fingerprint_of(edited, false));
}

TEST(SliceFingerprint, InsensitiveToLineShiftsAboveTheCone) {
  // Inserting a whole new function above everything shifts every line and
  // statement id in the file; the cone is unchanged, so the fingerprint
  // must be too — this is what makes incremental re-checking incremental.
  std::string shifted = "fn unrelated_prelude() {\n  print(0);\n}\n";
  shifted += kService;
  EXPECT_EQ(fingerprint_of(kService, false), fingerprint_of(shifted, false));
}

TEST(SliceFingerprint, SensitiveToNewTargetMatches) {
  std::string edited = kService;
  const std::string from = "fn audit(n: int) {";
  edited.replace(edited.find(from), from.size(),
                 "fn audit(n: int) {\n  let s = new Session { id: 9, closed: false "
                 "};\n  commit(s);");
  EXPECT_NE(fingerprint_of(kService, false), fingerprint_of(edited, false));
}

// ---------------------------------------------------------------------------
// Screener slice-irrelevance rule
// ---------------------------------------------------------------------------

// The rule is a *fallback*: it is consulted only where the execution tree
// leaves the verdict open (no entry→target path, or unmappable paths). A
// mutually-recursive island no @entry root reaches produces exactly that —
// the tree is empty, yet the dependence cone still sees every construction
// and every write, so the slice can close what path enumeration cannot.
std::string island_program(const char* step_body) {
  std::string source = R"(
struct Session { id: int; closed: bool; }
fn commit(s: Session) {
  print(s.id);
}
@entry
fn unrelated() {
  print(0);
}
fn pump(n: int) {
  if (n > 0) {
    step(n);
  }
}
fn step(n: int) {
)";
  source += step_body;
  source += R"(
  pump(n - 1);
}
)";
  return source;
}

TEST(SliceScreening, LiteralConstructionsDischargeTheContract) {
  const Program program = minilang::parse_checked(island_program(R"(
  let s = new Session { id: 1, closed: false };
  commit(s);)"));
  const Screener screener(program);
  const auto condition = smt::parse_condition("!s.closed");
  ASSERT_TRUE(condition.has_value());
  const ScreenResult result = screener.screen_state_predicate("commit(", *condition);
  EXPECT_EQ(result.verdict, ScreenVerdict::kProvedSafe);
  EXPECT_NE(result.reason.find("slice"), std::string::npos) << result.reason;
}

TEST(SliceScreening, ViolatingConstructionIsNotDischarged) {
  // Same shape, but the construction itself fails the predicate: the rule
  // must abstain (Unknown), not prove safety.
  const Program program = minilang::parse_checked(island_program(R"(
  let s = new Session { id: 1, closed: true };
  commit(s);)"));
  const Screener screener(program);
  const auto condition = smt::parse_condition("!s.closed");
  ASSERT_TRUE(condition.has_value());
  const ScreenResult result = screener.screen_state_predicate("commit(", *condition);
  EXPECT_NE(result.verdict, ScreenVerdict::kProvedSafe);
}

TEST(SliceScreening, MutatedFootprintIsNotDischarged) {
  // A later write to the footprint makes the construction facts stale; the
  // rule must abstain (any write site that is not a literal construction).
  const Program program = minilang::parse_checked(island_program(R"(
  let s = new Session { id: 1, closed: false };
  if (n > 5) {
    s.closed = true;
  }
  commit(s);)"));
  const Screener screener(program);
  const auto condition = smt::parse_condition("!s.closed");
  ASSERT_TRUE(condition.has_value());
  const ScreenResult result = screener.screen_state_predicate("commit(", *condition);
  EXPECT_NE(result.verdict, ScreenVerdict::kProvedSafe);
}

// ---------------------------------------------------------------------------
// Incremental gate resume after an edit
// ---------------------------------------------------------------------------

TEST(IncrementalResume, EditRechecksOnlyContractsWhoseConeContainsIt) {
  const corpus::FailureTicket* zk = corpus::Corpus::find("zk-1208-ephemeral-create");
  ASSERT_NE(zk, nullptr);
  core::ContractStore store;
  {
    const inference::SemanticsProposal proposal = inference::MockLlm().infer(*zk);
    core::TranslationResult translation = core::translate(proposal, zk->system);
    store.add_all(std::move(translation.contracts));
  }

  // Edit outside every state-predicate cone: `node_exists` is only called
  // from tests, and the gate runs without concolic replay.
  const std::string base = zk->patched_source;
  std::string edited = base;
  const std::string from = "return node != null;";
  const std::size_t at = edited.find(from);
  ASSERT_NE(at, std::string::npos);
  edited.replace(at, from.size(), "if (false) { return false; } return node != null;");

  const std::string journal_path =
      (std::filesystem::temp_directory_path() / "lisa_slice_test_journal.jsonl").string();
  core::CheckOptions options;
  options.run_concolic = false;
  const core::CiGate gate(options);

  core::GateRunOptions journaling;
  journaling.journal_path = journal_path;
  const core::GateDecision cold_base = gate.evaluate(base, store, journaling);
  ASSERT_FALSE(cold_base.reports.empty());

  core::GateRunOptions resuming = journaling;
  resuming.resume = true;
  const core::GateDecision resumed = gate.evaluate(edited, store, resuming);
  const core::GateDecision cold_edited = gate.evaluate(edited, store);
  std::remove(journal_path.c_str());

  // The state-predicate contract's cone does not contain the edit: replayed.
  EXPECT_GT(resumed.resumed_contracts, 0);
  // Replay must be verdict-equivalent to a cold run on the edited source.
  ASSERT_EQ(resumed.reports.size(), cold_edited.reports.size());
  std::map<std::string, std::string> cold_signatures;
  for (const core::ContractCheckReport& report : cold_edited.reports)
    cold_signatures[report.contract_id] = report.verdict_signature();
  for (const core::ContractCheckReport& report : resumed.reports) {
    ASSERT_TRUE(cold_signatures.count(report.contract_id) > 0) << report.contract_id;
    EXPECT_EQ(report.verdict_signature(), cold_signatures[report.contract_id])
        << report.contract_id;
  }
}

TEST(IncrementalResume, SliceFpRecordedOnlyWhenRequested) {
  const corpus::FailureTicket* zk = corpus::Corpus::find("zk-1208-ephemeral-create");
  ASSERT_NE(zk, nullptr);
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*zk);
  core::TranslationResult translation = core::translate(proposal, zk->system);
  ASSERT_FALSE(translation.contracts.empty());
  const Program program = minilang::parse_checked(zk->patched_source);

  const core::Checker checker;
  core::CheckOptions options;
  options.run_concolic = false;
  const core::ContractCheckReport without =
      checker.check(program, translation.contracts[0], options);
  EXPECT_TRUE(without.slice_fp.empty());

  options.compute_slice_fp = true;
  const core::ContractCheckReport with =
      checker.check(program, translation.contracts[0], options);
  EXPECT_FALSE(with.slice_fp.empty());
  // And the recorded fingerprint is exactly what resume will recompute.
  const Screener screener(program, options.use_summaries);
  const SliceEngine engine(program, screener.graph(), screener.summaries());
  EXPECT_EQ(with.slice_fp, core::contract_slice_fingerprint(
                               engine, translation.contracts[0], options.run_concolic));
}

}  // namespace
}  // namespace lisa::staticcheck
