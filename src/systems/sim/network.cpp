#include "systems/sim/network.hpp"

namespace lisa::systems {

void MessageBus::register_endpoint(const std::string& endpoint, Receiver receiver) {
  endpoints_[endpoint] = std::move(receiver);
}

void MessageBus::unregister_endpoint(const std::string& endpoint) {
  endpoints_.erase(endpoint);
}

bool MessageBus::send(const std::string& from, const std::string& to, const std::string& type,
                      const std::string& payload) {
  ++sent_;
  if (options_.drop_rate > 0.0 && rng_.next_bool(options_.drop_rate)) {
    ++dropped_;
    return false;
  }
  std::int64_t delay = options_.base_delay_ms;
  if (options_.jitter_ms > 0)
    delay += static_cast<std::int64_t>(rng_.next_below(
        static_cast<std::uint64_t>(options_.jitter_ms) + 1));
  Message message{from, to, type, payload, loop_.now()};
  loop_.schedule_after(delay, [this, message = std::move(message)] {
    const auto it = endpoints_.find(message.to);
    if (it == endpoints_.end()) {
      ++dead_lettered_;
      return;
    }
    ++delivered_;
    it->second(message);
  });
  return true;
}

}  // namespace lisa::systems
