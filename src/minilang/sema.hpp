// Lightweight semantic checker for MiniLang programs.
//
// Catches the errors that matter when authoring corpus programs: references
// to unknown variables, functions, structs and struct fields. It is not a
// full type checker — the interpreter enforces dynamic typing at run time —
// but it turns most authoring mistakes into parse-time diagnostics.
#pragma once

#include <string>
#include <vector>

#include "minilang/ast.hpp"

namespace lisa::minilang {

struct Diagnostic {
  SourceLoc loc;
  std::string message;
  std::string function;  // enclosing function, if any
};

/// Checks `program`; returns all diagnostics found (empty means clean).
[[nodiscard]] std::vector<Diagnostic> check(const Program& program);

/// Convenience: parse + check, throwing InterpError-style std::runtime_error
/// with the first diagnostic if the program is not clean.
[[nodiscard]] Program parse_checked(std::string_view source);

}  // namespace lisa::minilang
