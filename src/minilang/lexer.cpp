#include "minilang/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace lisa::minilang {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLit: return "integer literal";
    case TokenKind::kStrLit: return "string literal";
    case TokenKind::kStruct: return "'struct'";
    case TokenKind::kFn: return "'fn'";
    case TokenKind::kLet: return "'let'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kWhile: return "'while'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kThrow: return "'throw'";
    case TokenKind::kTry: return "'try'";
    case TokenKind::kCatch: return "'catch'";
    case TokenKind::kSync: return "'sync'";
    case TokenKind::kSpawn: return "'spawn'";
    case TokenKind::kNew: return "'new'";
    case TokenKind::kNull: return "'null'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kBreak: return "'break'";
    case TokenKind::kContinue: return "'continue'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kAt: return "'@'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"struct", TokenKind::kStruct}, {"fn", TokenKind::kFn},
      {"let", TokenKind::kLet},       {"if", TokenKind::kIf},
      {"else", TokenKind::kElse},     {"while", TokenKind::kWhile},
      {"return", TokenKind::kReturn}, {"throw", TokenKind::kThrow},
      {"try", TokenKind::kTry},       {"catch", TokenKind::kCatch},
      {"sync", TokenKind::kSync},     {"spawn", TokenKind::kSpawn},
      {"new", TokenKind::kNew},
      {"null", TokenKind::kNull},     {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},   {"break", TokenKind::kBreak},
      {"continue", TokenKind::kContinue},
  };
  return table;
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_trivia();
      Token token = next_token();
      const bool done = token.kind == TokenKind::kEof;
      tokens.push_back(std::move(token));
      if (done) return tokens;
    }
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[nodiscard]] SourceLoc here() const { return SourceLoc{line_, column_}; }

  void skip_trivia() {
    while (!at_end()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        return;
      }
    }
  }

  Token make(TokenKind kind, SourceLoc loc) {
    Token token;
    token.kind = kind;
    token.loc = loc;
    return token;
  }

  Token next_token() {
    if (at_end()) return make(TokenKind::kEof, here());
    const SourceLoc loc = here();
    const char c = advance();
    switch (c) {
      case '(': return make(TokenKind::kLParen, loc);
      case ')': return make(TokenKind::kRParen, loc);
      case '{': return make(TokenKind::kLBrace, loc);
      case '}': return make(TokenKind::kRBrace, loc);
      case '[': return make(TokenKind::kLBracket, loc);
      case ']': return make(TokenKind::kRBracket, loc);
      case ',': return make(TokenKind::kComma, loc);
      case ';': return make(TokenKind::kSemi, loc);
      case ':': return make(TokenKind::kColon, loc);
      case '.': return make(TokenKind::kDot, loc);
      case '+': return make(TokenKind::kPlus, loc);
      case '*': return make(TokenKind::kStar, loc);
      case '/': return make(TokenKind::kSlash, loc);
      case '%': return make(TokenKind::kPercent, loc);
      case '?': return make(TokenKind::kQuestion, loc);
      case '@': return make(TokenKind::kAt, loc);
      case '-':
        if (peek() == '>') {
          advance();
          return make(TokenKind::kArrow, loc);
        }
        return make(TokenKind::kMinus, loc);
      case '=':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kEq, loc);
        }
        return make(TokenKind::kAssign, loc);
      case '!':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kNe, loc);
        }
        return make(TokenKind::kBang, loc);
      case '<':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kLe, loc);
        }
        return make(TokenKind::kLt, loc);
      case '>':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kGe, loc);
        }
        return make(TokenKind::kGt, loc);
      case '&':
        if (peek() == '&') {
          advance();
          return make(TokenKind::kAndAnd, loc);
        }
        throw LexError("stray '&'", loc);
      case '|':
        if (peek() == '|') {
          advance();
          return make(TokenKind::kOrOr, loc);
        }
        throw LexError("stray '|'", loc);
      case '"': return string_literal(loc);
      default:
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) return number(loc, c);
        if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_')
          return identifier(loc, c);
        throw LexError(std::string("unexpected character '") + c + "'", loc);
    }
  }

  Token string_literal(SourceLoc loc) {
    Token token = make(TokenKind::kStrLit, loc);
    while (true) {
      if (at_end()) throw LexError("unterminated string literal", loc);
      const char c = advance();
      if (c == '"') return token;
      if (c == '\\') {
        if (at_end()) throw LexError("unterminated escape", loc);
        const char escape = advance();
        switch (escape) {
          case 'n': token.text.push_back('\n'); break;
          case 't': token.text.push_back('\t'); break;
          case '"': token.text.push_back('"'); break;
          case '\\': token.text.push_back('\\'); break;
          default: throw LexError("unknown escape sequence", loc);
        }
      } else {
        token.text.push_back(c);
      }
    }
  }

  Token number(SourceLoc loc, char first) {
    Token token = make(TokenKind::kIntLit, loc);
    std::int64_t value = first - '0';
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0)
      value = value * 10 + (advance() - '0');
    token.int_value = value;
    return token;
  }

  Token identifier(SourceLoc loc, char first) {
    std::string name(1, first);
    while (std::isalnum(static_cast<unsigned char>(peek())) != 0 || peek() == '_')
      name.push_back(advance());
    const auto it = keywords().find(name);
    if (it != keywords().end()) return make(it->second, loc);
    Token token = make(TokenKind::kIdent, loc);
    token.text = std::move(name);
    return token;
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace lisa::minilang
