#include "lisa/journal.hpp"

#include <cstdint>
#include <fstream>

#include "support/jsonl.hpp"
#include "support/log.hpp"

namespace lisa::core {

using support::Json;
using support::JsonObject;

namespace {

constexpr const char* kJournalKind = "lisa-check";
constexpr std::int64_t kJournalVersion = 1;

}  // namespace

std::string CheckJournal::fingerprint(const std::string& inputs) {
  // FNV-1a 64-bit (support/jsonl.hpp): stable across runs, cheap, and good
  // enough to tell "same inputs" from "different inputs" — the journal is a
  // cache keyed by it, not a security boundary.
  return support::fnv1a_fingerprint(inputs);
}

bool CheckJournal::load(const std::string& expected_fingerprint) {
  entries_.clear();
  std::ifstream in(path_);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  if (!support::jsonl_header_matches(line, kJournalKind, kJournalVersion,
                                     expected_fingerprint)) {
    support::log(support::LogLevel::warn, "journal ", path_,
                 " does not match this run's inputs; starting fresh");
    return false;
  }
  std::size_t dropped = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      ContractCheckReport report = ContractCheckReport::from_json(Json::parse(line));
      if (report.contract_id.empty()) {
        ++dropped;
        continue;
      }
      entries_[report.contract_id] = std::move(report);
    } catch (const std::exception&) {
      // A torn tail from a crash mid-append: everything before it is good.
      ++dropped;
    }
  }
  if (dropped > 0)
    support::log(support::LogLevel::warn, "journal ", path_, ": dropped ", dropped,
                 " unreadable entr(ies)");
  support::log(support::LogLevel::info, "journal ", path_, ": loaded ",
               entries_.size(), " checkpointed report(s)");
  return true;
}

bool CheckJournal::begin(const std::string& fingerprint) {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    support::log(support::LogLevel::warn, "journal ", path_,
                 " cannot be opened for writing; checkpointing disabled");
    writable_ = false;
    return false;
  }
  out << support::jsonl_header(kJournalKind, kJournalVersion, fingerprint) << "\n";
  writable_ = static_cast<bool>(out);
  return writable_;
}

void CheckJournal::record(const ContractCheckReport& report) {
  if (!writable_ || path_.empty()) return;
  std::ofstream out(path_, std::ios::app);
  if (!out) return;
  out << report.to_json().dump() << "\n";
  out.flush();
}

const ContractCheckReport* CheckJournal::find(const std::string& contract_id) const {
  const auto it = entries_.find(contract_id);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace lisa::core
