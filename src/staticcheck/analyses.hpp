// Concrete dataflow analyses — lattice instances for dataflow.hpp.
//
// Four analyses, each a forward problem over the per-function CFG:
//   * NullnessAnalysis: tracks {null, non-null, unknown} per access path;
//     guard refinement (`p == null` arms) and `new`-literal defaults feed
//     the facts; definite null dereferences are errors.
//   * DefiniteAssignmentAnalysis: tracks which fields of locally
//     constructed objects (`let x = new T {...}`) have been assigned; a
//     read of a never-assigned field gets its default value, which is
//     usually an accident.
//   * LockStateAnalysis: tracks monitor depth through `sync` blocks
//     path-sensitively and flags calls that (transitively) block while a
//     monitor is held — the dataflow generalization of
//     analysis::check_no_blocking_in_sync.
//   * IntervalAnalysis: integer intervals with constant propagation and
//     guard clamping; proves integer guards and flags branch conditions
//     that are always true/false.
//
// All four share conservative aliasing rules: a write to `a.f` kills facts
// about any path mentioning field `f`, and a call kills facts about every
// heap path (locals survive — MiniLang callees cannot rebind caller
// locals). The screener composes the nullness/interval lattices with
// boolean facts into one product state (screener.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/callgraph.hpp"
#include "staticcheck/cfg.hpp"
#include "staticcheck/diagnostics.hpp"

namespace lisa::staticcheck {

class SummaryMap;  // summaries.hpp; analyses only need the pointer

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// True if any expression reachable from `expr` is a call.
[[nodiscard]] bool contains_call(const minilang::Expr& expr);

/// Dotted rendering of a var/field chain ("s", "req.session.owner"), or ""
/// when the expression is not a simple access path.
[[nodiscard]] std::string expr_access_path(const minilang::Expr& expr);

/// Access paths whose facts must die when `written` is assigned: the path
/// itself, any extension of it, and (for field writes) any path mentioning
/// the written field name — the conservative aliasing rule.
[[nodiscard]] bool write_kills(const std::string& written, const std::string& fact_path);

/// Applies `visit` to every statement-level expression of a CFG node
/// (condition, initializer, lvalue, rhs), skipping nulls.
void for_each_node_expr(const CfgNode& node,
                        const std::function<void(const minilang::Expr&)>& visit);

// ---------------------------------------------------------------------------
// Nullness
// ---------------------------------------------------------------------------

enum class NullFact { kNull, kNonNull };

class NullnessAnalysis {
 public:
  /// Facts per access path; absence means "unknown".
  using State = std::map<std::string, NullFact>;

  /// `summaries` refines call handling (MOD-set havoc, return nullability,
  /// param transfer facts); nullptr keeps the legacy havoc-everything rule.
  explicit NullnessAnalysis(const minilang::Program& program,
                            const SummaryMap* summaries = nullptr)
      : program_(&program), summaries_(summaries) {}

  [[nodiscard]] State boundary(const Cfg& cfg) const;
  bool join(State& into, const State& from) const;
  void transfer(const CfgNode& node, State& state) const;
  void refine(const minilang::Expr& guard, bool taken, State& state) const;
  void edge_effect(const CfgEdge& edge, State& state) const {
    (void)edge;
    (void)state;
  }
  void widen(State& state) const { (void)state; }

  /// Post-pass: definite null dereferences in `cfg` given the fixpoint
  /// entry states (indexed by node id).
  void report(const Cfg& cfg, const std::vector<State>& in,
              const std::vector<bool>& reached, std::vector<Diagnostic>& out) const;

 private:
  void assign(const std::string& written, const minilang::Expr* rhs, State& state) const;
  void apply_call_effects(const CfgNode& node, State& state) const;
  const minilang::Program* program_;
  const SummaryMap* summaries_ = nullptr;
};

// ---------------------------------------------------------------------------
// Definite assignment (of constructed-object fields)
// ---------------------------------------------------------------------------

class DefiniteAssignmentAnalysis {
 public:
  struct Tracked {
    std::set<std::string> unassigned;  // fields never assigned so far
    bool operator==(const Tracked& other) const { return unassigned == other.unassigned; }
  };
  /// Locals bound to a `new` literal → their not-yet-assigned fields.
  using State = std::map<std::string, Tracked>;

  /// With `summaries`, an argument escapes only when the callee may write
  /// through that parameter; without, any call kills the tracking.
  explicit DefiniteAssignmentAnalysis(const minilang::Program& program,
                                      const SummaryMap* summaries = nullptr)
      : program_(&program), summaries_(summaries) {}

  [[nodiscard]] State boundary(const Cfg& cfg) const;
  bool join(State& into, const State& from) const;
  void transfer(const CfgNode& node, State& state) const;
  void refine(const minilang::Expr& guard, bool taken, State& state) const {
    (void)guard;
    (void)taken;
    (void)state;
  }
  void edge_effect(const CfgEdge& edge, State& state) const {
    (void)edge;
    (void)state;
  }
  void widen(State& state) const { (void)state; }

  void report(const Cfg& cfg, const std::vector<State>& in,
              const std::vector<bool>& reached, std::vector<Diagnostic>& out) const;

 private:
  const minilang::Program* program_;
  const SummaryMap* summaries_ = nullptr;
};

// ---------------------------------------------------------------------------
// Lock state
// ---------------------------------------------------------------------------

class LockStateAnalysis {
 public:
  struct State {
    int depth = 0;                    // monitors currently held (max over paths)
    std::vector<std::string> monitors;  // rendered monitor expressions, inner last
    bool operator==(const State& other) const {
      return depth == other.depth && monitors == other.monitors;
    }
  };

  /// With `summaries`, calls apply the callee's *net monitor effect* and
  /// blocking checks use the CFG-reachable `may_block` bit; without, calls
  /// are monitor-neutral and blocking falls back to `reaches_blocking`.
  LockStateAnalysis(const minilang::Program& program, const analysis::CallGraph& graph,
                    const SummaryMap* summaries = nullptr)
      : program_(&program), graph_(&graph), summaries_(summaries) {}

  [[nodiscard]] State boundary(const Cfg& cfg) const;
  bool join(State& into, const State& from) const;
  void transfer(const CfgNode& node, State& state) const;
  void refine(const minilang::Expr& guard, bool taken, State& state) const {
    (void)guard;
    (void)taken;
    (void)state;
  }
  /// Exception edges unwinding out of sync blocks release their monitors.
  void edge_effect(const CfgEdge& edge, State& state) const {
    for (int i = 0; i < edge.sync_unwind && state.depth > 0; ++i) {
      --state.depth;
      if (!state.monitors.empty()) state.monitors.pop_back();
    }
  }
  void widen(State& state) const { (void)state; }

  /// Blocking calls while a monitor may be held. Mirrors the structural
  /// rule's exemption for @test functions.
  void report(const Cfg& cfg, const std::vector<State>& in,
              const std::vector<bool>& reached, std::vector<Diagnostic>& out) const;

 private:
  [[nodiscard]] bool call_may_block(const std::string& callee) const;
  const minilang::Program* program_;
  const analysis::CallGraph* graph_;
  const SummaryMap* summaries_ = nullptr;
};

// ---------------------------------------------------------------------------
// Intervals / constant propagation
// ---------------------------------------------------------------------------

struct Interval {
  static constexpr std::int64_t kMin = INT64_MIN;
  static constexpr std::int64_t kMax = INT64_MAX;
  std::int64_t lo = kMin;
  std::int64_t hi = kMax;

  [[nodiscard]] static Interval constant(std::int64_t v) { return {v, v}; }
  [[nodiscard]] bool is_constant() const { return lo == hi; }
  [[nodiscard]] bool unbounded() const { return lo == kMin && hi == kMax; }
  [[nodiscard]] bool empty() const { return lo > hi; }
  bool operator==(const Interval& other) const { return lo == other.lo && hi == other.hi; }
};

class IntervalAnalysis {
 public:
  /// Interval per access path; absence means top (no information).
  using State = std::map<std::string, Interval>;

  /// With `summaries`, a call havocs only the callee's MOD set and call
  /// expressions evaluate to the callee's return interval.
  explicit IntervalAnalysis(const minilang::Program& program,
                            const SummaryMap* summaries = nullptr)
      : program_(&program), summaries_(summaries) {}

  [[nodiscard]] State boundary(const Cfg& cfg) const;
  bool join(State& into, const State& from) const;
  void transfer(const CfgNode& node, State& state) const;
  void refine(const minilang::Expr& guard, bool taken, State& state) const;
  void edge_effect(const CfgEdge& edge, State& state) const {
    (void)edge;
    (void)state;
  }
  /// Loop-head widening: drop every tracked bound (full top). Coarse but
  /// guarantees termination; see docs/staticcheck.md.
  void widen(State& state) const { state.clear(); }

  /// Branch guards decided by the intervals: always-true / always-false
  /// conditions (dead arms).
  void report(const Cfg& cfg, const std::vector<State>& in,
              const std::vector<bool>& reached, std::vector<Diagnostic>& out) const;

  /// Evaluates an integer expression to an interval under `state`.
  [[nodiscard]] Interval eval(const minilang::Expr& expr, const State& state) const;

  /// Decides `guard` under `state`: 1 = always true, 0 = always false,
  /// -1 = undecided. Exposed for the screener.
  [[nodiscard]] int decide(const minilang::Expr& guard, const State& state) const;

 private:
  void apply_call_effects(const CfgNode& node, State& state) const;
  const minilang::Program* program_;
  const SummaryMap* summaries_ = nullptr;
};

/// Runs all four analyses over every function of `program` and collects
/// their diagnostics, sorted by (line, column, function, analysis, message)
/// and deduplicated, so output is byte-stable across runs. `include_tests`
/// controls whether @test functions are linted too (lock-state always skips
/// them). `use_summaries` computes interprocedural summaries first and
/// threads them through every analysis; off reproduces call-site havoc.
[[nodiscard]] std::vector<Diagnostic> lint_program(const minilang::Program& program,
                                                   bool include_tests = true,
                                                   bool use_summaries = true);

}  // namespace lisa::staticcheck
