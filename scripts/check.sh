#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
# Usage: scripts/check.sh [mode]
#   (none)               plain build + tests + smokes
#   sanitize [set]       sanitizer build + tests; set is `address,undefined`
#                        (default) or `thread` (TSan)
#   tidy                 clang-tidy smoke over src/staticcheck/ (skips with a
#                        notice when clang-tidy is not installed)
#   --sanitize           back-compat alias for `sanitize address,undefined`
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
SANITIZE=OFF
case "${1:-}" in
  --sanitize)
    SANITIZE=address,undefined
    BUILD_DIR=build-asan
    ;;
  sanitize)
    SANITIZE="${2:-address,undefined}"
    case "$SANITIZE" in
      address,undefined) BUILD_DIR=build-asan ;;
      thread)            BUILD_DIR=build-tsan ;;
      *)
        echo "check.sh: unknown sanitizer set '$SANITIZE'" \
             "(expected 'address,undefined' or 'thread')" >&2
        exit 2
        ;;
    esac
    ;;
  tidy)
    # clang-tidy smoke over the static-analysis subsystem: regenerate the
    # compilation database and lint src/staticcheck/. The concurrency and
    # bugprone checks are the point — this is the code that reasons about
    # locks, so it should itself pass a lock-aware linter.
    if ! command -v clang-tidy > /dev/null; then
      echo "check.sh tidy: clang-tidy not installed; skipping (not a failure)"
      exit 0
    fi
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    clang-tidy -p build --quiet src/staticcheck/*.cpp
    echo "tidy smoke: OK (src/staticcheck clean)"
    exit 0
    ;;
  "") ;;
  *)
    echo "check.sh: unknown mode '${1}' (expected: sanitize, tidy, or no argument)" >&2
    exit 2
    ;;
esac

cmake -B "$BUILD_DIR" -S . -DLISA_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Corpus-wide lint smoke: --json must emit a parseable report and exit 0
# (clean) or 1 (diagnosed errors — the corpus keeps one by design).
# Anything else (crash, bad flag handling) fails the check.
lint_status=0
"$BUILD_DIR"/tools/lisa lint --json > /dev/null || lint_status=$?
if [[ "$lint_status" -gt 1 ]]; then
  echo "check.sh: lisa lint --json exited $lint_status (expected 0 or 1)" >&2
  exit 1
fi
echo "lint --json smoke: OK (exit $lint_status)"

# Profile smoke: the cost table must come back as JSON with the expected
# top-level schema (profile.spans / profile.smt_hotspots / metrics).
profile_out=$("$BUILD_DIR"/tools/lisa profile zookeeper --json)
for key in '"profile"' '"spans"' '"smt_hotspots"' '"wall_ms"' '"metrics"' '"counters"'; do
  if [[ "$profile_out" != *"$key"* ]]; then
    echo "check.sh: lisa profile zookeeper --json output lacks $key" >&2
    exit 1
  fi
done
if command -v python3 > /dev/null; then
  echo "$profile_out" | python3 -m json.tool > /dev/null || {
    echo "check.sh: lisa profile zookeeper --json is not valid JSON" >&2
    exit 1
  }
fi
echo "profile --json smoke: OK"

# Chaos smoke: a governed run with armed fault points must degrade into a
# structured report — exit 0 (all conclusive) or 1 (violations/inconclusive),
# never a crash — and must say so in the output instead of silently passing.
chaos_status=0
chaos_out=$(LISA_FAULTPOINTS=smt.solve=timeout,infer.propose=fail:1 \
  "$BUILD_DIR"/tools/lisa check zk-1208-ephemeral-create \
  --deadline-ms 200 --max-smt-queries 4) || chaos_status=$?
if [[ "$chaos_status" -gt 1 ]]; then
  echo "check.sh: chaos run exited $chaos_status (expected 0 or 1)" >&2
  exit 1
fi
if [[ "$chaos_out" != *"INCONCLUSIVE"* && "$chaos_out" != *"inconclusive"* ]]; then
  echo "check.sh: chaos run did not surface a degraded outcome" >&2
  echo "$chaos_out" >&2
  exit 1
fi
echo "chaos smoke: OK (exit $chaos_status, degradation surfaced)"

# Explain smoke: a known-violated corpus contract must produce a ledger with
# a reproduced narration (JSON schema) and a non-empty self-contained HTML
# report. Exit 1 is the expected "violations found" outcome.
explain_dir=$(mktemp -d)
explain_status=0
"$BUILD_DIR"/tools/lisa explain zk-1208-ephemeral-create --buggy --json \
  --html "$explain_dir/report.html" > "$explain_dir/ledger.json" || explain_status=$?
if [[ "$explain_status" -ne 1 ]]; then
  echo "check.sh: lisa explain on a violated case exited $explain_status (expected 1)" >&2
  exit 1
fi
python3 - "$explain_dir/ledger.json" <<'PY' || exit 1
import json, sys
ledger = json.load(open(sys.argv[1]))
assert ledger["journal"] == "lisa-ledger", ledger.get("journal")
assert ledger["fingerprint"], "missing run fingerprint"
violated = [c for c in ledger["contracts"] if c["verdict"] == "violated"]
assert violated, "expected a violated contract"
for contract in violated:
    assert contract["smt_queries"], f"{contract['contract_id']}: no SMT evidence"
    narration = contract["narration"]
    assert narration["reproduced"], f"{contract['contract_id']}: not reproduced"
    assert narration["steps"], f"{contract['contract_id']}: empty trace"
PY
if [[ ! -s "$explain_dir/report.html" ]] || \
   ! grep -q "<!doctype html>" "$explain_dir/report.html"; then
  echo "check.sh: lisa explain --html produced no HTML report" >&2
  exit 1
fi
rm -rf "$explain_dir"
echo "explain smoke: OK (narration reproduced, HTML written)"

# Slice smoke: the verdict-cone report must be deterministic (byte-identical
# across two runs — the fingerprints key incremental re-checking) and the
# --json form must parse.
slice_dir=$(mktemp -d)
"$BUILD_DIR"/tools/lisa slice zk-1208-ephemeral-create > "$slice_dir/a.txt"
"$BUILD_DIR"/tools/lisa slice zk-1208-ephemeral-create > "$slice_dir/b.txt"
if ! cmp -s "$slice_dir/a.txt" "$slice_dir/b.txt"; then
  echo "check.sh: lisa slice output is not byte-stable across runs" >&2
  exit 1
fi
if ! grep -q "fingerprint" "$slice_dir/a.txt"; then
  echo "check.sh: lisa slice output lacks a fingerprint line" >&2
  exit 1
fi
"$BUILD_DIR"/tools/lisa slice zk-1208-ephemeral-create --json \
  | python3 -m json.tool > /dev/null || {
  echo "check.sh: lisa slice --json is not valid JSON" >&2
  exit 1
}
rm -rf "$slice_dir"
echo "slice smoke: OK (byte-stable, JSON valid)"

# Diff smoke: seeding buggy -> patched ledgers must report exactly one
# verdict flip, and the report must be byte-identical across invocations
# (postmortems diff CI artifacts; nondeterministic diffs are useless).
diff_dir=$(mktemp -d)
"$BUILD_DIR"/tools/lisa explain hdfs-pending-race --buggy \
  --ledger "$diff_dir/buggy.jsonl" > /dev/null || true
"$BUILD_DIR"/tools/lisa explain hdfs-pending-race \
  --ledger "$diff_dir/patched.jsonl" > /dev/null
diff_status=0
"$BUILD_DIR"/tools/lisa diff "$diff_dir/buggy.jsonl" "$diff_dir/patched.jsonl" \
  > "$diff_dir/a.txt" || diff_status=$?
if [[ "$diff_status" -ne 1 ]]; then
  echo "check.sh: lisa diff with a verdict flip exited $diff_status (expected 1)" >&2
  exit 1
fi
"$BUILD_DIR"/tools/lisa diff "$diff_dir/buggy.jsonl" "$diff_dir/patched.jsonl" \
  > "$diff_dir/b.txt" || true
if ! cmp -s "$diff_dir/a.txt" "$diff_dir/b.txt"; then
  echo "check.sh: lisa diff output is not byte-stable across runs" >&2
  exit 1
fi
if ! grep -q "verdict flips: 1" "$diff_dir/a.txt" || \
   ! grep -q "\[FLIP\] hdfs-pending-race#0: violated -> passed" "$diff_dir/a.txt"; then
  echo "check.sh: lisa diff did not report the seeded buggy->patched flip:" >&2
  cat "$diff_dir/a.txt" >&2
  exit 1
fi
# diff exits 1 on flips by design, so capture first instead of piping
# (pipefail would blame json.tool for diff's own exit code).
"$BUILD_DIR"/tools/lisa diff "$diff_dir/buggy.jsonl" "$diff_dir/patched.jsonl" --json \
  > "$diff_dir/a.json" || true
python3 -m json.tool "$diff_dir/a.json" > /dev/null || {
  echo "check.sh: lisa diff --json is not valid JSON" >&2
  exit 1
}
rm -rf "$diff_dir"
echo "diff smoke: OK (one flip, byte-stable, JSON valid)"

# Drift smoke: three clean gate runs seed a baseline history, then a run with
# an injected 40 ms delay (LISA_FAULTPOINTS) must turn the gate red with a
# narrated latency-regression cause — never silently.
drift_dir=$(mktemp -d)
"$BUILD_DIR"/tools/lisa source hdfs-pending-race > "$drift_dir/commit.ml"
for _ in 1 2 3; do
  "$BUILD_DIR"/tools/lisa gate hdfs-pending-race "$drift_dir/commit.ml" \
    --history "$drift_dir/history.jsonl" > /dev/null
done
drift_status=0
drift_out=$(LISA_FAULTPOINTS=summaries.fixpoint=delay:40 \
  "$BUILD_DIR"/tools/lisa gate hdfs-pending-race "$drift_dir/commit.ml" \
  --history "$drift_dir/history.jsonl" 2>/dev/null) || drift_status=$?
if [[ "$drift_status" -ne 1 ]]; then
  echo "check.sh: drifted gate run exited $drift_status (expected 1: blocked)" >&2
  exit 1
fi
if [[ "$drift_out" != *"drift [latency-regression]"* ]]; then
  echo "check.sh: blocked drifted run lacks the narrated cause:" >&2
  echo "$drift_out" >&2
  exit 1
fi
# All four runs (including the red one) are on record for `lisa trends`.
trends_out=$("$BUILD_DIR"/tools/lisa trends "$drift_dir/history.jsonl")
if [[ "$trends_out" != *"4 run(s)"* || "$trends_out" != *"evaluation_ms"* ]]; then
  echo "check.sh: lisa trends does not show the recorded runs:" >&2
  echo "$trends_out" >&2
  exit 1
fi
rm -rf "$drift_dir"
echo "drift smoke: OK (injected regression blocked the gate, narrated)"

# Schedule chaos smoke: injecting a failure into schedule exploration must
# block the gate with a narrated inconclusive cause — an undrained schedule
# space is "no violation found so far", never a silent pass. The explicit
# --schedule-warn-only escape hatch downgrades the block; a clean rerun goes
# green, proving the block came from the injected fault.
sched_dir=$(mktemp -d)
"$BUILD_DIR"/tools/lisa source zk-session-close-race > "$sched_dir/commit.ml"
sched_status=0
sched_out=$(LISA_FAULTPOINTS=schedule.explore=fail \
  "$BUILD_DIR"/tools/lisa gate zk-session-close-race "$sched_dir/commit.ml" \
  2>/dev/null) || sched_status=$?
if [[ "$sched_status" -ne 1 ]]; then
  echo "check.sh: schedule-chaos gate run exited $sched_status (expected 1: blocked)" >&2
  exit 1
fi
if [[ "$sched_out" != *"schedule exploration inconclusive"* || \
      "$sched_out" != *"fault injected: schedule.explore"* ]]; then
  echo "check.sh: blocked schedule-chaos run lacks the narrated cause:" >&2
  echo "$sched_out" >&2
  exit 1
fi
warn_status=0
LISA_FAULTPOINTS=schedule.explore=fail \
  "$BUILD_DIR"/tools/lisa gate zk-session-close-race "$sched_dir/commit.ml" \
  --schedule-warn-only > /dev/null 2>&1 || warn_status=$?
if [[ "$warn_status" -ne 0 ]]; then
  echo "check.sh: --schedule-warn-only did not downgrade the inconclusive block" >&2
  exit 1
fi
"$BUILD_DIR"/tools/lisa gate zk-session-close-race "$sched_dir/commit.ml" > /dev/null
rm -rf "$sched_dir"
echo "schedule chaos smoke: OK (injected fault blocked the gate, narrated)"

# Bench-snapshot smoke: a FAST snapshot must produce a parseable file with
# the documented schema (benches -> wall_ms, corpus -> settled fraction and
# verdict counts), and the incremental bench must export its re-check
# fraction as a lifted counter.
snap_dir=$(mktemp -d)
FAST=1 OUT_DIR="$snap_dir" BUILD_DIR="$BUILD_DIR" \
  BENCHES="bench_smt_solver bench_incremental" scripts/bench_snapshot.sh > /dev/null
python3 - "$snap_dir/BENCH_1.json" <<'PY' || exit 1
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["schema"] == "lisa-bench-snapshot" and snap["version"] == 1
assert snap["timestamp"]
assert snap["git"]["sha"] and snap["git"]["branch"], snap.get("git")
assert isinstance(snap["git"]["dirty"], bool)
assert snap["benches"], "no bench entries"
assert all("wall_ms" in entry for entry in snap["benches"].values())
fractions = [entry["incremental_recheck_fraction"]
             for entry in snap["benches"].values()
             if "incremental_recheck_fraction" in entry]
assert fractions, "bench_incremental exported no incremental_recheck_fraction"
assert all(0.0 <= f < 1.0 for f in fractions), fractions
corpus = snap["corpus"]
assert 0.0 <= corpus["settled_fraction"] <= 1.0
assert 0.0 <= corpus["interleaving_settled_fraction"] <= 1.0
assert corpus["verdicts"]["contracts"] > 0
assert "screen_interleaving_proved_safe" in corpus["verdicts"]
# The schedule-explorer workload is on record: the corpus pass explored
# interleavings, and every explored contract was drained conclusively (the
# corpus patched sources fit the default bound by construction).
assert corpus["schedules_explored"] > 0, corpus
assert corpus["verdicts"]["schedule_contracts"] > 0, corpus["verdicts"]
assert corpus["interleaving_conclusive_fraction"] == 1.0, corpus
PY
# The snapshot also appends a kind="bench" record the trends CLI can read.
if [[ ! -s "$snap_dir/history.jsonl" ]]; then
  echo "check.sh: bench_snapshot.sh appended no history record" >&2
  exit 1
fi
snap_trends=$("$BUILD_DIR"/tools/lisa trends "$snap_dir/history.jsonl")
if [[ "$snap_trends" != *"bench bench_snapshot"* ]]; then
  echo "check.sh: lisa trends cannot read the bench history:" >&2
  echo "$snap_trends" >&2
  exit 1
fi
rm -rf "$snap_dir"
echo "bench snapshot smoke: OK (schema valid, git-stamped, history appended)"
