// A small JSON value type with serializer and recursive-descent parser.
//
// LISA uses JSON at two boundaries that the paper fixes to JSON explicitly:
// the mock-LLM output format of Listing 1 (semantics proposals) and the
// report artifacts consumed by CI dashboards. The subset implemented is
// standard JSON minus \uXXXX escapes outside the BMP; numbers are kept as
// int64 or double.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace lisa::support {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps object keys ordered, which makes serialized reports stable
// across runs — a property the golden-file tests rely on.
using JsonObject = std::map<std::string, Json>;

/// Error thrown by Json::parse on malformed input.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::string message, std::size_t offset)
      : std::runtime_error(std::move(message)), offset_(offset) {}
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Immutable-ish JSON value; cheap to copy for the sizes LISA handles.
class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(std::int64_t i) : value_(i) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::size_t i) : value_(static_cast<std::int64_t>(i)) {}
  Json(double d) : value_(d) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(value_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] std::int64_t as_int() const {
    if (is_double()) return static_cast<std::int64_t>(std::get<double>(value_));
    return std::get<std::int64_t>(value_);
  }
  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
    return std::get<double>(value_);
  }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
  [[nodiscard]] const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  [[nodiscard]] JsonArray& as_array() { return std::get<JsonArray>(value_); }
  [[nodiscard]] const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  [[nodiscard]] JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object member access; throws std::out_of_range if missing.
  [[nodiscard]] const Json& at(const std::string& key) const { return as_object().at(key); }
  /// True if this is an object containing `key`.
  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }
  /// Object member access with a default when the key is absent.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = "") const {
    if (!has(key) || !at(key).is_string()) return fallback;
    return at(key).as_string();
  }
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback = 0) const {
    if (!has(key) || !at(key).is_number()) return fallback;
    return at(key).as_int();
  }

  /// Serializes compactly (no whitespace).
  [[nodiscard]] std::string dump() const;
  /// Serializes with two-space indentation.
  [[nodiscard]] std::string pretty() const;

  /// Parses a complete JSON document; trailing garbage is an error.
  [[nodiscard]] static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b) { return a.value_ == b.value_; }

 private:
  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, JsonArray, JsonObject>
      value_;
};

/// Escapes `text` as a JSON string literal body (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace lisa::support
