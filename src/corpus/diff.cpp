#include "corpus/diff.hpp"

#include <map>

#include "minilang/printer.hpp"

namespace lisa::corpus {

using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;
using minilang::StmtPtr;

namespace {

void collect(const FuncDecl& fn, const std::vector<StmtPtr>& stmts,
             std::multimap<std::string, const Stmt*>& out) {
  for (const StmtPtr& stmt : stmts) {
    out.emplace(minilang::stmt_header_text(*stmt), stmt.get());
    collect(fn, stmt->body, out);
    collect(fn, stmt->else_body, out);
  }
}

}  // namespace

ProgramDiff diff_programs(const Program& before, const Program& after) {
  ProgramDiff diff;
  for (const FuncDecl& fn : after.functions)
    if (before.find_function(fn.name) == nullptr) diff.added_functions.push_back(fn.name);
  for (const FuncDecl& fn : before.functions)
    if (after.find_function(fn.name) == nullptr) diff.removed_functions.push_back(fn.name);

  for (const FuncDecl& after_fn : after.functions) {
    const FuncDecl* before_fn = before.find_function(after_fn.name);
    std::multimap<std::string, const Stmt*> before_stmts;
    if (before_fn != nullptr) collect(*before_fn, before_fn->body, before_stmts);
    std::multimap<std::string, const Stmt*> after_stmts;
    collect(after_fn, after_fn.body, after_stmts);

    // Multiset difference by canonical text.
    for (const auto& [text, stmt] : after_stmts) {
      const auto it = before_stmts.find(text);
      if (it != before_stmts.end()) {
        before_stmts.erase(it);
      } else {
        diff.added.push_back(DiffEntry{after_fn.name, stmt, text});
      }
    }
    for (const auto& [text, stmt] : before_stmts)
      diff.removed.push_back(DiffEntry{after_fn.name, stmt, text});
  }
  // Statements of functions deleted entirely.
  for (const FuncDecl& before_fn : before.functions) {
    if (after.find_function(before_fn.name) != nullptr) continue;
    std::multimap<std::string, const Stmt*> stmts;
    collect(before_fn, before_fn.body, stmts);
    for (const auto& [text, stmt] : stmts)
      diff.removed.push_back(DiffEntry{before_fn.name, stmt, text});
  }
  return diff;
}

std::string render_diff(const ProgramDiff& diff) {
  std::string out;
  for (const std::string& fn : diff.added_functions) out += "+ fn " + fn + " (new)\n";
  for (const std::string& fn : diff.removed_functions) out += "- fn " + fn + " (deleted)\n";
  for (const DiffEntry& entry : diff.added)
    out += "+ [" + entry.function + "] " + entry.text + "\n";
  for (const DiffEntry& entry : diff.removed)
    out += "- [" + entry.function + "] " + entry.text + "\n";
  return out;
}

}  // namespace lisa::corpus
