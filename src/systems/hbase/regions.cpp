#include "systems/hbase/regions.hpp"

namespace lisa::systems::hbase {

void RegionServer::add_region(const std::string& name) {
  Region region;
  region.name = name;
  regions_[name] = std::move(region);
}

void RegionServer::start_compaction(const std::string& name, std::int64_t duration_ms) {
  const auto it = regions_.find(name);
  if (it == regions_.end()) return;
  it->second.compacting = true;
  loop_.schedule_after(duration_ms, [this, name] {
    const auto found = regions_.find(name);
    if (found != regions_.end()) found->second.compacting = false;
  });
}

bool RegionServer::is_compacting(const std::string& name) const {
  const auto it = regions_.find(name);
  return it != regions_.end() && it->second.compacting;
}

bool RegionServer::split_region(const std::string& name, bool check) {
  const auto it = regions_.find(name);
  if (it == regions_.end()) return false;
  Region& region = it->second;
  if (check && region.compacting) {
    ++stats_.splits_rejected;
    return false;
  }
  if (region.compacting) ++stats_.splits_during_compaction;
  ++stats_.splits_ok;
  // Daughters replace the parent.
  const int generation = region.generation + 1;
  const std::string base = region.name;
  regions_.erase(it);
  for (const char* suffix : {"-a", "-b"}) {
    Region daughter;
    daughter.name = base + suffix;
    daughter.generation = generation;
    regions_[daughter.name] = std::move(daughter);
  }
  return true;
}

bool RegionServer::request_split(const std::string& name) {
  return split_region(name, guards_.split_checks_compaction);
}

bool RegionServer::balancer_split(const std::string& name) {
  return split_region(name, guards_.balancer_checks_compaction);
}

void RegionServer::start_flush(const std::string& name, std::int64_t duration_ms) {
  const auto it = regions_.find(name);
  if (it == regions_.end()) return;
  it->second.flushing = true;
  loop_.schedule_after(duration_ms, [this, name] {
    const auto found = regions_.find(name);
    if (found != regions_.end()) found->second.flushing = false;
  });
}

bool RegionServer::roll_wal(const std::string& name, bool check) {
  const auto it = regions_.find(name);
  if (it == regions_.end()) return false;
  if (check && it->second.flushing) {
    ++stats_.rolls_rejected;
    return false;
  }
  if (it->second.flushing) ++stats_.rolls_during_flush;
  ++stats_.wal_rolls;
  return true;
}

bool RegionServer::request_wal_roll(const std::string& name) {
  return roll_wal(name, guards_.manual_roll_checks_flush);
}

bool RegionServer::timer_wal_roll(const std::string& name) {
  return roll_wal(name, guards_.timer_roll_checks_flush);
}

void RegionServer::cache_location(const std::string& row, const std::string& region_name) {
  meta_cache_[row] = CacheEntry{region_name, false};
}

void RegionServer::invalidate(const std::string& row) {
  const auto it = meta_cache_.find(row);
  if (it != meta_cache_.end()) it->second.stale = true;
}

bool RegionServer::route_one(const std::string& row, bool check) {
  const auto it = meta_cache_.find(row);
  if (it == meta_cache_.end()) return false;
  if (it->second.stale) {
    if (check) {
      it->second.stale = false;  // refresh instead of routing
      ++stats_.refreshes;
      return false;
    }
    ++stats_.routed_stale;
  }
  ++stats_.routed;
  return true;
}

bool RegionServer::route_get(const std::string& row) {
  return route_one(row, guards_.routing_checks_stale);
}

std::size_t RegionServer::route_batch(const std::vector<std::string>& rows) {
  std::size_t routed = 0;
  for (const std::string& row : rows)
    if (route_one(row, guards_.batch_routing_checks_stale)) ++routed;
  return routed;
}

}  // namespace lisa::systems::hbase
