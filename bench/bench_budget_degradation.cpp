// Graceful degradation under shrinking budgets: a settled-fraction sweep
// with a CI-enforced monotonicity bound.
//
// A governed run may *refuse* work, never *invent* verdicts: as the SMT
// query budget shrinks, settled verdicts (verified/violated paths) may only
// disappear into the inconclusive bucket — a verdict present under a tight
// budget must agree with the ungoverned run on the same path. This bench
//   1. runs the full corpus ungoverned to establish reference verdicts,
//   2. sweeps the query budget down (64, 32, 16, 8, 4, 2, 1),
//   3. prints the settled fraction at each point, and
//   4. asserts no Verified↔Violated flip and no settled-verdict invention
//      anywhere in the sweep, exiting nonzero on violation so the
//      monotone-degradation contract is CI-enforceable
//      (ctest: bench_budget_degradation with --benchmark_filter=^$).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "lisa/pipeline.hpp"
#include "support/budget.hpp"

namespace {

using namespace lisa;

struct CorpusOutcome {
  // (case_id, contract_id, path chain) → verdict name, settled paths only.
  std::map<std::string, std::string> settled_verdicts;
  int settled = 0;
  int inconclusive = 0;
  int contracts = 0;
};

std::string path_key(const std::string& case_id, const core::ContractCheckReport& report,
                     const core::PathReport& path) {
  std::string key = case_id + "|" + report.contract_id + "|";
  for (const std::string& fn : path.call_chain) key += fn + ">";
  return key;
}

/// Runs the whole corpus under one budget (0 = ungoverned) and collects the
/// per-path verdict map. Each case gets a fresh budget so one pathological
/// case cannot starve the rest of the sweep point.
CorpusOutcome run_corpus(std::int64_t max_smt_queries) {
  CorpusOutcome outcome;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    support::BudgetLimits limits;
    limits.max_smt_queries = max_smt_queries;
    support::Budget budget(limits);
    core::CheckOptions options;
    if (max_smt_queries > 0) options.budget = &budget;
    const core::Pipeline pipeline(inference::MockLlmOptions{}, options);
    const core::PipelineResult result = pipeline.run(ticket, ticket.patched_source);
    for (const core::ContractCheckReport& report : result.reports) {
      ++outcome.contracts;
      outcome.inconclusive +=
          report.inconclusive + report.dynamic.inconclusive_hits + report.dynamic.degraded_runs;
      for (const core::PathReport& path : report.paths) {
        if (path.verdict != core::PathVerdict::kVerified &&
            path.verdict != core::PathVerdict::kViolated)
          continue;
        ++outcome.settled;
        outcome.settled_verdicts[path_key(ticket.case_id, report, path)] =
            core::path_verdict_name(path.verdict);
      }
    }
  }
  return outcome;
}

/// Returns 0 when every sweep point degrades monotonically, 1 otherwise.
int check_degradation_bound() {
  std::printf("=== budget degradation sweep (max SMT queries per case) ===\n\n");
  const CorpusOutcome reference = run_corpus(0);
  std::printf("%10s  %8s  %14s  %8s\n", "budget", "settled", "inconclusive",
              "fraction");
  std::printf("%10s  %8d  %14d  %7.0f%%\n", "unlimited", reference.settled,
              reference.inconclusive, 100.0);
  int violations = 0;
  for (const std::int64_t budget : {64, 32, 16, 8, 4, 2, 1}) {
    const CorpusOutcome governed = run_corpus(budget);
    const double fraction =
        reference.settled == 0
            ? 1.0
            : static_cast<double>(governed.settled) / reference.settled;
    std::printf("%10lld  %8d  %14d  %7.0f%%\n", static_cast<long long>(budget),
                governed.settled, governed.inconclusive, fraction * 100.0);
    for (const auto& [key, verdict] : governed.settled_verdicts) {
      const auto ref = reference.settled_verdicts.find(key);
      if (ref == reference.settled_verdicts.end()) {
        std::printf("  !! invented verdict under budget %lld: %s = %s\n",
                    static_cast<long long>(budget), key.c_str(), verdict.c_str());
        ++violations;
      } else if (ref->second != verdict) {
        std::printf("  !! flipped verdict under budget %lld: %s = %s (reference %s)\n",
                    static_cast<long long>(budget), key.c_str(), verdict.c_str(),
                    ref->second.c_str());
        ++violations;
      }
    }
  }
  std::printf("\nmonotone degradation: %s\n\n",
              violations == 0 ? "PASS (no flips, no invented verdicts)" : "FAIL");
  return violations == 0 ? 0 : 1;
}

void BM_CorpusUngoverned(benchmark::State& state) {
  for (auto _ : state) {
    const CorpusOutcome outcome = run_corpus(0);
    benchmark::DoNotOptimize(outcome.settled);
  }
}
BENCHMARK(BM_CorpusUngoverned)->Unit(benchmark::kMillisecond);

void BM_CorpusGoverned(benchmark::State& state) {
  const std::int64_t budget = state.range(0);
  for (auto _ : state) {
    const CorpusOutcome outcome = run_corpus(budget);
    benchmark::DoNotOptimize(outcome.settled);
  }
}
BENCHMARK(BM_CorpusGoverned)->Arg(64)->Arg(8)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int violation = check_degradation_bound();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return violation;
}
