// The end-to-end LISA workflow (Fig. 5).
//
// ticket → LLM inference → translation to contracts → execution-tree
// construction + test selection + concolic assertion → report.
// Stage latencies are recorded for the Fig. 5 bench.
#pragma once

#include <string>
#include <vector>

#include "inference/mock_llm.hpp"
#include "lisa/checker.hpp"
#include "lisa/contract.hpp"

namespace lisa::core {

// Stage latencies, derived from the obs span tracer (obs/trace.hpp): each
// stage runs under a ScopedSpan and its field reads the span's elapsed
// time, so the report, the trace, and the metrics registry agree by
// construction.
//
// Invariants (asserted in report_test.cpp):
//   * total_ms == infer_ms + translate_ms + check_ms — the stages partition
//     the run; total is derived, never independently measured.
//   * screen_ms + summary_ms <= check_ms — both are *shares of* check_ms
//     (sub-intervals of the check stage), never additional time. Summing
//     all six fields double-counts.
struct StageTimings {
  double infer_ms = 0.0;
  double translate_ms = 0.0;
  double check_ms = 0.0;  // execution tree + SMT + test selection + concolic
  double screen_ms = 0.0;  // staticcheck screening share of check_ms
  double summary_ms = 0.0;  // interprocedural summary share of check_ms
  double total_ms = 0.0;   // == infer_ms + translate_ms + check_ms

  /// True when the invariants above hold (to `slack_ms` clock tolerance).
  [[nodiscard]] bool consistent(double slack_ms = 0.05) const {
    const double stage_sum = infer_ms + translate_ms + check_ms;
    if (total_ms < stage_sum - slack_ms || total_ms > stage_sum + slack_ms) return false;
    return screen_ms + summary_ms <= check_ms + slack_ms;
  }
};

/// Screened-vs-explored accounting across a run's contracts.
struct ScreeningSummary {
  int proved_safe = 0;
  int proved_violated = 0;
  int unknown = 0;           // fell through to the full check
  int concolic_skipped = 0;  // contracts whose replay the screener avoided

  [[nodiscard]] int settled() const { return proved_safe + proved_violated; }
  /// Fraction of screened contracts the screener settled (1.0 when no
  /// contract was screened — nothing fell through).
  [[nodiscard]] double settled_fraction() const {
    const int total = settled() + unknown;
    return total == 0 ? 1.0 : static_cast<double>(settled()) / total;
  }
};

/// Per-run knobs orthogonal to CheckOptions: checkpointing and resume.
struct PipelineRunOptions {
  /// JSONL checkpoint journal (lisa/journal.hpp). Empty = no journal.
  std::string journal_path;
  /// Reuse conclusive reports from a matching journal instead of
  /// re-checking; inconclusive entries are always re-checked.
  bool resume = false;
  /// Verdict provenance (obs/provenance.hpp): when set, the run binds the
  /// ledger to its inputs, records the inference proposal's retry history,
  /// and every contract check captures its full evidence chain. nullptr =
  /// zero-cost (run output byte-identical to an uncaptured run).
  obs::ProvenanceLedger* ledger = nullptr;
  /// Longitudinal observability (obs/history.hpp): when set, the run appends
  /// one RunRecord (kind "check", label = the ticket's case id) with stage
  /// timings, settled fraction, and per-contract outcomes to this history
  /// file. Empty = zero-cost, byte-identical output.
  std::string history_path;
};

struct PipelineResult {
  inference::SemanticsProposal proposal;
  std::vector<SemanticContract> contracts;
  std::vector<std::string> rejected;   // out-of-fragment low-level semantics
  std::vector<ContractCheckReport> reports;
  StageTimings timings;
  /// Inference hardening (inference/proposal.hpp): attempts the retry loop
  /// spent, and the structured failure when it gave up. A failed inference
  /// yields an empty-but-valid result with all_passed() == false — never an
  /// uncaught exception for backend faults.
  int inference_attempts = 1;
  bool inference_failed = false;
  std::string inference_error;
  /// Contracts whose reports were replayed from the checkpoint journal.
  int resumed_contracts = 0;

  /// True when every contract held on the checked version — and was checked
  /// to completion: an inconclusive (budget-cut / fault-degraded) report or
  /// a failed inference never counts as a pass.
  [[nodiscard]] bool all_passed() const;
  /// Total violated paths + structural + dynamic + schedule violations
  /// across contracts.
  [[nodiscard]] int total_violations() const;
  /// Total interleavings the schedule explorer ran across contracts.
  [[nodiscard]] int schedules_explored() const;
  /// Fraction of schedule-explored contracts whose exploration drained the
  /// reduced interleaving space (1.0 when none was explored).
  [[nodiscard]] double interleaving_conclusive_fraction() const;
  /// Screening verdict counts aggregated over `reports`.
  [[nodiscard]] ScreeningSummary screening() const;

  [[nodiscard]] support::Json to_json() const;
};

class Pipeline {
 public:
  Pipeline(inference::MockLlmOptions llm_options, CheckOptions check_options)
      : llm_(llm_options), check_options_(std::move(check_options)) {}
  Pipeline() : Pipeline(inference::MockLlmOptions{}, CheckOptions{}) {}

  /// Runs the full workflow for `ticket`, asserting the inferred contracts
  /// against `source_to_check` (e.g. the patched version right after the
  /// fix, or the latest release for the §4 bug hunt).
  [[nodiscard]] PipelineResult run(const corpus::FailureTicket& ticket,
                                   const std::string& source_to_check) const;
  [[nodiscard]] PipelineResult run(const corpus::FailureTicket& ticket,
                                   const std::string& source_to_check,
                                   const PipelineRunOptions& run_options) const;

  [[nodiscard]] const CheckOptions& check_options() const { return check_options_; }

  /// Retry policy for the inference stage (bounded attempts, exponential
  /// backoff). Tests turn sleeping off.
  void set_retry_policy(inference::RetryPolicy policy) { retry_policy_ = policy; }
  [[nodiscard]] const inference::RetryPolicy& retry_policy() const { return retry_policy_; }

 private:
  inference::MockLlm llm_;
  CheckOptions check_options_;
  inference::RetryPolicy retry_policy_;
};

}  // namespace lisa::core
