// Mini-Cassandra: a ring of nodes with hinted handoff and read repair.
//
// The CASS-H1/H2 incident class replays here: hints destined for a node that
// was decommissioned must not be delivered — replaying them resurrects
// deleted data. Each replay path can individually enforce or skip the ring
// check.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "systems/sim/event_loop.hpp"

namespace lisa::systems::cassandra {

struct NodeState {
  std::string host;
  bool decommissioned = false;
  std::uint64_t mutations_applied = 0;
};

struct HintStats {
  std::uint64_t hints_queued = 0;
  std::uint64_t hints_delivered = 0;
  std::uint64_t hints_to_decommissioned = 0;  // the incident symptom
  std::uint64_t hints_rejected = 0;
  std::uint64_t rows_resurrected = 0;
};

class HintedHandoff {
 public:
  explicit HintedHandoff(EventLoop& loop) : loop_(loop) {}

  void add_node(const std::string& host);
  void decommission(const std::string& host);
  [[nodiscard]] const NodeState* node(const std::string& host) const;

  /// Stores a hint for `host`. `deletes_row` marks mutations that would
  /// resurrect a tombstoned row if replayed late.
  void queue_hint(const std::string& host, const std::string& mutation, bool resurrects);

  /// Replays the hints of one endpoint. With `check_ring`, hints for
  /// decommissioned nodes are rejected (the fix); without it they are applied
  /// and may resurrect rows.
  std::size_t replay_endpoint(const std::string& host, bool check_ring);

  /// Replays every endpoint's hints (the coordinator-restart path).
  std::size_t replay_all(bool check_ring);

  [[nodiscard]] const HintStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending_hints() const;

 private:
  struct Hint {
    std::string mutation;
    bool resurrects = false;
  };

  EventLoop& loop_;
  std::map<std::string, NodeState> nodes_;
  std::map<std::string, std::vector<Hint>> pending_;
  HintStats stats_;
};

}  // namespace lisa::systems::cassandra
