// Call-graph construction over MiniLang programs — the reproduction's Soot.
//
// Nodes are functions; edges are syntactic call sites. Blocking builtins
// (write_record, fsync_log, ...) appear as leaf pseudo-nodes so that
// transitive "does this function ever block?" queries (needed by the
// no-blocking-in-sync structural rule) are simple reachability.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "minilang/ast.hpp"

namespace lisa::analysis {

/// One syntactic call site: `call` appears somewhere inside `stmt` of
/// `caller`. Pointers borrow from the Program, which must outlive the graph.
struct CallSite {
  const minilang::FuncDecl* caller = nullptr;
  const minilang::Stmt* stmt = nullptr;
  const minilang::Expr* call = nullptr;  // Expr::Kind::kCall
  /// True if the site is lexically inside a `sync` block of `caller`.
  bool inside_sync = false;
  /// The innermost enclosing `sync` statement, or null when !inside_sync.
  const minilang::Stmt* sync_stmt = nullptr;

  [[nodiscard]] const std::string& callee() const { return call->text; }
};

/// The strongly-connected-component condensation of the call graph,
/// restricted to user-defined functions (builtins are effect leaves, not
/// nodes). Components are emitted in *reverse topological* order: every
/// callee's component precedes its callers', so a bottom-up summary pass
/// can simply iterate `components` front to back.
struct Condensation {
  struct Component {
    std::vector<std::string> members;  // function names, discovery order
    /// True when the component is a cycle: more than one member, or a
    /// single member that calls itself. Summary inference must iterate
    /// such components to a (widened) fixpoint instead of a single pass.
    bool recursive = false;
  };

  std::vector<Component> components;        // reverse topological order
  std::map<std::string, int> component_of;  // function name → index

  [[nodiscard]] std::size_t size() const { return components.size(); }
  /// Component index of `name`, or -1 for unknown (builtin) names.
  [[nodiscard]] int component_index(const std::string& name) const {
    const auto it = component_of.find(name);
    return it == component_of.end() ? -1 : it->second;
  }
};

class CallGraph {
 public:
  /// Builds the graph; `program` must outlive the result.
  [[nodiscard]] static CallGraph build(const minilang::Program& program);

  [[nodiscard]] const std::vector<CallSite>& sites() const { return sites_; }

  /// All call sites whose callee is `name`.
  [[nodiscard]] std::vector<const CallSite*> sites_calling(const std::string& name) const;

  /// Direct callees of `name` (user functions only).
  [[nodiscard]] const std::set<std::string>& callees_of(const std::string& name) const;

  /// Direct callers of `name`.
  [[nodiscard]] const std::set<std::string>& callers_of(const std::string& name) const;

  /// Functions with no callers inside the program, plus @entry-annotated
  /// ones. @test functions are excluded: they are inputs, not API surface.
  [[nodiscard]] std::vector<const minilang::FuncDecl*> entry_functions() const;

  /// All acyclic call chains `entry → ... → target` (each element a function
  /// name), capped at `max_chains`. If `target` is itself an entry, the
  /// one-element chain is included.
  [[nodiscard]] std::vector<std::vector<std::string>> chains_to(
      const std::string& target, std::size_t max_chains = 256) const;

  /// True if `name` (transitively) performs a blocking call — reaches a
  /// blocking builtin or an @blocking function.
  [[nodiscard]] bool reaches_blocking(const std::string& name) const;

  /// Tarjan SCC condensation over user-defined functions, components in
  /// reverse topological (callees-first) order. Edges to builtins are
  /// dropped; they have no bodies to summarize.
  [[nodiscard]] Condensation condensation() const;

 private:
  const minilang::Program* program_ = nullptr;
  std::vector<CallSite> sites_;
  std::map<std::string, std::set<std::string>> callees_;
  std::map<std::string, std::set<std::string>> callers_;
  mutable std::map<std::string, bool> blocking_cache_;
};

}  // namespace lisa::analysis
