#include "corpus/ticket.hpp"

namespace lisa::corpus {

const std::vector<FailureTicket>& Corpus::all() {
  static const std::vector<FailureTicket> corpus = [] {
    std::vector<FailureTicket> cases;
    const auto append = [&cases](std::vector<FailureTicket> group) {
      for (FailureTicket& ticket : group) cases.push_back(std::move(ticket));
    };
    append(zookeeper_cases());
    append(hdfs_cases());
    append(hbase_cases());
    append(cassandra_cases());
    return cases;
  }();
  return corpus;
}

const FailureTicket* Corpus::find(const std::string& case_id) {
  for (const FailureTicket& ticket : all())
    if (ticket.case_id == case_id) return &ticket;
  return nullptr;
}

std::vector<const FailureTicket*> Corpus::for_system(const std::string& system) {
  std::vector<const FailureTicket*> out;
  for (const FailureTicket& ticket : all())
    if (ticket.system == system) out.push_back(&ticket);
  return out;
}

}  // namespace lisa::corpus
