// Mini-HBase snapshot store with TTL enforcement.
//
// The HBASE-27671/28704/29296 incident class replays here: snapshots carry a
// TTL relative to the virtual clock; each serving operation (restore, export,
// scan) can individually enforce or skip the expiration check, mirroring the
// real system's inconsistent coverage across code paths.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "systems/sim/event_loop.hpp"

namespace lisa::systems::hbase {

enum class SnapshotStatus { kOk, kNotFound, kExpired };

struct SnapshotStats {
  std::uint64_t served_ok = 0;
  std::uint64_t expired_served = 0;   // the incident symptom: stale data out
  std::uint64_t expired_rejected = 0;
  std::uint64_t not_found = 0;
};

/// Per-operation expiration-check coverage. The "latest version" of the
/// incident corpus corresponds to {restore: true, export: true, scan: false}.
struct CheckCoverage {
  bool restore = true;
  bool export_op = true;
  bool scan = true;
};

class SnapshotStore {
 public:
  explicit SnapshotStore(EventLoop& loop, CheckCoverage coverage = {})
      : loop_(loop), coverage_(coverage) {}

  /// Creates a snapshot with `ttl_ms` time-to-live from now (0 = never
  /// expires).
  void create_snapshot(const std::string& name, std::int64_t ttl_ms,
                       std::vector<std::string> rows);

  /// True if the snapshot exists and its TTL has elapsed.
  [[nodiscard]] bool is_expired(const std::string& name) const;

  // The three serving operations. Each consults the expiration check only if
  // its coverage flag is set — skipped checks serve stale data silently.
  SnapshotStatus restore(const std::string& name);
  SnapshotStatus export_snapshot(const std::string& name);
  /// Returns the snapshot rows on success (the scan result).
  std::pair<SnapshotStatus, std::vector<std::string>> scan(const std::string& name);

  [[nodiscard]] const SnapshotStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t snapshot_count() const { return snapshots_.size(); }

 private:
  struct Snapshot {
    std::int64_t created_ms = 0;
    std::int64_t ttl_ms = 0;
    std::vector<std::string> rows;
  };

  SnapshotStatus serve(const std::string& name, bool check_expiration);

  EventLoop& loop_;
  CheckCoverage coverage_;
  std::map<std::string, Snapshot> snapshots_;
  SnapshotStats stats_;
};

}  // namespace lisa::systems::hbase
