// Systematic path exploration: close the coverage gap the test suite leaves.
//
// §3.2's workflow replays *existing* tests and reports paths none of them
// reaches. This module implements the natural next step (classic concolic
// exploration, specialized to LISA's setting): for every static path of a
// contract's execution tree that no test covers, solve the full path
// condition, synthesize a driver test from the model (testgen), replay it on
// the concolic engine, and fold the result back into the report. Paths whose
// required state cannot be constructed through entry arguments remain for
// the human — but they are now the only ones.
#pragma once

#include <string>
#include <vector>

#include "analysis/paths.hpp"
#include "concolic/testgen.hpp"
#include "minilang/ast.hpp"
#include "obs/provenance.hpp"
#include "smt/formula.hpp"
#include "support/budget.hpp"

namespace lisa::concolic {

enum class ExploredVerdict {
  kVerifiedByReplay,   // synthesized run hit the target, no violation
  kViolatedByReplay,   // synthesized run exhibited the missing check
  kInfeasible,         // path condition unsatisfiable (dead static path)
  kNotSynthesizable,   // needs container-mediated state: human verdict
  kReplayMismatch,     // synthesized test did not reach the target
  kSkipped,            // budget exhausted / fault injected: inconclusive
};

[[nodiscard]] const char* explored_verdict_name(ExploredVerdict verdict);

struct ExploredPath {
  std::vector<std::string> call_chain;
  ExploredVerdict verdict = ExploredVerdict::kNotSynthesizable;
  std::string test_source;  // the synthesized driver, when one exists
  std::string detail;       // model / witness / reason
};

struct ExplorationReport {
  std::vector<ExploredPath> paths;
  int verified = 0;
  int violated = 0;
  int infeasible = 0;
  int human_needed = 0;  // not synthesizable or replay mismatch
  int skipped = 0;       // budget-refused or fault-degraded paths
  bool budget_exhausted = false;
  std::string budget_reason;
};

/// Explores every path of the contract's (unpruned) execution tree whose
/// chain-head entry is synthesizable, replaying a generated driver for each.
/// `contract_condition` is in target-frame local names (as in TreeOptions).
/// An exhausted `budget` (nullptr = ungoverned) degrades remaining paths to
/// kSkipped — never to a verified/violated verdict. An active `capture`
/// records the exploration's feasibility / violation SMT queries (phase
/// "explore") into the provenance ledger.
[[nodiscard]] ExplorationReport explore(const minilang::Program& program,
                                        const std::string& target_fragment,
                                        const smt::FormulaPtr& contract_condition,
                                        support::Budget* budget = nullptr,
                                        const obs::CaptureHandle& capture = {});

}  // namespace lisa::concolic
