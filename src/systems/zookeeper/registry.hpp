// Kafka-style consumer registry on top of mini-ZooKeeper (Fig. 2 scenario).
//
// Consumers register their address as an ephemeral node under
// /consumers/ids/<id>; producers resolve consumer addresses through the
// registry. When a stale ephemeral node survives its session (ZK-1208),
// producers keep sending to a dead address and the send-error counter climbs
// — the "system-wide errors" of the paper's Figure 2.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "systems/zookeeper/server.hpp"

namespace lisa::systems::zk {

class ConsumerRegistry {
 public:
  explicit ConsumerRegistry(ZooKeeperServer& zk) : zk_(zk) {}

  /// Registers a consumer: opens a session and creates the ephemeral node.
  /// Returns the session id, or nullopt if registration was rejected.
  std::optional<std::int64_t> register_consumer(const std::string& consumer_id,
                                                const std::string& address);

  /// Consumer departs; its ephemeral registration should vanish with the
  /// session.
  void unregister_consumer(const std::string& consumer_id);

  /// Resolves the address of a consumer (nullopt when not registered).
  [[nodiscard]] std::optional<std::string> lookup(const std::string& consumer_id) const;

  /// All currently registered consumer ids.
  [[nodiscard]] std::vector<std::string> list_consumers() const;

 private:
  [[nodiscard]] static std::string path_for(const std::string& consumer_id) {
    return "/consumers/ids/" + consumer_id;
  }

  ZooKeeperServer& zk_;
  std::map<std::string, std::int64_t> sessions_;  // consumer id → session id
};

/// A producer that resolves consumer addresses via the registry and "sends"
/// to them; sends to addresses whose consumer is gone are counted as errors.
class Producer {
 public:
  Producer(ConsumerRegistry& registry, const std::map<std::string, bool>* live_consumers)
      : registry_(registry), live_(live_consumers) {}

  /// Attempts to deliver one message to `consumer_id`. Returns true on
  /// success; failures increment the error counters.
  bool send(const std::string& consumer_id);

  [[nodiscard]] std::uint64_t sent_ok() const { return sent_ok_; }
  [[nodiscard]] std::uint64_t stale_address_errors() const { return stale_errors_; }
  [[nodiscard]] std::uint64_t unresolved_errors() const { return unresolved_errors_; }

 private:
  ConsumerRegistry& registry_;
  const std::map<std::string, bool>* live_;  // consumer id → actually alive
  std::uint64_t sent_ok_ = 0;
  std::uint64_t stale_errors_ = 0;
  std::uint64_t unresolved_errors_ = 0;
};

}  // namespace lisa::systems::zk
