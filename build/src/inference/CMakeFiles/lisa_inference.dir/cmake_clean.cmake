file(REMOVE_RECURSE
  "CMakeFiles/lisa_inference.dir/embedding.cpp.o"
  "CMakeFiles/lisa_inference.dir/embedding.cpp.o.d"
  "CMakeFiles/lisa_inference.dir/mock_llm.cpp.o"
  "CMakeFiles/lisa_inference.dir/mock_llm.cpp.o.d"
  "CMakeFiles/lisa_inference.dir/proposal.cpp.o"
  "CMakeFiles/lisa_inference.dir/proposal.cpp.o.d"
  "liblisa_inference.a"
  "liblisa_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisa_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
