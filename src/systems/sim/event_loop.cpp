#include "systems/sim/event_loop.hpp"

#include <stdexcept>
#include <utility>

namespace lisa::systems {

void EventLoop::schedule_at(std::int64_t time_ms, Handler handler) {
  if (time_ms < now_ms_) time_ms = now_ms_;
  queue_.push(Event{time_ms, next_seq_++, std::move(handler)});
}

void EventLoop::schedule_after(std::int64_t delay_ms, Handler handler) {
  schedule_at(now_ms_ + (delay_ms < 0 ? 0 : delay_ms), std::move(handler));
}

bool EventLoop::run_one() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast on the handler,
  // which is safe because the element is popped immediately after.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ms_ = event.time;
  ++executed_;
  event.handler();
  return true;
}

void EventLoop::run_until(std::int64_t time_ms) {
  while (!queue_.empty() && queue_.top().time <= time_ms) {
    if (!run_one()) break;
  }
  if (now_ms_ < time_ms) now_ms_ = time_ms;
}

void EventLoop::run_all(std::size_t max_events) {
  std::size_t count = 0;
  while (run_one()) {
    if (++count > max_events)
      throw std::runtime_error("EventLoop::run_all exceeded max_events — event storm?");
  }
}

}  // namespace lisa::systems
