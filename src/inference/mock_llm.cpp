#include "inference/mock_llm.hpp"

#include <chrono>
#include <set>
#include <thread>

#include "corpus/diff.hpp"
#include "minilang/interp.hpp"
#include "minilang/parser.hpp"
#include "minilang/printer.hpp"
#include "minilang/sema.hpp"
#include "obs/metrics.hpp"
#include "support/faultpoint.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace lisa::inference {

using minilang::Expr;
using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;
using minilang::StmtPtr;

namespace {

/// Collects the root identifiers of every access path in `expr`.
void collect_roots(const Expr& expr, std::set<std::string>& out) {
  if (expr.kind == Expr::Kind::kVar) {
    out.insert(expr.text);
    return;
  }
  if (expr.kind == Expr::Kind::kField) {
    // Descend to the path root.
    collect_roots(*expr.args[0], out);
    return;
  }
  for (const minilang::ExprPtr& arg : expr.args) collect_roots(*arg, out);
}

/// First call expression inside a statement (pre-order), or nullptr.
const Expr* first_call(const Expr& expr) {
  if (expr.kind == Expr::Kind::kCall) return &expr;
  for (const minilang::ExprPtr& arg : expr.args) {
    const Expr* found = first_call(*arg);
    if (found != nullptr) return found;
  }
  return nullptr;
}

const Expr* first_call_in_stmt(const Stmt& stmt) {
  if (stmt.expr) {
    const Expr* found = first_call(*stmt.expr);
    if (found != nullptr) return found;
  }
  if (stmt.expr2) {
    const Expr* found = first_call(*stmt.expr2);
    if (found != nullptr) return found;
  }
  return nullptr;
}

/// True if every statement of `body` exits the function or raises — the
/// early-exit guard shape.
bool is_early_exit_body(const std::vector<StmtPtr>& body) {
  if (body.empty()) return false;
  for (const StmtPtr& stmt : body)
    if (stmt->kind != Stmt::Kind::kThrow && stmt->kind != Stmt::Kind::kReturn) return false;
  return true;
}

/// Locates the block containing `needle` and its index within that block.
struct StmtContext {
  const std::vector<StmtPtr>* block = nullptr;
  std::size_t index = 0;
};

bool find_context(const std::vector<StmtPtr>& stmts, const Stmt* needle, StmtContext* out) {
  for (std::size_t i = 0; i < stmts.size(); ++i) {
    if (stmts[i].get() == needle) {
      out->block = &stmts;
      out->index = i;
      return true;
    }
    if (find_context(stmts[i]->body, needle, out)) return true;
    if (find_context(stmts[i]->else_body, needle, out)) return true;
  }
  return false;
}

/// Pre-order scan collecting early-exit guards that appear before `target`.
/// Returns false once `target` is reached (stopping the scan).
bool collect_preceding_guards(const std::vector<StmtPtr>& stmts, const Stmt* target,
                              const Stmt* skip,
                              std::vector<const Expr*>* guards) {
  for (const StmtPtr& stmt : stmts) {
    if (stmt.get() == target) return false;
    if (stmt.get() != skip && stmt->kind == Stmt::Kind::kIf &&
        is_early_exit_body(stmt->body) && stmt->else_body.empty()) {
      guards->push_back(stmt->expr.get());
    }
    if (!collect_preceding_guards(stmt->body, target, skip, guards)) return false;
    if (!collect_preceding_guards(stmt->else_body, target, skip, guards)) return false;
  }
  return true;
}

/// True if the expression (transitively) calls a blocking builtin.
bool contains_blocking_call(const Expr& expr, std::string* name) {
  if (expr.kind == Expr::Kind::kCall && minilang::blocking_builtins().count(expr.text) > 0) {
    *name = expr.text;
    return true;
  }
  for (const minilang::ExprPtr& arg : expr.args)
    if (contains_blocking_call(*arg, name)) return true;
  return false;
}

std::string negate_text(const std::string& expr_text) { return "!(" + expr_text + ")"; }

/// True when the program contains at least one `sync` statement.
bool has_sync_stmt(const Program& program) {
  bool found = false;
  program.for_each_stmt([&](const FuncDecl&, const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kSync) found = true;
  });
  return found;
}

/// True when the program contains at least one `spawn` statement — the
/// discriminator between interleaving tickets settled statically (lockset /
/// lock-order over entry points) and tickets whose bug only exists under a
/// real thread schedule (check-then-act, lost update, missed notify).
bool has_spawn_stmt(const Program& program) {
  bool found = false;
  program.for_each_stmt([&](const FuncDecl&, const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kSpawn) found = true;
  });
  return found;
}

/// First field name read anywhere in `expr` (pre-order), or "".
std::string first_field_read(const Expr& expr) {
  if (expr.kind == Expr::Kind::kField) return expr.text;
  for (const minilang::ExprPtr& arg : expr.args) {
    std::string nested = first_field_read(*arg);
    if (!nested.empty()) return nested;
  }
  return "";
}

/// First `while` loop in `stmts` (recursive) whose body calls wait() — the
/// guarded-wait shape a missed-notify patch introduces.
const Stmt* find_wait_loop(const std::vector<StmtPtr>& stmts) {
  for (const StmtPtr& stmt : stmts) {
    if (stmt->kind == Stmt::Kind::kWhile) {
      for (const StmtPtr& inner : stmt->body) {
        const Expr* call = first_call_in_stmt(*inner);
        if (call != nullptr && call->text == "wait") return stmt.get();
      }
    }
    const Stmt* nested = find_wait_loop(stmt->body);
    if (nested != nullptr) return nested;
    nested = find_wait_loop(stmt->else_body);
    if (nested != nullptr) return nested;
  }
  return nullptr;
}

/// First field name written by an assignment in `stmts` (recursive), or "".
std::string first_field_write(const std::vector<StmtPtr>& stmts) {
  for (const StmtPtr& stmt : stmts) {
    if (stmt->kind == Stmt::Kind::kAssign && stmt->expr &&
        stmt->expr->kind == Expr::Kind::kField)
      return stmt->expr->text;
    std::string nested = first_field_write(stmt->body);
    if (!nested.empty()) return nested;
    nested = first_field_write(stmt->else_body);
    if (!nested.empty()) return nested;
  }
  return "";
}

}  // namespace

std::string MockLlm::render_prompt(const corpus::FailureTicket& ticket) {
  const Program before = minilang::parse(ticket.buggy_source);
  const Program after = minilang::parse(ticket.patched_source);
  const corpus::ProgramDiff diff = corpus::diff_programs(before, after);
  std::string prompt =
      "You are an AI assistant that extracts violated low-level semantics from a "
      "past system failure.\n"
      "You will receive three inputs:\n"
      "  Failure description and developer discussion\n"
      "  Code patch (the diff)\n"
      "  Source code after the patch has been applied\n"
      "Steps: identify the root cause; identify the high-level semantics; identify "
      "the low-level semantics; translate it into one condition statement and one "
      "target statement; describe your reasoning; repeat for all unique checks.\n"
      "Output JSON: {\"high_level_semantics\": ..., \"low_level_semantics\": "
      "{\"description\", \"target_statement\", \"condition_statement\"}, "
      "\"reasoning\"}\n\n";
  prompt += "== Failure description ==\n" + ticket.description + "\n\n";
  prompt += "== Code patch ==\n" + corpus::render_diff(diff) + "\n";
  prompt += "== Patched source ==\n" + ticket.patched_source + "\n";
  return prompt;
}

SemanticsProposal MockLlm::infer(const corpus::FailureTicket& ticket) const {
  if (options_.latency_spike_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(options_.latency_spike_ms));
  const support::FaultAction fault = support::faultpoint("infer.propose");
  if (fault == support::FaultAction::kFail || fault == support::FaultAction::kTimeout) {
    obs::metrics().counter("fault.infer.propose").add();
    throw InferenceError(ticket.case_id,
                         std::string("injected backend ") +
                             support::fault_action_name(fault),
                         /*transient=*/true);
  }
  if (transient_remaining_.load(std::memory_order_relaxed) > 0 &&
      transient_remaining_.fetch_sub(1, std::memory_order_relaxed) > 0)
    throw InferenceError(ticket.case_id, "transient backend error (configured fault)",
                         /*transient=*/true);
  bool malformed = fault == support::FaultAction::kMalformed;
  if (malformed) obs::metrics().counter("fault.infer.propose").add();
  if (malformed_remaining_.load(std::memory_order_relaxed) > 0 &&
      malformed_remaining_.fetch_sub(1, std::memory_order_relaxed) > 0)
    malformed = true;
  if (malformed) {
    // A structurally broken response: echoes the case but carries a
    // low-level semantics with no target or condition, which
    // validate_proposal rejects (the re-prompt path in infer_with_retry).
    SemanticsProposal bad;
    bad.case_id = ticket.case_id;
    bad.low_level.emplace_back();
    bad.reasoning = "(malformed response)";
    return bad;
  }

  const Program before = minilang::parse_checked(ticket.buggy_source);
  const Program after = minilang::parse_checked(ticket.patched_source);
  const corpus::ProgramDiff diff = corpus::diff_programs(before, after);

  SemanticsProposal proposal;
  proposal.case_id = ticket.case_id;
  std::string reasoning =
      "Root cause localized from the patch diff of " + ticket.case_id + ". ";

  // ---- Interleaving rule: missed notify fixed by a guarded wait loop -------
  // Lost-wakeup tickets on spawning programs are patched by moving the
  // check-and-wait under the monitor and re-checking in a loop; the
  // checkable rule is liveness — every schedule must eventually observe the
  // condition — which only the schedule explorer can decide.
  const bool spawning = has_spawn_stmt(before) || has_spawn_stmt(after);
  const bool notify_language =
      support::contains_ci(ticket.description, "notify") ||
      support::contains_ci(ticket.description, "wakeup") ||
      support::contains_ci(ticket.description, "signal");
  if (spawning && notify_language) {
    for (const corpus::DiffEntry& added : diff.added) {
      if (added.stmt->kind != Stmt::Kind::kSync || added.stmt->expr == nullptr)
        continue;
      const Stmt* loop = find_wait_loop(added.stmt->body);
      if (loop == nullptr || loop->expr == nullptr) continue;
      const std::string field = first_field_read(*loop->expr);
      if (field.empty()) continue;
      proposal.kind = corpus::SemanticsKind::kInterleavingSensitive;
      proposal.pattern = "eventually";
      proposal.high_level_semantics =
          "A waiter blocked on a condition must eventually observe it under "
          "every thread schedule: a wakeup signal that can land between the "
          "check and the wait is a lost-notify hang.";
      LowLevelSemantics low;
      low.description =
          "Under every interleaving, a thread that waits on '" + field +
          "' must eventually be woken and observe the condition; no schedule "
          "may strand the waiter after the signal has fired.";
      low.target_statement = "wait(";
      low.condition_statement = "eventually(" + field + ")";
      proposal.low_level.push_back(std::move(low));
      reasoning +=
          "The patch moved the check of '" + field +
          "' and the wait into one monitor region with a re-check loop; the "
          "generalized rule quantifies over schedules — the waiter must "
          "eventually proceed in every interleaving, not just the serial one.";
      proposal.reasoning = reasoning;
      return proposal;
    }
  }

  // ---- Interleaving rule: check-then-act / lost update made atomic ---------
  // Atomicity tickets on spawning programs are patched by wrapping the
  // multi-step access in a monitor; the rule quantifies over interleavings
  // (the region must appear indivisible in every schedule), so it is decided
  // by the schedule explorer, not the static lockset screen.
  const bool atomic_language =
      support::contains_ci(ticket.description, "check-then-act") ||
      support::contains_ci(ticket.description, "lost update") ||
      support::contains_ci(ticket.description, "read-modify-write") ||
      support::contains_ci(ticket.description, "atomic");
  if (spawning && atomic_language) {
    for (const corpus::DiffEntry& added : diff.added) {
      if (added.stmt->kind != Stmt::Kind::kSync || added.stmt->expr == nullptr)
        continue;
      const std::string monitor = minilang::expr_text(*added.stmt->expr);
      const std::string field = first_field_write(added.stmt->body);
      if (field.empty() || monitor.empty()) continue;
      proposal.kind = corpus::SemanticsKind::kInterleavingSensitive;
      proposal.pattern = "atomic";
      proposal.high_level_semantics =
          "A multi-step access of shared state must be indivisible: no other "
          "thread may observe or mutate the state between the check (or "
          "read) and the act (or write).";
      LowLevelSemantics low;
      low.description =
          "The region updating field '" + field + "' under monitor '" + monitor +
          "' must execute atomically in every interleaving; a schedule that "
          "interleaves another thread inside it is a violation.";
      low.target_statement = field;
      low.condition_statement = "atomic(" + monitor + ")";
      proposal.low_level.push_back(std::move(low));
      reasoning +=
          "The patch wrapped the multi-step update of '" + field +
          "' in sync (" + monitor +
          "); generalized from the patched site to atomicity of the region "
          "under every thread schedule, which serial replay cannot check.";
      proposal.reasoning = reasoning;
      return proposal;
    }
  }

  // ---- Interleaving rule: lock-order inversion fixed by the patch ----------
  // Deadlock tickets talk about lock ordering; the checkable rule is global
  // acyclicity of the acquisition-order graph, settled by the static
  // concurrency pass (staticcheck/concurrency.hpp).
  const bool deadlock_language =
      support::contains_ci(ticket.description, "deadlock") ||
      support::contains_ci(ticket.description, "lock order") ||
      support::contains_ci(ticket.description, "inversion");
  if (deadlock_language && has_sync_stmt(before)) {
    proposal.kind = corpus::SemanticsKind::kInterleavingSensitive;
    proposal.pattern = "lock_order_acyclic";
    proposal.high_level_semantics =
        "Threads must acquire monitors in one global order: any cycle in the "
        "lock-acquisition-order graph is a potential deadlock.";
    LowLevelSemantics low;
    low.description =
        "The lock-acquisition-order graph over every thread entry point must "
        "be acyclic; nested monitor acquisitions must follow a single global "
        "order.";
    low.target_statement = "sync (";
    low.condition_statement = "lock_order_acyclic";
    proposal.low_level.push_back(std::move(low));
    reasoning +=
        "The ticket describes threads waiting on each other's monitors; the "
        "patch re-establishes a single acquisition order, so the generalized "
        "rule is acyclicity of the global lock-order graph rather than the "
        "one inverted pair that was patched.";
    proposal.reasoning = reasoning;
    return proposal;
  }

  // ---- Interleaving rule: unguarded shared-field access (race) -------------
  // Race tickets are fixed by wrapping the access (or the call reaching it)
  // in a sync block; the rule is that every access of the field must hold
  // that monitor.
  const bool race_language = support::contains_ci(ticket.description, "race") ||
                             support::contains_ci(ticket.description, "atomicity");
  if (race_language) {
    for (const corpus::DiffEntry& added : diff.added) {
      if (added.stmt->kind != Stmt::Kind::kSync || added.stmt->expr == nullptr)
        continue;
      const std::string monitor = minilang::expr_text(*added.stmt->expr);
      // The guarded field: written directly in the new sync body, or inside
      // the first function the body calls (the patch wrapped the call).
      std::string field = first_field_write(added.stmt->body);
      if (field.empty()) {
        for (const StmtPtr& inner : added.stmt->body) {
          const Expr* call = first_call_in_stmt(*inner);
          if (call == nullptr) continue;
          const FuncDecl* callee = after.find_function(call->text);
          if (callee != nullptr) field = first_field_write(callee->body);
          if (!field.empty()) break;
        }
      }
      if (field.empty() || monitor.empty()) continue;
      proposal.kind = corpus::SemanticsKind::kInterleavingSensitive;
      proposal.pattern = "guarded_field";
      proposal.high_level_semantics =
          "Shared mutable state has one guard monitor: every thread must hold "
          "it across reads and writes of the guarded field.";
      LowLevelSemantics low;
      low.description = "Every access of field '" + field +
                        "' must execute while monitor '" + monitor +
                        "' is held; a write outside the monitor is a data race.";
      low.target_statement = field;
      low.condition_statement = "holds(" + monitor + ")";
      proposal.low_level.push_back(std::move(low));
      reasoning += "The patch wrapped the access to '" + field + "' in sync (" +
                   monitor +
                   "); generalized from the patched site to every access of "
                   "the field under the Eraser lockset discipline.";
      proposal.reasoning = reasoning;
      return proposal;
    }
  }

  // ---- Structural rule: blocking call moved out of a sync region ----------
  const bool blocking_language =
      support::contains_ci(ticket.description, "blocked") ||
      support::contains_ci(ticket.description, "blocking") ||
      support::contains_ci(ticket.description, "synchronized") ||
      support::contains_ci(ticket.description, "monitor");
  if (blocking_language) {
    for (const corpus::DiffEntry& removed : diff.removed) {
      std::string blocking_name;
      if (removed.stmt->expr == nullptr ||
          !contains_blocking_call(*removed.stmt->expr, &blocking_name))
        continue;
      proposal.kind = corpus::SemanticsKind::kStructuralPattern;
      proposal.pattern = "no_blocking_in_sync";
      proposal.high_level_semantics =
          "The request pipeline must never stall on I/O while holding a monitor: "
          "blocking calls are forbidden inside synchronized regions.";
      LowLevelSemantics low;
      low.description =
          "No blocking I/O (" + blocking_name + " and equivalents) may execute while a "
          "monitor is held; copy state under the lock and perform the I/O outside.";
      low.target_statement = blocking_name + "(";
      low.condition_statement = "sync_depth == 0";
      proposal.low_level.push_back(std::move(low));
      reasoning +=
          "The patch moved the blocking call " + blocking_name + " out of the "
          "synchronized block; generalized to the class of serialization patterns "
          "per the ticket discussion rather than the single function that was "
          "patched.";
      proposal.reasoning = reasoning;
      return proposal;
    }
  }

  // ---- State-predicate rules: added guards ---------------------------------
  proposal.kind = corpus::SemanticsKind::kStatePredicate;
  std::set<std::string> emitted;
  for (const corpus::DiffEntry& added : diff.added) {
    if (added.stmt->kind != Stmt::Kind::kIf) continue;
    const FuncDecl* fn = after.find_function(added.function);
    if (fn == nullptr) continue;

    std::string condition_text;
    const Stmt* target = nullptr;
    if (is_early_exit_body(added.stmt->body) && added.stmt->else_body.empty()) {
      // Early-exit shape: the protected statement follows the guard.
      StmtContext context;
      if (!find_context(fn->body, added.stmt, &context)) continue;
      for (std::size_t i = context.index + 1; i < context.block->size(); ++i) {
        if (first_call_in_stmt(*(*context.block)[i]) != nullptr) {
          target = (*context.block)[i].get();
          break;
        }
      }
      condition_text = negate_text(minilang::expr_text(*added.stmt->expr));
    } else {
      // Guard-wrap shape: the protected call sits inside the branch body.
      for (const StmtPtr& inner : added.stmt->body) {
        if (first_call_in_stmt(*inner) != nullptr) {
          target = inner.get();
          break;
        }
      }
      condition_text = minilang::expr_text(*added.stmt->expr);
    }
    if (target == nullptr) continue;

    // Condition completion: conjoin the negations of pre-existing early-exit
    // guards over the same variable roots that dominate the target.
    std::set<std::string> roots;
    collect_roots(*added.stmt->expr, roots);
    std::vector<const Expr*> preceding;
    collect_preceding_guards(fn->body, target, added.stmt, &preceding);
    std::string completed;
    for (const Expr* guard : preceding) {
      std::set<std::string> guard_roots;
      collect_roots(*guard, guard_roots);
      const bool shared = std::any_of(guard_roots.begin(), guard_roots.end(),
                                      [&](const std::string& r) { return roots.count(r) > 0; });
      if (!shared) continue;
      if (!completed.empty()) completed += " && ";
      completed += negate_text(minilang::expr_text(*guard));
    }
    if (!completed.empty()) completed += " && ";
    completed += condition_text;

    // Generalize the target from the concrete statement to the callee.
    const Expr* call = first_call_in_stmt(*target);
    const std::string target_fragment = call->text + "(";

    const std::string key = target_fragment + "|" + completed;
    if (!emitted.insert(key).second) continue;

    LowLevelSemantics low;
    low.description = "Before any call to " + call->text + ", the condition (" + completed +
                      ") must hold in the calling context.";
    low.target_statement = target_fragment;
    low.condition_statement = completed;
    proposal.low_level.push_back(std::move(low));
    reasoning += "Added guard `" + minilang::stmt_header_text(*added.stmt) + "` in " +
                 added.function + " protects `" + minilang::stmt_header_text(*target) +
                 "`; completed with dominating guards over the same state and "
                 "generalized to every call site of " +
                 call->text + ". ";
  }

  proposal.high_level_semantics =
      "After this fix, the " + ticket.system + " " + ticket.feature +
      " feature guarantees: " +
      (proposal.low_level.empty() ? std::string("(no checkable rule extracted)")
                                  : proposal.low_level.front().description);
  proposal.reasoning = reasoning;

  // ---- Noise injection (hallucination model for the §5 ablation) ----------
  if (options_.noise > 0.0) {
    support::Rng rng(options_.seed * 1315423911ULL + ticket.case_id.size());
    for (LowLevelSemantics& low : proposal.low_level) {
      if (!rng.next_bool(options_.noise)) continue;
      switch (rng.next_below(3)) {
        case 0: {  // drop the leading conjunct
          const std::size_t pos = low.condition_statement.find("&&");
          if (pos != std::string::npos)
            low.condition_statement =
                std::string(support::trim(low.condition_statement.substr(pos + 2)));
          break;
        }
        case 1:  // flip the whole condition
          low.condition_statement = negate_text(low.condition_statement);
          break;
        default:  // hallucinate a variable root
          low.condition_statement = support::replace_all(
              low.condition_statement, low.condition_statement.substr(0, 0), "");
          low.condition_statement = "ghost_flag && " + low.condition_statement;
          break;
      }
    }
  }
  return proposal;
}

}  // namespace lisa::inference
