#include "obs/provenance.hpp"

#include <fstream>
#include <sstream>

#include "support/jsonl.hpp"

namespace lisa::obs {

using support::Json;
using support::JsonArray;
using support::JsonObject;

std::string evidence_digest(const std::string& text) {
  return support::fnv1a_fingerprint(text);
}

// ---------------------------------------------------------------------------
// Serialization. Optional fields are emitted only when set, so empty
// evidence never bloats the ledger; every emitted field round-trips.
// ---------------------------------------------------------------------------

namespace {

Json fact_to_json(const FactEvidence& fact) {
  JsonObject entry;
  entry["analysis"] = fact.analysis;
  entry["function"] = fact.function;
  entry["line"] = fact.line;
  entry["column"] = fact.column;
  entry["fact"] = fact.fact;
  return Json(std::move(entry));
}

FactEvidence fact_from_json(const Json& json) {
  FactEvidence fact;
  fact.analysis = json.get_string("analysis");
  fact.function = json.get_string("function");
  fact.line = static_cast<int>(json.get_int("line"));
  fact.column = static_cast<int>(json.get_int("column"));
  fact.fact = json.get_string("fact");
  return fact;
}

Json path_to_json(const PathEvidence& path) {
  JsonObject entry;
  entry["chain"] = path.chain;
  entry["target_stmt_id"] = path.target_stmt_id;
  entry["target_stmt"] = path.target_text;
  entry["path_condition"] = path.path_condition;
  entry["contract_condition"] = path.contract_condition;
  entry["verdict"] = path.verdict;
  if (!path.counterexample.empty()) entry["counterexample"] = path.counterexample;
  if (!path.detail.empty()) entry["detail"] = path.detail;
  if (!path.model_bools.empty()) {
    JsonObject bools;
    for (const auto& [name, value] : path.model_bools) bools[name] = value;
    entry["model_bools"] = Json(std::move(bools));
  }
  if (!path.model_ints.empty()) {
    JsonObject ints;
    for (const auto& [name, value] : path.model_ints) ints[name] = value;
    entry["model_ints"] = Json(std::move(ints));
  }
  return Json(std::move(entry));
}

PathEvidence path_from_json(const Json& json) {
  PathEvidence path;
  path.chain = json.get_string("chain");
  path.target_stmt_id = static_cast<int>(json.get_int("target_stmt_id", -1));
  path.target_text = json.get_string("target_stmt");
  path.path_condition = json.get_string("path_condition");
  path.contract_condition = json.get_string("contract_condition");
  path.verdict = json.get_string("verdict");
  path.counterexample = json.get_string("counterexample");
  path.detail = json.get_string("detail");
  if (json.has("model_bools") && json.at("model_bools").is_object())
    for (const auto& [name, value] : json.at("model_bools").as_object())
      if (value.is_bool()) path.model_bools[name] = value.as_bool();
  if (json.has("model_ints") && json.at("model_ints").is_object())
    for (const auto& [name, value] : json.at("model_ints").as_object())
      if (value.is_number()) path.model_ints[name] = value.as_int();
  return path;
}

Json query_to_json(const SmtQueryEvidence& query) {
  JsonObject entry;
  entry["phase"] = query.phase;
  entry["query"] = query.query;
  entry["digest"] = query.digest;
  entry["status"] = query.status;
  if (!query.model.empty()) entry["model"] = query.model;
  if (!query.reason.empty()) entry["reason"] = query.reason;
  return Json(std::move(entry));
}

SmtQueryEvidence query_from_json(const Json& json) {
  SmtQueryEvidence query;
  query.phase = json.get_string("phase");
  query.query = json.get_string("query");
  query.digest = json.get_string("digest");
  query.status = json.get_string("status");
  query.model = json.get_string("model");
  query.reason = json.get_string("reason");
  return query;
}

Json hit_to_json(const HitEvidence& hit) {
  JsonObject entry;
  entry["test"] = hit.test;
  entry["function"] = hit.function;
  entry["stmt_id"] = hit.stmt_id;
  entry["trace_condition"] = hit.trace_condition;
  entry["instantiated_contract"] = hit.instantiated_contract;
  entry["outcome"] = hit.outcome;
  if (!hit.witness.empty()) entry["witness"] = hit.witness;
  return Json(std::move(entry));
}

HitEvidence hit_from_json(const Json& json) {
  HitEvidence hit;
  hit.test = json.get_string("test");
  hit.function = json.get_string("function");
  hit.stmt_id = static_cast<int>(json.get_int("stmt_id", -1));
  hit.trace_condition = json.get_string("trace_condition");
  hit.instantiated_contract = json.get_string("instantiated_contract");
  hit.outcome = json.get_string("outcome");
  hit.witness = json.get_string("witness");
  return hit;
}

Json narration_to_json(const Narration& narration) {
  JsonObject entry;
  entry["kind"] = narration.kind;
  if (!narration.test.empty()) entry["test"] = narration.test;
  entry["reproduced"] = narration.reproduced;
  JsonArray steps;
  for (const NarrationStep& step : narration.steps) {
    JsonObject item;
    item["function"] = step.function;
    item["line"] = step.line;
    item["stmt"] = step.stmt;
    item["sync_depth"] = step.sync_depth;
    if (step.thread != 0) item["thread"] = step.thread;
    if (!step.note.empty()) item["note"] = step.note;
    steps.push_back(Json(std::move(item)));
  }
  entry["steps"] = Json(std::move(steps));
  JsonArray predicate;
  for (const PredicateTerm& term : narration.predicate) {
    JsonObject item;
    item["text"] = term.text;
    item["value"] = term.value;
    item["holds"] = term.holds;
    predicate.push_back(Json(std::move(item)));
  }
  entry["predicate"] = Json(std::move(predicate));
  if (!narration.detail.empty()) entry["detail"] = narration.detail;
  return Json(std::move(entry));
}

Narration narration_from_json(const Json& json) {
  Narration narration;
  narration.kind = json.get_string("kind");
  narration.test = json.get_string("test");
  narration.reproduced = json.has("reproduced") && json.at("reproduced").is_bool() &&
                         json.at("reproduced").as_bool();
  if (json.has("steps") && json.at("steps").is_array()) {
    for (const Json& item : json.at("steps").as_array()) {
      NarrationStep step;
      step.function = item.get_string("function");
      step.line = static_cast<int>(item.get_int("line"));
      step.stmt = item.get_string("stmt");
      step.sync_depth = static_cast<int>(item.get_int("sync_depth"));
      step.thread = static_cast<int>(item.get_int("thread"));
      step.note = item.get_string("note");
      narration.steps.push_back(std::move(step));
    }
  }
  if (json.has("predicate") && json.at("predicate").is_array()) {
    for (const Json& item : json.at("predicate").as_array()) {
      PredicateTerm term;
      term.text = item.get_string("text");
      term.value = item.get_string("value");
      term.holds = item.has("holds") && item.at("holds").is_bool() && item.at("holds").as_bool();
      narration.predicate.push_back(std::move(term));
    }
  }
  narration.detail = json.get_string("detail");
  return narration;
}

Json proposal_to_json(const ProposalEvidence& proposal) {
  JsonObject entry;
  entry["case_id"] = proposal.case_id;
  entry["high_level"] = proposal.high_level;
  JsonArray low_level;
  for (const std::string& item : proposal.low_level) low_level.push_back(Json(item));
  entry["low_level"] = Json(std::move(low_level));
  entry["succeeded"] = proposal.succeeded;
  entry["attempts"] = proposal.attempts;
  if (proposal.transient_errors > 0) entry["transient_errors"] = proposal.transient_errors;
  if (proposal.validation_failures > 0)
    entry["validation_failures"] = proposal.validation_failures;
  if (!proposal.error.empty()) entry["error"] = proposal.error;
  return Json(std::move(entry));
}

ProposalEvidence proposal_from_json(const Json& json) {
  ProposalEvidence proposal;
  proposal.case_id = json.get_string("case_id");
  proposal.high_level = json.get_string("high_level");
  if (json.has("low_level") && json.at("low_level").is_array())
    for (const Json& item : json.at("low_level").as_array())
      if (item.is_string()) proposal.low_level.push_back(item.as_string());
  proposal.succeeded = !json.has("succeeded") || !json.at("succeeded").is_bool() ||
                       json.at("succeeded").as_bool();
  proposal.attempts = static_cast<int>(json.get_int("attempts"));
  proposal.transient_errors = static_cast<int>(json.get_int("transient_errors"));
  proposal.validation_failures = static_cast<int>(json.get_int("validation_failures"));
  proposal.error = json.get_string("error");
  return proposal;
}

}  // namespace

Json ContractCapture::to_json() const {
  JsonObject root;
  root["contract_id"] = contract_id;
  root["system"] = system;
  root["kind"] = kind;
  root["target_fragment"] = target_fragment;
  root["condition_text"] = condition_text;
  root["description"] = description;
  root["fingerprint"] = fingerprint;
  if (!slice_fp.empty()) root["slice_fp"] = slice_fp;
  root["verdict"] = verdict;
  root["passed"] = passed;
  root["conclusive"] = conclusive;
  if (!screen_verdict.empty()) {
    JsonObject screen;
    screen["verdict"] = screen_verdict;
    screen["reason"] = screen_reason;
    if (!screen_witness.empty()) screen["witness"] = screen_witness;
    root["screen"] = Json(std::move(screen));
  }
  // Emitted only when exploration ran (or degraded): captures for contracts
  // the explorer never touched stay byte-identical to the pre-scheduler form.
  if (schedules_explored > 0 || !schedule_conclusive) {
    JsonObject schedule;
    schedule["explored"] = schedules_explored;
    schedule["conclusive"] = schedule_conclusive;
    if (!schedule_witness.empty()) schedule["witness"] = schedule_witness;
    if (!schedule_reason.empty()) schedule["reason"] = schedule_reason;
    root["schedule"] = Json(std::move(schedule));
  }
  JsonArray fact_entries;
  for (const FactEvidence& fact : facts) fact_entries.push_back(fact_to_json(fact));
  root["facts"] = Json(std::move(fact_entries));
  JsonArray path_entries;
  for (const PathEvidence& path : paths) path_entries.push_back(path_to_json(path));
  root["paths"] = Json(std::move(path_entries));
  JsonArray query_entries;
  for (const SmtQueryEvidence& query : smt_queries)
    query_entries.push_back(query_to_json(query));
  root["smt_queries"] = Json(std::move(query_entries));
  JsonArray hit_entries;
  for (const HitEvidence& hit : hits) hit_entries.push_back(hit_to_json(hit));
  root["hits"] = Json(std::move(hit_entries));
  if (budget.attached) {
    JsonObject entry;
    entry["attached"] = true;
    entry["exhausted"] = budget.exhausted;
    if (budget.exhausted) {
      entry["resource"] = budget.resource;
      entry["reason"] = budget.reason;
    }
    JsonObject charges;
    for (const auto& [name, value] : budget.charges) charges[name] = value;
    entry["charges"] = Json(std::move(charges));
    root["budget"] = Json(std::move(entry));
  }
  if (!narration.kind.empty()) root["narration"] = narration_to_json(narration);
  return Json(std::move(root));
}

ContractCapture ContractCapture::from_json(const Json& json) {
  ContractCapture capture;
  if (!json.is_object()) return capture;
  capture.contract_id = json.get_string("contract_id");
  capture.system = json.get_string("system");
  capture.kind = json.get_string("kind");
  capture.target_fragment = json.get_string("target_fragment");
  capture.condition_text = json.get_string("condition_text");
  capture.description = json.get_string("description");
  capture.fingerprint = json.get_string("fingerprint");
  capture.slice_fp = json.get_string("slice_fp");
  capture.verdict = json.get_string("verdict");
  capture.passed = json.has("passed") && json.at("passed").is_bool() &&
                   json.at("passed").as_bool();
  capture.conclusive = json.has("conclusive") && json.at("conclusive").is_bool() &&
                       json.at("conclusive").as_bool();
  if (json.has("screen") && json.at("screen").is_object()) {
    const Json& screen = json.at("screen");
    capture.screen_verdict = screen.get_string("verdict");
    capture.screen_reason = screen.get_string("reason");
    capture.screen_witness = screen.get_string("witness");
  }
  if (json.has("schedule") && json.at("schedule").is_object()) {
    const Json& schedule = json.at("schedule");
    capture.schedules_explored = static_cast<int>(schedule.get_int("explored"));
    capture.schedule_conclusive = !schedule.has("conclusive") ||
                                  !schedule.at("conclusive").is_bool() ||
                                  schedule.at("conclusive").as_bool();
    capture.schedule_witness = schedule.get_string("witness");
    capture.schedule_reason = schedule.get_string("reason");
  }
  if (json.has("facts") && json.at("facts").is_array())
    for (const Json& entry : json.at("facts").as_array())
      capture.facts.push_back(fact_from_json(entry));
  if (json.has("paths") && json.at("paths").is_array())
    for (const Json& entry : json.at("paths").as_array())
      capture.paths.push_back(path_from_json(entry));
  if (json.has("smt_queries") && json.at("smt_queries").is_array())
    for (const Json& entry : json.at("smt_queries").as_array())
      capture.smt_queries.push_back(query_from_json(entry));
  if (json.has("hits") && json.at("hits").is_array())
    for (const Json& entry : json.at("hits").as_array())
      capture.hits.push_back(hit_from_json(entry));
  if (json.has("budget") && json.at("budget").is_object()) {
    const Json& entry = json.at("budget");
    capture.budget.attached = true;
    capture.budget.exhausted = entry.has("exhausted") && entry.at("exhausted").is_bool() &&
                               entry.at("exhausted").as_bool();
    capture.budget.resource = entry.get_string("resource");
    capture.budget.reason = entry.get_string("reason");
    if (entry.has("charges") && entry.at("charges").is_object())
      for (const auto& [name, value] : entry.at("charges").as_object())
        if (value.is_number()) capture.budget.charges[name] = value.as_int();
  }
  if (json.has("narration") && json.at("narration").is_object())
    capture.narration = narration_from_json(json.at("narration"));
  return capture;
}

// ---------------------------------------------------------------------------
// Ledger
// ---------------------------------------------------------------------------

void ProvenanceLedger::bind(const std::string& inputs) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fingerprint_ = support::fnv1a_fingerprint(inputs);
}

void ProvenanceLedger::set_proposal(ProposalEvidence proposal) {
  const std::lock_guard<std::mutex> lock(mutex_);
  proposal_ = std::move(proposal);
}

ContractCapture* ProvenanceLedger::capture_for(const std::string& contract_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<ContractCapture>& slot = captures_[contract_id];
  if (slot == nullptr) {
    slot = std::make_unique<ContractCapture>();
    slot->contract_id = contract_id;
  }
  return slot.get();
}

const ContractCapture* ProvenanceLedger::find(const std::string& contract_id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = captures_.find(contract_id);
  return it == captures_.end() ? nullptr : it->second.get();
}

std::size_t ProvenanceLedger::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return captures_.size();
}

std::vector<std::string> ProvenanceLedger::contract_ids() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(captures_.size());
  for (const auto& [id, capture] : captures_) ids.push_back(id);
  return ids;
}

void ProvenanceLedger::record_smt(ContractCapture* capture, SmtQueryEvidence evidence) {
  if (capture == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  capture->smt_queries.push_back(std::move(evidence));
}

void ProvenanceLedger::record_fact(ContractCapture* capture, FactEvidence evidence) {
  if (capture == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  capture->facts.push_back(std::move(evidence));
}

void ProvenanceLedger::record_path(ContractCapture* capture, PathEvidence evidence) {
  if (capture == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  capture->paths.push_back(std::move(evidence));
}

void ProvenanceLedger::record_hit(ContractCapture* capture, HitEvidence evidence) {
  if (capture == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  capture->hits.push_back(std::move(evidence));
}

Json ProvenanceLedger::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonObject root;
  root["journal"] = std::string(kLedgerKind);
  root["version"] = kLedgerVersion;
  root["fingerprint"] = fingerprint_;
  root["proposal"] = proposal_to_json(proposal_);
  JsonArray contracts;
  for (const auto& [id, capture] : captures_)  // std::map: sorted id order
    contracts.push_back(capture->to_json());
  root["contracts"] = Json(std::move(contracts));
  return Json(std::move(root));
}

std::string ProvenanceLedger::to_jsonl() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << support::jsonl_header(kLedgerKind, kLedgerVersion, fingerprint_) << "\n";
  {
    JsonObject entry;
    entry["proposal"] = proposal_to_json(proposal_);
    out << Json(std::move(entry)).dump() << "\n";
  }
  for (const auto& [id, capture] : captures_) out << capture->to_json().dump() << "\n";
  return out.str();
}

bool ProvenanceLedger::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_jsonl();
  return out.good();
}

bool ProvenanceLedger::load_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  if (!support::jsonl_header_matches(line, kLedgerKind, kLedgerVersion, "")) return false;
  std::string fingerprint;
  try {
    fingerprint = Json::parse(line).get_string("fingerprint");
  } catch (const std::exception&) {
    return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  fingerprint_ = fingerprint;
  captures_.clear();
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const Json entry = Json::parse(line);
      if (entry.has("proposal")) {
        proposal_ = proposal_from_json(entry.at("proposal"));
        continue;
      }
      ContractCapture capture = ContractCapture::from_json(entry);
      if (capture.contract_id.empty()) continue;
      // The key must be copied out first: the RHS of the assignment is
      // sequenced before the subscript, so moving the capture there would
      // empty contract_id before the map reads it.
      const std::string id = capture.contract_id;
      captures_[id] = std::make_unique<ContractCapture>(std::move(capture));
    } catch (const std::exception&) {
      // Torn tail from a crash mid-append: keep everything before it.
    }
  }
  return true;
}

void PhasedSmtCapture::on_smt_query(const std::string& query, const std::string& status,
                                    const std::string& model, const std::string& reason) {
  SmtQueryEvidence evidence;
  evidence.phase = phase_;
  evidence.query = query;
  evidence.digest = evidence_digest(query);
  evidence.status = status;
  evidence.model = model;
  evidence.reason = reason;
  ledger_->record_smt(capture_, std::move(evidence));
}

}  // namespace lisa::obs
