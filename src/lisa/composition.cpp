#include "lisa/composition.hpp"

namespace lisa::core {

const char* property_status_name(PropertyStatus status) {
  switch (status) {
    case PropertyStatus::kGuaranteed: return "GUARANTEED";
    case PropertyStatus::kBroken: return "BROKEN";
    case PropertyStatus::kInconclusive: return "INCONCLUSIVE";
  }
  return "?";
}

support::Json PropertyReport::to_json() const {
  support::JsonObject root;
  root["property_id"] = property_id;
  root["status"] = property_status_name(status);
  support::JsonArray reports;
  for (const ContractCheckReport& report : constituent_reports)
    reports.push_back(report.to_json());
  root["constituents"] = support::Json(std::move(reports));
  support::JsonArray finding_entries;
  for (const std::string& finding : findings)
    finding_entries.push_back(support::Json(finding));
  root["findings"] = support::Json(std::move(finding_entries));
  return support::Json(std::move(root));
}

PropertyReport Composer::evaluate(const minilang::Program& program,
                                  const HighLevelProperty& property) const {
  PropertyReport report;
  report.property_id = property.id;
  const Checker checker;
  bool any_violation = false;
  bool any_unresolved = false;
  for (const SemanticContract& contract : property.constituents) {
    ContractCheckReport constituent = checker.check(program, contract, options_);
    if (constituent.violated > 0 || !constituent.structural_violations.empty() ||
        constituent.dynamic.concrete_violations > 0) {
      any_violation = true;
      for (const PathReport& path : constituent.paths) {
        if (path.verdict != PathVerdict::kViolated) continue;
        std::string chain;
        for (const std::string& fn : path.call_chain) {
          if (!chain.empty()) chain += " -> ";
          chain += fn;
        }
        report.findings.push_back("constituent " + contract.id + " violated on " + chain +
                                  " (counterexample " + path.counterexample + ")");
      }
      for (const std::string& violation : constituent.structural_violations)
        report.findings.push_back("constituent " + contract.id + ": " + violation);
    }
    if (constituent.unmappable > 0) {
      any_unresolved = true;
      report.findings.push_back("constituent " + contract.id + ": " +
                                std::to_string(constituent.unmappable) +
                                " path(s) need a developer verdict (unmappable)");
    }
    if (!constituent.sanity_ok &&
        contract.kind == corpus::SemanticsKind::kStatePredicate) {
      any_unresolved = true;
      report.findings.push_back("constituent " + contract.id +
                                " has no verified witness path on this codebase");
    }
    report.constituent_reports.push_back(std::move(constituent));
  }
  if (any_violation)
    report.status = PropertyStatus::kBroken;
  else if (any_unresolved)
    report.status = PropertyStatus::kInconclusive;
  else
    report.status = PropertyStatus::kGuaranteed;
  return report;
}

HighLevelProperty ephemeral_lifecycle_property(std::vector<SemanticContract> constituents) {
  HighLevelProperty property;
  property.id = "ephemeral-lifecycle";
  property.statement =
      "Every ephemeral node is deleted once its client session is fully "
      "disconnected.";
  property.constituents = std::move(constituents);
  return property;
}

}  // namespace lisa::core
