#include "lisa/ci_gate.hpp"

#include <algorithm>
#include <optional>

#include "analysis/paths.hpp"
#include "lisa/journal.hpp"
#include "minilang/sema.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "support/jsonl.hpp"
#include "staticcheck/screener.hpp"
#include "staticcheck/slice.hpp"
#include "support/stopwatch.hpp"

namespace lisa::core {

using support::Json;
using support::JsonArray;
using support::JsonObject;

void ContractStore::add(SemanticContract contract) {
  contracts_.push_back(std::move(contract));
}

void ContractStore::add_all(std::vector<SemanticContract> contracts) {
  for (SemanticContract& contract : contracts) contracts_.push_back(std::move(contract));
}

Json ContractStore::to_json() const {
  JsonArray entries;
  for (const SemanticContract& contract : contracts_) entries.push_back(contract.to_json());
  JsonObject root;
  root["contracts"] = Json(std::move(entries));
  return Json(std::move(root));
}

ContractStore ContractStore::from_json(const Json& json) {
  ContractStore store;
  if (json.has("contracts"))
    for (const Json& entry : json.at("contracts").as_array())
      store.add(SemanticContract::from_json(entry));
  return store;
}

Json GateDecision::to_json() const {
  JsonObject root;
  root["allowed"] = allowed;
  JsonArray violation_entries;
  for (const std::string& violation : violations) violation_entries.push_back(Json(violation));
  root["violations"] = Json(std::move(violation_entries));
  JsonArray report_entries;
  for (const ContractCheckReport& report : reports) report_entries.push_back(report.to_json());
  root["reports"] = Json(std::move(report_entries));
  root["evaluation_ms"] = evaluation_ms;
  root["screened_settled"] = screened_settled;
  root["screened_unknown"] = screened_unknown;
  root["settled_fraction"] = settled_fraction();
  root["concolic_skipped"] = concolic_skipped;
  root["summary_ms"] = summary_ms;
  if (inconclusive_contracts > 0) root["inconclusive_contracts"] = inconclusive_contracts;
  if (needs_attention) root["needs_attention"] = true;
  if (resumed_contracts > 0) root["resumed_contracts"] = resumed_contracts;
  // Emitted only when the explorer decided at least one contract, so gate
  // output for thread-free programs stays byte-identical.
  if (schedule_contracts > 0) {
    root["schedule_contracts"] = schedule_contracts;
    root["schedules_explored"] = schedules_explored;
    root["schedule_inconclusive"] = schedule_inconclusive;
    root["interleaving_conclusive_fraction"] = interleaving_conclusive_fraction();
  }
  // Longitudinal fields appear only when a history file was in play, so
  // history-off output stays byte-identical to pre-history LISA.
  if (baseline_runs >= 0) {
    root["baseline_runs"] = baseline_runs;
    JsonArray drift_entries;
    for (const obs::DriftFinding& finding : drift_findings)
      drift_entries.push_back(finding.to_json());
    root["drift_findings"] = Json(std::move(drift_entries));
  }
  return Json(std::move(root));
}

GateDecision CiGate::evaluate(const std::string& source, const ContractStore& store) const {
  return evaluate(source, store, GateRunOptions{});
}

GateDecision CiGate::evaluate(const std::string& source, const ContractStore& store,
                              const GateRunOptions& run_options) const {
  GateDecision decision;
  obs::ScopedSpan span("gate.evaluate");
  span.attr("stored_contracts", store.size());
  const support::Stopwatch timer;
  minilang::Program program;
  try {
    program = minilang::parse_checked(source);
  } catch (const std::exception& error) {
    decision.allowed = false;
    decision.violations.push_back(std::string("commit does not build: ") + error.what());
    decision.evaluation_ms = timer.elapsed_ms();
    return decision;
  }
  CheckJournal journal(run_options.journal_path);
  const bool journaling = !run_options.journal_path.empty();
  // Longitudinal history needs per-contract SMT counts and digests, which
  // only a ledger captures — so a history-enabled run without a caller
  // ledger attaches a local one (provably output-neutral, see PR 6 tests).
  const bool history_enabled = !run_options.history_path.empty();
  obs::ProvenanceLedger local_ledger;
  obs::ProvenanceLedger* ledger = run_options.ledger;
  if (history_enabled && ledger == nullptr) ledger = &local_ledger;
  // Per-entry resume: replay eligibility is decided by each entry's slice
  // fingerprint against the current commit, so an edit only re-checks the
  // contracts whose verdict cone contains it.
  std::optional<staticcheck::Screener> slice_screener;
  std::optional<staticcheck::SliceEngine> slice_engine;
  if (journaling && run_options.resume) {
    slice_screener.emplace(program, options_.use_summaries);
    slice_engine.emplace(program, slice_screener->graph(), slice_screener->summaries());
  }
  std::string inputs_fingerprint;
  if (journaling || ledger != nullptr) {
    std::string inputs = source;
    for (const SemanticContract& contract : store.all()) inputs += "\n" + contract.id;
    inputs_fingerprint = CheckJournal::fingerprint(inputs);
    if (ledger != nullptr) ledger->bind(inputs);
    if (journaling) {
      if (run_options.resume) (void)journal.load("");
      journal.begin(inputs_fingerprint);
    }
  }
  const Checker checker;
  for (const SemanticContract& contract : store.all()) {
    // Contracts whose target no longer exists in this codebase are vacuous
    // for the commit (e.g. contracts from another system's history).
    if (analysis::find_target_statements(program, contract.target_fragment).empty() &&
        contract.kind == corpus::SemanticsKind::kStatePredicate)
      continue;
    const ContractCheckReport* checkpointed =
        journaling && run_options.resume ? journal.find(contract.id) : nullptr;
    const bool replay =
        checkpointed != nullptr && checkpointed->conclusive() &&
        !checkpointed->slice_fp.empty() && slice_engine.has_value() &&
        checkpointed->slice_fp ==
            contract_slice_fingerprint(*slice_engine, contract, options_.run_concolic);
    ContractCheckReport report;
    if (replay) {
      report = *checkpointed;
      ++decision.resumed_contracts;
    } else {
      CheckOptions contract_options = options_;
      contract_options.ledger = ledger;
      contract_options.compute_slice_fp = journaling || ledger != nullptr;
      report = checker.check(program, contract, contract_options);
    }
    if (journaling) journal.record(report);
    if (!report.conclusive()) {
      ++decision.inconclusive_contracts;
      decision.needs_attention = true;
    }
    if (report.screen_verdict == "proved-safe" || report.screen_verdict == "proved-violated")
      ++decision.screened_settled;
    else if (!report.screen_verdict.empty())
      ++decision.screened_unknown;
    if (report.screen_skipped_concolic) ++decision.concolic_skipped;
    decision.summary_ms += report.summary_ms;
    if (report.schedules_explored > 0 || !report.schedule_conclusive) {
      ++decision.schedule_contracts;
      decision.schedules_explored += report.schedules_explored;
      if (!report.schedule_conclusive) {
        ++decision.schedule_inconclusive;
        // An undrained schedule space is "no violation found so far", not a
        // pass: it blocks the commit unless the operator explicitly
        // downgraded it. Violating interleavings block unconditionally
        // through the passed() branch below.
        if (run_options.schedule_warn_only) {
          decision.needs_attention = true;
        } else {
          decision.allowed = false;
          decision.violations.push_back(
              contract.id + " [" + contract.target_fragment +
              "]: schedule exploration inconclusive — " +
              report.schedule_inconclusive_reason +
              " (raise --max-schedules or pass --schedule-warn-only to downgrade)");
        }
      }
    }
    if (!report.passed()) {
      decision.allowed = false;
      std::string reason = contract.id + " [" + contract.target_fragment + "]: ";
      if (report.violated > 0)
        reason += std::to_string(report.violated) + " unguarded path(s); ";
      if (!report.structural_violations.empty())
        reason += std::to_string(report.structural_violations.size()) +
                  " structural violation(s); ";
      if (report.dynamic.symbolic_violations > 0)
        reason += std::to_string(report.dynamic.symbolic_violations) +
                  " missing-check trace(s); ";
      if (report.schedule_violations > 0)
        reason += std::to_string(report.schedule_violations) +
                  " violating interleaving(s), witness " + report.schedule_witness + "; ";
      reason += contract.description;
      decision.violations.push_back(std::move(reason));
    }
    decision.reports.push_back(std::move(report));
  }
  decision.evaluation_ms = timer.elapsed_ms();
  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("gate.evaluations").add();
  if (!decision.allowed) registry.counter("gate.blocked").add();
  if (decision.needs_attention) registry.counter("gate.needs_attention").add();
  if (decision.resumed_contracts > 0)
    registry.counter("gate.resumed_contracts").add(decision.resumed_contracts);
  if (decision.schedules_explored > 0)
    registry.counter("gate.schedules_explored").add(decision.schedules_explored);
  if (decision.schedule_inconclusive > 0)
    registry.counter("gate.schedule_inconclusive").add(decision.schedule_inconclusive);
  registry.histogram("gate.evaluation_ms").record(decision.evaluation_ms);
  if (history_enabled) {
    obs::RunHistory history(run_options.history_path);
    (void)history.load();  // absent file = fresh baseline, not an error
    std::string label = run_options.history_label;
    if (label.empty()) {
      // Keyed by the contract ids, not the source: the baseline series must
      // survive source edits or flake detection could never fire.
      std::string ids;
      for (const SemanticContract& contract : store.all()) ids += contract.id + "\n";
      label = support::fnv1a_fingerprint(ids);
    }
    obs::RunRecord record;
    record.kind = "gate";
    record.label = std::move(label);
    record.input_fingerprint = inputs_fingerprint;
    std::int64_t total_smt_queries = 0;
    std::vector<std::string> smt_digests;
    for (const ContractCheckReport& report : decision.reports) {
      obs::ContractOutcome outcome;
      outcome.passed = report.passed();
      outcome.conclusive = report.conclusive();
      outcome.verdict = !outcome.conclusive ? "inconclusive"
                        : outcome.passed    ? "passed"
                                            : "violated";
      outcome.signature_digest = support::fnv1a_fingerprint(report.verdict_signature());
      outcome.slice_fp = report.slice_fp;
      if (const obs::ContractCapture* capture = ledger->find(report.contract_id)) {
        outcome.smt_queries = static_cast<std::int64_t>(capture->smt_queries.size());
        for (const obs::SmtQueryEvidence& query : capture->smt_queries)
          smt_digests.push_back(query.digest);
      }
      total_smt_queries += outcome.smt_queries;
      record.contracts[report.contract_id] = std::move(outcome);
    }
    if (!smt_digests.empty()) {
      std::sort(smt_digests.begin(), smt_digests.end());
      std::string joined;
      for (const std::string& digest : smt_digests) joined += digest + "\n";
      record.smt_digest = support::fnv1a_fingerprint(joined);
    }
    // evaluation_ms was captured BEFORE this block, so history bookkeeping
    // cannot regress the very latency metric the drift rules watch.
    record.metrics["evaluation_ms"] = decision.evaluation_ms;
    record.metrics["summary_ms"] = decision.summary_ms;
    record.metrics["settled_fraction"] = decision.settled_fraction();
    record.metrics["smt_queries"] = static_cast<double>(total_smt_queries);
    record.metrics["contracts"] = static_cast<double>(decision.reports.size());
    record.metrics["violations"] = static_cast<double>(decision.violations.size());
    record.metrics["inconclusive"] = static_cast<double>(decision.inconclusive_contracts);
    // Longitudinal interleaving coverage: `lisa trends` watches these to
    // catch a fleet whose schedule exploration quietly stops concluding.
    // Only written when the explorer ran, keeping thread-free history
    // records byte-identical.
    if (decision.schedule_contracts > 0) {
      record.metrics["schedules_explored"] =
          static_cast<double>(decision.schedules_explored);
      record.metrics["interleaving_conclusive_fraction"] =
          decision.interleaving_conclusive_fraction();
    }
    const std::vector<const obs::RunRecord*> baseline =
        history.matching("gate", record.label);
    decision.baseline_runs = static_cast<int>(baseline.size());
    decision.drift_findings = obs::detect_drift(baseline, record, run_options.drift);
    for (const obs::DriftFinding& finding : decision.drift_findings) {
      if (finding.fails_gate) {
        decision.allowed = false;
        decision.violations.push_back("drift [" + finding.kind + "]: " + finding.cause);
      } else {
        decision.needs_attention = true;
      }
    }
    if (!decision.drift_findings.empty()) {
      registry.counter("gate.drift_findings")
          .add(static_cast<std::int64_t>(decision.drift_findings.size()));
      if (!decision.allowed) registry.counter("gate.blocked_by_drift").add();
    }
    (void)history.append(record);  // red runs are history too
  }
  span.attr("allowed", decision.allowed);
  span.attr("evaluated", decision.reports.size());
  return decision;
}

}  // namespace lisa::core
