# Empty dependencies file for lisa_concolic.
# This may be replaced when dependencies are built.
