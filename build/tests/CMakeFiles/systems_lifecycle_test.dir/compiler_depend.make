# Empty compiler generated dependencies file for systems_lifecycle_test.
# This may be replaced when dependencies are built.
