#include "smt/formula.hpp"

#include <algorithm>

namespace lisa::smt {

const char* cmp_op_text(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

CmpOp cmp_negate(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kGe: return CmpOp::kLt;
  }
  return op;
}

CmpOp cmp_swap(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kEq;
    case CmpOp::kNe: return CmpOp::kNe;
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
  }
  return op;
}

Atom Atom::bool_var(std::string name) {
  Atom atom;
  atom.kind = Kind::kBoolVar;
  atom.lhs = std::move(name);
  return atom;
}

Atom Atom::cmp_const(std::string lhs, CmpOp op, std::int64_t rhs) {
  Atom atom;
  atom.kind = Kind::kCmpConst;
  atom.lhs = std::move(lhs);
  atom.op = op;
  atom.rhs_const = rhs;
  return atom;
}

Atom Atom::cmp_var(std::string lhs, CmpOp op, std::string rhs) {
  Atom atom;
  atom.kind = Kind::kCmpVar;
  atom.lhs = std::move(lhs);
  atom.op = op;
  atom.rhs_var = std::move(rhs);
  return atom;
}

std::string Atom::key() const {
  switch (kind) {
    case Kind::kBoolVar: return lhs;
    case Kind::kCmpConst:
      return lhs + " " + cmp_op_text(op) + " " + std::to_string(rhs_const);
    case Kind::kCmpVar: return lhs + " " + cmp_op_text(op) + " " + rhs_var;
  }
  return "?";
}

namespace {
FormulaPtr make_node(Formula::Kind kind, std::vector<FormulaPtr> children) {
  auto f = std::make_shared<Formula>();
  f->kind = kind;
  f->children = std::move(children);
  return f;
}
}  // namespace

FormulaPtr Formula::truth(bool value) {
  static const FormulaPtr t = make_node(Kind::kTrue, {});
  static const FormulaPtr f = make_node(Kind::kFalse, {});
  return value ? t : f;
}

FormulaPtr Formula::make_atom(Atom atom) {
  auto f = std::make_shared<Formula>();
  f->kind = Kind::kAtom;
  f->atom = std::move(atom);
  return f;
}

FormulaPtr Formula::negate(FormulaPtr f) {
  switch (f->kind) {
    case Kind::kTrue: return truth(false);
    case Kind::kFalse: return truth(true);
    case Kind::kNot: return f->children[0];
    default: return make_node(Kind::kNot, {std::move(f)});
  }
}

FormulaPtr Formula::conj(std::vector<FormulaPtr> fs) {
  std::vector<FormulaPtr> flat;
  for (FormulaPtr& f : fs) {
    if (!f || f->kind == Kind::kTrue) continue;
    if (f->kind == Kind::kFalse) return truth(false);
    if (f->kind == Kind::kAnd) {
      for (const FormulaPtr& child : f->children) flat.push_back(child);
    } else {
      flat.push_back(std::move(f));
    }
  }
  // Dedup structurally identical conjuncts (common after path collection).
  std::vector<FormulaPtr> unique;
  for (const FormulaPtr& f : flat) {
    const bool seen = std::any_of(unique.begin(), unique.end(),
                                  [&](const FormulaPtr& g) { return g->equals(*f); });
    if (!seen) unique.push_back(f);
  }
  if (unique.empty()) return truth(true);
  if (unique.size() == 1) return unique[0];
  return make_node(Kind::kAnd, std::move(unique));
}

FormulaPtr Formula::disj(std::vector<FormulaPtr> fs) {
  std::vector<FormulaPtr> flat;
  for (FormulaPtr& f : fs) {
    if (!f || f->kind == Kind::kFalse) continue;
    if (f->kind == Kind::kTrue) return truth(true);
    if (f->kind == Kind::kOr) {
      for (const FormulaPtr& child : f->children) flat.push_back(child);
    } else {
      flat.push_back(std::move(f));
    }
  }
  std::vector<FormulaPtr> unique;
  for (const FormulaPtr& f : flat) {
    const bool seen = std::any_of(unique.begin(), unique.end(),
                                  [&](const FormulaPtr& g) { return g->equals(*f); });
    if (!seen) unique.push_back(f);
  }
  if (unique.empty()) return truth(false);
  if (unique.size() == 1) return unique[0];
  return make_node(Kind::kOr, std::move(unique));
}

FormulaPtr Formula::conj2(FormulaPtr a, FormulaPtr b) {
  std::vector<FormulaPtr> fs;
  fs.push_back(std::move(a));
  fs.push_back(std::move(b));
  return conj(std::move(fs));
}

FormulaPtr Formula::disj2(FormulaPtr a, FormulaPtr b) {
  std::vector<FormulaPtr> fs;
  fs.push_back(std::move(a));
  fs.push_back(std::move(b));
  return disj(std::move(fs));
}

std::string Formula::to_string() const {
  switch (kind) {
    case Kind::kTrue: return "true";
    case Kind::kFalse: return "false";
    case Kind::kAtom: return atom.key();
    case Kind::kNot: return "!(" + children[0]->to_string() + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind == Kind::kAnd ? " && " : " || ";
      std::string out = "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i]->to_string();
      }
      return out + ")";
    }
  }
  return "?";
}

std::set<std::string> Formula::variables() const {
  std::set<std::string> out;
  if (kind == Kind::kAtom) {
    out.insert(atom.lhs);
    if (atom.kind == Atom::Kind::kCmpVar) out.insert(atom.rhs_var);
  }
  for (const FormulaPtr& child : children) {
    const std::set<std::string> sub = child->variables();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

bool Formula::equals(const Formula& other) const {
  if (kind != other.kind) return false;
  if (kind == Kind::kAtom) return atom == other.atom;
  if (children.size() != other.children.size()) return false;
  for (std::size_t i = 0; i < children.size(); ++i)
    if (!children[i]->equals(*other.children[i])) return false;
  return true;
}

namespace {
FormulaPtr nnf(const FormulaPtr& f, bool negated) {
  switch (f->kind) {
    case Formula::Kind::kTrue: return Formula::truth(!negated);
    case Formula::Kind::kFalse: return Formula::truth(negated);
    case Formula::Kind::kAtom: {
      if (!negated) return f;
      if (f->atom.kind == Atom::Kind::kBoolVar)
        return Formula::negate(f);  // keep polarity on boolean vars
      Atom flipped = f->atom;
      flipped.op = cmp_negate(flipped.op);
      return Formula::make_atom(std::move(flipped));
    }
    case Formula::Kind::kNot: return nnf(f->children[0], !negated);
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr: {
      std::vector<FormulaPtr> children;
      children.reserve(f->children.size());
      for (const FormulaPtr& child : f->children) children.push_back(nnf(child, negated));
      const bool is_and = (f->kind == Formula::Kind::kAnd) != negated;
      return is_and ? Formula::conj(std::move(children)) : Formula::disj(std::move(children));
    }
  }
  return f;
}
}  // namespace

FormulaPtr to_nnf(const FormulaPtr& f) { return nnf(f, /*negated=*/false); }

}  // namespace lisa::smt
