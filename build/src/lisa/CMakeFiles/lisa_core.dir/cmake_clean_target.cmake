file(REMOVE_RECURSE
  "liblisa_core.a"
)
