// Mini-ZooKeeper: a coordination service with sessions, a data tree,
// ephemeral nodes, and watches, running on the discrete-event simulator.
//
// This is the native substrate the incident examples exercise. Two historical
// bugs can be re-enabled through the config so the Fig. 2 scenario replays
// exactly:
//   * fix_zk1208 = false  — ephemeral creation does not check whether the
//     owner session is CLOSING; creations that land in the close window leave
//     stale nodes behind (ZOOKEEPER-1208/1496).
//   * fix_sync_blocking = false — snapshot serialization performs its disk
//     writes while holding the tree lock, stalling every concurrent write for
//     the duration (ZOOKEEPER-2201/3531).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "systems/sim/event_loop.hpp"

namespace lisa::systems::zk {

enum class ZkStatus {
  kOk,
  kSessionExpired,
  kSessionClosing,
  kNodeExists,
  kNoNode,
};

[[nodiscard]] const char* zk_status_name(ZkStatus status);

enum class SessionState { kConnected, kClosing, kClosed };

struct ZkConfig {
  std::int64_t session_timeout_ms = 6000;
  /// The close path collects ephemerals, then deletes them after this delay —
  /// the CLOSING window the ZK-1208 race lands in.
  std::int64_t close_linger_ms = 20;
  std::int64_t disk_write_ms = 5;  // per-record snapshot write cost
  bool fix_zk1208 = true;          // reject creates on closing sessions
  bool fix_sync_blocking = true;   // serialize outside the tree lock
};

struct WatchEvent {
  std::string path;
  std::string type;  // "created" | "deleted" | "changed"
};

struct ZkStats {
  std::uint64_t creates_ok = 0;
  std::uint64_t creates_rejected = 0;
  std::uint64_t sessions_expired = 0;
  std::uint64_t watches_fired = 0;
  std::uint64_t stale_ephemerals_detected = 0;  // survived their session
  std::int64_t write_stall_ms = 0;  // time writers spent blocked on the lock
  std::uint64_t snapshots_taken = 0;
};

class ZooKeeperServer {
 public:
  ZooKeeperServer(EventLoop& loop, ZkConfig config = {});

  // -- Session lifecycle ----------------------------------------------------

  /// Opens a session; returns its id. The session expires unless touched
  /// within session_timeout_ms.
  std::int64_t create_session(const std::string& owner);

  /// Heartbeat; returns false if the session is gone or closing.
  bool touch_session(std::int64_t session_id);

  /// Initiates the two-phase close: the session is CLOSING while its
  /// ephemeral nodes are collected; deletion completes close_linger_ms later.
  void close_session(std::int64_t session_id);

  [[nodiscard]] std::optional<SessionState> session_state(std::int64_t session_id) const;
  [[nodiscard]] std::size_t live_sessions() const;

  // -- Data tree --------------------------------------------------------

  /// Creates a node. Ephemeral nodes are owned by `session_id` and must be
  /// cleaned up when it closes.
  ZkStatus create(std::int64_t session_id, const std::string& path, const std::string& data,
                  bool ephemeral);

  [[nodiscard]] std::optional<std::string> get_data(const std::string& path) const;
  [[nodiscard]] std::vector<std::string> get_children(const std::string& prefix) const;
  ZkStatus delete_node(const std::string& path);
  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  // -- Watches ---------------------------------------------------------

  using WatchCallback = std::function<void(const WatchEvent&)>;
  void watch(const std::string& path, WatchCallback callback);

  // -- Maintenance -------------------------------------------------------

  /// Serializes the whole tree to a snapshot "file"; with the sync-blocking
  /// bug enabled this stalls concurrent writers for disk_write_ms per node.
  std::size_t take_snapshot();

  /// Scans for ephemeral nodes whose owner session no longer exists — the
  /// visible symptom of the ZK-1208 class of bugs.
  [[nodiscard]] std::vector<std::string> find_stale_ephemerals();

  [[nodiscard]] const ZkStats& stats() const { return stats_; }
  [[nodiscard]] const ZkConfig& config() const { return config_; }

 private:
  struct Session {
    std::int64_t id;
    std::string owner;
    SessionState state = SessionState::kConnected;
    std::int64_t last_touch_ms = 0;
  };
  struct Node {
    std::string data;
    std::int64_t ephemeral_owner = 0;  // 0 = persistent
    std::int64_t created_ms = 0;
  };

  void schedule_expiry_sweep();
  void fire_watches(const std::string& path, const std::string& type);
  void finish_close(std::int64_t session_id, std::vector<std::string> collected);

  EventLoop& loop_;
  ZkConfig config_;
  ZkStats stats_;
  std::int64_t next_session_id_ = 1;
  std::map<std::int64_t, Session> sessions_;
  std::map<std::string, Node> nodes_;
  std::multimap<std::string, WatchCallback> watches_;
  bool tree_locked_ = false;  // models the serialization monitor
};

}  // namespace lisa::systems::zk
