// Symbolic shadow values for the concolic engine.
//
// The engine executes MiniLang concretely (driven by @test functions, per
// §3.2: "our tool utilizes existing tests to act as our input") while
// propagating a symbolic *shadow* alongside scalar values:
//   * reading `obj.field` yields shadow atom "obj<id>.field" — object
//     identity, not variable spelling, names the location;
//   * boolean operators and integer comparisons combine shadows into
//     formulas;
//   * values that flow through containers or arithmetic lose their shadow
//     (objects keep identity, so their later field reads re-derive one).
// Branch decisions on shadowed guards become path-condition conjuncts.
#pragma once

#include <string>

#include "minilang/value.hpp"
#include "smt/formula.hpp"

namespace lisa::concolic {

/// Shadow attached to one runtime value. At most one of the members is
/// meaningful, matching the value's dynamic type.
struct SymShadow {
  /// For bool values: formula over object-named atoms; null if untracked.
  smt::FormulaPtr bool_formula;
  /// For int values: the symbolic location name ("obj5.ttl"); empty if
  /// untracked.
  std::string int_var;

  [[nodiscard]] bool has_bool() const { return bool_formula != nullptr; }
  [[nodiscard]] bool has_int() const { return !int_var.empty(); }
};

/// A concrete value plus its shadow.
struct CValue {
  minilang::Value v;
  SymShadow sym;

  CValue() = default;
  explicit CValue(minilang::Value value) : v(std::move(value)) {}
  CValue(minilang::Value value, SymShadow shadow) : v(std::move(value)), sym(std::move(shadow)) {}
};

/// Symbolic location name for a field of `object`.
[[nodiscard]] inline std::string field_var(const minilang::Object& object,
                                           const std::string& field) {
  return "obj" + std::to_string(object.object_id) + "." + field;
}

/// Symbolic nullness-indicator name for `object`.
[[nodiscard]] inline std::string null_var(const minilang::Object& object) {
  return "obj" + std::to_string(object.object_id) + "#null";
}

}  // namespace lisa::concolic
