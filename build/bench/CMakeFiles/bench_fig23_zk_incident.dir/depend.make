# Empty dependencies file for bench_fig23_zk_incident.
# This may be replaced when dependencies are built.
