// Incremental re-checking (slice-fingerprint resume): after an edit, a
// resumed gate re-checks only the contracts whose verdict cone contains the
// edit, replays the rest from the journal, and the final verdicts are
// byte-identical to a cold full run.
//
// Three scenarios over the full corpus contract store against the ZK-1208
// codebase, each with a CI-enforced bound (the `_bound` test runs this file
// with an empty benchmark filter):
//   * identity   — unchanged source: every conclusive entry replays
//     (re-check fraction 0).
//   * out-of-cone — a semantics-preserving edit inside `node_exists`, which
//     no state-predicate cone contains: only whole-program cones
//     (structural / interleaving contracts) re-check, fraction < 1.
//   * in-cone    — an edit inside `create_ephemeral_node`, squarely in the
//     ZK-1208 contract's cone: that contract re-checks too rather than
//     replaying a stale entry (strictly more re-checks than out-of-cone).
// In every scenario the resumed verdict signatures must equal a cold run's.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "lisa/ci_gate.hpp"
#include "lisa/pipeline.hpp"

namespace {

using namespace lisa;

core::ContractStore full_store() {
  core::ContractStore store;
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    const inference::SemanticsProposal proposal = inference::MockLlm().infer(ticket);
    core::TranslationResult translation = core::translate(proposal, ticket.system);
    store.add_all(std::move(translation.contracts));
  }
  return store;
}

/// Replaces the first occurrence of `from` with `to`; aborts the scenario
/// (returns empty) when the marker is missing, so a corpus rewrite fails
/// loudly instead of silently benchmarking an identity edit.
std::string edit_source(const std::string& source, const std::string& from,
                        const std::string& to) {
  const std::size_t at = source.find(from);
  if (at == std::string::npos) return {};
  std::string edited = source;
  edited.replace(at, from.size(), to);
  return edited;
}

struct IncrementalOutcome {
  int total = 0;     // contracts evaluated (non-vacuous)
  int resumed = 0;   // replayed from the journal
  int rechecked = 0;
  bool signatures_match = true;  // resumed run == cold run, verdict-for-verdict
  [[nodiscard]] double recheck_fraction() const {
    return total == 0 ? 1.0 : static_cast<double>(rechecked) / total;
  }
};

/// Cold run on `base` (journaled), resumed run on `edited`, cold run on
/// `edited`; compares resumed vs cold verdict signatures per contract.
IncrementalOutcome run_incremental(const core::ContractStore& store,
                                   const std::string& base, const std::string& edited,
                                   const char* tag) {
  const std::string journal_path =
      (std::filesystem::temp_directory_path() / (std::string("lisa_bench_incr_") + tag))
          .string() +
      ".jsonl";
  core::CheckOptions options;
  options.run_concolic = false;  // the static fast path CI uses
  const core::CiGate gate(options);

  core::GateRunOptions journaling;
  journaling.journal_path = journal_path;
  (void)gate.evaluate(base, store, journaling);

  core::GateRunOptions resuming = journaling;
  resuming.resume = true;
  const core::GateDecision resumed = gate.evaluate(edited, store, resuming);

  const core::GateDecision cold = gate.evaluate(edited, store);

  IncrementalOutcome outcome;
  outcome.total = static_cast<int>(resumed.reports.size());
  outcome.resumed = resumed.resumed_contracts;
  outcome.rechecked = outcome.total - outcome.resumed;
  std::map<std::string, std::string> cold_signatures;
  for (const core::ContractCheckReport& report : cold.reports)
    cold_signatures[report.contract_id] = report.verdict_signature();
  for (const core::ContractCheckReport& report : resumed.reports) {
    const auto expected = cold_signatures.find(report.contract_id);
    if (expected == cold_signatures.end() ||
        expected->second != report.verdict_signature())
      outcome.signatures_match = false;
  }
  if (cold.reports.size() != resumed.reports.size()) outcome.signatures_match = false;
  std::remove(journal_path.c_str());
  return outcome;
}

// The two edits, both semantics-preserving so every scenario's verdicts stay
// comparable across corpus evolutions.
constexpr const char* kOutOfConeFrom = "return node != null;";
constexpr const char* kOutOfConeTo = "if (false) { return false; } return node != null;";
constexpr const char* kInConeFrom =
    "server.tree.node_count = server.tree.node_count + 1;";
constexpr const char* kInConeTo =
    "server.tree.node_count = server.tree.node_count + 1 + 0;";

int check_incremental_bound() {
  const corpus::FailureTicket* zk = corpus::Corpus::find("zk-1208-ephemeral-create");
  const core::ContractStore store = full_store();
  const std::string& base = zk->patched_source;
  int violations = 0;
  const auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::printf("BOUND VIOLATION: %s\n", what);
      ++violations;
    }
  };

  std::printf("=== incremental re-checking: slice-fingerprint resume ===\n\n");
  std::printf("%-12s | %9s %8s %10s %9s %s\n", "edit", "contracts", "resumed",
              "re-checked", "fraction", "verdicts == cold run");

  const IncrementalOutcome identity = run_incremental(store, base, base, "identity");
  std::printf("%-12s | %9d %8d %10d %8.0f%% %s\n", "identity", identity.total,
              identity.resumed, identity.rechecked, 100 * identity.recheck_fraction(),
              identity.signatures_match ? "yes" : "NO");
  expect(identity.rechecked == 0, "identity edit must replay every entry");
  expect(identity.signatures_match, "identity resume flipped a verdict");

  const std::string out_of_cone = edit_source(base, kOutOfConeFrom, kOutOfConeTo);
  expect(!out_of_cone.empty(), "out-of-cone edit marker missing from corpus");
  const IncrementalOutcome narrow =
      run_incremental(store, base, out_of_cone, "outofcone");
  std::printf("%-12s | %9d %8d %10d %8.0f%% %s\n", "out-of-cone", narrow.total,
              narrow.resumed, narrow.rechecked, 100 * narrow.recheck_fraction(),
              narrow.signatures_match ? "yes" : "NO");
  expect(narrow.resumed > 0, "out-of-cone edit must replay the unaffected contracts");
  expect(narrow.recheck_fraction() < 1.0, "out-of-cone edit re-checked everything");
  expect(narrow.signatures_match, "out-of-cone resume flipped a verdict");

  const std::string in_cone = edit_source(base, kInConeFrom, kInConeTo);
  expect(!in_cone.empty(), "in-cone edit marker missing from corpus");
  const IncrementalOutcome wide = run_incremental(store, base, in_cone, "incone");
  std::printf("%-12s | %9d %8d %10d %8.0f%% %s\n", "in-cone", wide.total, wide.resumed,
              wide.rechecked, 100 * wide.recheck_fraction(),
              wide.signatures_match ? "yes" : "NO");
  expect(wide.rechecked > narrow.rechecked,
         "in-cone edit must additionally re-check the contract whose cone contains it");
  expect(wide.signatures_match, "in-cone resume flipped a verdict");

  std::printf("\n%s\n\n", violations == 0
                              ? "PASS (edits re-check only their cones, zero flips)"
                              : "FAIL");
  return violations == 0 ? 0 : 1;
}

void BM_IncrementalResume(benchmark::State& state) {
  const corpus::FailureTicket* zk = corpus::Corpus::find("zk-1208-ephemeral-create");
  const core::ContractStore store = full_store();
  const std::string edited =
      edit_source(zk->patched_source, kOutOfConeFrom, kOutOfConeTo);
  IncrementalOutcome outcome;
  for (auto _ : state) {
    outcome = run_incremental(store, zk->patched_source, edited, "bm");
    benchmark::DoNotOptimize(outcome.resumed);
  }
  state.counters["incremental_recheck_fraction"] = outcome.recheck_fraction();
  state.counters["contracts"] = static_cast<double>(outcome.total);
}
BENCHMARK(BM_IncrementalResume)->Unit(benchmark::kMillisecond);

void BM_ColdGate(benchmark::State& state) {
  const corpus::FailureTicket* zk = corpus::Corpus::find("zk-1208-ephemeral-create");
  const core::ContractStore store = full_store();
  core::CheckOptions options;
  options.run_concolic = false;
  const core::CiGate gate(options);
  for (auto _ : state)
    benchmark::DoNotOptimize(gate.evaluate(zk->patched_source, store).allowed);
}
BENCHMARK(BM_ColdGate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int violation = check_incremental_bound();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return violation;
}
