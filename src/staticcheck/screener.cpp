#include "staticcheck/screener.hpp"

#include <utility>

#include "analysis/paths.hpp"
#include "obs/trace.hpp"
#include "smt/solver.hpp"
#include "staticcheck/dataflow.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace lisa::staticcheck {

using minilang::FuncDecl;
using minilang::Program;
using minilang::Stmt;
using smt::Atom;
using smt::CmpOp;
using smt::Formula;
using smt::FormulaPtr;

const char* screen_verdict_name(ScreenVerdict verdict) {
  switch (verdict) {
    case ScreenVerdict::kProvedSafe: return "proved-safe";
    case ScreenVerdict::kProvedViolated: return "proved-violated";
    case ScreenVerdict::kUnknown: return "unknown";
  }
  return "?";
}

Screener::Screener(const Program& program, bool use_summaries)
    : program_(&program), graph_(analysis::CallGraph::build(program)) {
  if (!use_summaries) return;
  try {
    summaries_ = SummaryMap::compute(program, graph_);
  } catch (const std::exception& error) {
    // Summaries only strengthen facts; losing them degrades the screener to
    // its summary-free (PR 2) precision instead of taking the pipeline down.
    support::log(support::LogLevel::warn,
                 "summary computation failed, screening without summaries: ",
                 error.what());
    summaries_.reset();
  }
}

const Cfg& Screener::cfg_for(const FuncDecl& fn) const {
  const auto it = cfgs_.find(&fn);
  if (it != cfgs_.end()) return it->second;
  return cfgs_.emplace(&fn, Cfg::build(fn)).first->second;
}

FormulaPtr Screener::facts_at(const FuncDecl& fn, const Stmt* stmt) const {
  const Cfg& cfg = cfg_for(fn);
  const int node = cfg.node_of(stmt);
  if (node < 0) return Formula::truth(true);

  std::vector<FormulaPtr> facts;

  NullnessAnalysis nullness(*program_, summaries());
  const auto null_result = run_forward(cfg, nullness);
  if (null_result.reached[static_cast<std::size_t>(node)]) {
    for (const auto& [path, fact] : null_result.in[static_cast<std::size_t>(node)]) {
      FormulaPtr is_null = Formula::make_atom(Atom::bool_var(path + "#null"));
      facts.push_back(fact == NullFact::kNull ? std::move(is_null)
                                              : Formula::negate(std::move(is_null)));
    }
  }

  IntervalAnalysis intervals(*program_, summaries());
  const auto interval_result = run_forward(cfg, intervals);
  if (interval_result.reached[static_cast<std::size_t>(node)]) {
    for (const auto& [path, range] : interval_result.in[static_cast<std::size_t>(node)]) {
      if (range.lo != Interval::kMin)
        facts.push_back(Formula::make_atom(Atom::cmp_const(path, CmpOp::kGe, range.lo)));
      if (range.hi != Interval::kMax)
        facts.push_back(Formula::make_atom(Atom::cmp_const(path, CmpOp::kLe, range.hi)));
    }
  }

  return facts.empty() ? Formula::truth(true) : Formula::conj(std::move(facts));
}

ScreenResult Screener::screen_state_predicate(const std::string& target_fragment,
                                              const FormulaPtr& condition,
                                              const ScreenOptions& options) const {
  obs::ScopedSpan span("screen.state_predicate");
  span.attr("target", target_fragment);
  const support::Stopwatch timer;
  ScreenResult result;
  if (condition == nullptr) {
    result.reason = "contract has no decidable condition";
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  const auto targets = analysis::find_target_statements(*program_, target_fragment);
  result.targets = targets.size();
  if (targets.empty()) {
    result.reason = "no statement matches the target fragment";
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  // Dataflow facts per target statement, in target-local names (the same
  // vocabulary `condition` is written in).
  std::map<const Stmt*, FormulaPtr> target_facts;
  for (const auto& [fn, stmt] : targets) target_facts[stmt] = facts_at(*fn, stmt);

  // Fact closure (summaries only): ¬P unsatisfiable under the facts at
  // every target statement. Strong enough to settle a contract even when
  // the guard-only tree cannot map some paths — the facts are a fixpoint
  // over *all* paths, so no execution can reach a target with ¬P true.
  // Without summaries the facts are too weak for this to fire soundly
  // (call-site havoc erases exactly the cross-function guarantees needed).
  const auto facts_refute_everywhere = [&]() -> bool {
    if (summaries() == nullptr) return false;
    smt::Solver closure_solver;
    const FormulaPtr not_p = Formula::negate(condition);
    for (const auto& [stmt, facts] : target_facts) {
      const smt::SolveResult closed = closure_solver.solve(Formula::conj2(facts, not_p));
      // An unknown result never counts as a refutation: claiming ProvedSafe
      // off a solver that refused to answer would silence real violations.
      if (closed.sat() || closed.unknown()) return false;
    }
    return true;
  };

  // The guard-only execution tree — deliberately the exact abstraction the
  // path checker decides, so "all paths verify" here implies the checker
  // reports zero violations.
  analysis::TreeOptions tree_options;
  tree_options.max_paths = options.max_paths;
  tree_options.prune_irrelevant = options.prune_irrelevant;
  tree_options.contract_condition = condition;
  const analysis::ExecutionTree tree =
      analysis::build_execution_tree(*program_, graph_, target_fragment, tree_options);
  result.paths_checked = tree.paths.size();

  if (tree.truncated) {
    result.reason = "path enumeration truncated at " + std::to_string(options.max_paths);
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }
  if (tree.paths.empty()) {
    if (facts_refute_everywhere()) {
      result.verdict = ScreenVerdict::kProvedSafe;
      result.reason = "dataflow facts refute the contract's complement at every target";
    } else {
      result.reason = "no entry->target path to screen";
    }
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  smt::Solver solver;
  const FormulaPtr not_condition = Formula::negate(condition);
  bool any_unmappable = false;
  bool any_facts_refuted = false;
  bool any_unknown = false;
  for (const analysis::ExecutionPath& path : tree.paths) {
    if (!path.mappable) {
      any_unmappable = true;
      continue;
    }
    const smt::SolveResult sat = solver.solve(
        Formula::conj2(path.condition, Formula::negate(path.renamed_contract)));
    if (sat.unknown()) {
      any_unknown = true;
      continue;
    }
    if (!sat.sat()) continue;  // path verifies

    // The guard-only condition misses assignment effects; require the
    // dataflow facts at the target to be consistent with ¬P before trusting
    // the violation. Refuted witnesses fall back to Unknown (full check).
    const auto facts = target_facts.find(path.target);
    const FormulaPtr fact_formula =
        facts == target_facts.end() ? Formula::truth(true) : facts->second;
    const smt::SolveResult confirmed =
        solver.solve(Formula::conj2(fact_formula, not_condition));
    if (confirmed.unknown()) {
      any_unknown = true;
      continue;
    }
    if (!confirmed.sat()) {
      any_facts_refuted = true;
      continue;
    }

    result.verdict = ScreenVerdict::kProvedViolated;
    std::string chain;
    for (const std::string& fn : path.call_chain) {
      if (!chain.empty()) chain += " -> ";
      chain += fn;
    }
    result.witness = chain + " | " + sat.model.to_string();
    result.reason = "path condition admits the contract's complement";
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  if (any_unknown) {
    // A refused query means some path was never decided; any ProvedSafe
    // claim from here would rest on the undecided remainder.
    result.reason = "solver inconclusive on some path (budget or fault)";
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  if (any_unmappable) {
    // Every mappable path verified; only unmappable ones stand between us
    // and ProvedSafe. A facts-refuted mappable path would signal that the
    // guard-only tree and the facts disagree — leave those to the checker.
    if (!any_facts_refuted && facts_refute_everywhere()) {
      result.verdict = ScreenVerdict::kProvedSafe;
      result.reason =
          "unmappable paths closed: dataflow facts refute the contract's "
          "complement at every target";
    } else {
      result.reason = "contract variables unmappable on some path";
    }
  } else if (any_facts_refuted) {
    result.reason = "violating paths refuted by dataflow facts";
  } else {
    result.verdict = ScreenVerdict::kProvedSafe;
    result.reason = "every entry->target path verifies";
  }
  result.elapsed_ms = timer.elapsed_ms();
  return result;
}

ScreenResult Screener::screen_structural() const {
  obs::ScopedSpan span("screen.structural");
  const support::Stopwatch timer;
  ScreenResult result;
  for (const FuncDecl& fn : program_->functions) {
    const Cfg& cfg = cfg_for(fn);
    LockStateAnalysis locks(*program_, graph_, summaries());
    const auto fixpoint = run_forward(cfg, locks);
    locks.report(cfg, fixpoint.in, fixpoint.reached, result.diagnostics);
  }
  if (result.diagnostics.empty()) {
    result.verdict = ScreenVerdict::kProvedSafe;
    result.reason = "no blocking call reachable while a monitor is held";
  } else {
    result.verdict = ScreenVerdict::kProvedViolated;
    result.witness = result.diagnostics.front().render();
    result.reason = std::to_string(result.diagnostics.size()) +
                    " blocking call(s) reachable while a monitor is held";
  }
  result.elapsed_ms = timer.elapsed_ms();
  return result;
}

}  // namespace lisa::staticcheck
