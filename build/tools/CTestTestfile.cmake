# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_corpus "/root/repo/build/tools/lisa" "corpus")
set_tests_properties(cli_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_infer "/root/repo/build/tools/lisa" "infer" "zk-1208-ephemeral-create")
set_tests_properties(cli_infer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_check "/root/repo/build/tools/lisa" "check" "zk-quota-bypass" "--no-concolic")
set_tests_properties(cli_check PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hunt "/root/repo/build/tools/lisa" "hunt")
set_tests_properties(cli_hunt PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth "/root/repo/build/tools/lisa" "synth" "hbase-wal-roll-during-flush")
set_tests_properties(cli_synth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
