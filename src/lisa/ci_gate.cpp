#include "lisa/ci_gate.hpp"

#include <optional>

#include "analysis/paths.hpp"
#include "lisa/journal.hpp"
#include "minilang/sema.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "staticcheck/screener.hpp"
#include "staticcheck/slice.hpp"
#include "support/stopwatch.hpp"

namespace lisa::core {

using support::Json;
using support::JsonArray;
using support::JsonObject;

void ContractStore::add(SemanticContract contract) {
  contracts_.push_back(std::move(contract));
}

void ContractStore::add_all(std::vector<SemanticContract> contracts) {
  for (SemanticContract& contract : contracts) contracts_.push_back(std::move(contract));
}

Json ContractStore::to_json() const {
  JsonArray entries;
  for (const SemanticContract& contract : contracts_) entries.push_back(contract.to_json());
  JsonObject root;
  root["contracts"] = Json(std::move(entries));
  return Json(std::move(root));
}

ContractStore ContractStore::from_json(const Json& json) {
  ContractStore store;
  if (json.has("contracts"))
    for (const Json& entry : json.at("contracts").as_array())
      store.add(SemanticContract::from_json(entry));
  return store;
}

Json GateDecision::to_json() const {
  JsonObject root;
  root["allowed"] = allowed;
  JsonArray violation_entries;
  for (const std::string& violation : violations) violation_entries.push_back(Json(violation));
  root["violations"] = Json(std::move(violation_entries));
  JsonArray report_entries;
  for (const ContractCheckReport& report : reports) report_entries.push_back(report.to_json());
  root["reports"] = Json(std::move(report_entries));
  root["evaluation_ms"] = evaluation_ms;
  root["screened_settled"] = screened_settled;
  root["screened_unknown"] = screened_unknown;
  root["settled_fraction"] = settled_fraction();
  root["concolic_skipped"] = concolic_skipped;
  root["summary_ms"] = summary_ms;
  if (inconclusive_contracts > 0) root["inconclusive_contracts"] = inconclusive_contracts;
  if (needs_attention) root["needs_attention"] = true;
  if (resumed_contracts > 0) root["resumed_contracts"] = resumed_contracts;
  return Json(std::move(root));
}

GateDecision CiGate::evaluate(const std::string& source, const ContractStore& store) const {
  return evaluate(source, store, GateRunOptions{});
}

GateDecision CiGate::evaluate(const std::string& source, const ContractStore& store,
                              const GateRunOptions& run_options) const {
  GateDecision decision;
  obs::ScopedSpan span("gate.evaluate");
  span.attr("stored_contracts", store.size());
  const support::Stopwatch timer;
  minilang::Program program;
  try {
    program = minilang::parse_checked(source);
  } catch (const std::exception& error) {
    decision.allowed = false;
    decision.violations.push_back(std::string("commit does not build: ") + error.what());
    decision.evaluation_ms = timer.elapsed_ms();
    return decision;
  }
  CheckJournal journal(run_options.journal_path);
  const bool journaling = !run_options.journal_path.empty();
  // Per-entry resume: replay eligibility is decided by each entry's slice
  // fingerprint against the current commit, so an edit only re-checks the
  // contracts whose verdict cone contains it.
  std::optional<staticcheck::Screener> slice_screener;
  std::optional<staticcheck::SliceEngine> slice_engine;
  if (journaling && run_options.resume) {
    slice_screener.emplace(program, options_.use_summaries);
    slice_engine.emplace(program, slice_screener->graph(), slice_screener->summaries());
  }
  if (journaling || run_options.ledger != nullptr) {
    std::string inputs = source;
    for (const SemanticContract& contract : store.all()) inputs += "\n" + contract.id;
    if (run_options.ledger != nullptr) run_options.ledger->bind(inputs);
    if (journaling) {
      const std::string fingerprint = CheckJournal::fingerprint(inputs);
      if (run_options.resume) (void)journal.load("");
      journal.begin(fingerprint);
    }
  }
  const Checker checker;
  for (const SemanticContract& contract : store.all()) {
    // Contracts whose target no longer exists in this codebase are vacuous
    // for the commit (e.g. contracts from another system's history).
    if (analysis::find_target_statements(program, contract.target_fragment).empty() &&
        contract.kind == corpus::SemanticsKind::kStatePredicate)
      continue;
    const ContractCheckReport* checkpointed =
        journaling && run_options.resume ? journal.find(contract.id) : nullptr;
    const bool replay =
        checkpointed != nullptr && checkpointed->conclusive() &&
        !checkpointed->slice_fp.empty() && slice_engine.has_value() &&
        checkpointed->slice_fp ==
            contract_slice_fingerprint(*slice_engine, contract, options_.run_concolic);
    ContractCheckReport report;
    if (replay) {
      report = *checkpointed;
      ++decision.resumed_contracts;
    } else {
      CheckOptions contract_options = options_;
      contract_options.ledger = run_options.ledger;
      contract_options.compute_slice_fp = journaling || run_options.ledger != nullptr;
      report = checker.check(program, contract, contract_options);
    }
    if (journaling) journal.record(report);
    if (!report.conclusive()) {
      ++decision.inconclusive_contracts;
      decision.needs_attention = true;
    }
    if (report.screen_verdict == "proved-safe" || report.screen_verdict == "proved-violated")
      ++decision.screened_settled;
    else if (!report.screen_verdict.empty())
      ++decision.screened_unknown;
    if (report.screen_skipped_concolic) ++decision.concolic_skipped;
    decision.summary_ms += report.summary_ms;
    if (!report.passed()) {
      decision.allowed = false;
      std::string reason = contract.id + " [" + contract.target_fragment + "]: ";
      if (report.violated > 0)
        reason += std::to_string(report.violated) + " unguarded path(s); ";
      if (!report.structural_violations.empty())
        reason += std::to_string(report.structural_violations.size()) +
                  " structural violation(s); ";
      if (report.dynamic.symbolic_violations > 0)
        reason += std::to_string(report.dynamic.symbolic_violations) +
                  " missing-check trace(s); ";
      reason += contract.description;
      decision.violations.push_back(std::move(reason));
    }
    decision.reports.push_back(std::move(report));
  }
  decision.evaluation_ms = timer.elapsed_ms();
  obs::MetricsRegistry& registry = obs::metrics();
  registry.counter("gate.evaluations").add();
  if (!decision.allowed) registry.counter("gate.blocked").add();
  if (decision.needs_attention) registry.counter("gate.needs_attention").add();
  if (decision.resumed_contracts > 0)
    registry.counter("gate.resumed_contracts").add(decision.resumed_contracts);
  registry.histogram("gate.evaluation_ms").record(decision.evaluation_ms);
  span.attr("allowed", decision.allowed);
  span.attr("evaluated", decision.reports.size());
  return decision;
}

}  // namespace lisa::core
