// lisa — command-line front end to the LISA pipeline.
//
// Usage:
//   lisa corpus                       list the incident corpus
//   lisa prompt <case-id>             print the Listing-1 prompt for a ticket
//   lisa infer <case-id>              run inference, print the proposal JSON
//   lisa check <case-id> [--latest|--buggy] [--no-concolic] [--no-prune]
//              [--trace out.json] [--metrics out.json]
//                                     full pipeline; markdown report to stdout;
//                                     --trace writes a Chrome trace-event file
//                                     (open in Perfetto), --metrics a registry
//                                     snapshot
//   lisa profile <system|case-id|all> [--json] [--trace out.json]
//                                     run the corpus slice with tracing on and
//                                     print the per-span cost table (inclusive/
//                                     exclusive ms) plus top SMT hotspots
//   lisa gate <case-id> <file.ml> [--trace out.json] [--metrics out.json]
//             [--report <dir>]        evaluate a commit file against the
//                                     contracts mined from a case; --report
//                                     writes the provenance ledger
//                                     (ledger.jsonl) and a self-contained
//                                     HTML failure report (report.html)
//   lisa explain <case-id> [<contract-id>] [--buggy|--latest] [--json]
//                [--html <file>]      check the case with provenance capture
//                                     on and print each contract's evidence
//                                     chain — screen facts, per-path SMT
//                                     queries, concolic hits, budget charges,
//                                     and a narrated counterexample for
//                                     violations
//   lisa hunt                         §4 bug hunt over the latest releases
//   lisa synth <case-id>              synthesize witness tests for violated
//                                     paths of the patched version
//   lisa explore <case-id>            systematic path exploration: drive every
//                                     synthesizable path with generated tests
//   lisa lint [case-id] [--buggy|--latest] [--json]
//                                     run the staticcheck dataflow analyses
//                                     (nullness, definite assignment, lock
//                                     state, intervals) over corpus programs;
//                                     --json emits machine-readable
//                                     diagnostics plus aggregate counts
//   lisa diff <a.jsonl> <b.jsonl> [--json] [--html <file>]
//   lisa diff --history <file> <i> <j> [--json] [--html <file>]
//                                     deterministic report of what changed
//                                     between two gate runs: verdict flips
//                                     with evidence-chain deltas (two ledger
//                                     files) or signature flips + metric
//                                     deltas (two history records by index)
//   lisa trends <history.jsonl> [--kind k] [--label l] [--json] [--html <file>]
//                                     per-metric sparklines over a run-history
//                                     timeline plus the drift findings the
//                                     newest record would raise
//
// `lisa check` and `lisa gate` accept --history <file> to append one
// fingerprinted RunRecord per run to an append-only history store; gate
// additionally runs the drift rules against the recorded baseline and can
// block the commit on a drift finding (never silently — each finding is
// narrated in the report).
//
// Exit code: 0 on success/pass, 1 on violations found/commit blocked,
// 2 on usage or input errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/callgraph.hpp"
#include "analysis/paths.hpp"
#include "concolic/explorer.hpp"
#include "concolic/testgen.hpp"
#include "lisa/ci_gate.hpp"
#include "lisa/pipeline.hpp"
#include "lisa/report.hpp"
#include "minilang/sema.hpp"
#include "obs/diff.hpp"
#include "obs/explain.hpp"
#include "obs/history.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "staticcheck/analyses.hpp"
#include "staticcheck/screener.hpp"
#include "staticcheck/slice.hpp"
#include "support/budget.hpp"

namespace {

using namespace lisa;

int usage() {
  std::fprintf(stderr,
               "usage: lisa <command> [args]\n"
               "  corpus | prompt <case> | source <case> [--buggy|--latest] |\n"
               "  infer <case> | check <case> [flags] |\n"
               "  gate <case> <file.ml> [flags] | explain <case> [contract] [flags] |\n"
               "  slice <case> [contract] [--buggy|--latest] [--json] |\n"
               "  diff <a.jsonl> <b.jsonl> | diff --history <file> <i> <j> |\n"
               "  trends <history.jsonl> [--kind k] [--label l] |\n"
               "  hunt | synth <case> | explore <case> |\n"
               "  lint [case] [--buggy|--latest] [--json] |\n"
               "  profile <system|case|all> [--json] [--prom] [--trace out.json]\n"
               "flags for check: --latest --buggy --no-concolic --no-prune\n"
               "                 --trace out.json --metrics out.json\n"
               "flags for gate:  --trace out.json --metrics out.json --report <dir>\n"
               "                 --history-label <s> --drift-window N --drift-warn-only\n"
               "                 --schedule-warn-only\n"
               "flags for explain: --buggy --latest --json --html <file> --ledger <file>\n"
               "flags for diff/trends: --json --html <file>\n"
               "budget flags (check, gate): --deadline-ms N --max-paths N\n"
               "                 --max-smt-queries N --max-steps N --max-schedules N\n"
               "schedule flags (check, gate): --max-schedules N --schedule-seed N\n"
               "checkpointing (check, gate): --journal out.jsonl --resume\n"
               "run history (check, gate): --history <file> appends one record per\n"
               "run; gate also runs drift detection against the recorded baseline\n"
               "lint with no case runs over every patched corpus program\n"
               "profile runs the corpus slice with tracing on and prints the\n"
               "per-span cost table and top SMT hotspots (--prom: Prometheus text)\n");
  return 2;
}

/// Writes pretty-printed JSON to `path`; reports and returns false on I/O error.
bool write_json_file(const std::string& path, const support::Json& json) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << json.pretty() << "\n";
  return out.good();
}

/// Writes raw text to `path`; reports and returns false on I/O error.
bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return out.good();
}

const corpus::FailureTicket* require_case(const std::string& case_id) {
  const corpus::FailureTicket* ticket = corpus::Corpus::find(case_id);
  if (ticket == nullptr) {
    std::fprintf(stderr, "unknown case '%s'; run `lisa corpus` for the list\n",
                 case_id.c_str());
  }
  return ticket;
}

int cmd_corpus() {
  std::printf("%-34s %-10s %6s %-14s %s\n", "case id", "system", "bugs", "original",
              "title");
  for (const corpus::FailureTicket& ticket : corpus::Corpus::all()) {
    std::printf("%-34s %-10s %6d %-14s %s\n", ticket.case_id.c_str(),
                ticket.system.c_str(), ticket.bug_count(), ticket.original.id.c_str(),
                ticket.title.c_str());
  }
  return 0;
}

/// `lisa source <case> [--buggy|--latest]`: print a corpus program verbatim
/// — the handy way to materialize a commit file for `lisa gate`.
int cmd_source(const std::string& case_id, int argc, char** argv) {
  const corpus::FailureTicket* ticket = require_case(case_id);
  if (ticket == nullptr) return 2;
  const std::string* source = &ticket->patched_source;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--buggy") == 0)
      source = &ticket->buggy_source;
    else if (std::strcmp(argv[i], "--latest") == 0)
      source = &ticket->latest_source;
    else
      return usage();
  }
  if (source->empty()) {
    std::fprintf(stderr, "case %s has no such version\n", case_id.c_str());
    return 2;
  }
  std::printf("%s", source->c_str());
  return 0;
}

int cmd_prompt(const std::string& case_id) {
  const corpus::FailureTicket* ticket = require_case(case_id);
  if (ticket == nullptr) return 2;
  std::printf("%s", inference::MockLlm::render_prompt(*ticket).c_str());
  return 0;
}

int cmd_infer(const std::string& case_id) {
  const corpus::FailureTicket* ticket = require_case(case_id);
  if (ticket == nullptr) return 2;
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  std::printf("%s\n", proposal.to_json().pretty().c_str());
  return 0;
}

/// Parses the shared budget flags (--deadline-ms, --max-paths,
/// --max-smt-queries, --max-steps). Returns false when `flag` is not a
/// budget flag; `i` advances past the consumed value.
bool parse_budget_flag(int argc, char** argv, int* i, support::BudgetLimits* limits) {
  const auto int_value = [&](std::int64_t* out) {
    if (*i + 1 >= argc) return false;
    *out = std::atoll(argv[++*i]);
    return *out > 0;
  };
  if (std::strcmp(argv[*i], "--deadline-ms") == 0) {
    if (*i + 1 >= argc) return false;
    limits->deadline_ms = std::atof(argv[++*i]);
    return limits->deadline_ms > 0.0;
  }
  if (std::strcmp(argv[*i], "--max-paths") == 0) return int_value(&limits->max_paths);
  if (std::strcmp(argv[*i], "--max-smt-queries") == 0)
    return int_value(&limits->max_smt_queries);
  if (std::strcmp(argv[*i], "--max-steps") == 0) return int_value(&limits->max_steps);
  if (std::strcmp(argv[*i], "--max-schedules") == 0)
    return int_value(&limits->max_schedules);
  return false;
}

/// `--max-schedules N` is both a budget limit and the explorer's own bound:
/// "at most N interleavings total". Exhausting it is a typed inconclusive.
void apply_schedule_limits(const support::BudgetLimits& limits,
                           core::CheckOptions* options) {
  if (limits.max_schedules > 0)
    options->max_schedules = static_cast<int>(limits.max_schedules);
}

int cmd_check(const std::string& case_id, int argc, char** argv) {
  const corpus::FailureTicket* ticket = require_case(case_id);
  if (ticket == nullptr) return 2;
  std::string source = ticket->patched_source;
  std::string trace_path;
  std::string metrics_path;
  core::CheckOptions options;
  core::PipelineRunOptions run_options;
  support::BudgetLimits limits;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--latest") == 0) {
      if (ticket->latest_source.empty()) {
        std::fprintf(stderr, "case %s has no latest version\n", case_id.c_str());
        return 2;
      }
      source = ticket->latest_source;
    } else if (std::strcmp(argv[i], "--buggy") == 0) {
      source = ticket->buggy_source;
    } else if (std::strcmp(argv[i], "--no-concolic") == 0) {
      options.run_concolic = false;
    } else if (std::strcmp(argv[i], "--no-prune") == 0) {
      options.prune_irrelevant = false;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      run_options.journal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      run_options.resume = true;
    } else if (std::strcmp(argv[i], "--history") == 0 && i + 1 < argc) {
      run_options.history_path = argv[++i];
    } else if (std::strcmp(argv[i], "--schedule-seed") == 0 && i + 1 < argc) {
      options.schedule_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (parse_budget_flag(argc, argv, &i, &limits)) {
      // consumed
    } else {
      return usage();
    }
  }
  if (run_options.resume && run_options.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal <path>\n");
    return 2;
  }
  if (!trace_path.empty()) obs::tracer().set_enabled(true);
  apply_schedule_limits(limits, &options);
  support::Budget budget(limits);
  if (!limits.unlimited()) options.budget = &budget;
  const core::Pipeline pipeline(inference::MockLlmOptions{}, options);
  const core::PipelineResult result = pipeline.run(*ticket, source, run_options);
  std::printf("%s", core::render_markdown(result).c_str());
  if (options.budget != nullptr) {
    int inconclusive = 0;
    for (const core::ContractCheckReport& report : result.reports)
      if (!report.conclusive()) ++inconclusive;
    const std::string exhausted_note =
        budget.exhausted() ? " — exhausted: " + budget.exhausted_reason() : "";
    std::string schedule_note;
    if (budget.schedules() > 0)
      schedule_note =
          ", " + std::to_string(static_cast<long long>(budget.schedules())) + " schedules";
    std::printf(
        "_Budget: %lld SMT queries, %lld paths, %lld fork points, %lld steps%s%s; "
        "%d contract(s) inconclusive._\n",
        static_cast<long long>(budget.smt_queries()), static_cast<long long>(budget.paths()),
        static_cast<long long>(budget.fork_points()), static_cast<long long>(budget.steps()),
        schedule_note.c_str(), exhausted_note.c_str(), inconclusive);
  }
  if (!trace_path.empty() &&
      !write_json_file(trace_path, obs::tracer().chrome_trace()))
    return 2;
  if (!metrics_path.empty() &&
      !write_json_file(metrics_path, obs::metrics().snapshot()))
    return 2;
  return result.all_passed() ? 0 : 1;
}

int cmd_profile(int argc, char** argv) {
  std::string selector;
  std::string trace_path;
  bool json_output = false;
  bool prom_output = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0)
      json_output = true;
    else if (std::strcmp(argv[i], "--prom") == 0)
      prom_output = true;
    else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else if (argv[i][0] != '-' && selector.empty())
      selector = argv[i];
    else
      return usage();
  }
  if (selector.empty() || (json_output && prom_output)) return usage();

  std::vector<const corpus::FailureTicket*> tickets;
  if (selector == "all") {
    for (const corpus::FailureTicket& ticket : corpus::Corpus::all())
      tickets.push_back(&ticket);
  } else {
    tickets = corpus::Corpus::for_system(selector);
    if (tickets.empty()) {
      const corpus::FailureTicket* ticket = corpus::Corpus::find(selector);
      if (ticket != nullptr) tickets.push_back(ticket);
    }
  }
  if (tickets.empty()) {
    std::fprintf(stderr,
                 "'%s' names neither a system (zookeeper|hdfs|hbase|cassandra), a "
                 "case id, nor 'all'\n",
                 selector.c_str());
    return 2;
  }

  obs::tracer().set_enabled(true);
  obs::tracer().clear();
  obs::metrics().reset();
  const core::Pipeline pipeline;
  int violations = 0;
  for (const corpus::FailureTicket* ticket : tickets) {
    const core::PipelineResult result = pipeline.run(*ticket, ticket->patched_source);
    violations += result.total_violations();
  }
  const std::vector<obs::SpanRecord> spans = obs::tracer().snapshot();
  const obs::CostTable table = obs::build_cost_table(spans);

  if (prom_output) {
    // Scrape-ready exposition of the same registry the JSON snapshot reads.
    std::printf("%s", obs::metrics().render_prometheus().c_str());
  } else if (json_output) {
    support::JsonObject root;
    root["selector"] = selector;
    root["cases"] = tickets.size();
    root["violations"] = violations;
    root["profile"] = table.to_json();
    root["metrics"] = obs::metrics().snapshot();
    std::printf("%s\n", support::Json(std::move(root)).pretty().c_str());
  } else {
    std::printf("=== lisa profile: %s (%zu case%s, %zu spans) ===\n\n", selector.c_str(),
                tickets.size(), tickets.size() == 1 ? "" : "s", spans.size());
    std::printf("%s", table.render().c_str());
  }
  if (!trace_path.empty() &&
      !write_json_file(trace_path, obs::tracer().chrome_trace()))
    return 2;
  return 0;
}

int cmd_gate(const std::string& case_id, const std::string& path, int argc, char** argv) {
  const corpus::FailureTicket* ticket = require_case(case_id);
  if (ticket == nullptr) return 2;
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot read commit file %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();

  core::GateRunOptions run_options;
  support::BudgetLimits limits;
  std::string trace_path;
  std::string metrics_path;
  std::string report_dir;
  std::uint64_t schedule_seed = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc)
      run_options.journal_path = argv[++i];
    else if (std::strcmp(argv[i], "--resume") == 0)
      run_options.resume = true;
    else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc)
      metrics_path = argv[++i];
    else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc)
      report_dir = argv[++i];
    else if (std::strcmp(argv[i], "--history") == 0 && i + 1 < argc)
      run_options.history_path = argv[++i];
    else if (std::strcmp(argv[i], "--history-label") == 0 && i + 1 < argc)
      run_options.history_label = argv[++i];
    else if (std::strcmp(argv[i], "--drift-window") == 0 && i + 1 < argc)
      run_options.drift.window = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--drift-warn-only") == 0)
      run_options.drift.fail_gate = false;
    else if (std::strcmp(argv[i], "--schedule-warn-only") == 0)
      run_options.schedule_warn_only = true;
    else if (std::strcmp(argv[i], "--schedule-seed") == 0 && i + 1 < argc)
      schedule_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (parse_budget_flag(argc, argv, &i, &limits)) {
      // consumed
    } else {
      return usage();
    }
  }
  if (run_options.history_path.empty() &&
      (!run_options.history_label.empty() || !run_options.drift.fail_gate)) {
    std::fprintf(stderr, "--history-label/--drift-* require --history <file>\n");
    return 2;
  }
  if (run_options.resume && run_options.journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal <path>\n");
    return 2;
  }
  if (!trace_path.empty()) obs::tracer().set_enabled(true);

  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  core::TranslationResult translation = core::translate(proposal, ticket->system);
  core::ContractStore store;
  store.add_all(std::move(translation.contracts));
  core::CheckOptions options;
  options.run_concolic = false;
  apply_schedule_limits(limits, &options);
  if (schedule_seed != 0) options.schedule_seed = schedule_seed;
  support::Budget budget(limits);
  if (!limits.unlimited()) options.budget = &budget;
  obs::ProvenanceLedger ledger;
  if (!report_dir.empty()) run_options.ledger = &ledger;
  const core::GateDecision decision =
      core::CiGate(options).evaluate(buffer.str(), store, run_options);
  std::printf("%s", core::render_markdown(decision).c_str());
  if (!report_dir.empty()) {
    std::error_code dir_error;
    std::filesystem::create_directories(report_dir, dir_error);
    if (dir_error) {
      std::fprintf(stderr, "cannot create %s: %s\n", report_dir.c_str(),
                   dir_error.message().c_str());
      return 2;
    }
    const std::string ledger_path = report_dir + "/ledger.jsonl";
    const std::string html_path = report_dir + "/report.html";
    if (!ledger.write_jsonl(ledger_path)) {
      std::fprintf(stderr, "cannot write %s\n", ledger_path.c_str());
      return 2;
    }
    if (!write_text_file(html_path, obs::render_ledger_html(ledger))) return 2;
    std::fprintf(stderr, "gate report: %s, %s\n", ledger_path.c_str(), html_path.c_str());
  }
  if (!trace_path.empty() &&
      !write_json_file(trace_path, obs::tracer().chrome_trace()))
    return 2;
  if (!metrics_path.empty() &&
      !write_json_file(metrics_path, obs::metrics().snapshot()))
    return 2;
  return decision.allowed ? 0 : 1;
}

int cmd_explain(const std::string& case_id, int argc, char** argv) {
  const corpus::FailureTicket* ticket = require_case(case_id);
  if (ticket == nullptr) return 2;
  std::string source = ticket->patched_source;
  std::string contract_id;
  std::string html_path;
  std::string ledger_path;
  bool json_output = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--latest") == 0) {
      if (ticket->latest_source.empty()) {
        std::fprintf(stderr, "case %s has no latest version\n", case_id.c_str());
        return 2;
      }
      source = ticket->latest_source;
    } else if (std::strcmp(argv[i], "--buggy") == 0) {
      source = ticket->buggy_source;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_output = true;
    } else if (std::strcmp(argv[i], "--html") == 0 && i + 1 < argc) {
      html_path = argv[++i];
    } else if (std::strcmp(argv[i], "--ledger") == 0 && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (argv[i][0] != '-' && contract_id.empty()) {
      contract_id = argv[i];
    } else {
      return usage();
    }
  }

  obs::ProvenanceLedger ledger;
  core::PipelineRunOptions run_options;
  run_options.ledger = &ledger;
  const core::Pipeline pipeline;
  const core::PipelineResult result = pipeline.run(*ticket, source, run_options);
  if (result.inference_failed) {
    std::fprintf(stderr, "inference failed: %s\n", result.inference_error.c_str());
    return 2;
  }
  if (!contract_id.empty() && ledger.find(contract_id) == nullptr) {
    std::fprintf(stderr, "no contract '%s' in this case; captured:", contract_id.c_str());
    for (const std::string& id : ledger.contract_ids())
      std::fprintf(stderr, " %s", id.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  if (json_output) {
    if (contract_id.empty()) {
      std::printf("%s\n", ledger.to_json().pretty().c_str());
    } else {
      std::printf("%s\n", ledger.find(contract_id)->to_json().pretty().c_str());
    }
  } else {
    for (const std::string& id : ledger.contract_ids()) {
      if (!contract_id.empty() && id != contract_id) continue;
      std::printf("%s", obs::render_capture_text(*ledger.find(id)).c_str());
    }
  }
  if (!html_path.empty() &&
      !write_text_file(html_path, obs::render_ledger_html(ledger)))
    return 2;
  if (!ledger_path.empty() && !ledger.write_jsonl(ledger_path)) {
    std::fprintf(stderr, "cannot write %s\n", ledger_path.c_str());
    return 2;
  }
  return result.all_passed() ? 0 : 1;
}

/// `lisa slice <case> [contract] [--buggy|--latest] [--json]`: the verdict
/// cone of each contract — the functions, statements, footprint, and write
/// sites the verdict can depend on, plus the slice fingerprint that keys
/// incremental re-checking. Deterministic: two runs print identical bytes.
int cmd_slice(const std::string& case_id, int argc, char** argv) {
  const corpus::FailureTicket* ticket = require_case(case_id);
  if (ticket == nullptr) return 2;
  std::string source = ticket->patched_source;
  std::string contract_id;
  bool json_output = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--latest") == 0) {
      if (ticket->latest_source.empty()) {
        std::fprintf(stderr, "case %s has no latest version\n", case_id.c_str());
        return 2;
      }
      source = ticket->latest_source;
    } else if (std::strcmp(argv[i], "--buggy") == 0) {
      source = ticket->buggy_source;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_output = true;
    } else if (argv[i][0] != '-' && contract_id.empty()) {
      contract_id = argv[i];
    } else {
      return usage();
    }
  }

  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  core::TranslationResult translation = core::translate(proposal, ticket->system);
  if (!contract_id.empty()) {
    bool found = false;
    for (const core::SemanticContract& contract : translation.contracts)
      found = found || contract.id == contract_id;
    if (!found) {
      std::fprintf(stderr, "no contract '%s' in this case; translated:", contract_id.c_str());
      for (const core::SemanticContract& contract : translation.contracts)
        std::fprintf(stderr, " %s", contract.id.c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
  }

  const minilang::Program program = minilang::parse_checked(source);
  const staticcheck::Screener screener(program);
  const staticcheck::SliceEngine engine(program, screener.graph(), screener.summaries());

  support::JsonArray entries;
  for (const core::SemanticContract& contract : translation.contracts) {
    if (!contract_id.empty() && contract.id != contract_id) continue;
    const staticcheck::SliceRequest request =
        core::contract_slice_request(contract, /*run_concolic=*/true);
    const staticcheck::SliceResult slice = engine.slice(request);
    if (json_output) {
      support::JsonObject entry;
      entry["contract_id"] = contract.id;
      entry["target_fragment"] = contract.target_fragment;
      entry["fingerprint"] = slice.fingerprint;
      entry["degraded"] = slice.degraded;
      support::JsonArray footprint;
      for (const std::string& path : slice.footprint)
        footprint.push_back(support::Json(path));
      entry["footprint"] = support::Json(std::move(footprint));
      support::JsonArray targets;
      for (const std::string& target : slice.targets)
        targets.push_back(support::Json(target));
      entry["targets"] = support::Json(std::move(targets));
      support::JsonArray functions;
      for (const std::string& fn : slice.functions)
        functions.push_back(support::Json(fn));
      entry["functions"] = support::Json(std::move(functions));
      support::JsonArray statements;
      for (const staticcheck::SliceStatement& stmt : slice.statements) {
        support::JsonObject item;
        item["function"] = stmt.function;
        item["line"] = stmt.line;
        item["column"] = stmt.column;
        item["role"] = stmt.role;
        item["text"] = stmt.text;
        statements.push_back(support::Json(std::move(item)));
      }
      entry["statements"] = support::Json(std::move(statements));
      support::JsonArray writes;
      for (const staticcheck::SliceWriteSite& site : slice.footprint_writes) {
        support::JsonObject item;
        item["function"] = site.function;
        item["line"] = site.line;
        item["column"] = site.column;
        item["path"] = site.path;
        item["literal_construction"] = site.literal_construction;
        writes.push_back(support::Json(std::move(item)));
      }
      entry["footprint_writes"] = support::Json(std::move(writes));
      entries.push_back(support::Json(std::move(entry)));
      continue;
    }
    std::printf("contract %s target '%s'\n", contract.id.c_str(),
                contract.target_fragment.c_str());
    std::printf("  fingerprint %s%s\n", slice.fingerprint.c_str(),
                slice.degraded ? " (degraded: whole-program cone)" : "");
    if (!slice.footprint.empty()) {
      std::printf("  footprint:");
      for (const std::string& path : slice.footprint) std::printf(" %s", path.c_str());
      std::printf("\n");
    }
    for (const std::string& target : slice.targets)
      std::printf("  target %s\n", target.c_str());
    std::printf("  cone (%zu function(s)):", slice.functions.size());
    for (const std::string& fn : slice.functions) std::printf(" %s", fn.c_str());
    std::printf("\n");
    for (const staticcheck::SliceStatement& stmt : slice.statements)
      std::printf("  [%-7s] %s:%d:%d: %s\n", stmt.role.c_str(), stmt.function.c_str(),
                  stmt.line, stmt.column, stmt.text.c_str());
    for (const staticcheck::SliceWriteSite& site : slice.footprint_writes)
      std::printf("  write %s:%d:%d: %s%s\n", site.function.c_str(), site.line,
                  site.column, site.path.c_str(),
                  site.literal_construction ? " (literal construction)" : "");
    std::printf("\n");
  }
  if (json_output) {
    support::JsonObject root;
    root["case"] = case_id;
    root["contracts"] = support::Json(std::move(entries));
    std::printf("%s\n", support::Json(std::move(root)).pretty().c_str());
  }
  return 0;
}

/// `lisa diff`: what changed between two gate runs. Two ledger files give
/// the rich evidence-delta form; `--history <file> <i> <j>` diffs two
/// records of a run-history store by index. Deterministic: the same two
/// inputs always render identical bytes (asserted by scripts/check.sh).
int cmd_diff(int argc, char** argv) {
  std::string history_path;
  std::string html_path;
  bool json_output = false;
  std::vector<std::string> positional;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--history") == 0 && i + 1 < argc)
      history_path = argv[++i];
    else if (std::strcmp(argv[i], "--json") == 0)
      json_output = true;
    else if (std::strcmp(argv[i], "--html") == 0 && i + 1 < argc)
      html_path = argv[++i];
    else if (argv[i][0] != '-')
      positional.push_back(argv[i]);
    else
      return usage();
  }
  if (positional.size() != 2) return usage();

  obs::DiffReport report;
  if (!history_path.empty()) {
    obs::RunHistory history(history_path);
    if (!history.load()) {
      std::fprintf(stderr, "cannot read history %s\n", history_path.c_str());
      return 2;
    }
    const std::vector<obs::RunRecord>& records = history.records();
    const long index_a = std::atol(positional[0].c_str());
    const long index_b = std::atol(positional[1].c_str());
    const long count = static_cast<long>(records.size());
    if (index_a < 0 || index_a >= count || index_b < 0 || index_b >= count) {
      std::fprintf(stderr, "history has %ld record(s); indices must be in [0, %ld)\n",
                   count, count);
      return 2;
    }
    report = obs::diff_runs(records[static_cast<std::size_t>(index_a)],
                            records[static_cast<std::size_t>(index_b)]);
  } else {
    obs::ProvenanceLedger ledger_a;
    obs::ProvenanceLedger ledger_b;
    if (!ledger_a.load_jsonl(positional[0])) {
      std::fprintf(stderr, "cannot read ledger %s\n", positional[0].c_str());
      return 2;
    }
    if (!ledger_b.load_jsonl(positional[1])) {
      std::fprintf(stderr, "cannot read ledger %s\n", positional[1].c_str());
      return 2;
    }
    report = obs::diff_ledgers(ledger_a, ledger_b);
  }
  if (json_output)
    std::printf("%s\n", report.to_json().pretty().c_str());
  else
    std::printf("%s", obs::render_diff_text(report).c_str());
  if (!html_path.empty() && !write_text_file(html_path, obs::render_diff_html(report)))
    return 2;
  return report.verdict_flips() > 0 ? 1 : 0;
}

/// One-line unicode sparkline scaled to the series' own [min, max].
std::string sparkline(const std::vector<double>& values) {
  static const char* kGlyphs[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  double lo = values.empty() ? 0.0 : values.front();
  double hi = lo;
  for (const double value : values) {
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
  std::string out;
  for (const double value : values) {
    const int index =
        hi > lo ? static_cast<int>((value - lo) / (hi - lo) * 7.0 + 0.5) : 3;
    out += kGlyphs[std::max(0, std::min(7, index))];
  }
  return out;
}

/// `lisa trends`: per-metric sparklines over each (kind, label) timeline of
/// a run-history store, plus the drift findings the newest record raises
/// against its own baseline.
int cmd_trends(int argc, char** argv) {
  std::string history_path;
  std::string kind_filter;
  std::string label_filter;
  std::string html_path;
  bool json_output = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kind") == 0 && i + 1 < argc)
      kind_filter = argv[++i];
    else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc)
      label_filter = argv[++i];
    else if (std::strcmp(argv[i], "--json") == 0)
      json_output = true;
    else if (std::strcmp(argv[i], "--html") == 0 && i + 1 < argc)
      html_path = argv[++i];
    else if (argv[i][0] != '-' && history_path.empty())
      history_path = argv[i];
    else
      return usage();
  }
  if (history_path.empty()) return usage();
  obs::RunHistory history(history_path);
  if (!history.load()) {
    std::fprintf(stderr, "cannot read history %s\n", history_path.c_str());
    return 2;
  }

  // Timelines in first-seen order; (kind, label) is the baseline key.
  std::vector<std::pair<std::string, std::string>> timelines;
  for (const obs::RunRecord& record : history.records()) {
    if (!kind_filter.empty() && record.kind != kind_filter) continue;
    if (!label_filter.empty() && record.label != label_filter) continue;
    const auto key = std::make_pair(record.kind, record.label);
    if (std::find(timelines.begin(), timelines.end(), key) == timelines.end())
      timelines.push_back(key);
  }

  support::JsonArray timeline_entries;
  std::string text;
  std::string html_body;
  for (const auto& [kind, label] : timelines) {
    const std::vector<const obs::RunRecord*> records = history.matching(kind, label);
    // Metric names across the whole timeline, sorted for determinism.
    std::map<std::string, std::vector<double>> series;
    for (const obs::RunRecord* record : records)
      for (const auto& [name, value] : record->metrics) series[name].push_back(value);
    std::vector<obs::DriftFinding> findings;
    if (records.size() >= 2) {
      const std::vector<const obs::RunRecord*> baseline(records.begin(),
                                                        records.end() - 1);
      findings = obs::detect_drift(baseline, *records.back());
    }

    if (json_output || !html_path.empty()) {
      support::JsonObject entry;
      entry["kind"] = kind;
      entry["label"] = label;
      entry["runs"] = static_cast<std::int64_t>(records.size());
      support::JsonObject metric_entries;
      for (const auto& [name, values] : series) {
        support::JsonObject metric;
        support::JsonArray value_entries;
        for (const double value : values) value_entries.push_back(support::Json(value));
        metric["values"] = support::Json(std::move(value_entries));
        metric["latest"] = values.back();
        metric["sparkline"] = sparkline(values);
        metric_entries[name] = support::Json(std::move(metric));
      }
      entry["metrics"] = support::Json(std::move(metric_entries));
      support::JsonArray finding_entries;
      for (const obs::DriftFinding& finding : findings)
        finding_entries.push_back(finding.to_json());
      entry["drift"] = support::Json(std::move(finding_entries));
      timeline_entries.push_back(support::Json(std::move(entry)));
    }
    text += "=== " + kind + " " + label + " (" + std::to_string(records.size()) +
            " run(s)) ===\n";
    for (const auto& [name, values] : series) {
      char line[224];
      std::snprintf(line, sizeof(line), "  %-20s %s  latest %.2f\n", name.c_str(),
                    sparkline(values).c_str(), values.back());
      text += line;
    }
    for (const obs::DriftFinding& finding : findings)
      text += std::string("  ") + (finding.fails_gate ? "[DRIFT] " : "[warn]  ") +
              finding.kind + " (" + finding.subject + "): " + finding.cause + "\n";
    text += "\n";
  }
  if (json_output) {
    support::JsonObject root;
    root["history"] = history_path;
    root["timelines"] = support::Json(std::move(timeline_entries));
    std::printf("%s\n", support::Json(std::move(root)).pretty().c_str());
  } else {
    std::printf("%s", text.c_str());
  }
  if (!html_path.empty()) {
    std::string html =
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
        "<title>LISA gate trends</title>\n<style>\n"
        "body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:64rem;"
        "color:#1a1a2e;line-height:1.45}\n"
        "pre{background:#f2f2f7;padding:1rem;border-radius:6px;overflow-x:auto}\n"
        "</style></head><body>\n<h1>LISA gate trends</h1>\n<pre>\n" +
        text + "</pre>\n</body></html>\n";
    if (!write_text_file(html_path, html)) return 2;
  }
  return 0;
}

int cmd_hunt() {
  int found = 0;
  for (const char* case_id :
       {"hbase-27671-snapshot-ttl", "hdfs-13924-observer-locations"}) {
    const corpus::FailureTicket* ticket = corpus::Corpus::find(case_id);
    const core::Pipeline pipeline;
    const core::PipelineResult result = pipeline.run(*ticket, ticket->latest_source);
    std::printf("%s\n", core::render_markdown(result).c_str());
    found += result.total_violations();
  }
  std::printf("total new findings: %d\n", found);
  return found > 0 ? 1 : 0;
}

int cmd_synth(const std::string& case_id) {
  const corpus::FailureTicket* ticket = require_case(case_id);
  if (ticket == nullptr) return 2;
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  core::TranslationResult translation = core::translate(proposal, ticket->system);
  if (translation.contracts.empty() || !translation.contracts[0].condition) {
    std::fprintf(stderr, "case has no state-predicate contract to synthesize for\n");
    return 2;
  }
  const core::SemanticContract& contract = translation.contracts[0];
  const minilang::Program program = minilang::parse_checked(ticket->patched_source);
  const analysis::CallGraph graph = analysis::CallGraph::build(program);
  analysis::TreeOptions tree_options;
  tree_options.contract_condition = contract.condition;
  // Unpruned: synthesis must satisfy every guard on the way to the target,
  // including those the contract does not mention.
  tree_options.prune_irrelevant = false;
  const analysis::ExecutionTree tree =
      analysis::build_execution_tree(program, graph, contract.target_fragment, tree_options);
  int produced = 0;
  int sequence = 1;
  for (const analysis::ExecutionPath& path : tree.paths) {
    const auto witness =
        concolic::synthesize_path_test(program, path, /*violating=*/true, sequence);
    if (!witness.has_value()) continue;
    ++sequence;
    const bool confirmed =
        concolic::validate_synthesized_test(program, *witness, contract.target_fragment);
    std::printf("// witness for %s (model %s) — %s\n%s\n",
                path.call_chain.front().c_str(), witness->model_text.c_str(),
                confirmed ? "CONFIRMED by concolic replay" : "unconfirmed",
                witness->source.c_str());
    if (confirmed) ++produced;
  }
  if (produced == 0)
    std::printf("// no synthesizable witness (state may be container-mediated; "
                "a human-authored test is needed)\n");
  return 0;
}

int cmd_explore(const std::string& case_id) {
  const corpus::FailureTicket* ticket = require_case(case_id);
  if (ticket == nullptr) return 2;
  const inference::SemanticsProposal proposal = inference::MockLlm().infer(*ticket);
  core::TranslationResult translation = core::translate(proposal, ticket->system);
  if (translation.contracts.empty() || !translation.contracts[0].condition) {
    std::fprintf(stderr, "case has no state-predicate contract to explore\n");
    return 2;
  }
  const core::SemanticContract& contract = translation.contracts[0];
  const minilang::Program program = minilang::parse_checked(ticket->patched_source);
  const concolic::ExplorationReport report =
      concolic::explore(program, contract.target_fragment, contract.condition);
  std::printf("exploring <%s> %s... over %zu path(s)\n\n", contract.condition_text.c_str(),
              contract.target_fragment.c_str(), report.paths.size());
  for (const concolic::ExploredPath& path : report.paths) {
    std::string chain;
    for (const std::string& fn : path.call_chain) {
      if (!chain.empty()) chain += " -> ";
      chain += fn;
    }
    std::printf("[%-19s] %s\n    %s\n", concolic::explored_verdict_name(path.verdict),
                chain.c_str(), path.detail.c_str());
    if (!path.test_source.empty()) std::printf("%s\n", path.test_source.c_str());
  }
  std::printf("summary: %d verified, %d violated, %d infeasible, %d need a human\n",
              report.verified, report.violated, report.infeasible, report.human_needed);
  return report.violated > 0 ? 1 : 0;
}

/// Lints one program version; prints diagnostics and returns the error count.
int lint_source(const std::string& label, const std::string& source) {
  minilang::Program program;
  try {
    program = minilang::parse_checked(source);
  } catch (const std::exception& error) {
    std::printf("%s: does not build: %s\n", label.c_str(), error.what());
    return 1;
  }
  const std::vector<staticcheck::Diagnostic> diagnostics =
      staticcheck::lint_program(program);
  int errors = 0;
  for (const staticcheck::Diagnostic& diagnostic : diagnostics) {
    std::printf("%s/%s\n", label.c_str(), diagnostic.render().c_str());
    if (diagnostic.severity == staticcheck::Severity::kError) ++errors;
  }
  if (diagnostics.empty()) std::printf("%s: clean\n", label.c_str());
  return errors;
}

/// Machine-readable lint: one entry per program plus aggregate counts.
/// Returns the error count, like lint_source.
int lint_source_json(const std::string& label, const std::string& source,
                     support::JsonArray* programs, int* warnings, int* notes) {
  support::JsonObject entry;
  entry["case"] = label;
  minilang::Program program;
  try {
    program = minilang::parse_checked(source);
  } catch (const std::exception& error) {
    entry["builds"] = false;
    entry["error"] = std::string(error.what());
    programs->push_back(support::Json(std::move(entry)));
    return 1;
  }
  entry["builds"] = true;
  const std::vector<staticcheck::Diagnostic> diagnostics =
      staticcheck::lint_program(program);
  int errors = 0;
  support::JsonArray rendered;
  for (const staticcheck::Diagnostic& diagnostic : diagnostics) {
    support::JsonObject item;
    item["function"] = diagnostic.function;
    item["line"] = diagnostic.loc.line;
    item["column"] = diagnostic.loc.column;
    item["severity"] = std::string(staticcheck::severity_name(diagnostic.severity));
    item["analysis"] = diagnostic.analysis;
    item["message"] = diagnostic.message;
    rendered.push_back(support::Json(std::move(item)));
    switch (diagnostic.severity) {
      case staticcheck::Severity::kError: ++errors; break;
      case staticcheck::Severity::kWarning: ++*warnings; break;
      case staticcheck::Severity::kNote: ++*notes; break;
    }
  }
  entry["diagnostics"] = support::Json(std::move(rendered));
  entry["errors"] = errors;
  programs->push_back(support::Json(std::move(entry)));
  return errors;
}

int cmd_lint(int argc, char** argv) {
  std::string case_id;
  bool use_buggy = false;
  bool use_latest = false;
  bool json_output = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--buggy") == 0)
      use_buggy = true;
    else if (std::strcmp(argv[i], "--latest") == 0)
      use_latest = true;
    else if (std::strcmp(argv[i], "--json") == 0)
      json_output = true;
    else if (argv[i][0] != '-' && case_id.empty())
      case_id = argv[i];
    else
      return usage();
  }
  if (use_buggy && use_latest) return usage();

  std::vector<const corpus::FailureTicket*> tickets;
  if (!case_id.empty()) {
    const corpus::FailureTicket* ticket = require_case(case_id);
    if (ticket == nullptr) return 2;
    tickets.push_back(ticket);
  } else {
    for (const corpus::FailureTicket& ticket : corpus::Corpus::all())
      tickets.push_back(&ticket);
  }

  int errors = 0;
  int warnings = 0;
  int notes = 0;
  support::JsonArray programs;
  int linted = 0;
  for (const corpus::FailureTicket* ticket : tickets) {
    const std::string& source = use_buggy    ? ticket->buggy_source
                                : use_latest ? ticket->latest_source
                                             : ticket->patched_source;
    if (source.empty()) {
      std::fprintf(stderr, "case %s has no such version\n", ticket->case_id.c_str());
      if (!case_id.empty()) return 2;
      continue;
    }
    ++linted;
    errors += json_output
                  ? lint_source_json(ticket->case_id, source, &programs, &warnings, &notes)
                  : lint_source(ticket->case_id, source);
  }
  if (json_output) {
    support::JsonObject root;
    root["programs"] = support::Json(std::move(programs));
    support::JsonObject summary;
    summary["programs"] = linted;
    summary["errors"] = errors;
    summary["warnings"] = warnings;
    summary["notes"] = notes;
    root["summary"] = support::Json(std::move(summary));
    std::printf("%s\n", support::Json(std::move(root)).pretty().c_str());
  }
  return errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "corpus") return cmd_corpus();
    if (command == "source" && argc >= 3) return cmd_source(argv[2], argc - 3, argv + 3);
    if (command == "prompt" && argc >= 3) return cmd_prompt(argv[2]);
    if (command == "infer" && argc >= 3) return cmd_infer(argv[2]);
    if (command == "check" && argc >= 3) return cmd_check(argv[2], argc - 3, argv + 3);
    if (command == "gate" && argc >= 4) return cmd_gate(argv[2], argv[3], argc - 4, argv + 4);
    if (command == "explain" && argc >= 3) return cmd_explain(argv[2], argc - 3, argv + 3);
    if (command == "slice" && argc >= 3) return cmd_slice(argv[2], argc - 3, argv + 3);
    if (command == "diff") return cmd_diff(argc - 2, argv + 2);
    if (command == "trends") return cmd_trends(argc - 2, argv + 2);
    if (command == "hunt") return cmd_hunt();
    if (command == "synth" && argc >= 3) return cmd_synth(argv[2]);
    if (command == "explore" && argc >= 3) return cmd_explore(argv[2]);
    if (command == "lint") return cmd_lint(argc - 2, argv + 2);
    if (command == "profile") return cmd_profile(argc - 2, argv + 2);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  return usage();
}
